"""Fig. 14: our 2~8-bit kernels vs ncnn 8-bit, DenseNet-121 on ARM.

Published shape: same ordering as ResNet-50 with slightly higher averages
(1.79/1.74/1.56/1.50/1.51/1.37 for 2~7-bit); 8-bit wins only a minority of
layers (6/16, avg 1.09 in the wins).
"""

from conftest import assert_monotone_decreasing

from repro.figures import fig14_arm_densenet


def test_fig14(benchmark, emit):
    data = benchmark.pedantic(fig14_arm_densenet, rounds=1, iterations=1)
    emit(data)

    by_bits = {int(s.name.split("-")[0]): s for s in data.series}
    geo = {b: s.geomean() for b, s in by_bits.items()}
    assert_monotone_decreasing([geo[b] for b in range(2, 9)],
                               tolerance=0.02)
    assert geo[2] > 1.5
    assert 0.85 <= geo[8] <= 1.15
    for b in range(2, 8):
        wins = sum(v > 1.0 for v in by_bits[b].values)
        assert wins >= len(data.labels) - 3
