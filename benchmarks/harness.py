#!/usr/bin/env python
"""Standalone entry point for the wall-clock bench harness.

Equivalent to ``python -m repro bench``; exists so the perf trajectory can
be regenerated from the benchmarks directory without remembering the CLI:

    PYTHONPATH=src python benchmarks/harness.py [--smoke] [--model M] ...

The heavy lifting lives in :mod:`repro.perf.bench`; reports land next to
the figure artifacts in ``benchmarks/out/BENCH_*.json``.  Unlike the
pytest-benchmark files in this directory, this harness times the *search
engine* (serial baseline vs pruned/parallel/cached autotune), not the
simulated devices.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if SRC.is_dir() and str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def main(argv: list[str] | None = None) -> int:
    from repro.cli import main as cli_main

    args = list(sys.argv[1:] if argv is None else argv)
    if "--out" not in args:
        args += ["--out", str(REPO_ROOT / "benchmarks" / "out")]
    return cli_main(["bench", *args])


if __name__ == "__main__":
    raise SystemExit(main())
