"""Sec. 3.2 (Eq. 1-4): the re-designed GEMM's ~4x CAL/LD improvement,
checked analytically and by counting a real walk on a ResNet-50 GEMM."""

import numpy as np
import pytest

from conftest import OUT_DIR

from repro.gemm import (
    cal_ld_improvement,
    gemm_redesigned,
    gemm_traditional,
    redesigned_counts,
    traditional_counts,
)
from repro.gemm.traditional import AccessCounter
from repro.models import resnet50_conv_layers
from repro.types import GemmShape


def test_sec32_analytic_ratio(benchmark):
    shapes = [GemmShape.from_conv(s) for s in resnet50_conv_layers()]
    ratios = benchmark(lambda: [cal_ld_improvement(s) for s in shapes])
    lines = ["shape               trad CAL/LD  redesigned CAL/LD  improvement"]
    for s, r in zip(shapes, ratios):
        t = traditional_counts(s).cal_per_ld
        n = redesigned_counts(s).cal_per_ld
        lines.append(f"M{s.m:>5} K{s.k:>5} N{s.n:>5}  {t:10.3f}  {n:16.3f}  {r:10.2f}x")
        # "about 4x"; small-K layers feel the delta reduce-sum term
        assert r == pytest.approx(4.0, rel=0.1)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "sec32_gemm_redesign.txt").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))


def test_sec32_measured_walk():
    rng = np.random.default_rng(0)
    a = rng.integers(-8, 8, (32, 72)).astype(np.int32)
    b = rng.integers(-8, 8, (72, 24)).astype(np.int32)
    ct, cr = AccessCounter(), AccessCounter()
    ref = gemm_traditional(a, b, counter=ct)
    out = gemm_redesigned(a, b, counter=cr)
    assert np.array_equal(ref, out)
    assert (cr.macs_instr / cr.loads) / (ct.macs_instr / ct.loads) > 3.0
