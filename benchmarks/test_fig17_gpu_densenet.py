"""Fig. 17: GPU kernels on DenseNet-121 (batch 1).

Published shape: ours beats TensorRT and cuDNN across all layers (vs TRT:
3.29x at 4-bit, 2.53x at 8-bit) thanks to the long tail of unusual
growing-channel 1x1 shapes (e.g. 736 channels at 14x14).
"""

from repro.figures import fig17_gpu_densenet


def test_fig17(benchmark, emit):
    data = benchmark.pedantic(fig17_gpu_densenet, rounds=1, iterations=1)
    emit(data)

    ours8 = data.series_by_name("ours 8-bit")
    ours4 = data.series_by_name("ours 4-bit")
    trt = data.series_by_name("TensorRT 8-bit")

    assert ours8.geomean() > 1.5  # well above cuDNN
    assert ours4.geomean() > ours8.geomean()
    vs_trt = [o / t for o, t in zip(ours8.values, trt.values)]
    assert sum(v > 1.0 for v in vs_trt) >= len(data.labels) * 0.7
