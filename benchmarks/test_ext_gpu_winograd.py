"""Extension bench: winograd on the GPU — quantifying the road not taken.

The paper implements winograd only on ARM (Sec. 3.4).  Priced on the same
Turing model, the F(2x2,3x3) pipeline loses to the paper's implicit-GEMM
tensor-core path on every eligible ResNet-50 layer (1.0x ~ 3.2x slower):
the transform stages are bandwidth-bound and the transform-domain GEMMs
(K = Cin) underfeed the tensor cores, while the 2.25x multiply saving
matters little when multiplies are this cheap.
"""

from conftest import OUT_DIR

from repro.gpu.winograd import gpu_winograd_time, winograd_vs_implicit
from repro.models import resnet50_conv_layers


def test_gpu_winograd_vs_implicit(benchmark):
    layers = [s for s in resnet50_conv_layers() if s.is_winograd_eligible()]

    def run():
        rows = []
        for spec in layers:
            for batch in (1, 16):
                r = winograd_vs_implicit(spec.with_batch(batch), 8)
                rows.append((spec.name, batch, r))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["layer  batch  winograd us  implicit us  wino/implicit"]
    for name, batch, r in rows:
        lines.append(
            f"{name:>6}  {batch:>5}  {r['winograd_cycles'] / 1545:11.1f}"
            f"  {r['implicit_cycles'] / 1545:11.1f}"
            f"  {r['winograd_over_implicit']:13.2f}"
        )
        assert r["winograd_over_implicit"] >= 0.95
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_gpu_winograd.txt").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))


def test_transform_share(benchmark):
    layers = [s for s in resnet50_conv_layers() if s.is_winograd_eligible()]
    perfs = benchmark(lambda: [gpu_winograd_time(s, 8) for s in layers])
    for p in perfs:
        tf = p.transform_in_cycles + p.transform_out_cycles
        assert tf / p.total_cycles > 0.25  # transforms are never negligible
