"""Fig. 7: our 2~8-bit conv kernels vs ncnn 8-bit, ResNet-50 on ARM.

Published shape: speedups monotone in bit width (2-bit best), 8-bit at or
slightly below parity (wins only 2/19 layers), small 1x1/64ch layers
(conv1/conv3) weakest, peak at a large-K layer.  Published magnitudes
(2~8-bit average of winning layers): 1.60 / 1.54 / 1.38 / 1.38 / 1.34 /
1.27 / 1.03; our simulator's magnitudes run uniformly higher (see
EXPERIMENTS.md) while preserving the ordering.
"""

from conftest import assert_monotone_decreasing

from repro.figures import fig7_arm_speedups


def test_fig7(benchmark, emit):
    data = benchmark.pedantic(fig7_arm_speedups, rounds=1, iterations=1)
    emit(data)

    by_bits = {int(s.name.split("-")[0]): s for s in data.series}
    geo = {b: s.geomean() for b, s in by_bits.items()}

    # lower bits -> higher speedup, strictly ordered 2 > 3 > ... > 8
    assert_monotone_decreasing([geo[b] for b in range(2, 9)])

    # 2-bit wins substantially; 8-bit sits at/below parity on most layers
    assert geo[2] > 1.5
    assert 0.85 <= geo[8] <= 1.1
    losses8 = sum(v < 1.0 for v in by_bits[8].values)
    assert losses8 >= len(data.labels) * 0.6

    # all sub-8-bit schemes beat the baseline on (almost) every layer
    for b in range(2, 8):
        wins = sum(v > 1.0 for v in by_bits[b].values)
        assert wins >= len(data.labels) - 3

    # the small 1x1/64-channel layer is the weakest for every low bit width
    conv1_idx = data.labels.index("conv1")
    for b in (2, 3, 4):
        vals = by_bits[b].values
        assert vals[conv1_idx] <= min(vals) * 1.05
