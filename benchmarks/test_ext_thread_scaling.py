"""Extension bench: multi-core scaling of the ARM kernels (Pi 3B, 4xA53).

The paper reports single-thread numbers; this bench projects them to 2/4
cores with the shared-memory-system model: compute-bound layers approach
~3x on four cores, memory-heavy layers saturate earlier, and the 2-bit
kernels (more memory-bound per MAC) scale worse than 8-bit — the flip
side of their single-thread advantage.
"""

from conftest import OUT_DIR

from repro.arm.conv_runner import time_arm_conv
from repro.arm.threading import thread_scaling_curve
from repro.models import resnet50_conv_layers
from repro.util import geomean


def test_thread_scaling(benchmark):
    layers = [s for s in resnet50_conv_layers()
              if s.name in ("conv1", "conv2", "conv6", "conv16")]

    def run():
        rows = []
        for spec in layers:
            for bits in (2, 8):
                curve = thread_scaling_curve(time_arm_conv(spec, bits))
                rows.append((spec.name, bits, curve))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["layer  bits   1T     2T     4T   (speedup over 1 thread)"]
    by_bits: dict[int, list[float]] = {2: [], 8: []}
    for name, bits, curve in rows:
        lines.append(f"{name:>6}  {bits:>4}  {curve[1]:.2f}  {curve[2]:5.2f}"
                     f"  {curve[4]:5.2f}")
        by_bits[bits].append(curve[4])
        assert 1.0 < curve[2] < 2.0
        assert curve[2] < curve[4] < 4.0
    lines.append(f"geomean 4T: 2-bit {geomean(by_bits[2]):.2f}, "
                 f"8-bit {geomean(by_bits[8]):.2f}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_thread_scaling.txt").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))

    # the more memory-bound low-bit kernels saturate earlier
    assert geomean(by_bits[8]) > geomean(by_bits[2])
