"""Sec. 3.3: the SMLAL/MLA : SADDW ratio table, regenerated and certified.

Beyond reprinting the published ratios (511/127/31/8/2 and 31/7), this
bench *executes* worst-case accumulation chains on the functional
simulator in overflow-checking mode — the published lengths never wrap,
one step more does.
"""

import numpy as np
import pytest

from conftest import OUT_DIR

from repro.arm.kernels import generate_mla_kernel, generate_smlal_kernel
from repro.arm.ratios import chain_table, mla_chain_length, smlal_chain_length
from repro.conv.padding import pack_a, pack_b
from repro.errors import OverflowDetected


def test_sec33_table(benchmark):
    table = benchmark(chain_table)
    assert table == {2: 31, 3: 7, 4: 511, 5: 127, 6: 31, 7: 8, 8: 2}
    lines = ["bits  scheme  accumulate-chain : drain"]
    for bits, chain in sorted(table.items()):
        scheme = "MLA" if bits in (2, 3) else "SMLAL"
        lines.append(f"{bits:>4}  {scheme:>6}  {chain} : 1")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "sec33_chain_ratios.txt").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))


@pytest.mark.parametrize("bits", [5, 6, 7, 8])
def test_sec33_smlal_chain_is_tight(bits):
    chain = smlal_chain_length(bits)
    half = 1 << (bits - 1)
    worst = -(half - 1) if bits >= 7 else -half

    def run(k):
        a = np.full((16, k), worst, dtype=np.int8)
        b = np.full((k, 4), worst, dtype=np.int8)
        kern = generate_smlal_kernel(bits, k, round_steps=k, allow_unsafe=True)
        return kern.execute(pack_a(a, 16), pack_b(b, 4), check_overflow=True)

    run(chain)  # safe at the published length
    with pytest.raises(OverflowDetected):
        run(chain + 1)  # wraps one past it


@pytest.mark.parametrize("bits", [2, 3])
def test_sec33_mla_chain_is_tight(bits):
    chain = mla_chain_length(bits)
    half = 1 << (bits - 1)

    def run(k):
        a = np.full((64, k), -half, dtype=np.int8)
        b = np.full((k, 1), -half, dtype=np.int8)
        kern = generate_mla_kernel(bits, k, chain_steps=k, allow_unsafe=True)
        return kern.execute(pack_a(a, 64), pack_b(b, 1), check_overflow=True)

    run(chain)
    with pytest.raises(OverflowDetected):
        run(chain + 1)
