"""Fig. 11: profile-run tiling search vs default parameters (batch 1).

Published shape: the auto-search speeds 4-bit kernels by 2.29x and 8-bit
by 2.91x on average (8-bit gains more than 4-bit), and never loses — the
default is in the search space.
"""

from repro.figures import fig11_gpu_autotune


def test_fig11(benchmark, emit):
    data = benchmark.pedantic(fig11_gpu_autotune, rounds=1, iterations=1)
    emit(data)

    s8 = data.series_by_name("8-bit w/ profile")
    s4 = data.series_by_name("4-bit w/ profile")

    assert all(v >= 1.0 - 1e-9 for v in s8.values)  # search includes default
    assert all(v >= 1.0 - 1e-9 for v in s4.values)
    assert 1.5 < s8.geomean() < 5.0  # published 2.91x
    assert 1.5 < s4.geomean() < 5.0  # published 2.29x
    assert s8.geomean() > s4.geomean()  # 8-bit gains more, as published
