"""Fig. 15: our 2~8-bit kernels vs ncnn 8-bit, SCR-ResNet-50 on ARM.

Published shape: ours wins across *all* layers at every bit width
(2~8-bit averages 3.17/3.00/2.65/2.54/2.54/2.27/1.52) — notably even the
8-bit kernels win here, unlike on ResNet-50, because the reallocated
(unusual) shapes suit the re-designed GEMM's blocking better.  Our
simulated 8-bit advantage on SCR is smaller but the low-bit sweep keeps
the full ordering.
"""

from conftest import assert_monotone_decreasing

from repro.figures import fig15_arm_scr


def test_fig15(benchmark, emit):
    data = benchmark.pedantic(fig15_arm_scr, rounds=1, iterations=1)
    emit(data)

    by_bits = {int(s.name.split("-")[0]): s for s in data.series}
    geo = {b: s.geomean() for b, s in by_bits.items()}
    assert_monotone_decreasing([geo[b] for b in range(2, 9)],
                               tolerance=0.02)
    # sub-8-bit wins everywhere on the unusual shapes
    for b in range(2, 8):
        assert all(v > 1.0 for v in by_bits[b].values)
    assert geo[2] > 1.5
