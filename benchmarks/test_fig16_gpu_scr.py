"""Fig. 16: GPU kernels on SCR-ResNet-50 (batch 1).

Published shape: ours beats TensorRT and cuDNN across *all* layers, with
larger margins than on ResNet-50 (vs TRT: 3.53x at 4-bit, 2.22x at 8-bit)
— the unusual searched shapes fall outside TRT's tuned kernel repertoire
while our auto-search adapts.
"""

from repro.figures import fig10_gpu_speedups, fig16_gpu_scr


def test_fig16(benchmark, emit):
    data = benchmark.pedantic(fig16_gpu_scr, rounds=1, iterations=1)
    emit(data)

    ours8 = data.series_by_name("ours 8-bit")
    ours4 = data.series_by_name("ours 4-bit")
    trt = data.series_by_name("TensorRT 8-bit")

    vs_trt8 = [o / t for o, t in zip(ours8.values, trt.values)]
    vs_trt4 = [o / t for o, t in zip(ours4.values, trt.values)]
    assert sum(v > 1.0 for v in vs_trt8) >= len(data.labels) * 0.8
    assert sum(v > 1.0 for v in vs_trt4) >= len(data.labels) * 0.8
    assert ours4.geomean() > ours8.geomean()


def test_scr_margin_vs_resnet50():
    """Sec. 5.5: 'our optimization achieves better performance speedup on
    SCR-ResNet-50 and DenseNet-121 compared to ResNet-50' (vs TensorRT)."""
    def trt_margin(data):
        ours = data.series_by_name("ours 8-bit")
        trt = data.series_by_name("TensorRT 8-bit")
        vals = [o / t for o, t in zip(ours.values, trt.values)]
        prod = 1.0
        for v in vals:
            prod *= v
        return prod ** (1 / len(vals))

    scr = trt_margin(fig16_gpu_scr())
    r50 = trt_margin(fig10_gpu_speedups("resnet50", batch=1))
    assert scr > r50 * 0.9  # at least comparable; typically better
