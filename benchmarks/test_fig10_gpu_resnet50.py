"""Fig. 10: our 4/8-bit kernels vs cuDNN dp4a and TensorRT, ResNet-50 GPU.

Published shape (batch 1): ours-4bit 5.26x and ours-8bit 4.31x over cuDNN
on average (18/19 layers); vs TensorRT 1.78x / 1.44x; 4-bit beats our own
8-bit by 1.18x.  Batch 16 compresses everything (3.45x / 2.44x vs cuDNN);
"our implementation achieves better speedup with small batch size".
"""

import pytest

from repro.figures import fig10_gpu_speedups


@pytest.mark.parametrize("batch", [1, 16])
def test_fig10(benchmark, emit, batch):
    data = benchmark.pedantic(
        fig10_gpu_speedups, kwargs={"batch": batch}, rounds=1, iterations=1
    )
    emit(data)

    ours8 = data.series_by_name("ours 8-bit")
    ours4 = data.series_by_name("ours 4-bit")
    trt = data.series_by_name("TensorRT 8-bit")

    # ours wins vs cuDNN dp4a essentially everywhere, by multiples
    assert sum(v > 1.0 for v in ours8.values) >= len(data.labels) - 1
    assert ours8.geomean() > 2.0
    assert ours4.geomean() > ours8.geomean()

    # 4-bit over our own 8-bit, on average (1.18x/1.32x published)
    ratio_48 = ours4.geomean() / ours8.geomean()
    assert 1.05 < ratio_48 < 2.0

    # TensorRT is the strong baseline: well above cuDNN, below ours on most
    assert trt.geomean() > 1.5
    ours_vs_trt = [o / t for o, t in zip(ours8.values, trt.values)]
    assert sum(v > 1.0 for v in ours_vs_trt) >= len(data.labels) * 0.6


def test_batch1_beats_batch16_speedups(emit):
    b1 = fig10_gpu_speedups(batch=1)
    b16 = fig10_gpu_speedups(batch=16)
    for name in ("ours 8-bit", "ours 4-bit"):
        assert b1.series_by_name(name).geomean() > b16.series_by_name(name).geomean()
