"""GPU ablations: each Sec. 4.3 memory optimization, toggled individually.

The paper motivates four mechanisms (coalesced global access, shared-
memory access reordering, register double buffering, in-place epilogue);
each must individually improve the modeled kernel time on representative
ResNet-50 layers, and their combination must dominate any single one.
"""

from conftest import OUT_DIR

from repro.gpu.pipelinemodel import conv_time
from repro.gpu.tiling import TilingParams
from repro.models import resnet50_conv_layers

LAYERS = [s for s in resnet50_conv_layers() if s.name in
          ("conv2", "conv6", "conv16")]
TILE = TilingParams(64, 64, 32, 16, 2, 2)

KNOBS = {
    "coalesced": "coalesced global access",
    "reorder_smem": "smem access reordering (Fig. 5)",
    "double_buffer": "register double buffer (Fig. 6)",
    "in_place_epilogue": "in-place bias+requant",
}


def test_each_optimization_helps(benchmark):
    def run():
        rows = []
        for spec in LAYERS:
            full = conv_time(spec, 8, TILE).total_cycles
            for knob in KNOBS:
                off = conv_time(spec, 8, TILE, **{knob: False}).total_cycles
                rows.append((spec.name, knob, off / full))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["layer  optimization-off        slowdown vs all-on"]
    helped = {k: False for k in KNOBS}
    for name, knob, ratio in rows:
        lines.append(f"{name:>6}  {KNOBS[knob]:<32} {ratio:.3f}x")
        assert ratio >= 1.0 - 1e-9
        if ratio > 1.01:
            helped[knob] = True
    # every mechanism matters on at least one representative layer
    for knob, ok in helped.items():
        assert ok, f"{knob} never mattered — model is degenerate"
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ablation_gpu_memory.txt").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))


def test_all_off_is_worst():
    for spec in LAYERS:
        full = conv_time(spec, 8, TILE).total_cycles
        none = conv_time(spec, 8, TILE, coalesced=False, reorder_smem=False,
                         double_buffer=False, in_place_epilogue=False
                         ).total_cycles
        assert none > full * 1.5
