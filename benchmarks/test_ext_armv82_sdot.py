"""Extension bench: the ARMv8.2 what-if the paper's Sec. 2.3 gestures at.

"In the latest ARMv8.2 architecture, SDOT instruction is introduced ...
However, ARMv8.1 is still the dominant architecture among existing ARM
devices, so we focus our extremely low-bit convolution optimization on
ARMv8.1 specifically."

This bench quantifies that scoping decision: on a v8.2 core the plain
8-bit SDOT kernel beats *every* v8.1 scheme — including 2-bit MLA — so
the paper's 2~7-bit speedups over 8-bit are an artifact of the v8.1 ISA
gap, not of low-bit arithmetic itself.
"""

from conftest import OUT_DIR

from repro.arm.conv_runner import ncnn_conv_cycles, time_arm_conv
from repro.models import resnet50_conv_layers
from repro.util import geomean


def test_sdot_vs_v81_schemes(benchmark):
    layers = resnet50_conv_layers()

    def run():
        rows = []
        for spec in layers:
            base = ncnn_conv_cycles(spec).total_cycles
            rows.append({
                "layer": spec.name,
                "sdot8": base / time_arm_conv(spec, 8, scheme="sdot").total_cycles,
                "mla2": base / time_arm_conv(spec, 2).total_cycles,
                "smlal4": base / time_arm_conv(spec, 4).total_cycles,
                "smlal8": base / time_arm_conv(spec, 8).total_cycles,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["layer    sdot-8bit  mla-2bit  smlal-4bit  smlal-8bit   (vs ncnn)"]
    for r in rows:
        lines.append(f"{r['layer']:>7}  {r['sdot8']:9.2f}  {r['mla2']:8.2f}  "
                     f"{r['smlal4']:10.2f}  {r['smlal8']:10.2f}")
    for key in ("sdot8", "mla2", "smlal4", "smlal8"):
        g = geomean([r[key] for r in rows])
        lines.append(f"geomean {key}: {g:.2f}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_armv82_sdot.txt").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))

    # on v8.2, 8-bit SDOT dominates every v8.1 scheme (within a whisker on
    # the tiniest layer, where the MLA tile's 64-row panel amortizes best)
    for r in rows:
        assert r["sdot8"] > r["mla2"] * 0.97
        assert r["sdot8"] > r["smlal4"]
        assert r["sdot8"] > r["smlal8"]
    assert geomean([r["sdot8"] for r in rows]) > geomean([r["mla2"] for r in rows])
