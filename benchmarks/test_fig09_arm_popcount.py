"""Fig. 9: our 2-bit kernels vs the TVM popcount baseline (A2W2) on ARM.

Published shape: ours wins on most layers (16/19), highest speedup ~2.1x,
average of winning layers 1.78x.
"""

from repro.figures import fig9_arm_popcount
from repro.util import geomean


def test_fig9(benchmark, emit):
    data = benchmark.pedantic(fig9_arm_popcount, rounds=1, iterations=1)
    emit(data)

    vals = data.series[0].values
    wins = [v for v in vals if v > 1.0]
    assert len(wins) >= len(vals) * 0.75  # "16 out of 19 cases"
    assert geomean(wins) > 1.15
    assert max(vals) < 4.0  # same order as the published 2.11x peak
