"""Fig. 12: quantization-fusion speedups on the GPU (8-bit, batch 1).

Published shape: conv+dequant fusion averages 1.18x; conv+ReLU fusion —
which removes the whole dequantize/quantize pair — averages 1.51x and is
the larger of the two on every layer.
"""

from repro.figures import fig12_gpu_fusion


def test_fig12(benchmark, emit):
    data = benchmark.pedantic(fig12_gpu_fusion, rounds=1, iterations=1)
    emit(data)

    dq = data.series_by_name("conv+dequant")
    relu = data.series_by_name("conv+relu")

    assert all(v >= 1.0 for v in dq.values)
    assert all(r >= d for r, d in zip(relu.values, dq.values))
    assert 1.05 < dq.geomean() < 1.8  # published 1.18x
    assert 1.2 < relu.geomean() < 3.0  # published 1.51x
