"""Fig. 8: GEMM-based vs winograd-based 4~6-bit kernels on ARM.

Published shape: the 4~6-bit winograd kernels beat both the ncnn baseline
and our own GEMM kernels on every eligible (3x3/s1) layer, and the
winograd advantage shrinks as bit width grows (avg 1.50/1.44/1.34 for
4/5/6-bit vs baseline) because the transformed ranges shorten the SMLAL
chains (56/14/3 steps).
"""

from repro.figures import fig8_arm_winograd


def test_fig8(benchmark, emit):
    data = benchmark.pedantic(fig8_arm_winograd, rounds=1, iterations=1)
    emit(data)

    gemm = {b: data.series_by_name(f"gemm {b}-bit") for b in (4, 5, 6)}
    wino = {b: data.series_by_name(f"winograd {b}-bit") for b in (4, 5, 6)}

    # winograd outperforms the baseline and GEMM "in all cases"
    # (our 6-bit simulation allows one marginal layer: the 3-step chain at
    # 6-bit makes the deepest 7x7 layer a tie — see EXPERIMENTS.md)
    for b in (4, 5, 6):
        assert all(v > 1.0 for v in wino[b].values)
        slack = 0.95 if b == 6 else 1.0
        for wv, gv in zip(wino[b].values, gemm[b].values):
            assert wv > gv * slack

    # the winograd-over-GEMM gain fades with bit width
    gains = [wino[b].geomean() / gemm[b].geomean() for b in (4, 5, 6)]
    assert gains[0] > gains[1] > gains[2]
    # at 6-bit the chains are only 3 long; the advantage must be small-ish
    assert gains[2] < gains[0] * 0.75
