"""Extension bench: MobileNetV1 — where GEMM-based low-bit conv stops
paying.

Depthwise layers reduce over K = 9 with one output channel per group: the
re-designed GEMM's 16-row register tile is ~94% padding, so the low-bit
speedups the paper reports on ResNet-family workloads collapse there,
while the pointwise halves behave like ResNet 1x1 layers.  (This is why
the paper's evaluation uses ResNet-50 / DenseNet-121 — and why real
mobile runtimes special-case depthwise with direct kernels.)
"""

from conftest import OUT_DIR

from repro.arm.conv_runner import ncnn_conv_cycles, time_arm_conv
from repro.models import mobilenetv1_conv_layers
from repro.models.mobilenetv1 import is_depthwise
from repro.util import geomean


def test_mobilenet_dw_vs_pw(benchmark):
    layers = mobilenetv1_conv_layers()

    def run():
        rows = []
        for spec in layers:
            base = ncnn_conv_cycles(spec).total_cycles
            ours = time_arm_conv(spec, 4).total_cycles
            rows.append((spec, base / ours, spec.macs / ours))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["layer   kind  speedup-vs-ncnn  achieved MACs/cycle"]
    dw_sp, pw_sp, dw_eff, pw_eff = [], [], [], []
    for spec, sp, eff in rows:
        kind = "dw" if is_depthwise(spec) else "pw"
        (dw_sp if kind == "dw" else pw_sp).append(sp)
        (dw_eff if kind == "dw" else pw_eff).append(eff)
        lines.append(f"{spec.name:>6}  {kind:>4}  {sp:15.2f}  {eff:19.3f}")
    lines.append(f"geomean dw: speedup {geomean(dw_sp):.2f}, "
                 f"MACs/cycle {geomean(dw_eff):.3f}")
    lines.append(f"geomean pw: speedup {geomean(pw_sp):.2f}, "
                 f"MACs/cycle {geomean(pw_eff):.3f}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_mobilenet_depthwise.txt").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))

    # pointwise behaves like ResNet 1x1; depthwise wastes the tile
    assert geomean(pw_eff) > 4 * geomean(dw_eff)
    assert geomean(pw_sp) > geomean(dw_sp)
