"""Tab. 1: hardware/software configurations of the two simulated platforms."""

import json

from conftest import OUT_DIR

from repro.figures import tab1_configurations


def test_tab1_configurations(benchmark):
    configs = benchmark(tab1_configurations)
    assert set(configs) == {"ARM CPU", "NVIDIA GPU"}
    arm = configs["ARM CPU"]
    gpu = configs["NVIDIA GPU"]
    assert arm["architecture"] == "ARM Cortex-A53"
    assert gpu["architecture"] == "NVIDIA Turing TU102"
    assert gpu["sm_count"] == 68
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "tab1.txt").write_text(json.dumps(configs, indent=2))
    print("\n" + json.dumps(configs, indent=2))
