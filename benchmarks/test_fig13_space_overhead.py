"""Fig. 13: space overhead of im2col + pad/pack, ResNet-50 on ARM.

This figure is exact arithmetic, and it reproduces the published numbers
to the digit: im2col overhead min 1.0218x / max 8.6034x, pad+pack overhead
1.0x ~ 1.0058x band with ~1.0010 average, total minimum 1.0232x.
(The published per-layer average, 1.9445x, depends on the unpublished
layer index mapping; ours lands in the same band.)
"""

import pytest

from repro.figures import fig13_space_overhead


def test_fig13(benchmark, emit):
    data = benchmark.pedantic(fig13_space_overhead, rounds=1, iterations=1)
    emit(data)

    im2col = data.series_by_name("im2col")
    pack = data.series_by_name("pad+pack")
    total = data.series_by_name("total")

    assert min(im2col.values) == pytest.approx(1.0218, abs=5e-3)
    assert max(im2col.values) == pytest.approx(8.6034, abs=5e-2)
    avg = sum(im2col.values) / len(im2col.values)
    assert 1.5 < avg < 2.5  # published 1.9445

    assert min(pack.values) >= 1.0
    assert max(pack.values) < 1.01  # published max 1.0058
    pack_avg = sum(pack.values) / len(pack.values)
    assert pack_avg == pytest.approx(1.0010, abs=2e-3)

    assert min(total.values) == pytest.approx(1.0232, abs=5e-3)
