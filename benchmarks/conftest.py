"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one paper table/figure from the simulators,
prints it, writes it under ``benchmarks/out/`` and asserts the paper-shape
properties (who wins, roughly by what factor, where crossovers fall — see
EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.report import Series, format_table

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def emit():
    """Print a FigureData and persist it as a text artifact."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(data, *, extra: str = "") -> str:
        series = list(data.series) + [
            Series(data.baseline_label, data.baseline_times)
        ]
        table = format_table(list(data.labels), series)
        text = f"== {data.figure} ==\n{table}\n"
        if extra:
            text += extra + "\n"
        path = OUT_DIR / f"{data.figure.replace('[', '_').replace(']', '').replace(',', '_')}.txt"
        path.write_text(text)
        print("\n" + text)
        return text

    return _emit


def assert_monotone_decreasing(values, *, tolerance: float = 0.0):
    for a, b in zip(values, values[1:]):
        assert b <= a * (1 + tolerance), f"expected monotone sequence, got {values}"
