"""Extension bench: end-to-end network estimates (the paper's future work).

Prices all 52 quantized ResNet-50 convolutions as full pipelines on both
simulated platforms, fused and unfused, across bit widths — the network-
level composition of the paper's per-layer results.
"""

from conftest import OUT_DIR

from repro.models.resnet50 import resnet50_all_conv_layers
from repro.runtime.network import estimate_model_cycles


def test_end_to_end_resnet50(benchmark):
    layers = resnet50_all_conv_layers()[1:]  # stem stays fp32

    def run():
        out = {}
        for backend, bits_list in (("arm", (2, 4, 8)), ("gpu", (4, 8))):
            for bits in bits_list:
                for fused in (False, True):
                    rep = estimate_model_cycles(layers, bits, backend,
                                                fused=fused)
                    out[(backend, bits, fused)] = rep
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["backend  bits  fused  total ms  kernels"]
    for (backend, bits, fused), rep in sorted(reports.items()):
        lines.append(f"{backend:>7}  {bits:>4}  {str(fused):>5}  "
                     f"{rep.milliseconds():8.2f}  {rep.kernel_launches:>7}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_end_to_end.txt").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))

    # network level, the per-layer structure must survive composition:
    arm = {b: reports[("arm", b, True)].total_cycles for b in (2, 4, 8)}
    assert arm[2] < arm[4] < arm[8]
    gpu = {b: reports[("gpu", b, True)].total_cycles for b in (4, 8)}
    assert gpu[4] < gpu[8]
    # fusion always helps, and much more on the launch-sensitive GPU
    for backend, bits_list in (("arm", (2, 4, 8)), ("gpu", (4, 8))):
        for bits in bits_list:
            fused = reports[(backend, bits, True)].total_cycles
            unfused = reports[(backend, bits, False)].total_cycles
            assert fused < unfused
    gpu_gain = (reports[("gpu", 8, False)].total_cycles
                / reports[("gpu", 8, True)].total_cycles)
    arm_gain = (reports[("arm", 8, False)].total_cycles
                / reports[("arm", 8, True)].total_cycles)
    assert gpu_gain > arm_gain
