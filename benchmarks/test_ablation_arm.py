"""ARM ablations for the design choices DESIGN.md calls out.

* {LD1, LD4R} / SMLAL interleaving (Alg. 1 lines 3-8): prefetch hides load
  latency, so turning it off must cost cycles at every bit width.
* Scheme choice (Fig. 3): MLA must beat SMLAL below 4-bit and be
  unavailable above; 8-bit must be the scheme's worst case.
* ncnn's hypothetical winograd dispatch (ablation of the baseline choice).
"""

import pytest

from conftest import OUT_DIR

from repro.arm.conv_runner import ncnn_conv_cycles, time_arm_conv
from repro.models import resnet50_conv_layers

LAYERS = [s for s in resnet50_conv_layers() if s.name in
          ("conv1", "conv2", "conv6", "conv16")]


def test_interleave_ablation(benchmark):
    def run():
        rows = []
        for spec in LAYERS:
            for bits in (2, 4, 8):
                on = time_arm_conv(spec, bits, interleave=True).total_cycles
                off = time_arm_conv(spec, bits, interleave=False).total_cycles
                rows.append((spec.name, bits, off / on))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["layer  bits  interleave-off / interleave-on"]
    for name, bits, ratio in rows:
        lines.append(f"{name:>6}  {bits:>4}  {ratio:.3f}x")
        assert ratio > 1.0, f"interleaving must help ({name}, {bits}-bit)"
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ablation_arm_interleave.txt").write_text("\n".join(lines))
    print("\n" + "\n".join(lines))


def test_scheme_crossover():
    """MLA is the right scheme for 2~3-bit: forcing those bit widths
    through the SMLAL scheme must be slower."""
    for spec in LAYERS:
        mla = time_arm_conv(spec, 3, scheme="mla").total_cycles
        smlal = time_arm_conv(spec, 4, scheme="smlal").total_cycles
        # 3-bit MLA at least matches the *4-bit* SMLAL time
        assert mla <= smlal * 1.05


def test_ncnn_winograd_baseline_ablation():
    """Had the baseline dispatched 3x3 layers to winograd, it would have
    been faster — quantifying the baseline-choice sensitivity."""
    eligible = [s for s in resnet50_conv_layers() if s.is_winograd_eligible()]
    for spec in eligible[:2]:
        plain = ncnn_conv_cycles(spec, allow_winograd=False).total_cycles
        wino = ncnn_conv_cycles(spec, allow_winograd=True).total_cycles
        assert wino < plain
