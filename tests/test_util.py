"""Shared helper functions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import ceil_div, chunks, geomean, is_power_of_two, round_up, wrap_signed


def test_ceil_div():
    assert ceil_div(0, 4) == 0
    assert ceil_div(1, 4) == 1
    assert ceil_div(4, 4) == 1
    assert ceil_div(5, 4) == 2


def test_ceil_div_invalid():
    with pytest.raises(ValueError):
        ceil_div(1, 0)
    with pytest.raises(ValueError):
        ceil_div(-1, 2)


@given(st.integers(0, 10**6), st.integers(1, 10**4))
def test_ceil_div_property(a, b):
    q = ceil_div(a, b)
    assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)


def test_round_up():
    assert round_up(0, 16) == 0
    assert round_up(1, 16) == 16
    assert round_up(16, 16) == 16
    assert round_up(17, 16) == 32


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(64)
    assert not is_power_of_two(0)
    assert not is_power_of_two(12)


def test_chunks():
    assert [list(c) for c in chunks([1, 2, 3, 4, 5], 2)] == [[1, 2], [3, 4], [5]]
    with pytest.raises(ValueError):
        list(chunks([1], 0))


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


@given(st.lists(st.integers(-(10**12), 10**12), min_size=1, max_size=50),
       st.integers(2, 32))
def test_wrap_signed_matches_modular(values, bits):
    x = np.array(values, dtype=np.int64)
    w = wrap_signed(x, bits)
    half = 1 << (bits - 1)
    assert np.all(w >= -half) and np.all(w < half)
    assert np.all((w - x) % (1 << bits) == 0)


def test_wrap_signed_int8_cases():
    x = np.array([127, 128, 255, 256, -129], dtype=np.int64)
    assert wrap_signed(x, 8).tolist() == [127, -128, -1, 0, 127]
