"""Runtime graph, fusion passes and executors."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.runtime import (
    Graph,
    Op,
    apply_all_fusions,
    conv_pipeline,
    estimate_graph_cycles,
    execute_graph,
    fuse_conv_dequant,
    fuse_conv_relu,
)
from repro.types import ConvSpec

SPEC = ConvSpec("c1", in_channels=4, out_channels=6, height=8, width=8,
                kernel=(3, 3), padding=(1, 1))


def _weights(rng):
    return {SPEC.name: rng.normal(size=SPEC.weight_shape())}


def test_pipeline_structure():
    g = conv_pipeline(SPEC, 8)
    assert [op.kind for op in g] == [
        "quantize", "conv", "dequantize", "quantize", "relu", "dequantize"
    ]
    g2 = conv_pipeline(SPEC, 8, with_relu=False)
    assert [op.kind for op in g2] == ["quantize", "conv", "dequantize"]


def test_op_validation():
    with pytest.raises(ReproError):
        Op("normalize")
    with pytest.raises(ReproError):
        Op("conv", {"bits": 8})  # missing spec


def test_conv_relu_fusion_rewrite():
    g = conv_pipeline(SPEC, 8)
    fused, report = fuse_conv_relu(g)
    assert report.conv_relu_fused == 1
    assert report.ops_eliminated == 3
    kinds = [op.kind for op in fused]
    assert kinds == ["quantize", "conv", "dequantize"]
    conv = fused.convs()[0]
    assert conv.attrs["epilogue"] == "requant_relu"


def test_conv_dequant_fusion_rewrite():
    g = conv_pipeline(SPEC, 8, with_relu=False)
    fused, report = fuse_conv_dequant(g)
    assert report.conv_dequant_fused == 1
    assert [op.kind for op in fused] == ["quantize", "conv"]
    assert fused.convs()[0].attrs["epilogue"] == "dequant"


def test_all_fusions_order():
    g = conv_pipeline(SPEC, 8)
    fused, report = apply_all_fusions(g)
    # relu fusion wins the conv; the trailing dequantize then fuses too
    assert report.conv_relu_fused == 1
    assert len(fused) == 3
    assert fused.kernel_launches < g.kernel_launches


def test_relu_fusion_is_numerically_exact():
    rng = np.random.default_rng(0)
    x = rng.normal(size=SPEC.input_shape())
    w = _weights(rng)
    g = conv_pipeline(SPEC, 8)
    fused, _ = fuse_conv_relu(g)
    assert np.array_equal(execute_graph(g, x, w), execute_graph(fused, x, w))


def test_dequant_fusion_at_least_as_precise():
    """Fused conv+dequant skips the int8 intermediate: its output equals the
    exact scaled accumulator, so it differs from the unfused path by at most
    the requantization rounding/clipping error."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=SPEC.input_shape()) * 0.1
    w = _weights(rng)
    g = conv_pipeline(SPEC, 8, with_relu=False)
    fused, _ = fuse_conv_dequant(g)
    out_unfused = execute_graph(g, x, w)
    out_fused = execute_graph(fused, x, w)
    # out_scale used by the unfused requant stage:
    conv_op = g.convs()[0]
    out_scale = conv_op.attrs["out_scale"]
    inner = np.abs(out_fused) <= 127 * out_scale  # not clipped
    assert np.all(np.abs(out_fused - out_unfused)[inner] <= out_scale / 2 + 1e-9)


def test_execute_various_bits():
    rng = np.random.default_rng(2)
    x = rng.normal(size=SPEC.input_shape())
    w = _weights(rng)
    for bits in (2, 4, 8):
        g, _ = apply_all_fusions(conv_pipeline(SPEC, bits))
        out = execute_graph(g, x, w)
        assert out.shape == SPEC.output_shape()
        assert np.all(out >= 0)  # fused relu clamped


def test_execute_graph_errors():
    bad = Graph((Op("conv", {"spec": SPEC, "bits": 8}),))
    with pytest.raises(ReproError):
        execute_graph(bad, np.zeros(SPEC.input_shape()), _weights(np.random.default_rng(0)))


def test_estimate_cycles_both_backends():
    g = conv_pipeline(SPEC, 8)
    fused, _ = apply_all_fusions(g)
    for backend in ("gpu", "arm"):
        full = estimate_graph_cycles(g, backend)
        less = estimate_graph_cycles(fused, backend)
        assert less.total_cycles < full.total_cycles
        assert less.kernel_launches < full.kernel_launches
    with pytest.raises(ReproError):
        estimate_graph_cycles(g, "tpu")
