"""The flight recorder: trace contexts, the bounded ring, propagation.

The contract under test: contexts derive parent-linked children and
propagate across ``ParallelRunner`` workers (threads *and* processes);
the ring is bounded, thread-safe and exports a Perfetto-loadable Chrome
trace; every recorded span tree resolves — no orphan parents.
"""

import json
import threading

import pytest

from repro.obs import flight, trace


# ---------------------------------------------------------------------------
# Trace contexts
# ---------------------------------------------------------------------------


def test_new_trace_and_child_linkage():
    root = flight.new_trace()
    assert root.parent_id is None
    child = root.child()
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id


def test_derive_without_parent_starts_fresh_trace():
    a = flight.derive(None)
    b = flight.derive(None)
    assert a.parent_id is None and b.parent_id is None
    assert a.trace_id != b.trace_id


def test_context_manager_activates_and_restores():
    assert flight.current_context() is None
    ctx = flight.new_trace()
    with flight.context(ctx):
        assert flight.current_context() is ctx
        inner = flight.derive(flight.current_context())
        assert inner.trace_id == ctx.trace_id
    assert flight.current_context() is None


def test_context_none_is_a_no_op():
    outer = flight.new_trace()
    with flight.context(outer):
        with flight.context(None):
            assert flight.current_context() is outer


def test_context_is_picklable():
    import pickle

    ctx = flight.new_trace().child()
    assert pickle.loads(pickle.dumps(ctx)) == ctx


def test_ids_are_unique_across_threads():
    ids, lock = set(), threading.Lock()

    def mint():
        local = [flight.new_trace().span_id for _ in range(200)]
        with lock:
            ids.update(local)

    threads = [threading.Thread(target=mint) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(ids) == 4 * 200


# ---------------------------------------------------------------------------
# The ring buffer
# ---------------------------------------------------------------------------


def _mk_event(name="e", kind="span", ts=0.0, dur=1.0, ctx=None):
    ctx = ctx or flight.new_trace()
    return flight.FlightEvent(
        kind=kind, name=name, cat="test", ts_us=ts, dur_us=dur,
        tid=threading.get_ident(), trace_id=ctx.trace_id,
        span_id=ctx.span_id, parent_id=ctx.parent_id)


def test_ring_bounds_and_drop_accounting():
    rec = flight.FlightRecorder(capacity=4)
    for i in range(10):
        rec.record(_mk_event(name=f"e{i}"))
    assert len(rec) == 4
    assert rec.total_recorded == 10
    assert rec.dropped == 6
    assert [e.name for e in rec.events()] == ["e6", "e7", "e8", "e9"]


def test_ring_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        flight.FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        flight.FlightRecorder(capacity=8).resize(-1)


def test_resize_keeps_newest():
    rec = flight.FlightRecorder(capacity=8)
    for i in range(6):
        rec.record(_mk_event(name=f"e{i}"))
    rec.resize(2)
    assert [e.name for e in rec.events()] == ["e4", "e5"]


def test_events_last_s_window():
    rec = flight.FlightRecorder(capacity=16)
    now = flight.monotonic_us()
    rec.record(_mk_event(name="old", ts=now - 60e6, dur=1.0))
    rec.record(_mk_event(name="new", ts=now - 0.01e6, dur=1.0))
    names = [e.name for e in rec.events(last_s=1.0)]
    assert names == ["new"]
    assert len(rec.events()) == 2  # the full ring is untouched


def test_concurrent_records_are_not_lost():
    rec = flight.FlightRecorder(capacity=10_000)

    def worker():
        for _ in range(500):
            rec.record(_mk_event())

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert rec.total_recorded == 2000
    assert len(rec) == 2000


# ---------------------------------------------------------------------------
# Enablement and capture
# ---------------------------------------------------------------------------


def test_enabled_by_default_and_suspended_restores():
    assert flight.enabled()
    with flight.suspended():
        assert not flight.enabled()
        flight.instant("ignored")  # must not raise, must not record
    assert flight.enabled()


def test_capture_clears_ring_and_restores_state():
    with flight.capture() as rec:
        assert flight.enabled()
        assert len(rec) == 0
        flight.instant("inside")
        assert len(rec) == 1
    assert flight.enabled()  # default state restored


def test_record_span_noop_while_disabled():
    with flight.capture() as rec:
        with flight.suspended():
            flight.record_span("s", "test", {}, 0.0, 1.0, flight.new_trace())
        assert len(rec) == 0


# ---------------------------------------------------------------------------
# Span capture via the trace layer
# ---------------------------------------------------------------------------


def test_nested_spans_form_a_resolvable_tree():
    with flight.capture() as rec:
        with trace.span("root", cat="test"):
            with trace.span("child", cat="test"):
                pass
            with trace.span("sibling", cat="test"):
                pass
    spans = flight.span_events(rec.events())
    by_name = {s.name: s for s in spans}
    assert set(by_name) == {"root", "child", "sibling"}
    root = by_name["root"]
    assert root.parent_id is None
    for name in ("child", "sibling"):
        assert by_name[name].trace_id == root.trace_id
        assert by_name[name].parent_id == root.span_id
    # children land before their parent (spans record at exit) and the
    # validator still resolves every link
    assert spans.index(by_name["child"]) < spans.index(root)
    assert flight.unresolved_parents(rec.events()) == []
    assert flight.trace_ids(rec.events()) == {root.trace_id}


def test_instants_attach_to_the_active_span():
    with flight.capture() as rec:
        with trace.span("op", cat="test"):
            flight.instant("marker", cat="test", k=1)
    events = rec.events()
    instant = next(e for e in events if e.kind == "instant")
    op = next(e for e in events if e.kind == "span")
    assert instant.trace_id == op.trace_id
    assert instant.parent_id == op.span_id
    assert instant.args == {"k": 1}
    assert flight.unresolved_parents(events) == []


def test_unresolved_parents_flags_evicted_parent():
    ctx = flight.new_trace()
    orphan = ctx.child()
    rec = flight.FlightRecorder(capacity=4)
    rec.record(_mk_event(name="child", ctx=orphan))
    assert [e.name for e in flight.unresolved_parents(rec.events())] == [
        "child"]


# ---------------------------------------------------------------------------
# Worker propagation (the tentpole claim)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_parallel_map_propagates_context(mode, monkeypatch):
    from repro.perf.parallel import ParallelRunner

    monkeypatch.setenv("REPRO_EXECUTOR", mode)
    with flight.capture() as rec:
        with trace.span("sweep", cat="test"):
            out = ParallelRunner(2).map(_square, list(range(8)))
    assert out == [i * i for i in range(8)]
    events = rec.events()
    spans = flight.span_events(events)
    sweep = next(s for s in spans if s.name == "sweep")
    # one coherent trace: every span shares the sweep's trace id and
    # resolves to a recorded parent
    assert flight.trace_ids(events) == {sweep.trace_id}
    assert flight.unresolved_parents(events) == []
    if mode == "thread":
        chunks = [s for s in spans if s.name == "parallel.chunk"]
        assert chunks and all(s.parent_id for s in chunks)


def _square(x):
    return x * x


# ---------------------------------------------------------------------------
# Chrome export
# ---------------------------------------------------------------------------


def test_chrome_trace_schema_and_write(tmp_path):
    with flight.capture() as rec:
        with trace.span("outer", cat="test", bits=4, obj=object()):
            flight.instant("ping", cat="test")
    doc = rec.chrome_trace(process_name="unit-test")
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["trace_epoch_wall_us"] > 0
    events = doc["traceEvents"]
    assert {e["ph"] for e in events} <= {"M", "X", "i"}
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name"
               and e["args"]["name"] == "unit-test" for e in meta)
    span_ev = next(e for e in events if e["ph"] == "X")
    assert span_ev["args"]["bits"] == 4
    assert isinstance(span_ev["args"]["obj"], str)  # non-JSON args stringify
    assert span_ev["args"]["trace_id"] and span_ev["args"]["span_id"]
    inst = next(e for e in events if e["ph"] == "i")
    assert inst["s"] == "t"
    assert inst["args"]["parent_id"] == span_ev["args"]["span_id"]

    out = rec.write(tmp_path / "deep" / "flight.json")
    assert out.is_file()
    assert json.loads(out.read_text())["traceEvents"]


def test_fault_injection_emits_instant():
    from repro.resilience import faults

    with flight.capture() as rec:
        with faults.fault_plan("unit.site:raise:1.0:1", seed=7):
            with pytest.raises(faults.InjectedFault):
                faults.inject("unit.site", key="k0")
    instants = [e for e in rec.events() if e.kind == "instant"]
    assert [e.name for e in instants] == ["fault_injected"]
    assert instants[0].cat == "fault"
    assert instants[0].args["site"] == "unit.site"
    assert instants[0].args["kind"] == "raise"
