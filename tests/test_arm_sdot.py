"""ARMv8.2 SDOT extension kernel (the what-if beyond the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arm.conv_runner import time_arm_conv
from repro.arm.kernels import (
    generate_mla_kernel,
    generate_ncnn_kernel,
    generate_sdot_kernel,
    generate_smlal_kernel,
)
from repro.arm.kernels.sdot_scheme import execute_sdot_tile, pack_a_sdot, pack_b_sdot
from repro.errors import ShapeError
from repro.types import ConvSpec


@given(st.integers(0, 2**32 - 1), st.integers(1, 140))
@settings(max_examples=25, deadline=None)
def test_sdot_kernel_exact(seed, k):
    rng = np.random.default_rng(seed)
    a = rng.integers(-128, 128, (16, k)).astype(np.int8)
    b = rng.integers(-128, 128, (k, 4)).astype(np.int8)
    kern = generate_sdot_kernel(k)
    tile = execute_sdot_tile(kern, a, b, check_overflow=True)
    assert np.array_equal(tile, a.astype(np.int64) @ b.astype(np.int64))


def test_sdot_no_interleave_exact():
    rng = np.random.default_rng(1)
    a = rng.integers(-128, 128, (16, 37)).astype(np.int8)
    b = rng.integers(-128, 128, (37, 4)).astype(np.int8)
    kern = generate_sdot_kernel(37, interleave=False)
    tile = execute_sdot_tile(kern, a, b, check_overflow=True)
    assert np.array_equal(tile, a.astype(np.int64) @ b.astype(np.int64))


def test_sdot_never_needs_drains():
    """Direct int32 accumulation: no SADDW, no MOV spill dance."""
    kern = generate_sdot_kernel(256)
    ops = kern.summary()
    assert "SADDW_4S" not in ops
    assert "MOV_V_TO_X" not in ops
    assert ops["SDOT_4S_LANE"] == 16 * 64  # 16 per k-group


def test_sdot_throughput_matches_mla():
    """SDOT reaches MLA's 16 MACs/instr at 8-bit — the reason the paper's
    low-bit advantage exists only on pre-v8.2 cores (Sec. 2.3)."""
    k = 256

    def macs_per_cycle(kern):
        return kern.m_r * kern.n_r * k / kern.cycles().cycles

    sdot = macs_per_cycle(generate_sdot_kernel(k))
    mla = macs_per_cycle(generate_mla_kernel(2, k))
    smlal = macs_per_cycle(generate_smlal_kernel(8, k))
    ncnn = macs_per_cycle(generate_ncnn_kernel(k))
    assert sdot > 2.0 * smlal  # 8-bit on v8.2 crushes the v8.1 8-bit scheme
    assert sdot > ncnn * 3.0
    # ~the same 16 lanes/instr peak; MLA pays drains, SDOT does not
    assert sdot >= mla
    assert sdot == pytest.approx(mla, rel=0.4)


def test_sdot_interleave_helps():
    fast = generate_sdot_kernel(128, interleave=True).cycles().cycles
    slow = generate_sdot_kernel(128, interleave=False).cycles().cycles
    assert fast < slow


def test_sdot_layer_beats_all_v81_schemes():
    """On v8.2, plain 8-bit SDOT outruns even the 2-bit MLA scheme at the
    layer level — quantifying why the paper targets v8.1."""
    spec = ConvSpec("mid", in_channels=128, out_channels=128, height=28,
                    width=28, kernel=(3, 3), padding=(1, 1))
    sdot = time_arm_conv(spec, 8, scheme="sdot").total_cycles
    for bits in (2, 4, 8):
        v81 = time_arm_conv(spec, bits).total_cycles
        assert sdot < v81


def test_pack_layout_validation():
    with pytest.raises(ShapeError):
        pack_a_sdot(np.zeros(4, dtype=np.int8))
    with pytest.raises(ShapeError):
        pack_b_sdot(np.zeros(4, dtype=np.int8))
    with pytest.raises(ShapeError):
        generate_sdot_kernel(0)


def test_pack_zero_padding():
    a = np.ones((16, 5), dtype=np.int8)
    packed = pack_a_sdot(a)
    assert packed.size == 16 * 8  # k padded to 2 groups
    b = np.ones((5, 4), dtype=np.int8)
    packed_b = pack_b_sdot(b)
    assert packed_b.size == 4 * 8
