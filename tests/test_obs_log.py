"""Env-gated structured logging (``REPRO_LOG``)."""

import logging

from repro.obs import log


def test_events_render_as_key_value_lines(caplog):
    with caplog.at_level(logging.WARNING, logger="repro"):
        log.warning("cache_corrupt", namespace="ns", reason="truncated")
    msgs = [r.getMessage() for r in caplog.records]
    assert "cache_corrupt namespace=ns reason=truncated" in msgs


def test_debug_suppressed_without_env(caplog, monkeypatch):
    monkeypatch.delenv(log.LOG_ENV, raising=False)
    log.reconfigure()
    with caplog.at_level(logging.DEBUG, logger="repro"):
        # caplog.at_level forces the logger level down, so emulate the
        # default threshold check the library performs
        assert not log.get_logger().isEnabledFor(logging.DEBUG) or True
    caplog.clear()
    log.debug("autotune_cache_stale", digest="abc")
    assert not [r for r in caplog.records if r.name.startswith("repro")]


def test_env_enables_stderr_handler_and_level(monkeypatch, capsys):
    monkeypatch.setenv(log.LOG_ENV, "debug")
    log.reconfigure()
    try:
        assert log.get_logger().isEnabledFor(logging.DEBUG)
        log.debug("fallback_taken", path="/tmp/x")
        err = capsys.readouterr().err
        assert "fallback_taken path=/tmp/x" in err
        assert "DEBUG" in err and "repro" in err
    finally:
        monkeypatch.delenv(log.LOG_ENV)
        log.reconfigure()
    assert not log.get_logger().isEnabledFor(logging.DEBUG)


def test_logger_names_join_the_repro_tree():
    assert log.get_logger("perf.cache").name == "repro.perf.cache"
    assert log.get_logger("repro.gpu").name == "repro.gpu"
    assert log.get_logger().name == "repro"
