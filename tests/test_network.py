"""End-to-end network runtime: building, fusing, executing, pricing."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.runtime import (
    build_chain,
    build_network,
    calibrate_network,
    estimate_network_cycles,
    execute_network,
    random_weights,
)
from repro.types import ConvSpec

PLAN = [(8, 3, 1), (16, 3, 2), (16, 1, 1)]


def tiny(bits=8):
    return build_chain("tiny", 3, PLAN, height=16, width=16, bits=bits)


def test_chain_shapes_connect():
    net = tiny()
    specs = net.specs
    assert [s.out_channels for s in specs] == [8, 16, 16]
    assert specs[1].out_height == 8  # stride-2 halves
    assert net.total_macs > 0


def test_disconnected_network_rejected():
    a = ConvSpec("a", in_channels=3, out_channels=8, height=8, width=8,
                 kernel=(3, 3), padding=(1, 1))
    b = ConvSpec("b", in_channels=4, out_channels=8, height=8, width=8,
                 kernel=(1, 1))
    with pytest.raises(ShapeError):
        build_network("bad", [a, b], 8)
    c = ConvSpec("c", in_channels=8, out_channels=8, height=4, width=4,
                 kernel=(1, 1))
    with pytest.raises(ShapeError):
        build_network("bad-spatial", [a, c], 8)


def test_execute_end_to_end():
    rng = np.random.default_rng(0)
    net = tiny()
    w = random_weights(net, rng)
    x = rng.normal(size=(1, 3, 16, 16))
    out = execute_network(net, x, w)
    assert out.shape == (1, 16, 8, 8)
    assert np.all(out >= 0)  # relu tail


def test_fusion_preserves_results_end_to_end():
    rng = np.random.default_rng(1)
    net = tiny()
    w = random_weights(net, rng)
    x = rng.normal(size=(1, 3, 16, 16))
    fused, report = net.fuse()
    assert report.conv_relu_fused == len(PLAN)
    assert np.array_equal(execute_network(net, x, w),
                          execute_network(fused, x, w))


def test_fusion_reduces_cost_on_both_backends():
    net = tiny()
    fused, _ = net.fuse()
    for backend in ("arm", "gpu"):
        before = estimate_network_cycles(net, backend)
        after = estimate_network_cycles(fused, backend)
        assert after.total_cycles < before.total_cycles
        assert after.kernel_launches == before.kernel_launches / 2
        assert before.milliseconds() > 0


def test_calibration_improves_low_bit_fidelity():
    rng = np.random.default_rng(2)
    net4 = tiny(bits=4)
    w = random_weights(net4, rng)
    x = rng.normal(size=(1, 3, 16, 16))
    from repro.analysis import float_reference_network

    ref = float_reference_network(net4, x, w)
    raw = execute_network(net4, x, w)
    cal = execute_network(calibrate_network(net4, x, w), x, w)
    err_raw = np.sqrt(np.mean((raw - ref) ** 2))
    err_cal = np.sqrt(np.mean((cal - ref) ** 2))
    assert err_cal < err_raw


def test_calibrated_network_keeps_structure():
    rng = np.random.default_rng(3)
    net = tiny()
    w = random_weights(net, rng)
    x = rng.normal(size=(1, 3, 16, 16))
    cal = calibrate_network(net, x, w)
    assert len(cal.stages) == len(net.stages)
    assert [s.spec.name for s in cal.stages] == [s.spec.name for s in net.stages]
    # scales are per-stage and positive
    for stage in cal.stages:
        conv = stage.graph.convs()[0]
        assert conv.attrs["out_scale"] > 0
