"""The figure-regeneration API (shapes/labels; full assertions live in
benchmarks/)."""

import pytest

from repro.figures import (
    ARM_BITS,
    FigureData,
    fig7_arm_speedups,
    fig10_gpu_speedups,
    fig13_space_overhead,
    tab1_configurations,
)


@pytest.fixture(scope="module")
def fig7_dense():
    # DenseNet's 16-layer table keeps this module quick
    return fig7_arm_speedups("densenet121")


def test_figuredata_structure(fig7_dense):
    data = fig7_dense
    assert len(data.labels) == 16
    assert len(data.series) == len(ARM_BITS)
    for s in data.series:
        assert len(s.values) == len(data.labels)
    assert len(data.baseline_times) == len(data.labels)
    assert all(t > 0 for t in data.baseline_times)


def test_series_lookup(fig7_dense):
    s = fig7_dense.series_by_name("2-bit")
    assert s.name == "2-bit"
    with pytest.raises(KeyError):
        fig7_dense.series_by_name("9-bit")


def test_fig10_series_names():
    data = fig10_gpu_speedups("densenet121")
    names = {s.name for s in data.series}
    assert names == {"ours 8-bit", "ours 4-bit", "TensorRT 8-bit"}
    assert data.figure.startswith("fig10")


def test_fig13_label_axis_matches_model():
    data = fig13_space_overhead("resnet50")
    assert len(data.labels) == 19
    assert data.labels[0] == "conv1"


def test_tab1_shape():
    t = tab1_configurations()
    assert t["ARM CPU"]["clock_hz"] == pytest.approx(1.2e9)
    assert t["NVIDIA GPU"]["sm_count"] == 68
