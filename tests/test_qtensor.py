"""QTensor container invariants."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import QTensor
from repro.quant.qtensor import storage_dtype


def test_storage_dtype():
    assert storage_dtype(2) == np.int8
    assert storage_dtype(8) == np.int8
    assert storage_dtype(12) == np.int16
    assert storage_dtype(20) == np.int32


def test_range_enforced():
    QTensor(data=np.array([-8, 7], dtype=np.int8), scale=np.float64(1.0), bits=4)
    with pytest.raises(QuantizationError):
        QTensor(data=np.array([8], dtype=np.int8), scale=np.float64(1.0), bits=4)


def test_adjusted_range_enforced_for_8bit():
    # scheme range for 8-bit is [-127, 127]; -128 is rejected
    with pytest.raises(QuantizationError):
        QTensor(data=np.array([-128], dtype=np.int8), scale=np.float64(1.0), bits=8)


def test_float_data_rejected():
    with pytest.raises(QuantizationError):
        QTensor(data=np.array([1.0]), scale=np.float64(1.0), bits=8)


def test_scale_validation():
    with pytest.raises(QuantizationError):
        QTensor(data=np.array([1], dtype=np.int8), scale=np.float64(-1.0), bits=8)
    with pytest.raises(QuantizationError):
        QTensor(data=np.zeros((2, 3), dtype=np.int8),
                scale=np.array([1.0, 1.0]), bits=8)  # missing channel_axis
    with pytest.raises(QuantizationError):
        QTensor(data=np.zeros((2, 3), dtype=np.int8),
                scale=np.array([1.0, 1.0, 1.0]), bits=8, channel_axis=0)


def test_dequantize_per_tensor():
    qt = QTensor(data=np.array([2, -4], dtype=np.int8), scale=np.float64(0.5), bits=8)
    assert qt.dequantize().tolist() == [1.0, -2.0]


def test_dequantize_per_channel():
    qt = QTensor(
        data=np.array([[1, 1], [1, 1]], dtype=np.int8),
        scale=np.array([1.0, 2.0]),
        bits=8,
        channel_axis=0,
    )
    assert qt.dequantize().tolist() == [[1.0, 1.0], [2.0, 2.0]]


def test_with_data_keeps_metadata():
    qt = QTensor(data=np.array([1], dtype=np.int8), scale=np.float64(0.5), bits=4)
    qt2 = qt.with_data(np.array([5], dtype=np.int8))
    assert qt2.bits == 4 and float(qt2.scale) == 0.5
    with pytest.raises(QuantizationError):
        qt.with_data(np.array([99], dtype=np.int8))
