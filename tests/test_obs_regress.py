"""The perf-regression sentinel over the bench ledger.

The acceptance contract: ``run_regress`` exits 0 when back-to-back
entries are identical, non-zero when the deterministic cycle block
drifts, and treats wall-clock noise through the median threshold rather
than bit-wise.
"""

import json

import pytest

from repro.obs.history import BenchLedger
from repro.obs.regress import compare_entries, run_regress


def _entry(run_id, *, cycles=1000, wall=1.0, fingerprint="fp0",
           series=(1.0, 2.0, 3.0)):
    return {
        "schema": 3,
        "run_id": run_id,
        "timestamp": run_id,
        "git_sha": "deadbeef",
        "fingerprint": fingerprint,
        "kind": "smoke",
        "model": "resnet50",
        "batch": 1,
        "jobs": 2,
        "backends": ["gpu"],
        "model_cycles": {"gpu_8bit": cycles, "gpu_4bit": cycles // 2},
        "figures": {"fig10": {"ours 8-bit": list(series)}},
        "wall_seconds": {"gpu_cold": wall, "gpu_warm": wall / 10},
        "metrics": {},
    }


def _write(tmp_path, entries):
    ledger = BenchLedger(tmp_path)
    for e in entries:
        ledger.append(e)
    return ledger


def test_identical_runs_exit_zero(tmp_path, capsys):
    _write(tmp_path, [_entry("r1"), _entry("r2")])
    assert run_regress(history_dir=tmp_path, echo=lambda s: None) == 0


def test_perturbed_cycles_exit_nonzero(tmp_path):
    _write(tmp_path, [_entry("r1"), _entry("r2", cycles=1001)])
    lines = []
    assert run_regress(history_dir=tmp_path, echo=lines.append) == 1
    text = "\n".join(lines)
    assert "MISMATCH" in text and "REGRESSION" in text
    assert "gpu_8bit" in text  # names the first diverging key


def test_perturbed_series_exit_nonzero(tmp_path):
    _write(tmp_path, [_entry("r1"), _entry("r2", series=(1.0, 2.0, 3.5))])
    assert run_regress(history_dir=tmp_path, echo=lambda s: None) == 1


def test_wall_overrun_fails_and_no_wall_demotes(tmp_path):
    entries = [_entry(f"r{i}") for i in range(4)]
    entries.append(_entry("slow", wall=10.0))  # 10x the median
    _write(tmp_path, entries)
    assert run_regress(history_dir=tmp_path, echo=lambda s: None) == 1
    lines = []
    assert run_regress(history_dir=tmp_path, check_wall=False,
                       echo=lines.append) == 0
    assert any("wall gpu_cold" in ln and "WARN" in ln for ln in lines)


def test_wall_threshold_widens_with_observed_spread(tmp_path):
    """A noisy phase earns a wider band: +67% over the median passes when
    the prior runs themselves swing that much (IQR spread 75% > the flat
    50% tolerance), though it would fail the flat band."""
    walls = (1.0, 2.0, 1.1, 2.1, 1.2)
    entries = [_entry(f"r{i}", wall=w) for i, w in enumerate(walls)]
    entries.append(_entry("cand", wall=2.0))
    _write(tmp_path, entries)
    assert run_regress(history_dir=tmp_path, echo=lambda s: None) == 0


def test_short_ledger_is_unusable(tmp_path):
    _write(tmp_path, [_entry("only")])
    assert run_regress(history_dir=tmp_path, echo=lambda s: None) == 2


def test_no_comparable_baseline_is_unusable(tmp_path):
    other = _entry("r1")
    other["model"] = "densenet121"
    _write(tmp_path, [other, _entry("r2")])
    assert run_regress(history_dir=tmp_path, echo=lambda s: None) == 2


def test_baseline_selector_by_run_id_and_sha(tmp_path):
    a = _entry("2026-01-01T00:00:00-aaa")
    a["git_sha"] = "aaa111"
    b = _entry("2026-01-02T00:00:00-bbb", cycles=2000)
    b["git_sha"] = "bbb222"
    cand = _entry("2026-01-03T00:00:00-ccc", cycles=2000)
    _write(tmp_path, [a, b, cand])
    # vs b (same cycles): clean; vs a (different cycles): regression
    assert run_regress(history_dir=tmp_path, baseline="bbb222",
                       echo=lambda s: None) == 0
    assert run_regress(history_dir=tmp_path, baseline="2026-01-01",
                       echo=lambda s: None) == 1
    assert run_regress(history_dir=tmp_path, baseline="zzz",
                       echo=lambda s: None) == 2


def test_default_baseline_prefers_same_fingerprint(tmp_path):
    """Cross-machine entries must not become the comparison point when a
    same-fingerprint run exists."""
    other_machine = _entry("r1", cycles=9999, fingerprint="fpX")
    same_machine = _entry("r2")
    cand = _entry("r3")
    _write(tmp_path, [other_machine, same_machine, cand])
    assert run_regress(history_dir=tmp_path, echo=lambda s: None) == 0


def test_fingerprint_change_is_warning_not_regression():
    base = _entry("r1")
    cand = _entry("r2", fingerprint="fp-new")
    report = compare_entries(base, cand)
    prov = [v for v in report.verdicts if v.kind == "provenance"]
    assert len(prov) == 1 and not prov[0].ok and not prov[0].regression
    assert not report.regressed


def test_corrupt_ledger_lines_are_skipped(tmp_path):
    ledger = _write(tmp_path, [_entry("r1")])
    with open(ledger.path, "a", encoding="utf-8") as fh:
        fh.write("{not json\n")
        fh.write(json.dumps(_entry("r2")) + "\n")
    assert len(ledger.entries()) == 2
    assert run_regress(history_dir=tmp_path, echo=lambda s: None) == 0
