"""Differential profiling through the CLI: ``repro diff`` and
``repro regress --attribute/--json``.

These drive the same paths CI gates on — selector resolution against a
real on-disk ledger, collapsed-stack pairs with ``--flamegraph``, JSON
purity on stdout, and the exit-code contract (0 clean / 1 regression /
2 unusable input) with attribution riding along on failure.
"""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.cli import main
from repro.obs import metrics as obs_metrics
from repro.obs import sampler as obs_sampler
from repro.obs.history import BenchLedger


@pytest.fixture(autouse=True)
def _fresh_metrics():
    obs_metrics.reset()
    yield
    obs_metrics.reset()


def _entry(run_id, *, cold=0.030, sha=None, counters=None):
    return {
        "schema": 3, "run_id": run_id, "git_sha": sha or f"{run_id}00cafe",
        "fingerprint": "fp0", "kind": "smoke", "model": "resnet50",
        "batch": 1, "jobs": 1, "backends": ["gpu"],
        "model_cycles": {"gpu_4bit": 1000},
        "figures": {"fig10": {"ours 8-bit": [1.0, 2.0]}},
        "wall_seconds": {"gpu_serial": 0.100, "gpu_cold": cold,
                         "gpu_warm": 0.001},
        "metrics": {"schema": 1, "counters": counters or {},
                    "gauges": {}, "histograms": {}},
    }


def _ledger(tmp_path, entries):
    led = BenchLedger(tmp_path / "hist")
    for e in entries:
        led.append(e)
    return tmp_path / "hist"


# ---------------------------------------------------------------------------
# repro diff
# ---------------------------------------------------------------------------


def test_diff_ledger_pair_text_and_json(tmp_path, capsys):
    hist = _ledger(tmp_path, [
        _entry("r0", counters={"pricing.vector": 5}),
        _entry("r1", cold=0.013, counters={"pricing.vector": 40}),
    ])
    assert main(["diff", "-2", "-1", "--history-dir", str(hist)]) == 0
    out = capsys.readouterr().out
    assert "r0" in out and "r1" in out and "gpu_cold" in out

    assert main(["diff", "-2", "-1", "--history-dir", str(hist),
                 "--json"]) == 0
    out = capsys.readouterr().out
    doc = json.loads(out)  # stdout is pure JSON
    assert doc["schema"] == 1
    assert doc["phases"][0]["phase"] == "gpu_cold"
    assert any(c["key"] == "pricing.vector" for c in doc["counters"])


def test_diff_selector_and_file_errors_exit_2(tmp_path, capsys):
    hist = _ledger(tmp_path, [_entry("r0")])
    assert main(["diff", "-2", "-1", "--history-dir", str(hist)]) == 2
    err = capsys.readouterr().err
    assert "only 1 entries" in err and "Traceback" not in err

    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"nope": 1}')
    assert main(["diff", str(bogus), str(bogus)]) == 2
    assert "unrecognized" in capsys.readouterr().err


def test_diff_collapsed_pair_with_flamegraph(tmp_path, capsys):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text("main;price;scalar 90\nmain;setup 10\n")
    b.write_text("main;price;vector 30\nmain;setup 12\n")
    svg_path = tmp_path / "d.svg"
    assert main(["diff", str(a), str(b), "--flamegraph", str(svg_path),
                 "--json"]) == 0
    captured = capsys.readouterr()
    doc = json.loads(captured.out)  # flamegraph notice must not pollute stdout
    frames = {f["frame"]: f for f in doc["frames"]}
    assert frames["scalar"]["self_b"] == 0 and frames["vector"]["self_a"] == 0
    ET.parse(svg_path)  # well-formed XML
    assert "differential flamegraph" in captured.err


def test_diff_flamegraph_requires_stacks_on_both_sides(tmp_path, capsys):
    hist = _ledger(tmp_path, [_entry("r0"), _entry("r1")])
    assert main(["diff", "-2", "-1", "--history-dir", str(hist),
                 "--flamegraph", str(tmp_path / "d.svg")]) == 2
    err = capsys.readouterr().err
    assert "stacks" in err.lower()


# ---------------------------------------------------------------------------
# repro regress --json / --attribute
# ---------------------------------------------------------------------------


def test_regress_json_clean_run(tmp_path, capsys):
    hist = _ledger(tmp_path, [_entry(f"r{i}") for i in range(4)])
    rc = main(["regress", "--history-dir", str(hist), "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0 and doc["exit_code"] == 0
    assert doc["exit_codes"]["1"] == "regression"
    assert not doc["regressed"]


def test_regress_json_exit_2_on_unusable_ledger(tmp_path, capsys):
    rc = main(["regress", "--history-dir", str(tmp_path / "none"), "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 2 and doc["exit_code"] == 2 and doc["error"]


def test_regress_attribute_on_regression(tmp_path, capsys):
    entries = [_entry(f"r{i}", counters={"x": 10}) for i in range(5)]
    entries.append(_entry("slow", cold=0.090, counters={"x": 40}))
    hist = _ledger(tmp_path, entries)
    rc = main(["regress", "--history-dir", str(hist),
               "--attribute", "--no-collect", "--json"])
    out = capsys.readouterr().out
    doc = json.loads(out)
    assert rc == 1 and doc["exit_code"] == 1 and doc["regressed"]
    attrib = doc["attribution"]
    assert attrib["phases"][0]["phase"] == "gpu_cold"
    assert attrib["phases"][0]["ratio"] == 3.0
    assert attrib["changepoints"][0]["run_id"] == "slow"
    assert any(c["key"] == "x" for c in attrib["counters"])
    # --no-collect keeps attribution deterministic: byte-identical rerun
    main(["regress", "--history-dir", str(hist),
          "--attribute", "--no-collect", "--json"])
    assert capsys.readouterr().out == out


def test_regress_attribute_text_table(tmp_path, capsys):
    entries = [_entry(f"r{i}") for i in range(5)]
    entries.append(_entry("slow", cold=0.090))
    hist = _ledger(tmp_path, entries)
    rc = main(["regress", "--history-dir", str(hist),
               "--attribute", "--no-collect"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "attribution" in out and "gpu_cold" in out
    assert "changepoint" in out and "slow" in out


# ---------------------------------------------------------------------------
# stack export plumbing shared by bench/profile --stacks
# ---------------------------------------------------------------------------


def test_write_collapsed_round_trips(tmp_path):
    counts = {"main;hot": 7, "main;cold": 2}
    path = obs_sampler.write_collapsed(counts, tmp_path / "sub" / "s.txt")
    assert obs_sampler.parse_collapsed(path.read_text()) == counts


# ---------------------------------------------------------------------------
# dashboard: attribution card from the ledger + diff flamegraph
# ---------------------------------------------------------------------------


def test_html_report_renders_attribution_card(tmp_path):
    from repro.obs.htmlreport import render_report

    hist = _ledger(tmp_path, [
        _entry("r0"), _entry("r1", cold=0.013)])
    html = render_report(
        model="resnet50", backends=("ref",), history_dir=hist,
        diff_sample=({"m;hot": 9, "m;idle": 1}, {"m;hot": 2, "m;idle": 8}))
    assert "Attribution" in html
    assert "gpu_cold" in html
    assert "Differential flamegraph" in html
    assert "http://" not in html and "https://" not in html
