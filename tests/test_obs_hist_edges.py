"""Histogram edge cases: empty, single-sample, merge across decimated
windows, and bucket-count invariants.

These are the inputs the regression checker and the differential-
profiling engine actually hand the histogram — tiny warm-up windows,
merges of per-worker windows where one side already hit SAMPLE_CAP, and
the bucket vectors :func:`repro.obs.diff.histogram_delta` subtracts.
"""

import pytest

from repro.obs.metrics import BUCKET_BOUNDS, SAMPLE_CAP, Histogram


def test_empty_histogram_aggregates_and_percentile():
    h = Histogram()
    assert h.count == 0 and h.sum == 0.0
    assert h.min is None and h.max is None
    assert h.mean == 0.0  # defined (not a ZeroDivisionError)
    assert h.bucket_counts() == [0] * (len(BUCKET_BOUNDS) + 1)
    with pytest.raises(ValueError, match="empty"):
        h.percentile(50)
    with pytest.raises(ValueError, match=r"\[0, 100\]"):
        h.percentile(101)


def test_single_sample_every_percentile_is_that_sample():
    h = Histogram()
    h.observe(0.25)
    for q in (0.0, 1.0, 50.0, 99.9, 100.0):
        assert h.percentile(q) == 0.25
    assert h.min == h.max == 0.25 and h.mean == 0.25
    assert sum(h.bucket_counts()) == 1


def test_merge_of_empties_is_empty():
    merged = Histogram.merge([Histogram(), Histogram()])
    assert merged.count == 0 and merged.min is None
    with pytest.raises(ValueError):
        merged.percentile(50)
    # merging nothing at all also works
    assert Histogram.merge([]).count == 0


def test_merge_after_stride_decimation_keeps_exact_aggregates():
    """One window decimated past SAMPLE_CAP, one small: the merged
    aggregates stay exact even though the big window's sample set is a
    1-in-stride subsample."""
    big, small = Histogram(), Histogram()
    n = SAMPLE_CAP + 100
    for i in range(n):
        big.observe(float(i))
    assert big._stride > 1  # decimation actually kicked in
    assert len(big._samples) < n
    for v in (1e6, 2e6):
        small.observe(v)

    merged = Histogram.merge([big, small])
    # aggregates add exactly — they never go through the sample set
    assert merged.count == n + 2
    assert merged.sum == pytest.approx(sum(range(n)) + 3e6)
    assert merged.min == 0.0 and merged.max == 2e6
    # sample set is bounded and quantiles stay sane: the median of
    # ~uniform 0..n plus two outliers is still near n/2
    assert len(merged._samples) < SAMPLE_CAP
    assert merged.percentile(50) == pytest.approx(n / 2, rel=0.1)
    # bucket counts add exactly too (histogram_delta depends on this)
    assert sum(merged.bucket_counts()) == n + 2
    for b_big, b_small, b_merged in zip(
            big.bucket_counts(), small.bucket_counts(),
            merged.bucket_counts()):
        assert b_merged == b_big + b_small


def test_decimation_is_deterministic():
    def fill():
        h = Histogram()
        for i in range(SAMPLE_CAP * 2 + 7):
            h.observe(i * 0.001)
        return h

    a, b = fill(), fill()
    assert a._samples == b._samples and a._stride == b._stride
    assert a.percentile(95) == b.percentile(95)


def test_bucket_counts_monotone_boundaries():
    """Bounds are *inclusive* upper edges: a value equal to a bound lands
    in that bound's bucket, epsilon above rolls into the next."""
    h = Histogram()
    h.observe(1.0)  # == bound 10^0
    h.observe(1.0000001)  # just above
    counts = h.bucket_counts()
    one = BUCKET_BOUNDS.index(1.0)
    assert counts[one] == 1 and counts[one + 1] == 1
    # the implicit +Inf bucket catches everything beyond the top bound
    h.observe(BUCKET_BOUNDS[-1] * 10)
    assert h.bucket_counts()[-1] == 1
    # cumulative view (what OpenMetrics exports) is monotone
    cum = 0
    for c in h.bucket_counts():
        assert c >= 0
        cum += c
    assert cum == h.count


def test_as_dict_snapshot_shape():
    h = Histogram()
    h.observe(2.0)
    h.observe(4.0)
    assert h.as_dict() == {
        "count": 2, "sum": 6.0, "min": 2.0, "max": 4.0, "mean": 3.0}
