"""The Sec. 3.3 chain-length table — the paper's central overflow analysis."""

import pytest

from repro.arm.ratios import (
    UNROLL_FACTORS,
    chain_length,
    chain_table,
    mla_chain_length,
    round_interval,
    saddw_second_level_interval,
    smlal_chain_length,
)
from repro.errors import UnsupportedBitsError


def test_published_smlal_ratios():
    """'for 4, 5, 6, 7 and 8-bit GEMM, the ratio of SMLAL to SADDW
    instruction is 511/1, 127/1, 31/1, 8/1 and 2/1'"""
    assert smlal_chain_length(4) == 511
    assert smlal_chain_length(5) == 127
    assert smlal_chain_length(6) == 31
    assert smlal_chain_length(7) == 8
    assert smlal_chain_length(8) == 2


def test_published_mla_ratios():
    """'we control the ratio of MLA to SADDW as 31/1 and 7/1 for 2 and
    3-bit GEMM'"""
    assert mla_chain_length(2) == 31
    assert mla_chain_length(3) == 7


def test_adjustment_is_what_buys_7_and_8_bit():
    # without the range adjustment, 7-bit only chains 7 and 8-bit only 1
    assert smlal_chain_length(7, adjusted=False) == 7
    assert smlal_chain_length(8, adjusted=False) == 1
    assert smlal_chain_length(8, adjusted=True) == 2


def test_chain_table():
    assert chain_table() == {2: 31, 3: 7, 4: 511, 5: 127, 6: 31, 7: 8, 8: 2}


def test_scheme_boundaries():
    with pytest.raises(UnsupportedBitsError):
        smlal_chain_length(3)
    with pytest.raises(UnsupportedBitsError):
        mla_chain_length(4)
    with pytest.raises(UnsupportedBitsError):
        chain_length(1)


def test_unroll_factors_are_safe():
    """The paper's unroll factors (32/24/16/8/2) never exceed the safe
    chain, so one drain per unrolled block cannot overflow."""
    assert UNROLL_FACTORS == {4: 32, 5: 24, 6: 16, 7: 8, 8: 2}
    for bits, unroll in UNROLL_FACTORS.items():
        assert unroll <= smlal_chain_length(bits)


def test_round_interval():
    assert round_interval(2) == 31
    assert round_interval(3) == 7
    assert round_interval(4) == 32
    assert round_interval(8) == 2


def test_second_level_interval_math():
    # 2-bit: each drain adds <= 31*4 = 124 to an int16 lane
    assert saddw_second_level_interval(2) == 32767 // (31 * 4)
    # 3-bit: each drain adds <= 7*16 = 112
    assert saddw_second_level_interval(3) == 32767 // (7 * 16)
    with pytest.raises(UnsupportedBitsError):
        saddw_second_level_interval(4)
