"""The vectorized autotune engine: dispatch, equivalence, accounting.

The bit-level vector/scalar model equivalence lives in
``test_gpu_random_tilings.py``; this suite pins the *engine* behavior on
top of it: mode dispatch (``REPRO_NO_VECTOR`` / fault plans), identical
winners across engines, the ``evaluated + pruned + skipped == candidates``
invariant, quarantine fallback, the batched profile-run counter, and the
ARM batch pricers.
"""

import numpy as np
import pytest

from repro.gpu.autotune import (
    autotune,
    autotune_reference,
    clear_cache,
    autotune_options,
    pricing_mode,
    profile_quarantine,
    _candidate_key,
)
from repro.obs import metrics as obs_metrics
from repro.perf.cache import CACHE_DIR_ENV
from repro.resilience.faults import fault_plan
from repro.types import GemmShape
from repro.util import NO_VECTOR_ENV, vector_enabled


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(NO_VECTOR_ENV, raising=False)
    clear_cache()
    with fault_plan(None):
        yield
    clear_cache()


_GEMMS = [
    GemmShape(3136, 576, 64),
    GemmShape(37, 123, 211),
    GemmShape(196, 2304, 256),
]


# ---------------------------------------------------------------------------
# Mode dispatch
# ---------------------------------------------------------------------------


def test_vector_mode_is_the_default():
    assert vector_enabled()
    assert pricing_mode() == "vector"


def test_no_vector_env_forces_scalar(monkeypatch):
    monkeypatch.setenv(NO_VECTOR_ENV, "1")
    assert not vector_enabled()
    assert pricing_mode() == "scalar"


def test_fault_plan_on_profile_site_forces_scalar():
    with fault_plan("autotune.profile:raise:0.1:1"):
        assert pricing_mode() == "scalar"
    with fault_plan("autotune.*:delay:0.5:1"):
        assert pricing_mode() == "scalar"  # glob match counts too
    with fault_plan("cache.put:corrupt"):
        assert pricing_mode() == "vector"  # unrelated site: stay vectorized


# ---------------------------------------------------------------------------
# Engine equivalence: vector vs scalar vs serial reference
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bits", [8, 4])
def test_vector_engine_matches_scalar_engine(bits, monkeypatch):
    for gemm in _GEMMS:
        reference = autotune_reference(gemm, bits)
        with autotune_options(persistent=False):
            vector = autotune(gemm, bits)
            assert pricing_mode() == "vector"
            clear_cache()
            monkeypatch.setenv(NO_VECTOR_ENV, "1")
            scalar = autotune(gemm, bits)
            monkeypatch.delenv(NO_VECTOR_ENV)
            clear_cache()

        # the winner and its full cycle breakdown are engine-independent
        assert vector.best == scalar.best == reference.best
        assert vector.best_perf == scalar.best_perf
        assert vector.best_cycles == reference.best_cycles
        assert vector.candidates == scalar.candidates == reference.candidates
        for res in (vector, scalar):
            assert res.evaluated + res.pruned + res.skipped == res.candidates


def test_vector_engine_prunes_and_accounts():
    with autotune_options(persistent=False):
        res = autotune(GemmShape(3136, 576, 64), 4)
    assert res.pruned > 0
    assert res.evaluated < res.candidates
    assert res.evaluated + res.pruned + res.skipped == res.candidates


@pytest.mark.parametrize("kwargs", [
    {"tensor_core": False},
    {"double_buffer": False, "coalesced": False},
    {"split_k": 2, "out_elem_bytes": 4.0},
])
def test_vector_engine_forwards_kernel_kwargs(kwargs):
    gemm = GemmShape(196, 2304, 256)
    reference = autotune_reference(gemm, 8, **kwargs)
    with autotune_options(persistent=False):
        vector = autotune(gemm, 8, **kwargs)
    assert vector.best == reference.best
    assert vector.best_cycles == reference.best_cycles


def test_vector_exhaustive_equals_vector_pruned():
    gemm = GemmShape(37, 123, 211)
    with autotune_options(persistent=False):
        exhaustive = autotune(gemm, 8, prune=False)
        clear_cache()
        pruned = autotune(gemm, 8, prune=True)
    assert exhaustive.pruned == 0
    assert exhaustive.evaluated == exhaustive.candidates
    assert pruned.best_perf == exhaustive.best_perf


# ---------------------------------------------------------------------------
# Quarantine fallback
# ---------------------------------------------------------------------------


def test_quarantined_candidate_is_skipped_not_priced():
    gemm = GemmShape(3136, 576, 64)
    reference = autotune_reference(gemm, 8)
    # quarantine a non-winning candidate; the vector sweep must skip it
    # through the scalar guarded path and still find the same winner
    with autotune_options(persistent=False):
        loser = next(t for t in _space_for(8) if t != reference.best)
        profile_quarantine().add(
            _candidate_key(gemm, 8, loser), reason="test")
        res = autotune(gemm, 8)
    assert res.skipped == 1
    assert res.evaluated + res.pruned + res.skipped == res.candidates
    assert res.best == reference.best
    assert res.best_cycles == reference.best_cycles


def _space_for(bits):
    from repro.gpu.tiling import search_space

    return list(search_space(bits))


# ---------------------------------------------------------------------------
# Batched profile-run metric
# ---------------------------------------------------------------------------


def test_vector_profile_runs_counted_in_batch():
    before = obs_metrics.counter(
        "gpu_profile_runs", bits=8, pricing_mode="vector").value
    with autotune_options(persistent=False):
        res = autotune(GemmShape(196, 2304, 256), 8)
    after = obs_metrics.counter(
        "gpu_profile_runs", bits=8, pricing_mode="vector").value
    # every vector-priced candidate ticks the counter, pruned ones do not
    assert after - before >= res.evaluated
    assert after - before <= res.candidates


# ---------------------------------------------------------------------------
# ARM batch pricers
# ---------------------------------------------------------------------------


def test_arm_tile_cycles_batch_matches_scalar():
    from repro.arm.cost_model import tile_cycles, tile_cycles_batch

    ks = [1, 3, 16, 64, 256, 511, 512, 513, 576, 1000, 2304, 4608]
    for scheme, bits in [("smlal", 8), ("smlal", 4), ("mla", 2),
                         ("ncnn", 8), ("sdot", 8), ("popcount", 2)]:
        batch = tile_cycles_batch(scheme, bits, ks)
        expected = [tile_cycles(scheme, bits, k) for k in ks]
        assert batch.tolist() == expected  # bit-exact, both regions


def test_arm_tile_cycles_batch_rejects_nonpositive_k():
    from repro.arm.cost_model import tile_cycles_batch
    from repro.errors import UnsupportedBitsError

    with pytest.raises(UnsupportedBitsError):
        tile_cycles_batch("smlal", 8, [64, 0, 128])


def test_arm_gemm_kernel_cycles_batch_matches_scalar():
    from repro.arm.conv_runner import (
        gemm_kernel_cycles,
        gemm_kernel_cycles_batch,
    )

    gemms = [GemmShape(64, 576, 3136), GemmShape(128, 1152, 784),
             GemmShape(1, 9, 12544), GemmShape(512, 4608, 49)]
    for scheme, bits in [("smlal", 8), ("mla", 2)]:
        batch = gemm_kernel_cycles_batch(gemms, scheme, bits)
        expected = [gemm_kernel_cycles(g, scheme, bits) for g in gemms]
        assert batch.tolist() == expected


def test_arm_prewarm_batching_changes_no_prices(monkeypatch):
    from repro.backends.arm import ArmBackend
    from repro.models import get_model_layers

    layers = get_model_layers("resnet50")[:4]
    work = [(spec, bits, None) for spec in layers for bits in (2, 8)]

    backend = ArmBackend()
    backend.prewarm(work)
    warmed = [backend.price_conv(s, b, e).total_cycles for s, b, e in work]

    monkeypatch.setenv(NO_VECTOR_ENV, "1")
    from repro.arm.cost_model import clear_schedule_cache

    clear_schedule_cache()
    backend.prewarm(work)
    scalar = [backend.price_conv(s, b, e).total_cycles for s, b, e in work]
    assert warmed == scalar


# ---------------------------------------------------------------------------
# Bench report surface
# ---------------------------------------------------------------------------


def test_phase_report_carries_pricing_and_throughput():
    from repro.perf.bench import PhaseReport

    report = PhaseReport(
        name="cold", seconds=2.0, candidates=24016, evaluated=2400,
        pruned=21616, pricing_mode="vector",
    )
    d = report.as_dict()
    assert d["pricing_mode"] == "vector"
    assert d["candidates_per_sec"] == pytest.approx(24016 / 2.0)
    empty = PhaseReport(name="warm", seconds=0.0).as_dict()
    assert empty["candidates_per_sec"] is None


def test_ledger_entry_carries_throughput():
    from repro.obs.history import build_entry

    base = dict(
        kind="full", model="resnet50", batch=1, jobs=4, backends=["gpu"],
        timestamp="2026-08-09T00:00:00", model_cycles={}, figures={},
        wall_seconds={"gpu_cold": 0.05}, metrics_snapshot={},
    )
    entry = build_entry(**base, throughput={"gpu_cold": 480000.0})
    assert entry["throughput"] == {"gpu_cold": 480000.0}
    assert "throughput" not in build_entry(**base)
