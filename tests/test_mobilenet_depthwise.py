"""MobileNetV1 / grouped-depthwise extension: tables, exactness, costs."""

import numpy as np
import pytest

from repro.arm.conv_runner import ncnn_conv_cycles, time_arm_conv
from repro.conv import conv2d_gemm, conv2d_ref
from repro.models import get_model_layers, mobilenetv1_conv_layers
from repro.models.mobilenetv1 import is_depthwise, mobilenetv1_all_conv_layers
from repro.types import ConvSpec, Layout


def test_mobilenet_table_structure():
    all_layers = mobilenetv1_all_conv_layers()
    assert len(all_layers) == 1 + 13 * 2  # stem + 13 dw/pw pairs
    uniq = mobilenetv1_conv_layers()
    assert all(s.kernel in ((3, 3), (1, 1)) for s in uniq)
    dw = [s for s in uniq if is_depthwise(s)]
    assert dw and all(s.groups == s.in_channels for s in dw)
    assert get_model_layers("mobilenetv1")  # zoo lookup


def test_grouped_macs_not_double_counted():
    dw = ConvSpec("dw", in_channels=128, out_channels=128, height=56,
                  width=56, kernel=(3, 3), padding=(1, 1), groups=128)
    # depthwise: one input channel per output channel
    assert dw.macs == 128 * 9 * 56 * 56
    dense = ConvSpec("d", in_channels=128, out_channels=128, height=56,
                     width=56, kernel=(3, 3), padding=(1, 1))
    assert dense.macs == dw.macs * 128


@pytest.mark.parametrize("groups,cin,cout", [(2, 6, 8), (4, 8, 4), (8, 8, 8)])
def test_grouped_gemm_matches_ref(groups, cin, cout):
    spec = ConvSpec("g", in_channels=cin, out_channels=cout, height=7,
                    width=6, kernel=(3, 3), padding=(1, 1), groups=groups)
    rng = np.random.default_rng(groups)
    x = rng.integers(-8, 8, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    assert np.array_equal(conv2d_gemm(spec, x, w), conv2d_ref(spec, x, w))


def test_grouped_gemm_with_bias():
    spec = ConvSpec("g", in_channels=4, out_channels=6, height=5, width=5,
                    kernel=(3, 3), padding=(1, 1), groups=2)
    rng = np.random.default_rng(0)
    x = rng.integers(-8, 8, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    bias = rng.integers(-50, 50, 6)
    assert np.array_equal(conv2d_gemm(spec, x, w, bias=bias),
                          conv2d_ref(spec, x, w, bias=bias))


def test_depthwise_is_gemm_hostile():
    """The extension's point: depthwise layers waste the register tile
    (one output row per group), so their achieved MACs/cycle collapse and
    the low-bit speedup all but disappears."""
    dw = ConvSpec("dw", in_channels=128, out_channels=128, height=56,
                  width=56, kernel=(3, 3), padding=(1, 1), groups=128)
    pw = ConvSpec("pw", in_channels=128, out_channels=128, height=56,
                  width=56, kernel=(1, 1))
    eff_dw = dw.macs / time_arm_conv(dw, 4).total_cycles
    eff_pw = pw.macs / time_arm_conv(pw, 4).total_cycles
    assert eff_pw > 5 * eff_dw  # pointwise uses the tile; depthwise pads it
    # and the speedup over the (equally GEMM-based) baseline shrinks
    sp_dw = ncnn_conv_cycles(dw).total_cycles / time_arm_conv(dw, 4).total_cycles
    sp_pw = ncnn_conv_cycles(pw).total_cycles / time_arm_conv(pw, 4).total_cycles
    assert sp_dw < sp_pw


def test_depthwise_perf_breakdown_positive():
    dw = ConvSpec("dw", in_channels=32, out_channels=32, height=14,
                  width=14, kernel=(3, 3), padding=(1, 1), groups=32)
    perf = time_arm_conv(dw, 8)
    assert perf.total_cycles > 0
    assert perf.kernel_cycles > 0
