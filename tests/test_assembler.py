"""Assembler/disassembler round-trip for kernel listings."""

import numpy as np
import pytest

from repro.arm.assembler import assemble, disassemble, parse_line, roundtrip
from repro.arm.isa import Instr, MemRef
from repro.arm.kernels import (
    generate_mla_kernel,
    generate_ncnn_kernel,
    generate_popcount_kernel,
    generate_sdot_kernel,
    generate_smlal_kernel,
)
from repro.arm.kernels.base import MicroKernel
from repro.conv.padding import pack_a, pack_b
from repro.errors import SimulationError


def test_parse_simple_forms():
    assert parse_line("SMLAL_8H {v10} {v0, v2}") == Instr(
        "SMLAL_8H", dst=("v10",), src=("v0", "v2"))
    assert parse_line("LD4R_B {v2, v3, v4, v5} [B+12]") == Instr(
        "LD4R_B", dst=("v2", "v3", "v4", "v5"), mem=MemRef("B", 12))
    assert parse_line("SDOT_4S_LANE {v8} {v0, v4} [3]") == Instr(
        "SDOT_4S_LANE", dst=("v8",), src=("v0", "v4"), lane=3)
    assert parse_line("SUBS {x9} {x9} #32") == Instr(
        "SUBS", dst=("x9",), src=("x9",), imm=32)
    assert parse_line("B_NE") == Instr("B_NE")


def test_comments_and_blanks():
    assert parse_line("; pure comment") is None
    assert parse_line("   ") is None
    assert parse_line("B_NE ; trailing comment") == Instr("B_NE")


def test_parse_errors():
    with pytest.raises(SimulationError):
        parse_line("NOT_AN_OP {v0}")
    with pytest.raises(SimulationError):
        parse_line("LD1_16B {v0} [weird bracket]")
    with pytest.raises(SimulationError):
        assemble("B_NE\nGARBAGE LINE !!!")


@pytest.mark.parametrize("gen", [
    lambda: generate_smlal_kernel(4, 40),
    lambda: generate_smlal_kernel(8, 12),
    lambda: generate_mla_kernel(2, 35),
    lambda: generate_ncnn_kernel(9),
    lambda: generate_sdot_kernel(20),
    lambda: generate_popcount_kernel(200),
])
def test_every_kernel_roundtrips(gen):
    kern = gen()
    assert tuple(roundtrip(kern.stream)) == kern.stream


def test_assembled_stream_executes_identically():
    """A kernel listing parsed back from text computes the same tile."""
    rng = np.random.default_rng(0)
    k = 24
    a = rng.integers(-8, 8, (16, k)).astype(np.int8)
    b = rng.integers(-8, 8, (k, 4)).astype(np.int8)
    kern = generate_smlal_kernel(4, k)
    reparsed = MicroKernel(
        name=kern.name, stream=tuple(assemble(disassemble(kern.stream))),
        m_r=kern.m_r, n_r=kern.n_r, k=kern.k, bits=kern.bits,
        a_bytes=kern.a_bytes, b_bytes=kern.b_bytes, c_bytes=kern.c_bytes,
    )
    ap, bp = pack_a(a, 16), pack_b(b, 4)
    assert np.array_equal(kern.execute(ap, bp), reparsed.execute(ap, bp))


def test_disassemble_is_readable():
    text = disassemble(generate_smlal_kernel(4, 4).stream)
    assert "LD4R_B" in text and "[A+" in text and "[B+" in text
