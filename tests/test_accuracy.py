"""Quantization-fidelity analysis (the 'no accuracy loss' support)."""

import numpy as np
import pytest

from repro.analysis import float_reference_network, output_sqnr, sqnr_sweep
from repro.conv.ref import conv2d_float, conv2d_ref
from repro.runtime import build_chain, calibrate_network, random_weights
from repro.types import ConvSpec, Layout

PLAN = [(8, 3, 1), (16, 3, 2)]


def _setup(bits=8, seed=0):
    rng = np.random.default_rng(seed)
    net = build_chain("t", 3, PLAN, height=12, width=12, bits=bits)
    w = random_weights(net, rng)
    x = rng.normal(size=(1, 3, 12, 12))
    return net, w, x


def test_conv2d_float_matches_integer_ref_on_integer_data():
    rng = np.random.default_rng(0)
    spec = ConvSpec("c", in_channels=3, out_channels=5, height=7, width=8,
                    kernel=(3, 3), stride=(2, 2), padding=(1, 1))
    x = rng.integers(-8, 8, spec.input_shape(Layout.NCHW))
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW))
    f = conv2d_float(spec, x.astype(np.float64), w.astype(np.float64))
    r = conv2d_ref(spec, x.astype(np.int64), w.astype(np.int64))
    assert np.allclose(f, r)


def test_float_reference_applies_relu():
    net, w, x = _setup()
    ref = float_reference_network(net, x, w)
    assert np.all(ref >= 0)


def test_sqnr_increases_with_bits():
    """The ~6 dB/bit uniform-quantizer law, through the whole pipeline."""
    _, w, x = _setup()

    def build(bits):
        net = build_chain("t", 3, PLAN, height=12, width=12, bits=bits)
        return calibrate_network(net, x, w)

    reports = sqnr_sweep(build, x, w, bits_list=(3, 4, 5, 6, 7, 8))
    sqnrs = [r.sqnr_db for r in reports]
    assert sqnrs == sorted(sqnrs)
    # roughly 6 dB per bit across the sweep
    slope = (sqnrs[-1] - sqnrs[0]) / (8 - 3)
    assert 3.5 < slope < 8.0
    # 8-bit is high-fidelity, as the paper's accuracy argument requires
    assert sqnrs[-1] > 25.0


def test_sqnr_report_fields():
    net, w, x = _setup()
    cal = calibrate_network(net, x, w)
    r = output_sqnr(cal, x, w)
    assert r.bits == 8
    assert r.ref_rms > 0
    assert r.max_abs_err >= 0
