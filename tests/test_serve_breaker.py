"""Circuit breaker state machine over the recoverable quarantine.

The serving simulator's correctness under chaos reduces to this state
machine behaving exactly: closed -> (threshold failures) -> open ->
(TTL) -> half_open probe -> closed on success / back to open on failure.
Everything runs on a hand-cranked clock — no wall time, no sleeps.
"""

import pytest

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class Clock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.fixture()
def clock():
    return Clock()


def make(clock, threshold=3, open_s=1.0):
    return CircuitBreaker(
        "gpu", failure_threshold=threshold, open_s=open_s, now=clock)


def test_starts_closed_and_grants_traffic(clock):
    br = make(clock)
    assert br.state() == CLOSED
    assert br.acquire() == CLOSED
    assert br.opens == 0 and br.closes == 0


def test_threshold_consecutive_failures_trip_open(clock):
    br = make(clock, threshold=3)
    br.record_failure()
    br.record_failure()
    assert br.state() == CLOSED  # two failures: still below threshold
    br.record_failure()
    assert br.state() == OPEN
    assert br.opens == 1
    assert br.acquire() == OPEN  # traffic diverted


def test_success_resets_the_consecutive_count(clock):
    br = make(clock, threshold=3)
    br.record_failure()
    br.record_failure()
    br.record_success()  # interleaved success: not consecutive any more
    br.record_failure()
    br.record_failure()
    assert br.state() == CLOSED
    br.record_failure()
    assert br.state() == OPEN


def test_probe_granted_once_after_open_interval(clock):
    br = make(clock, open_s=1.0)
    for _ in range(3):
        br.record_failure()
    clock.t = 0.5
    assert br.acquire() == OPEN  # too early
    clock.t = 1.0
    assert br.acquire() == "probe"  # exactly one ticket
    assert br.state() == HALF_OPEN
    assert br.acquire() == OPEN  # concurrent caller keeps browning out


def test_probe_success_closes_and_counts(clock):
    br = make(clock, open_s=1.0)
    for _ in range(3):
        br.record_failure()
    clock.t = 2.0
    assert br.acquire() == "probe"
    br.record_success()
    assert br.state() == CLOSED
    assert br.closes == 1
    assert br.acquire() == CLOSED
    # the transition log tells the whole story in order
    assert [s for _, s in br.transitions] == [OPEN, HALF_OPEN, CLOSED]


def test_probe_failure_re_arms_the_open_interval(clock):
    br = make(clock, open_s=1.0)
    for _ in range(3):
        br.record_failure()
    clock.t = 1.0
    assert br.acquire() == "probe"
    br.record_failure()
    assert br.state() == OPEN
    assert br.probe_failures == 1
    clock.t = 1.5
    assert br.acquire() == OPEN  # TTL restarted at the probe failure
    clock.t = 2.0
    assert br.acquire() == "probe"


def test_straggler_failure_reports_while_open_are_ignored(clock):
    br = make(clock)
    for _ in range(3):
        br.record_failure()
    assert br.opens == 1
    br.record_failure()  # an in-flight batch reporting after the trip
    br.record_failure()
    assert br.opens == 1  # not double-counted, no re-arm spam
    assert [s for _, s in br.transitions] == [OPEN]


def test_explicit_now_beats_the_constructor_clock(clock):
    br = make(clock, open_s=1.0)
    for _ in range(3):
        br.record_failure(now=5.0)
    assert br.acquire(now=5.5) == OPEN
    assert br.acquire(now=6.0) == "probe"


def test_failure_threshold_validation(clock):
    with pytest.raises(ValueError):
        CircuitBreaker("x", failure_threshold=0, now=clock)


def test_transition_metrics_counted(clock):
    from repro.obs import metrics as obs_metrics

    obs_metrics.reset()
    br = make(clock)
    for _ in range(3):
        br.record_failure()
    clock.t = 2.0
    assert br.acquire() == "probe"
    br.record_success()
    snap = obs_metrics.snapshot()["counters"]
    assert snap["breaker_transitions{breaker=gpu,to=open}"] == 1
    assert snap["breaker_transitions{breaker=gpu,to=half_open}"] == 1
    assert snap["breaker_transitions{breaker=gpu,to=closed}"] == 1
    obs_metrics.reset()
