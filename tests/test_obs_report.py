"""``python -m repro profile``: the observability reporting surface.

The acceptance contract: profiling an artifact emits a text summary, a
Perfetto-loadable Chrome trace and a metrics snapshot containing the
cache, autotune and per-layer cycle series — and leaves no tracer
installed afterwards.
"""

import json

from repro.cli import main
from repro.obs import trace


def _load(path):
    return json.loads(path.read_text(encoding="utf-8"))


def test_profile_fig13_happy_path(tmp_path, capsys):
    tpath = tmp_path / "t.json"
    mpath = tmp_path / "m.json"
    assert main(["profile", "fig13",
                 "--trace", str(tpath), "--metrics", str(mpath)]) == 0
    out = capsys.readouterr().out
    assert "== profile fig13" in out
    assert "spans by total time:" in out
    assert not trace.active()  # capture window closed behind itself

    doc = _load(tpath)
    assert doc["displayTimeUnit"] == "ms"
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"profile", "figure.fig13_space_overhead"} <= names

    snap = _load(mpath)
    assert snap["target"] == "fig13"
    assert snap["schema"] == 1
    assert set(snap) >= {"counters", "gauges", "histograms", "wall_seconds"}


def test_profile_fig10_records_acceptance_series(tmp_path, monkeypatch):
    """The ISSUE acceptance command: fig10's metrics must show cache
    traffic, autotune evaluated/pruned tallies and per-layer cycles."""
    from repro.gpu.autotune import clear_cache
    from repro.perf.cache import CACHE_DIR_ENV

    # hermetic caches: the sweeps must actually run here, not replay a
    # warm store left by earlier runs on this machine
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    clear_cache()
    mpath = tmp_path / "m.json"
    tpath = tmp_path / "t.json"
    assert main(["profile", "fig10",
                 "--trace", str(tpath), "--metrics", str(mpath)]) == 0
    snap = _load(mpath)
    counters, gauges = snap["counters"], snap["gauges"]
    assert any(k.startswith("cache_lookups{") for k in counters)
    assert any(k.startswith("autotune_evaluated{") for k in counters)
    assert any(k.startswith("autotune_pruned{") for k in counters)
    assert any(k.startswith("gpu_layer_cycles{") for k in gauges)
    names = {e["name"] for e in _load(tpath)["traceEvents"]
             if e["ph"] == "X"}
    assert "autotune.search" in names


def test_profile_tab1_without_outputs(capsys):
    assert main(["profile", "tab1"]) == 0
    assert "== profile tab1" in capsys.readouterr().out


def test_profile_unknown_target(capsys):
    assert main(["profile", "fig99"]) == 2
    assert "unknown profile target" in capsys.readouterr().out


def test_failing_target_leaks_no_obs_state(monkeypatch):
    """A figure that blows up mid-run must not leave its half-filled
    metrics window (or an installed tracer) behind for later callers."""
    import pytest

    from repro.obs import metrics
    from repro.obs import report as obs_report

    def boom(target, model, batch, backend=None):
        def runner():
            metrics.counter("partial_work").inc(7)
            raise RuntimeError("mid-figure failure")
        return runner

    monkeypatch.setattr(obs_report, "_resolve_target", boom)
    with pytest.raises(RuntimeError, match="mid-figure failure"):
        obs_report.run_profile("fig13", echo=lambda s: None)
    assert not trace.active()
    snap = metrics.snapshot()
    assert "partial_work" not in snap["counters"]
