"""ParallelRunner determinism and the parallel == serial guarantee.

The perf subsystem promises that worker count is *never* observable in
results: any ``jobs`` setting must reproduce the serial loop bit for bit
(ordering, tie-breaking, exception choice).  These tests pin that down
both at the runner level and end-to-end through the autotuner and the
Fig. 11 figure series.
"""

import time

import pytest

from repro.gpu.autotune import (
    autotune,
    autotune_options,
    autotune_reference,
    clear_cache,
)
from repro.perf.cache import CACHE_DIR_ENV
from repro.perf.parallel import JOBS_ENV, ParallelRunner, resolve_jobs
from repro.types import GemmShape


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path, monkeypatch):
    """Every test gets an empty persistent store and a fresh memo cache."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    clear_cache()
    yield
    clear_cache()


# ---------------------------------------------------------------------------
# resolve_jobs / runner construction
# ---------------------------------------------------------------------------


def test_resolve_jobs_argument_wins(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "7")
    assert resolve_jobs(3) == 3


def test_resolve_jobs_env_override(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "5")
    assert resolve_jobs() == 5
    assert ParallelRunner().jobs == 5


def test_resolve_jobs_bad_env_degrades_to_serial(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "lots")
    assert resolve_jobs() == 1


def test_resolve_jobs_default_is_positive(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs() >= 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(-4) == 1


def test_single_job_runs_serial_mode():
    assert ParallelRunner(1).mode == "serial"
    assert ParallelRunner(4, mode="serial").mode == "serial"


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        ParallelRunner(2, mode="fibers")


# ---------------------------------------------------------------------------
# map semantics
# ---------------------------------------------------------------------------


def _jittered_square(x: int) -> int:
    # later items finish first, exercising the index merge
    time.sleep(0.002 * (3 - x % 4))
    return x * x


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_map_preserves_input_order(jobs):
    items = list(range(23))
    out = ParallelRunner(jobs).map(_jittered_square, items, chunksize=2)
    assert out == [x * x for x in items]


def test_map_empty_and_singleton():
    runner = ParallelRunner(4)
    assert runner.map(lambda x: x + 1, []) == []
    assert runner.map(lambda x: x + 1, [41]) == [42]


def test_map_propagates_lowest_index_exception():
    def boom(x):
        if x in (3, 6):
            raise ValueError(f"item {x}")
        return x

    with pytest.raises(ValueError, match="item 3"):
        ParallelRunner(4).map(boom, list(range(8)), chunksize=1)


def test_starmap():
    out = ParallelRunner(2).starmap(lambda a, b: a - b, [(5, 2), (1, 7)])
    assert out == [3, -6]


# ---------------------------------------------------------------------------
# parallel == serial, end to end
# ---------------------------------------------------------------------------

_SHAPES = [
    GemmShape(3136, 576, 64),   # resnet-ish
    GemmShape(196, 2304, 256),
    GemmShape(37, 123, 211),    # nothing tile-aligned
]


@pytest.mark.parametrize("bits", [8, 4])
def test_autotune_identical_for_any_worker_count(bits):
    """Property: jobs in {1, 2, N} return the *same* AutotuneResult as the
    serial reference — best tiling, exact cycles, and the evaluated/pruned
    tallies (chunking is fixed, so even the counters cannot drift)."""
    for gemm in _SHAPES:
        reference = autotune_reference(gemm, bits)
        results = []
        for jobs in (1, 2, 4):
            clear_cache()
            with autotune_options(persistent=False):
                results.append(autotune(gemm, bits, jobs=jobs))
        first = results[0]
        for res in results:
            assert res.best == reference.best
            assert res.best_perf == reference.best_perf
            assert res.best_cycles == reference.best_cycles
            assert res == first  # counters included


def test_figure_series_identical_for_any_worker_count():
    """The Fig. 11 series regenerated through the engine (any jobs value)
    must equal the pre-optimization serial sweep exactly, float for float."""
    from repro.figures import fig11_gpu_autotune

    with autotune_options(engine=False):
        base = fig11_gpu_autotune("resnet50")

    for jobs in (1, 2, 4):
        clear_cache()
        with autotune_options(jobs=jobs, persistent=False):
            data = fig11_gpu_autotune("resnet50")
        assert data.labels == base.labels
        assert [(s.name, tuple(s.values)) for s in data.series] == [
            (s.name, tuple(s.values)) for s in base.series
        ]
        assert tuple(data.baseline_times) == tuple(base.baseline_times)


def test_executor_prewarm_does_not_change_graph_report(monkeypatch):
    """estimate_graph_cycles fans out a prewarm; the report must not
    depend on the worker count."""
    from repro.models import get_model_layers
    from repro.runtime.executor import estimate_graph_cycles
    from repro.runtime.graph import Graph, Op

    ops = []
    for spec in get_model_layers("resnet50")[:4]:
        ops += [
            Op("quantize", {"bits": 4, "scale": 0.05}),
            Op("conv", {"spec": spec, "bits": 4, "epilogue": "requant",
                        "out_scale": 0.1}),
            Op("dequantize", {"scale": 0.1}),
        ]
    graph = Graph(tuple(ops))
    clear_cache()
    serial = estimate_graph_cycles(graph, "gpu", jobs=1)
    clear_cache()
    parallel = estimate_graph_cycles(graph, "gpu", jobs=4)
    assert serial.op_cycles == parallel.op_cycles
    assert serial.total_cycles == parallel.total_cycles
