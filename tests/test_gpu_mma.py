"""Exact mma/dp4a semantics and int4 packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.gpu.mma import (
    dp4a,
    mma_m8n8k16_int8,
    mma_m8n8k32_int4,
    mma_shape,
    pack_int4,
    unpack_int4,
)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=40)
def test_mma_int8_matches_matmul(seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(-128, 128, (8, 16)).astype(np.int8)
    b = rng.integers(-128, 128, (16, 8)).astype(np.int8)
    c = rng.integers(-1000, 1000, (8, 8)).astype(np.int32)
    d = mma_m8n8k16_int8(a, b, c)
    assert d.dtype == np.int32
    assert np.array_equal(d, a.astype(np.int64) @ b.astype(np.int64) + c)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=40)
def test_mma_int4_matches_matmul(seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(-8, 8, (8, 32)).astype(np.int8)
    b = rng.integers(-8, 8, (32, 8)).astype(np.int8)
    d = mma_m8n8k32_int4(a, b)
    assert np.array_equal(d, a.astype(np.int64) @ b.astype(np.int64))


def test_mma_shape_validation():
    with pytest.raises(ShapeError):
        mma_m8n8k16_int8(np.zeros((8, 8), np.int8), np.zeros((16, 8), np.int8))
    with pytest.raises(ShapeError):
        mma_m8n8k32_int4(np.full((8, 32), 8, np.int8), np.zeros((32, 8), np.int8))
    with pytest.raises(ShapeError):
        mma_m8n8k16_int8(np.zeros((8, 16), np.float64), np.zeros((16, 8), np.int8))
    with pytest.raises(ShapeError):
        mma_m8n8k16_int8(np.zeros((8, 16), np.int8), np.zeros((16, 8), np.int8),
                         c=np.zeros((4, 4), np.int32))


def test_mma_shapes():
    assert mma_shape(8) == (8, 8, 16)
    assert mma_shape(4) == (8, 8, 32)
    with pytest.raises(ShapeError):
        mma_shape(2)


def test_dp4a():
    a = np.array([1, 2, 3, 4], dtype=np.int8)
    b = np.array([5, 6, 7, 8], dtype=np.int8)
    assert int(dp4a(a, b, 10)) == 5 + 12 + 21 + 32 + 10
    # vectorized over leading dims
    av = np.tile(a, (3, 1))
    bv = np.tile(b, (3, 1))
    assert dp4a(av, bv).tolist() == [70, 70, 70]
    with pytest.raises(ShapeError):
        dp4a(np.zeros(3, np.int8), np.zeros(4, np.int8))
    with pytest.raises(ShapeError):
        dp4a(np.full(4, 200), np.zeros(4, np.int8))


@given(st.lists(st.integers(-8, 7), min_size=2, max_size=64).filter(
    lambda v: len(v) % 2 == 0))
@settings(max_examples=60)
def test_int4_pack_roundtrip(values):
    vals = np.array(values, dtype=np.int8)
    packed = pack_int4(vals)
    assert packed.nbytes == vals.size // 2
    assert np.array_equal(unpack_int4(packed), vals)


def test_int4_pack_validation():
    with pytest.raises(ShapeError):
        pack_int4(np.array([1, 2, 3], dtype=np.int8))
    with pytest.raises(ShapeError):
        pack_int4(np.array([8, 0], dtype=np.int8))
