"""Event-driven block-level GPU simulator (Alg. 2 / Fig. 6, executable)."""

import numpy as np
import pytest

from repro.conv import conv2d_ref
from repro.errors import ShapeError, SimulationError
from repro.gpu.kernelsim import (
    BlockInstr,
    execute_block_program,
    generate_block_program,
    schedule_block_program,
    simulate_conv_block,
)
from repro.gpu.tiling import TilingParams
from repro.types import ConvSpec, Layout

SMALL = TilingParams(16, 16, 16, 16, 1, 1)
MID = TilingParams(64, 64, 32, 16, 2, 2)


def _conv_case(seed=0, bits=8):
    rng = np.random.default_rng(seed)
    spec = ConvSpec("b", in_channels=6, out_channels=10, height=6, width=6,
                    kernel=(3, 3), padding=(1, 1))
    half = 1 << (bits - 1)
    x = rng.integers(-half, half, spec.input_shape(Layout.NHWC)).astype(np.int8)
    w = rng.integers(-half, half, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    ref = conv2d_ref(spec, x, w, layout=Layout.NHWC).reshape(-1, 10)
    return spec, x, w, ref


@pytest.mark.parametrize("double_buffer", [True, False])
@pytest.mark.parametrize("m0", [0, 16, 32])
def test_block_execution_matches_reference(double_buffer, m0):
    spec, x, w, ref = _conv_case()
    tile = simulate_conv_block(spec, x, w, SMALL, 8, m0=m0,
                               double_buffer=double_buffer)
    rows = min(16, 36 - m0)
    assert np.array_equal(tile[:rows, :10], ref[m0:m0 + rows])
    # padded rows/cols are zero
    assert tile[rows:, :].sum() == 0
    assert tile[:, 10:].sum() == 0


def test_block_execution_int4():
    spec, x, w, ref = _conv_case(seed=1, bits=4)
    t4 = TilingParams(16, 16, 32, 32, 1, 1)
    tile = simulate_conv_block(spec, x, w, t4, 4)
    assert np.array_equal(tile[:16, :10], ref[:16])


def test_multiwarp_block_matches_reference():
    spec, x, w, ref = _conv_case(seed=2)
    tile = simulate_conv_block(spec, x, w, MID, 8)
    assert np.array_equal(tile[:36, :10], ref)


def test_program_structure():
    prog = generate_block_program(SMALL, 8, 4, double_buffer=True)
    ops = [p.op for p in prog]
    # double buffering: the second iteration's GLD precedes the first MMA
    first_mma = ops.index("MMA")
    glds_before = [p for p in prog[:first_mma] if p.op == "GLD_A"]
    assert {p.k_iter for p in glds_before} == {0, 1}
    assert ops[-1] == "EPI"
    # stages alternate
    stages = [p.stage for p in prog if p.op == "GLD_A"]
    assert stages == [0, 1, 0, 1]


def test_lds_before_barrier_is_rejected():
    bad = [
        BlockInstr("GLD_A", k_iter=0), BlockInstr("GLD_B", k_iter=0),
        BlockInstr("STS_A", k_iter=0), BlockInstr("STS_B", k_iter=0),
        BlockInstr("LDS_FRAG", k_iter=0, warp=(0, 0)),  # missing BAR
    ]
    with pytest.raises(SimulationError):
        execute_block_program(
            bad, SMALL, 8,
            gather_a=lambda i: np.zeros((16, 16), np.int8),
            slice_b=lambda i: np.zeros((16, 16), np.int8),
        )


def test_instr_validation():
    with pytest.raises(SimulationError):
        BlockInstr("NOT_AN_OP")
    with pytest.raises(ShapeError):
        generate_block_program(SMALL, 8, 0)


def test_double_buffer_overlap_fig6():
    """The event-driven schedule reproduces Fig. 6: with the register
    temporal buffer, global loads hide under mma; without it, the WAR on
    the staging registers serializes the pipeline."""
    db = schedule_block_program(
        generate_block_program(MID, 8, 16, double_buffer=True), MID, 8)
    nd = schedule_block_program(
        generate_block_program(MID, 8, 16, double_buffer=False), MID, 8)
    assert db.cycles < nd.cycles * 0.85
    assert db.overlap_cycles > 0


def test_reorder_ablation_in_schedule():
    on = schedule_block_program(
        generate_block_program(MID, 8, 16), MID, 8, reorder_smem=True)
    off = schedule_block_program(
        generate_block_program(MID, 8, 16), MID, 8, reorder_smem=False)
    assert off.cycles > on.cycles
    assert off.smem_busy == pytest.approx(4 * on.smem_busy)


def test_schedule_accounting_consistent():
    s = schedule_block_program(generate_block_program(MID, 8, 8), MID, 8)
    assert s.cycles >= max(s.mem_busy, s.tensor_busy, s.smem_busy)
    assert s.mem_utilization <= 1.0
    assert s.overlap_cycles >= 0


def test_cross_validation_with_analytic_model():
    """Per-block cycles from the event-driven simulator land within a small
    factor of the closed-form model (they share no code)."""
    from repro.gpu.pipelinemodel import kernel_time
    from repro.types import GemmShape

    k_iters = 16
    gemm = GemmShape(m=MID.m_tile, k=MID.k_tile * k_iters, n=MID.n_tile)
    analytic = kernel_time(gemm, 8, MID).total_cycles
    event = schedule_block_program(
        generate_block_program(MID, 8, k_iters), MID, 8).cycles
    ratio = event / analytic
    assert 0.3 < ratio < 3.0
