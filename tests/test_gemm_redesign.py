"""Re-designed GEMM (Fig. 1 / Eq. 1-4): correctness and instruction counts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gemm import (
    cal_ld_improvement,
    gemm_redesigned,
    gemm_traditional,
    plan_blocking,
    redesigned_counts,
    traditional_counts,
)
from repro.gemm.traditional import AccessCounter
from repro.types import GemmShape


@given(st.integers(1, 20), st.integers(1, 24), st.integers(1, 20),
       st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_both_walkers_compute_gemm(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(-50, 50, (m, k)).astype(np.int32)
    b = rng.integers(-50, 50, (k, n)).astype(np.int32)
    ref = a.astype(np.int64) @ b.astype(np.int64)
    assert np.array_equal(gemm_traditional(a, b), ref)
    assert np.array_equal(gemm_redesigned(a, b), ref)
    assert np.array_equal(gemm_redesigned(a, b, n_a=4, n_b=2), ref)


def test_eq1_eq2_traditional_counts():
    shape = GemmShape(m=64, k=256, n=128)
    c = traditional_counts(shape, theta1=16, beta1=2, beta2=1, delta=4)
    work = 64 * 256 * 128
    assert c.loads == 2 * work // 16  # Eq. 1
    assert c.arithmetic == work // 16 + (64 * 128 // 16) * 4  # Eq. 2


def test_eq3_eq4_redesigned_counts():
    shape = GemmShape(m=64, k=256, n=128)
    c = redesigned_counts(shape, theta1=16, theta2=4, beta1=2, beta2=1)
    work = 64 * 256 * 128
    assert c.loads == 2 * work // (4 * 16)  # Eq. 3
    assert c.arithmetic == work // 16  # Eq. 4


def test_cal_per_ld_improvement_is_theta2():
    """The paper's conclusion: CAL/LD improves ~4x with LD4R."""
    shape = GemmShape(m=128, k=1152, n=784)
    imp = cal_ld_improvement(shape)
    assert imp == pytest.approx(4.0, rel=0.05)


def test_measured_counters_track_analytic_model():
    rng = np.random.default_rng(0)
    m, k, n = 32, 64, 16
    a = rng.integers(-5, 5, (m, k)).astype(np.int32)
    b = rng.integers(-5, 5, (k, n)).astype(np.int32)

    ct = AccessCounter(simd_width=16)
    gemm_traditional(a, b, counter=ct)
    cr = AccessCounter(simd_width=16)
    gemm_redesigned(a, b, n_a=16, n_b=4, counter=cr)

    # the measured CAL/LD gap matches the analytic ~theta2 improvement
    measured = (cr.macs_instr / cr.loads) / (ct.macs_instr / ct.loads)
    assert measured == pytest.approx(4.0, rel=0.35)
    # and the walker's loads shrink by roughly theta2
    assert ct.loads / cr.loads > 2.5


def test_blocking_plan():
    shape = GemmShape(m=100, k=1000, n=50)
    plan = plan_blocking(shape)
    assert plan.m_padded == 112
    assert plan.n_padded == 52
    assert plan.m_tiles == 7
    assert plan.n_tiles == 13
    assert plan.kc <= shape.k
    assert plan.pad_waste > 0
    aligned = plan_blocking(GemmShape(m=32, k=64, n=8))
    assert aligned.pad_waste == pytest.approx(0.0)
