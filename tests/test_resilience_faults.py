"""Deterministic fault injection: grammar, determinism, hook semantics."""

import json

import pytest

from repro.errors import ReproError
from repro.resilience.faults import (
    FAULTS_ENV,
    FAULTS_SEED_ENV,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    fault_plan,
    inject,
    install_plan,
    maybe_corrupt,
    maybe_garbage,
)


@pytest.fixture(autouse=True)
def _no_env_plan(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv(FAULTS_SEED_ENV, raising=False)
    install_plan(None)
    yield
    install_plan(None)


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------


def test_spec_grammar_full_and_defaults():
    plan = FaultPlan.from_spec(
        "cache.put:raise:0.5:3:0.1; autotune.*:delay ;;")
    assert plan.rules == (
        FaultRule("cache.put", "raise", rate=0.5, times=3, param=0.1),
        FaultRule("autotune.*", "delay", rate=1.0, times=1, param=0.0),
    )


@pytest.mark.parametrize("spec", [
    "nocolon",
    "site:unknown-kind",
    "site:raise:2.0",      # rate out of range
    "site:raise:0.5:-1",   # negative times
    "site:raise:abc",      # unparseable rate
])
def test_bad_specs_raise_typed_errors(spec):
    with pytest.raises(ReproError):
        FaultPlan.from_spec(spec)


def test_invalid_env_spec_degrades_to_null_plan(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "broken")
    plan = active_plan()
    assert plan.rules == ()  # warned, not crashed
    inject("anything")  # and injection is a no-op


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_selection_is_deterministic_and_order_independent():
    keys = [f"k{i}" for i in range(200)]
    spec = "site:raise:0.3:0"

    def fired(order):
        plan = FaultPlan.from_spec(spec, seed=42)
        hit = set()
        for k in order:
            try:
                plan.inject("site", k)
            except InjectedFault:
                hit.add(k)
        return hit

    forward = fired(keys)
    backward = fired(list(reversed(keys)))
    assert forward == backward
    # rate ~0.3 over 200 keys: loose but meaningful bounds
    assert 30 <= len(forward) <= 90


def test_seed_changes_the_selection():
    keys = [f"k{i}" for i in range(100)]

    def fired(seed):
        plan = FaultPlan.from_spec("s:raise:0.5:0", seed=seed)
        return {k for k in keys
                if _raises(lambda k=k: plan.inject("s", k))}

    assert fired(1) != fired(2)


def _raises(fn):
    try:
        fn()
        return False
    except InjectedFault:
        return True


def test_times_budget_per_site_key():
    plan = FaultPlan.from_spec("s:raise:1:2")  # twice per key, then clears
    for _ in range(2):
        with pytest.raises(InjectedFault):
            plan.inject("s", "a")
    plan.inject("s", "a")  # third call: fault exhausted
    with pytest.raises(InjectedFault):
        plan.inject("s", "b")  # independent budget per key
    plan.reset()
    with pytest.raises(InjectedFault):
        plan.inject("s", "a")  # reset replays identically


def test_glob_sites_match():
    plan = FaultPlan.from_spec("cache.*:raise")
    with pytest.raises(InjectedFault):
        plan.inject("cache.put", "k")
    plan.inject("history.append", "k")  # no match, no fault


# ---------------------------------------------------------------------------
# Hook flavors
# ---------------------------------------------------------------------------


def test_corrupt_flips_bytes_deterministically():
    data = json.dumps({"v": list(range(50))}).encode()
    plan1 = FaultPlan.from_spec("w:corrupt:1:0:4", seed=7)
    plan2 = FaultPlan.from_spec("w:corrupt:1:0:4", seed=7)
    out1 = plan1.corrupt("w", data, "k")
    out2 = plan2.corrupt("w", data, "k")
    assert out1 == out2 != data
    assert len(out1) == len(data)


def test_garbage_replaces_value_with_non_dict():
    plan = FaultPlan.from_spec("r:garbage")
    value = plan.garbage("r", {"real": 1}, "k")
    assert not isinstance(value, dict)
    assert plan.garbage("r", {"real": 1}, "k") == {"real": 1}  # budget spent


def test_inject_counts_and_logs(caplog):
    plan = FaultPlan.from_spec("s:raise:1:0")
    with caplog.at_level("INFO", logger="repro.resilience.faults"):
        for _ in range(3):
            with pytest.raises(InjectedFault):
                plan.inject("s", "k")
    assert plan.counts() == {"s/raise": 3}
    assert plan.total_injected() == 3
    assert sum("fault_injected" in r.getMessage()
               for r in caplog.records) == 3


# ---------------------------------------------------------------------------
# Active-plan resolution
# ---------------------------------------------------------------------------


def test_installed_plan_beats_env_plan(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "s:raise")
    with fault_plan(None):  # explicit null install masks the env
        inject("s", "k")
    with pytest.raises(InjectedFault):
        inject("s", "k")  # env plan visible again


def test_fault_plan_contextmanager_restores(monkeypatch):
    with fault_plan("s:raise", seed=3) as plan:
        assert active_plan() is plan
        with pytest.raises(InjectedFault):
            inject("s", "k")
    inject("s", "k")  # back to the null plan


def test_env_plan_reparsed_on_change(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, "a:raise")
    with pytest.raises(InjectedFault):
        inject("a")
    monkeypatch.setenv(FAULTS_ENV, "b:raise")
    inject("a")  # old rule gone
    with pytest.raises(InjectedFault):
        inject("b")


def test_injected_fault_carries_context():
    with fault_plan("site.x:raise"):
        with pytest.raises(InjectedFault) as exc:
            inject("site.x", "key-1")
    assert exc.value.site == "site.x"
    assert exc.value.key == "key-1"
    assert exc.value.attempt == 1
    assert isinstance(exc.value, ReproError)
