"""The differential-profiling engine (repro.obs.diff).

Acceptance contracts: span trees align by name path through parent ids
(never by bare name), phase ranking is noise-robust (|log ratio| with a
floor, so a 2x shift on the pricing phase outranks 30% serial noise),
changepoints name the first offending ledger run, the differential
flamegraph is well-formed SVG, and every report serializes byte-stably.
"""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.obs import diff
from repro.obs import metrics as obs_metrics
from repro.obs.history import BenchLedger


@pytest.fixture(autouse=True)
def _fresh_metrics():
    obs_metrics.reset()
    yield
    obs_metrics.reset()


# ---------------------------------------------------------------------------
# span extraction and tree alignment
# ---------------------------------------------------------------------------


def _span(name, dur, sid=None, pid=None):
    return {"name": name, "dur_us": float(dur), "span_id": sid,
            "parent_id": pid}


def test_spans_from_chrome_reads_ids_and_skips_metadata():
    doc = {"traceEvents": [
        {"name": "process_name", "ph": "M", "args": {"name": "x"}},
        {"name": "hit", "ph": "i", "args": {}},
        {"name": "root", "ph": "X", "dur": 100.0,
         "args": {"span_id": "a", "trace_id": "t"}},
        {"name": "child", "ph": "X", "dur": 40.0,
         "args": {"span_id": "b", "parent_id": "a"}},
    ]}
    spans = diff.spans_from_chrome(doc)
    assert [s["name"] for s in spans] == ["root", "child"]
    assert spans[1]["parent_id"] == "a"


def test_aggregate_spans_aligns_same_name_under_different_parents():
    spans = [
        _span("cold", 100, "c", None), _span("warm", 50, "w", None),
        _span("search", 80, "s1", "c"), _span("search", 10, "s2", "w"),
    ]
    agg = diff.aggregate_spans(spans)
    assert agg["cold;search"]["total_us"] == 80.0
    assert agg["warm;search"]["total_us"] == 10.0
    # self time: parent minus its own children, never the other tree's
    assert agg["cold"]["self_us"] == 20.0
    assert agg["warm"]["self_us"] == 40.0


def test_aggregate_spans_clamps_negative_self_time():
    # clock jitter: child nominally outlasts the parent
    agg = diff.aggregate_spans(
        [_span("p", 10, "p1", None), _span("c", 12, "c1", "p1")])
    assert agg["p"]["self_us"] == 0.0


def test_aggregate_spans_flat_fallback_without_ids():
    agg = diff.aggregate_spans([_span("a", 5), _span("a", 7), _span("b", 1)])
    assert agg["a"] == {"count": 2, "total_us": 12.0, "self_us": 12.0}


def test_diff_spans_ranks_by_absolute_self_delta():
    a = [_span("x", 100), _span("y", 50)]
    b = [_span("x", 110), _span("y", 200)]
    deltas = diff.diff_spans(a, b)
    assert deltas[0].path == "y" and deltas[0].d_self_us == 150.0
    assert deltas[1].path == "x"
    # a side missing a path contributes zeros, not a KeyError
    only_b = diff.diff_spans([], [_span("z", 9)])
    assert only_b[0].count_a == 0 and only_b[0].self_us_b == 9.0


# ---------------------------------------------------------------------------
# phase ranking: the noise-robustness contract
# ---------------------------------------------------------------------------


def test_phase_ranking_prefers_ratio_over_absolute_delta():
    """The acceptance scenario: serial noise moves 95 ms, the pricing
    phase moves 17 ms — but 2.1x beats 1.5x on |log ratio|, so the
    pricing phase ranks first."""
    deltas = diff.diff_phases(
        {"gpu_serial": 0.190, "gpu_cold": 0.030},
        {"gpu_serial": 0.285, "gpu_cold": 0.0143})
    assert [d.phase for d in deltas[:2]] == ["gpu_cold", "gpu_serial"]


def test_phase_floor_demotes_sub_noise_phases():
    deltas = diff.diff_phases(
        {"gpu_warm": 0.001, "gpu_cold": 0.030},
        {"gpu_warm": 0.004, "gpu_cold": 0.031})
    # warm quadrupled but both sides sit under the 5 ms floor → last
    assert deltas[-1].phase == "gpu_warm" and deltas[-1].floored
    assert deltas[-1].score == 0.0
    # one side over the floor keeps the phase rankable
    live = diff.diff_phases({"p": 0.001}, {"p": 0.100})
    assert not live[0].floored and live[0].score > 0


def test_phase_missing_side_scores_zero_but_reports():
    deltas = diff.diff_phases({"gone": 0.5}, {})
    assert deltas[0].seconds_b is None and deltas[0].score == 0.0
    assert deltas[0].delta is None and deltas[0].ratio is None


# ---------------------------------------------------------------------------
# metrics / histogram deltas
# ---------------------------------------------------------------------------


def test_diff_metrics_drops_unchanged_and_ranks_by_delta():
    snap_a = {"counters": {"a": 10, "b": 5}, "gauges": {"g": 1.0},
              "histograms": {}}
    snap_b = {"counters": {"a": 10, "b": 105}, "gauges": {"g": 3.0},
              "histograms": {}}
    counters, gauges, hists = diff.diff_metrics(snap_a, snap_b)
    assert [d.key for d in counters] == ["b"] and counters[0].delta == 100.0
    assert gauges[0].delta == 2.0 and not hists


def test_histogram_delta_buckets_from_live_histograms():
    ha, hb = obs_metrics.Histogram(), obs_metrics.Histogram()
    for v in (0.5, 0.5, 200.0):
        ha.observe(v)
    for v in (0.5, 200.0, 200.0, 200.0):
        hb.observe(v)
    d = diff.histogram_delta("h", ha, hb)
    assert d.count_a == 3 and d.count_b == 4
    assert d.bucket_deltas is not None
    moved = dict(d.bucket_deltas)
    assert -1 in set(moved.values()) and 2 in set(moved.values())
    # snapshot dicts (no buckets) degrade to aggregates only
    d2 = diff.histogram_delta("h", ha.as_dict(), hb.as_dict())
    assert d2.bucket_deltas is None and d2.count_b == 4


# ---------------------------------------------------------------------------
# changepoint detection
# ---------------------------------------------------------------------------


def test_changepoint_finds_the_step():
    k, score = diff.changepoint([1.0, 1.05, 0.95, 3.0, 3.1, 2.9])
    assert k == 3 and score > 0.9


def test_changepoint_refuses_short_or_flat_series():
    assert diff.changepoint([1.0, 2.0, 3.0]) is None  # n < 4
    assert diff.changepoint([2.0] * 8) is None  # zero variance


def test_ledger_changepoints_name_the_first_offending_run():
    entries = []
    for i in range(6):
        entries.append({
            "run_id": f"r{i}", "git_sha": f"sha{i}",
            "wall_seconds": {"gpu_cold": 0.03 if i < 4 else 0.09,
                             "gpu_serial": 0.1},
        })
    cps = diff.ledger_changepoints(entries)
    assert [c.phase for c in cps] == ["gpu_cold"]  # flat serial suppressed
    assert cps[0].run_id == "r4" and cps[0].git_sha == "sha4"
    assert cps[0].shift == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# collapsed stacks: frame deltas + the differential flamegraph
# ---------------------------------------------------------------------------


def test_diff_frames_compares_shares_not_raw_counts():
    # run B sampled 10x longer; identical shares → no deltas
    a = {"m;hot": 80, "m;idle": 20}
    b = {"m;hot": 800, "m;idle": 200}
    assert diff.diff_frames(a, b) == []
    shifted = diff.diff_frames(a, {"m;hot": 200, "m;idle": 800})
    assert shifted[0].frame in ("hot", "idle")
    assert abs(shifted[0].d_share) == pytest.approx(0.6)


def test_differential_flamegraph_svg_well_formed_and_signed():
    a = {"main;work;hot": 80, "main;idle": 20}
    b = {"main;work;hot": 30, "main;idle": 70}
    svg = diff.differential_flamegraph_svg(a, b, label_a="scalar",
                                           label_b="vector")
    root = ET.fromstring(svg)  # raises on malformed XML
    assert root.tag.endswith("svg")
    rects = svg.count("<rect")
    assert rects >= 4  # all/main/work/hot/idle minus sub-pixel culls
    # the hot frame shrank (blue-ish) and idle grew (red-ish): both
    # non-neutral colors must appear, and tooltips carry both runs
    assert svg != diff.differential_flamegraph_svg(a, a)
    assert "scalar" in svg and "vector" in svg
    # identical sides render every frame in the neutral gray
    neutral = diff.differential_flamegraph_svg(a, a)
    assert neutral.count("#9a9994") == neutral.count("<rect")


def test_differential_flamegraph_empty_sides():
    assert "<svg" not in diff.differential_flamegraph_svg({}, {})


# ---------------------------------------------------------------------------
# side loading / auto-detection
# ---------------------------------------------------------------------------


def _ledger_entry(run_id, *, cold=0.03, sha="cafe0000", fp="fp0"):
    return {
        "schema": 3, "run_id": run_id, "git_sha": sha, "fingerprint": fp,
        "kind": "smoke", "model": "resnet50", "batch": 1, "jobs": 1,
        "backends": ["gpu"], "model_cycles": {"m": 1},
        "figures": {"fig10": {"s": [1.0]}},
        "wall_seconds": {"gpu_cold": cold, "gpu_serial": 0.1},
        "metrics": {"schema": 1, "counters": {}, "gauges": {},
                    "histograms": {}},
    }


def test_load_side_detects_each_file_kind(tmp_path):
    trace = tmp_path / "t.json"
    trace.write_text(json.dumps({"traceEvents": [
        {"name": "s", "ph": "X", "dur": 5.0, "args": {}}]}))
    bench = tmp_path / "BENCH_x.json"
    bench.write_text(json.dumps({
        "gpu_autotune": {"serial": {"seconds": 0.2},
                         "cold": {"seconds": 0.03},
                         "warm": {"seconds": 0.001}},
        "arm_schedule": None,
        "metrics": {"counters": {"c": 1}},
    }))
    metrics = tmp_path / "m.json"
    metrics.write_text(json.dumps({"counters": {"c": 2}, "gauges": {},
                                   "histograms": {}}))
    stacks = tmp_path / "s.txt"
    stacks.write_text("main;hot 10\nmain;idle 3\n")

    assert diff.load_side(str(trace)).kind == "trace"
    bench_side = diff.load_side(str(bench))
    assert bench_side.kind == "bench"
    assert bench_side.phases == {"gpu_serial": 0.2, "gpu_cold": 0.03,
                                 "gpu_warm": 0.001}
    assert diff.load_side(str(metrics)).kind == "metrics"
    assert diff.load_side(str(stacks)).stacks == {"main;hot": 10,
                                                  "main;idle": 3}


def test_load_side_resolves_ledger_selectors(tmp_path):
    ledger = BenchLedger(tmp_path)
    ledger.append(_ledger_entry("r0", sha="aaaa1111"))
    ledger.append(_ledger_entry("r1", sha="bbbb2222"))
    assert diff.load_side("-1", history_dir=tmp_path).label == "r1"
    assert diff.load_side("-2", history_dir=tmp_path).label == "r0"
    assert diff.load_side("aaaa", history_dir=tmp_path).label == "r0"
    with pytest.raises(ValueError, match="matches no"):
        diff.load_side("zzzz", history_dir=tmp_path)
    with pytest.raises(ValueError, match="only 2 entries"):
        diff.load_side("-3", history_dir=tmp_path)


def test_load_side_rejects_unrecognized_json(tmp_path):
    p = tmp_path / "x.json"
    p.write_text(json.dumps({"whatever": 1}))
    with pytest.raises(ValueError, match="unrecognized"):
        diff.load_side(str(p))


# ---------------------------------------------------------------------------
# the report: ranking + byte-stable serialization
# ---------------------------------------------------------------------------


def test_diff_sides_only_compares_shared_sections():
    a = diff.Side(label="a", kind="trace", spans=[_span("x", 5)])
    b = diff.Side(label="b", kind="bench", phases={"p": 1.0})
    report = diff.diff_sides(a, b)
    assert report.empty
    assert "identical" in "\n".join(report.table())


def test_report_json_is_byte_stable_and_capped():
    def build():
        a = diff.Side(label="A", kind="bench",
                      phases={"gpu_cold": 0.03, "gpu_serial": 0.1})
        b = diff.Side(label="B", kind="bench",
                      phases={"gpu_cold": 0.013, "gpu_serial": 0.11})
        return diff.diff_sides(a, b)

    j1, j2 = build().to_json(top=1), build().to_json(top=1)
    assert j1 == j2
    doc = json.loads(j1)
    assert doc["top"] == 1 and len(doc["phases"]) == 1
    assert doc["phases"][0]["phase"] == "gpu_cold"
    # compact separators + sorted keys + trailing newline
    assert j1.endswith("\n") and '": ' not in j1


def test_attribute_entries_is_deterministic_and_ranks_pricing():
    entries = [_ledger_entry(f"r{i}") for i in range(5)]
    entries.append(_ledger_entry("slow", cold=0.09, sha="eeee9999"))
    base, cand = entries[-2], entries[-1]
    r1 = diff.attribute_entries(base, cand, ledger_entries=entries)
    r2 = diff.attribute_entries(base, cand, ledger_entries=entries)
    assert r1.to_json(top=5) == r2.to_json(top=5)
    assert r1.top_phase().phase == "gpu_cold"
    assert r1.changepoints and r1.changepoints[0].run_id == "slow"


def test_top_phase_skips_floored_rows():
    report = diff.DiffReport(label_a="a", label_b="b")
    report.phases = diff.diff_phases({"w": 0.001}, {"w": 0.004})
    assert report.top_phase() is None
