"""Edge paths not covered elsewhere: describe strings, machine variants,
error branches."""

import numpy as np
import pytest

from repro.arm.conv_runner import time_arm_conv
from repro.arm.cost_model import ArmMachine, tile_cycles
from repro.arm.winograd_runner import time_winograd_conv
from repro.errors import UnsupportedBitsError
from repro.gpu.fusion import FusionMode, pipeline_time
from repro.gpu.tiling import TilingParams
from repro.types import ConvSpec, GemmShape

MID = ConvSpec("mid", in_channels=64, out_channels=64, height=14, width=14,
               kernel=(3, 3), padding=(1, 1))


def test_convspec_describe():
    s = MID.describe()
    assert "64->64" in s and "3x3" in s and "14x14" in s


def test_tilingparams_describe():
    t = TilingParams(64, 32, 32, 16, 2, 2)
    assert t.describe() == "M64xN32xK32/ks16@2x2w"


def test_custom_arm_machine_scales_times():
    slow = ArmMachine(clock_hz=0.6e9)
    fast = ArmMachine(clock_hz=1.2e9)
    p = time_arm_conv(MID, 4, machine=slow)
    q = time_arm_conv(MID, 4, machine=fast)
    # same cycles, different wall time
    assert p.total_cycles == q.total_cycles
    assert p.milliseconds(slow) == pytest.approx(2 * q.milliseconds(fast))


def test_tile_cycles_validation():
    with pytest.raises(UnsupportedBitsError):
        tile_cycles("smlal", 4, 0)
    with pytest.raises(UnsupportedBitsError):
        tile_cycles("unknown-scheme", 4, 16)


def test_tile_cycles_extrapolation_is_continuous():
    """The K > 512 linear fit lines up with the exact regime."""
    exact = tile_cycles("smlal", 4, 512)
    extrapolated = tile_cycles("smlal", 4, 513)
    assert abs(extrapolated - exact) / exact < 0.05


def test_winograd_runner_custom_machine():
    heavy_tf = ArmMachine(wino_input_tf_cycles_per_elem=10.0,
                          wino_output_tf_cycles_per_elem=10.0)
    default = time_winograd_conv(MID, 4)
    heavy = time_winograd_conv(MID, 4, machine=heavy_tf)
    assert heavy.total_cycles > default.total_cycles


def test_gpu_pipeline_none_mode_counts_stages():
    short = pipeline_time(MID, 8, FusionMode.NONE, with_relu=False)
    long = pipeline_time(MID, 8, FusionMode.NONE, with_relu=True)
    assert long.kernel_launches == short.kernel_launches + 2
    assert long.total_cycles > short.total_cycles
    assert long.microseconds() > 0


def test_gemm_shape_macs():
    g = GemmShape(m=3, k=5, n=7)
    assert g.macs == 105


def test_arm_perf_ms_default_machine():
    p = time_arm_conv(MID, 2)
    assert p.milliseconds() == pytest.approx(p.total_cycles / 1.2e9 * 1e3)


def test_sdot_scheme_via_layer_api_rejects_garbage():
    with pytest.raises(UnsupportedBitsError):
        time_arm_conv(MID, 8, scheme="popcount")  # popcount isn't a GEMM scheme
