"""Backend protocol, registry, and pricing-equivalence regressions.

The equivalence tests replicate the pre-refactor string-dispatch pricing
inline (direct ``time_arm_conv`` / ``autotune_conv`` calls with the exact
arguments the old ``estimate_graph_cycles`` used) and assert the backend
objects reproduce the same cycle totals bit-for-bit.
"""

import pytest

from repro.arm.conv_runner import time_arm_conv
from repro.arm.cost_model import PI3B
from repro.backends import (
    Backend,
    ConvPrice,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.errors import ReproError
from repro.gpu.autotune import autotune_conv
from repro.gpu.device import TU102
from repro.gpu.fusion import elementwise_kernel_cycles
from repro.models import get_model_layers
from repro.runtime import conv_pipeline, estimate_graph_cycles
from repro.runtime.network import build_chain, estimate_network_cycles
from repro.types import ConvSpec

SPEC = ConvSpec("c1", in_channels=4, out_channels=6, height=8, width=8,
                kernel=(3, 3), padding=(1, 1))

# a small ResNet-50 layer sample keeps the autotune sweeps cheap
LAYERS = get_model_layers("resnet50")[:3]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_builtin_backends_registered():
    names = available_backends()
    for builtin in ("arm", "gpu", "ref"):
        assert builtin in names


def test_unknown_backend_error_lists_available():
    with pytest.raises(ReproError) as exc:
        get_backend("tpu")
    msg = str(exc.value)
    assert "tpu" in msg
    for name in available_backends():
        assert name in msg


def test_get_backend_passes_instances_through():
    be = get_backend("ref")
    assert get_backend(be) is be
    assert get_backend("ref") is be  # instances are cached


class _NullBackend(Backend):
    name = "null"
    display_name = "Null"
    machine = None

    @property
    def clock_hz(self):
        return 1.0

    def price_conv(self, spec, bits, epilogue=None, **kwargs):
        return ConvPrice(backend=self.name, spec_name=spec.name, bits=bits,
                         total_cycles=1.0, compute_cycles=1.0,
                         quant_cycles=0.0, clock_hz=self.clock_hz)

    def price_elementwise(self, kind, elems):
        return 0.0


def test_register_roundtrip():
    register_backend("null", _NullBackend)
    try:
        assert "null" in available_backends()
        be = get_backend("null")
        assert be.price_conv(SPEC, 8).total_cycles == 1.0
        with pytest.raises(ReproError):
            register_backend("null", _NullBackend)  # duplicate
        register_backend("null", _NullBackend(), replace=True)
    finally:
        unregister_backend("null")
    assert "null" not in available_backends()
    with pytest.raises(ReproError):
        get_backend("null")


# ---------------------------------------------------------------------------
# ConvPrice equivalence with the underlying cost models
# ---------------------------------------------------------------------------


def test_arm_price_matches_conv_runner():
    arm = get_backend("arm")
    for spec in LAYERS:
        for bits in (2, 8):
            perf = time_arm_conv(spec, bits)
            price = arm.price_conv(spec, bits)
            assert price.total_cycles == perf.total_cycles
            assert price.quant_cycles == perf.quant_cycles
            assert price.graph_cycles == perf.total_cycles - perf.quant_cycles
            assert price.clock_hz == PI3B.clock_hz


def test_gpu_price_matches_autotune():
    gpu = get_backend("gpu")
    for spec in LAYERS:
        for bits in (4, 8):
            # bare-kernel pricing (what the figures use): default out bytes
            bare = autotune_conv(spec, bits)
            assert gpu.price_conv(spec, bits).total_cycles == bare.best_cycles
            # graph pricing with an explicit epilogue: epilogue-typed bytes
            tuned = autotune_conv(spec, bits, out_elem_bytes=bits / 8)
            price = gpu.price_conv(spec, bits, epilogue="requant")
            assert price.total_cycles == tuned.best_cycles
            assert price.quant_cycles == 0.0
            assert price.graph_cycles == tuned.best_cycles
            assert price.clock_hz == TU102.clock_hz


# ---------------------------------------------------------------------------
# Bit-identical graph/network totals vs the pre-refactor dispatch
# ---------------------------------------------------------------------------


def _pre_refactor_graph_cycles(graph, backend):
    """The old string-dispatch pricing loop, verbatim."""
    total = 0.0
    last_elems = 0
    for op in graph:
        if op.kind == "conv":
            spec = op.attrs["spec"]
            bits = op.attrs["bits"]
            last_elems = spec.output_elems
            if backend == "gpu":
                epi = op.attrs.get("epilogue", "requant")
                out_bytes = 4.0 if epi == "dequant" else bits / 8
                perf = autotune_conv(spec, bits, out_elem_bytes=out_bytes)
                total += perf.best_cycles
            else:
                perf = time_arm_conv(spec, bits)
                total += perf.total_cycles - perf.quant_cycles
        else:
            elems = last_elems if last_elems else 0
            if backend == "gpu":
                io = {"quantize": (4.0, 1.0), "dequantize": (1.0, 4.0),
                      "relu": (1.0, 1.0)}[op.kind]
                total += elementwise_kernel_cycles(elems * io[0], elems * io[1])
            else:
                per_elem = {"quantize": PI3B.quantize_cycles_per_elem,
                            "dequantize": PI3B.dequantize_cycles_per_elem,
                            "relu": 1.0}[op.kind]
                total += elems * per_elem
    return total


@pytest.mark.parametrize("backend", ["arm", "gpu"])
def test_graph_cycles_bit_identical_to_pre_refactor(backend):
    for spec in LAYERS:
        for bits in (4, 8):
            g = conv_pipeline(spec, bits)
            report = estimate_graph_cycles(g, backend)
            assert report.total_cycles == _pre_refactor_graph_cycles(g, backend)
            assert report.backend == backend


@pytest.mark.parametrize("backend,clock", [("arm", 1.2e9), ("gpu", 1.545e9)])
def test_network_cycles_and_clock_bit_identical(backend, clock):
    net = build_chain("tiny", 4, [(8, 3, 1), (8, 3, 1)], height=8, width=8)
    report = estimate_network_cycles(net, backend)
    expected = sum(
        _pre_refactor_graph_cycles(stage.graph, backend) for stage in net.stages
    )
    assert report.total_cycles == expected
    # the old hardcoded clock literals, now sourced from the backends
    assert get_backend(backend).clock_hz == clock
    assert report.milliseconds() == report.total_cycles / clock * 1e3


# ---------------------------------------------------------------------------
# The ref backend runs end-to-end
# ---------------------------------------------------------------------------


def test_ref_backend_prices_graphs_and_networks():
    ref = get_backend("ref")
    g = conv_pipeline(SPEC, 8)
    report = estimate_graph_cycles(g, "ref")
    assert report.backend == "ref"
    assert report.total_cycles > 0
    net = build_chain("tiny", 4, [(8, 3, 1)], height=8, width=8)
    nreport = estimate_network_cycles(net, ref)
    assert nreport.total_cycles > 0
    assert nreport.milliseconds() == nreport.total_cycles / 1.0e9 * 1e3


def test_ref_price_is_op_count():
    ref = get_backend("ref")
    price = ref.price_conv(SPEC, 8)
    assert price.compute_cycles == SPEC.macs / 64.0
    assert price.total_cycles == price.compute_cycles + SPEC.output_elems / 8.0
    with pytest.raises(ReproError):
        ref.price_conv(SPEC, 8, algorithm="winograd")
    with pytest.raises(ReproError):
        ref.price_elementwise("normalize", 10)


def test_cli_backend_flag(capsys):
    from repro.cli import main

    assert main(["layers", "resnet50", "--backend", "ref"]) == 0
    out = capsys.readouterr().out
    assert "ref 8-bit" in out
    assert "total:" in out
    assert main(["layers", "resnet50", "--backend", "tpu"]) == 2
    err = capsys.readouterr().err
    assert "arm" in err and "gpu" in err and "ref" in err


def test_cli_profile_ref_backend(capsys):
    from repro.cli import main

    assert main(["profile", "resnet50", "--backend", "ref"]) == 0
    assert main(["profile", "resnet50", "--backend", "tpu"]) == 2
