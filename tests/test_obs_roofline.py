"""Roofline analytics: backend hooks, derived metrics, renderers.

The physical invariants under test: achieved throughput never beats the
roof by construction of the cost models' own peaks, intensity comes from
the backends' declared traffic, the CAL/LD improvement reproduces the
Fig. 1 ~4x claim, and the chain-overhead fraction falls with chain
length (8-bit pays the most, 4-bit the least among SMLAL widths).
"""

import pytest

from repro.backends import available_backends, get_backend
from repro.errors import ReproError
from repro.models import get_model_layers
from repro.obs import metrics as obs_metrics
from repro.obs import roofline
from repro.obs.htmlreport import render_report
from repro.types import GemmShape


@pytest.fixture(autouse=True)
def _fresh_metrics():
    obs_metrics.reset()
    yield
    obs_metrics.reset()


def test_backend_hooks_exist_everywhere():
    spec = get_model_layers("resnet50")[0]
    for name in available_backends():
        be = get_backend(name)
        bits = roofline.DEFAULT_BITS.get(name, (8,))[0]
        assert be.peak_ops_per_sec(bits) > 0
        assert be.peak_bandwidth_bytes_per_sec() > 0
        traffic = be.conv_traffic(spec, bits)
        assert traffic["total"] > 0
        # "total" covers at least the compulsory streams listed beside it
        assert traffic["total"] >= max(
            v for k, v in traffic.items() if k != "total")


def test_base_backend_hooks_raise_repro_error():
    from repro.backends.base import Backend

    class Bare(Backend):
        name = "bare"
        display_name = "Bare"
        clock_hz = 1e9

        def price_conv(self, spec, bits, **kw):  # pragma: no cover
            raise NotImplementedError

        def price_elementwise(self, n):  # pragma: no cover
            raise NotImplementedError

    be = Bare()
    spec = get_model_layers("resnet50")[0]
    for call in (lambda: be.peak_ops_per_sec(8),
                 lambda: be.peak_bandwidth_bytes_per_sec(),
                 lambda: be.conv_traffic(spec, 8)):
        with pytest.raises(ReproError):
            call()


@pytest.mark.parametrize("backend_name", ["arm", "gpu", "ref"])
def test_model_roofline_points_respect_the_roof(backend_name):
    points = roofline.model_roofline("resnet50", backend_name)
    layers = get_model_layers("resnet50")
    bits = roofline.DEFAULT_BITS[backend_name]
    assert len(points) == len(layers) * len(bits)
    for p in points:
        assert p.intensity > 0
        assert 0 < p.achieved_ops <= p.roof_ops * (1 + 1e-9), p
        assert p.roof_ops == min(p.peak_compute_ops,
                                 p.peak_bandwidth * p.intensity)
        assert p.bound in ("compute", "memory")
        assert 0 < p.pct_of_roof <= 1 + 1e-9


def test_roofline_registers_gauges():
    roofline.model_roofline("resnet50", "ref")
    gauges = obs_metrics.snapshot()["gauges"]
    assert any(k.startswith("roofline_intensity{") for k in gauges)
    assert any(k.startswith("roofline_pct_of_roof{") for k in gauges)


def test_arm_peak_tracks_bit_width():
    """2-bit runs on the MLA scheme (8 MACs/cycle) — twice the SMLAL
    widths' compute roof; the memory roof is bit-width independent."""
    arm = get_backend("arm")
    assert arm.peak_ops_per_sec(2) == pytest.approx(
        2 * arm.peak_ops_per_sec(4))
    assert arm.peak_ops_per_sec(4) == arm.peak_ops_per_sec(8)


def test_gpu_peak_tracks_mac_rate():
    gpu = get_backend("gpu")
    assert gpu.peak_ops_per_sec(4) == pytest.approx(
        2 * gpu.peak_ops_per_sec(8))


def test_cal_ld_reproduces_the_4x_claim():
    table = roofline.model_cal_ld("resnet50")
    assert len(table) == len(get_model_layers("resnet50"))
    for row in table:
        assert row["improvement"] == pytest.approx(4.0, rel=0.35)
        assert row["redesigned"] > row["traditional"]
    gauges = obs_metrics.snapshot()["gauges"]
    assert any(k.startswith("gemm_cal_ld_improvement{") for k in gauges)


def test_cal_ld_point_without_layer_sets_no_gauges():
    roofline.cal_ld_point(GemmShape(m=64, k=576, n=3136))
    assert not obs_metrics.snapshot()["gauges"]


def test_chain_overhead_falls_with_chain_length():
    table = {row["bits"]: row for row in roofline.chain_overhead_table()}
    assert set(table) == {2, 3, 4, 5, 6, 7, 8}
    for row in table.values():
        assert 0 < row["fraction"] < 0.5
        assert row["widen_cycles"] < row["busy_cycles"]
    # among the SMLAL widths the short 8-bit chain drains ~256x more
    # often than 4-bit, so its widening share must dominate
    assert table[8]["fraction"] > table[6]["fraction"] > table[4]["fraction"]
    assert table[4]["chain"] == 511 and table[8]["chain"] == 2


def test_text_renderers_cover_every_point():
    points = roofline.model_roofline("resnet50", "ref")
    lines = roofline.roofline_table(points)
    assert len(lines) == len(points) + 1  # header + one row each
    assert "bound" in lines[0]
    plot = roofline.ascii_roofline(points)
    assert any("-" in ln for ln in plot)  # the flat compute roof
    assert any("8" in ln for ln in plot[1:-2])  # the 8-bit points
    assert roofline.roofline_table([]) == ["  (no roofline points)"]


def test_html_report_is_self_contained(tmp_path):
    text = render_report(model="resnet50", backends=("ref",),
                         history_dir=tmp_path / "history")
    assert text.startswith("<!doctype html>")
    for forbidden in ("<script", "http://", "https://", "url("):
        assert forbidden not in text
    assert text.count("<svg") >= 2  # roofline scatter + chain bars
    assert "data table" in text  # the accessibility/table view
    assert "4" in text and "CAL/LD" in text
