"""ARM convolution runner: functional exactness + cost-model structure."""

import numpy as np
import pytest

from repro.arm.conv_runner import (
    execute_arm_conv,
    ncnn_conv_cycles,
    time_arm_conv,
    tvm_popcount_cycles,
)
from repro.arm.cost_model import PI3B, is_pointwise_unit_stride, scheme_for_bits
from repro.conv import conv2d_ref
from repro.errors import UnsupportedBitsError
from repro.types import ConvSpec, Layout


def _case(rng, spec, bits):
    half = 1 << (bits - 1)
    lo = -(half - 1) if bits >= 7 else -half
    x = rng.integers(lo, half, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(lo, half, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    return x, w


@pytest.mark.parametrize("bits", [2, 3, 4, 5, 6, 7, 8])
def test_execute_matches_ref(bits):
    rng = np.random.default_rng(bits)
    spec = ConvSpec("t", in_channels=5, out_channels=9, height=7, width=8,
                    kernel=(3, 3), padding=(1, 1))
    x, w = _case(rng, spec, bits)
    out = execute_arm_conv(spec, x, w, bits, check_overflow=True)
    assert np.array_equal(out, conv2d_ref(spec, x, w))


def test_execute_ncnn_scheme_matches_ref():
    rng = np.random.default_rng(42)
    spec = ConvSpec("t", in_channels=4, out_channels=6, height=6, width=6,
                    kernel=(3, 3), padding=(1, 1))
    x, w = _case(rng, spec, 8)
    out = execute_arm_conv(spec, x, w, 8, scheme="ncnn", check_overflow=True)
    assert np.array_equal(out, conv2d_ref(spec, x, w))


def test_execute_strided_and_batched():
    rng = np.random.default_rng(7)
    spec = ConvSpec("t", in_channels=3, out_channels=5, height=9, width=9,
                    kernel=(3, 3), stride=(2, 2), padding=(1, 1), batch=2)
    x, w = _case(rng, spec, 4)
    out = execute_arm_conv(spec, x, w, 4)
    assert np.array_equal(out, conv2d_ref(spec, x, w))


def test_scheme_selection():
    assert scheme_for_bits(2) == "mla"
    assert scheme_for_bits(3) == "mla"
    assert scheme_for_bits(4) == "smlal"
    assert scheme_for_bits(8) == "smlal"
    with pytest.raises(UnsupportedBitsError):
        scheme_for_bits(1)
    with pytest.raises(UnsupportedBitsError):
        scheme_for_bits(9)


def test_pointwise_detection():
    pw = ConvSpec("p", in_channels=8, out_channels=8, height=4, width=4,
                  kernel=(1, 1))
    assert is_pointwise_unit_stride(pw)
    assert not is_pointwise_unit_stride(
        ConvSpec("p", in_channels=8, out_channels=8, height=4, width=4,
                 kernel=(1, 1), stride=(2, 2))
    )


MID = ConvSpec("mid", in_channels=128, out_channels=128, height=28, width=28,
               kernel=(3, 3), padding=(1, 1))


def test_perf_breakdown_is_positive():
    perf = time_arm_conv(MID, 4)
    for field in ("kernel_cycles", "im2col_cycles", "pack_cycles",
                  "requant_cycles", "mem_cycles", "overhead_cycles",
                  "quant_cycles"):
        assert getattr(perf, field) >= 0
    assert perf.total_cycles > perf.kernel_cycles
    assert perf.milliseconds() > 0


def test_speedup_monotone_in_bits():
    """Fig. 7's headline trend: lower bits -> higher speedup."""
    base = ncnn_conv_cycles(MID).total_cycles
    speedups = [base / time_arm_conv(MID, b).total_cycles for b in range(2, 9)]
    assert speedups == sorted(speedups, reverse=True)


def test_8bit_is_near_parity_with_ncnn():
    """Sec. 5.2: 'for 8-bit implementation, our optimization achieves
    lower [or comparable] performance compared to ncnn'."""
    base = ncnn_conv_cycles(MID).total_cycles
    ours = time_arm_conv(MID, 8).total_cycles
    assert 0.85 <= base / ours <= 1.15


def test_2bit_beats_ncnn_substantially():
    base = ncnn_conv_cycles(MID).total_cycles
    ours = time_arm_conv(MID, 2).total_cycles
    assert base / ours > 1.5


def test_small_pointwise_layer_has_lower_speedup():
    """The paper's conv1/conv3 observation: tiny 1x1/64ch layers benefit
    least (limited computation intensity after blocking)."""
    small = ConvSpec("s", in_channels=64, out_channels=64, height=56, width=56,
                     kernel=(1, 1))
    sp_small = (ncnn_conv_cycles(small).total_cycles
                / time_arm_conv(small, 2).total_cycles)
    sp_mid = (ncnn_conv_cycles(MID).total_cycles
              / time_arm_conv(MID, 2).total_cycles)
    assert sp_small < sp_mid


def test_interleave_ablation_helps():
    with_il = time_arm_conv(MID, 4, interleave=True).total_cycles
    without = time_arm_conv(MID, 4, interleave=False).total_cycles
    assert with_il < without


def test_batch_scales_costs():
    b1 = time_arm_conv(MID, 4).total_cycles
    b4 = time_arm_conv(MID.with_batch(4), 4).total_cycles
    assert 3.5 * b1 < b4 < 4.5 * b1


def test_tvm_popcount_baseline():
    tvm = tvm_popcount_cycles(MID)
    assert tvm.scheme == "popcount"
    ours = time_arm_conv(MID, 2)
    # Fig. 9: ours wins on most layers
    assert tvm.total_cycles > ours.total_cycles
    with pytest.raises(UnsupportedBitsError):
        tvm_popcount_cycles(MID, bits=3)


def test_ncnn_winograd_dispatch_ablation():
    plain = ncnn_conv_cycles(MID, allow_winograd=False)
    wino = ncnn_conv_cycles(MID, allow_winograd=True)
    assert wino.total_cycles <= plain.total_cycles
    # for a non-eligible layer they coincide
    pw = ConvSpec("p", in_channels=64, out_channels=64, height=28, width=28,
                  kernel=(1, 1))
    assert (ncnn_conv_cycles(pw, allow_winograd=True).total_cycles
            == ncnn_conv_cycles(pw, allow_winograd=False).total_cycles)
