"""GPU winograd pricing: the quantified reason it stays on ARM."""

import pytest

from repro.errors import ShapeError
from repro.gpu.winograd import gpu_winograd_time, winograd_vs_implicit
from repro.models import resnet50_conv_layers
from repro.types import ConvSpec

ELIGIBLE = [s for s in resnet50_conv_layers() if s.is_winograd_eligible()]


def test_breakdown_positive():
    perf = gpu_winograd_time(ELIGIBLE[0], 8)
    assert perf.transform_in_cycles > 0
    assert perf.gemm_cycles > 0
    assert perf.transform_out_cycles > 0
    assert perf.total_cycles == pytest.approx(
        perf.transform_in_cycles + perf.gemm_cycles + perf.transform_out_cycles
    )
    assert perf.microseconds() > 0


def test_requires_3x3_s1():
    bad = ConvSpec("b", in_channels=8, out_channels=8, height=8, width=8,
                   kernel=(1, 1))
    with pytest.raises(ShapeError):
        gpu_winograd_time(bad, 8)


@pytest.mark.parametrize("batch", [1, 16])
def test_implicit_gemm_wins_on_tensor_cores(batch):
    """On Turing the transform traffic outweighs the 2.25x multiply saving
    — winograd never beats the paper's implicit-GEMM path at int8."""
    for spec in ELIGIBLE:
        r = winograd_vs_implicit(spec.with_batch(batch), 8)
        assert r["winograd_over_implicit"] >= 1.0


def test_transforms_dominate_on_small_layers():
    """For the cheapest layers the GEMM is a minority of winograd time."""
    perf = gpu_winograd_time(ELIGIBLE[0], 8)  # 56x56/64ch
    tf = perf.transform_in_cycles + perf.transform_out_cycles
    assert tf > perf.gemm_cycles
