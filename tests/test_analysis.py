"""Space-overhead accounting (Fig. 13) and report formatting."""

import pytest

from repro.analysis import (
    Series,
    ascii_bar,
    ascii_chart,
    format_table,
    model_space_report,
    space_overhead,
)
from repro.errors import ReproError
from repro.models import resnet50_conv_layers
from repro.types import ConvSpec


def test_pointwise_layer_im2col_is_activation_sized():
    spec = ConvSpec("p", in_channels=64, out_channels=64, height=56, width=56,
                    kernel=(1, 1))
    so = space_overhead(spec)
    assert so.im2col_bytes == so.activation_bytes
    # footprint keeps the activation alive alongside the column matrix
    expected = (2 * so.activation_bytes + so.weight_bytes) / so.baseline_bytes
    assert so.im2col_ratio == pytest.approx(expected)


def test_strided_pointwise_matches_paper_minimum():
    """The paper's Fig. 13 minimum (1.0218x at its conv18) is the
    1024->2048 stride-2 pointwise layer."""
    spec = ConvSpec("p", in_channels=1024, out_channels=2048, height=14,
                    width=14, kernel=(1, 1), stride=(2, 2))
    assert space_overhead(spec).im2col_ratio == pytest.approx(1.0218, abs=1e-4)


def test_3x3_layer_im2col_is_about_9x_activation():
    spec = ConvSpec("m", in_channels=64, out_channels=64, height=56, width=56,
                    kernel=(3, 3), padding=(1, 1))
    so = space_overhead(spec)
    assert so.im2col_bytes == 9 * 64 * 56 * 56
    assert 7.0 < so.im2col_ratio < 9.0


def test_pack_overhead_is_tiny():
    """Fig. 13: pad+pack overhead ranges 1.0x ~ 1.0058x."""
    for so in model_space_report(resnet50_conv_layers()):
        assert 1.0 <= so.pack_ratio < 1.02


def test_resnet50_fig13_matches_paper():
    """Fig. 13: im2col overhead min 1.0218x, max 8.6034x, avg ~1.94;
    pad/pack overhead 1.0x ~ 1.0058x with average ~1.0010."""
    report = model_space_report(resnet50_conv_layers())
    ratios = [so.im2col_ratio for so in report]
    assert min(ratios) == pytest.approx(1.0218, abs=5e-3)
    assert max(ratios) == pytest.approx(8.6034, abs=5e-2)
    avg = sum(ratios) / len(ratios)
    assert 1.5 < avg < 2.5
    packs = [so.pack_ratio for so in report]
    assert max(packs) < 1.01
    totals = [so.total_ratio for so in report]
    assert min(totals) == pytest.approx(1.0232, abs=5e-3)


def test_pack_exact_bytes():
    spec = ConvSpec("m", in_channels=3, out_channels=10, height=8, width=8,
                    kernel=(3, 3), padding=(1, 1))
    so = space_overhead(spec, n_a=16, n_b=4)
    assert so.packed_a_bytes == 16 * 27  # M=10 padded to 16
    assert so.packed_b_bytes == 27 * 64  # N=64 already aligned


def test_series_and_table():
    s1 = Series("a", (1.0, 2.0, 4.0))
    assert s1.geomean() == pytest.approx(2.0)
    out = format_table(["x", "y", "z"], [s1])
    assert "geomean" in out and "2.00" in out
    with pytest.raises(ReproError):
        format_table(["x"], [s1])


def test_ascii_helpers():
    assert ascii_bar(2.0, scale=3) == "######"
    assert ascii_bar(-1.0) == ""
    chart = ascii_chart(["l1"], [Series("s", (1.5,))])
    assert "l1" in chart and "#" in chart
