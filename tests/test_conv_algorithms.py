"""All convolution algorithms agree bit-for-bit with the direct reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import (
    conv2d,
    conv2d_bitserial,
    conv2d_gemm,
    conv2d_ref,
    conv2d_winograd,
    get_algorithm,
)
from repro.errors import ReproError, ShapeError
from repro.types import ConvSpec, Layout


def _random_case(rng, spec, bits):
    half = 1 << (bits - 1)
    x = rng.integers(-half, half, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-half, half, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    return x, w


@st.composite
def conv_cases(draw):
    cin = draw(st.integers(1, 6))
    cout = draw(st.integers(1, 8))
    h = draw(st.integers(3, 12))
    wd = draw(st.integers(3, 12))
    kh = draw(st.sampled_from([1, 3, 5]))
    kw = draw(st.sampled_from([1, 3]))
    sh = draw(st.integers(1, 2))
    ph = draw(st.integers(0, 2))
    batch = draw(st.integers(1, 2))
    # keep outputs positive
    if h + 2 * ph < kh or wd + 2 * ph < kw:
        ph = max(kh, kw)
    return ConvSpec("h", in_channels=cin, out_channels=cout, height=h, width=wd,
                    kernel=(kh, kw), stride=(sh, sh), padding=(ph, ph), batch=batch)


@given(conv_cases(), st.integers(0, 2**32 - 1), st.integers(2, 8))
@settings(max_examples=30, deadline=None)
def test_gemm_matches_ref(spec, seed, bits):
    rng = np.random.default_rng(seed)
    x, w = _random_case(rng, spec, bits)
    assert np.array_equal(conv2d_gemm(spec, x, w), conv2d_ref(spec, x, w))


@given(st.integers(0, 2**32 - 1), st.integers(2, 8),
       st.integers(1, 5), st.integers(1, 6), st.integers(4, 11), st.integers(0, 1))
@settings(max_examples=30, deadline=None)
def test_winograd_exact_matches_ref(seed, bits, cin, cout, size, pad):
    spec = ConvSpec("h", in_channels=cin, out_channels=cout, height=size,
                    width=size + 1, kernel=(3, 3), stride=(1, 1),
                    padding=(pad, pad))
    rng = np.random.default_rng(seed)
    x, w = _random_case(rng, spec, bits)
    assert np.array_equal(conv2d_winograd(spec, x, w, mode="exact"),
                          conv2d_ref(spec, x, w))


@given(st.integers(0, 2**32 - 1), st.sampled_from([(2, 2), (2, 3), (3, 2), (3, 3)]))
@settings(max_examples=20, deadline=None)
def test_bitserial_matches_ref(seed, bits_pair):
    ba, bw = bits_pair
    spec = ConvSpec("h", in_channels=3, out_channels=4, height=7, width=8,
                    kernel=(3, 3), padding=(1, 1))
    rng = np.random.default_rng(seed)
    xa = rng.integers(-(1 << (ba - 1)), 1 << (ba - 1),
                      spec.input_shape(Layout.NCHW)).astype(np.int8)
    ww = rng.integers(-(1 << (bw - 1)), 1 << (bw - 1),
                      spec.weight_shape(Layout.NCHW)).astype(np.int8)
    assert np.array_equal(
        conv2d_bitserial(spec, xa, ww, bits_a=ba, bits_w=bw),
        conv2d_ref(spec, xa, ww),
    )


def test_bias_applied_everywhere():
    rng = np.random.default_rng(0)
    spec = ConvSpec("b", in_channels=3, out_channels=5, height=6, width=6,
                    kernel=(3, 3), padding=(1, 1))
    x, w = _random_case(rng, spec, 4)
    bias = rng.integers(-100, 100, 5)
    ref = conv2d_ref(spec, x, w, bias=bias)
    assert np.array_equal(conv2d_gemm(spec, x, w, bias=bias), ref)
    assert np.array_equal(conv2d_winograd(spec, x, w, bias=bias), ref)
    assert np.array_equal(
        conv2d_bitserial(spec, x, w, bits_a=4, bits_w=4, bias=bias), ref
    )


def test_nhwc_matches_nchw():
    rng = np.random.default_rng(1)
    spec = ConvSpec("l", in_channels=4, out_channels=6, height=9, width=7,
                    kernel=(3, 3), stride=(2, 2), padding=(1, 1), batch=2)
    x, w = _random_case(rng, spec, 6)
    ref = conv2d_ref(spec, x, w, layout=Layout.NCHW)
    nhwc = conv2d_ref(spec, np.transpose(x, (0, 2, 3, 1)), w, layout=Layout.NHWC)
    assert np.array_equal(np.transpose(nhwc, (0, 3, 1, 2)), ref)


def test_registry_dispatch():
    rng = np.random.default_rng(2)
    spec = ConvSpec("r", in_channels=2, out_channels=3, height=5, width=5,
                    kernel=(3, 3), padding=(1, 1))
    x, w = _random_case(rng, spec, 3)
    ref = conv2d(spec, x, w, algorithm="direct")
    assert np.array_equal(conv2d(spec, x, w, algorithm="gemm"), ref)
    assert np.array_equal(conv2d(spec, x, w, algorithm="winograd"), ref)
    with pytest.raises(ReproError):
        get_algorithm("does-not-exist")


def test_ref_rejects_float_input():
    spec = ConvSpec("f", in_channels=1, out_channels=1, height=3, width=3)
    with pytest.raises(ShapeError):
        conv2d_ref(spec, np.zeros(spec.input_shape(Layout.NCHW)),
                   np.zeros(spec.weight_shape(Layout.NCHW), dtype=np.int8))


def test_ref_rejects_bad_shapes():
    spec = ConvSpec("f", in_channels=2, out_channels=2, height=4, width=4)
    x = np.zeros((1, 2, 4, 4), dtype=np.int8)
    w_bad = np.zeros((2, 2, 5, 5), dtype=np.int8)
    with pytest.raises(ShapeError):
        conv2d_ref(spec, x, w_bad)


def test_grouped_convolution():
    spec = ConvSpec("g", in_channels=4, out_channels=6, height=5, width=5,
                    kernel=(3, 3), padding=(1, 1), groups=2)
    rng = np.random.default_rng(3)
    x = rng.integers(-4, 4, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-4, 4, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    out = conv2d_ref(spec, x, w)
    # group 0 outputs depend only on group 0 inputs
    x2 = x.copy()
    x2[:, 2:] = 0  # zero group-1 channels
    out2 = conv2d_ref(spec, x2, w)
    assert np.array_equal(out[:, :3], out2[:, :3])
