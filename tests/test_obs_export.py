"""OpenMetrics exposition: renderer, strict parser, exemplars, serve, top.

The contract under test: :func:`repro.obs.export.render` emits a
document the deliberately strict in-repo parser accepts (the CI gate is
this round-trip), histogram buckets are cumulative with a ``+Inf``
terminator equal to ``_count``, exemplars ride on bucket samples and
resolve to flight-recorder spans, and the ``/metrics`` endpoint serves
the identical payload.
"""

import io
import math
import threading
import urllib.request

import pytest

from repro.obs import export, flight, metrics, trace


@pytest.fixture(autouse=True)
def fresh_registry():
    metrics.reset()
    yield
    metrics.reset()


def _seed_registry():
    metrics.counter("requests", route="/a").inc(3)
    metrics.counter("requests", route="/b").inc()
    metrics.gauge("queue_depth").set(7)
    h = metrics.histogram("latency_seconds", op="fwd")
    for v in (0.002, 0.004, 0.5, 2.0):
        h.observe(v)


# ---------------------------------------------------------------------------
# Rendering + round-trip
# ---------------------------------------------------------------------------


def test_render_round_trips_through_strict_parser():
    _seed_registry()
    text = export.render()
    fams = export.validate(text)
    assert set(fams) == {"requests", "queue_depth", "latency_seconds"}
    assert fams["requests"].type == "counter"
    assert fams["queue_depth"].type == "gauge"
    assert fams["latency_seconds"].type == "histogram"
    totals = {tuple(sorted(s.labels.items())): s.value
              for s in fams["requests"].samples}
    assert totals == {(("route", "/a"),): 3.0, (("route", "/b"),): 1.0}


def test_histogram_buckets_cumulative_with_inf_terminator():
    _seed_registry()
    fams = export.validate(export.render())
    buckets = [s for s in fams["latency_seconds"].samples
               if s.name == "latency_seconds_bucket"]
    values = [s.value for s in buckets]
    assert values == sorted(values)  # cumulative
    les = [export._parse_number(s.labels["le"]) for s in buckets]
    assert math.isinf(les[-1])
    count = next(s.value for s in fams["latency_seconds"].samples
                 if s.name == "latency_seconds_count")
    assert values[-1] == count == 4
    s_sum = next(s.value for s in fams["latency_seconds"].samples
                 if s.name == "latency_seconds_sum")
    assert s_sum == pytest.approx(2.506)


def test_empty_registry_renders_bare_eof():
    text = export.render()
    assert text == "# EOF\n"
    assert export.validate(text) == {}


def test_label_values_with_specials_survive_the_round_trip():
    metrics.counter("odd", path='a"b\\c', note="x,y{z}=w").inc()
    fams = export.validate(export.render())
    (sample,) = fams["odd"].samples
    assert sample.labels == {"path": 'a"b\\c', "note": "x,y{z}=w"}


def test_exemplars_attach_to_buckets_and_resolve():
    with flight.capture() as rec:
        with trace.span("probe", cat="test"):
            metrics.histogram("probe_seconds").observe(0.003)
    text = export.render()
    fams = export.validate(text)
    assert export.exemplar_count(fams) >= 1
    bucket = next(s for s in fams["probe_seconds"].samples
                  if s.exemplar is not None)
    ex = bucket.exemplar
    assert ex["value"] == pytest.approx(0.003)
    # the exemplar's span ids resolve against what the flight ring holds
    spans = {(e.trace_id, e.span_id) for e in flight.span_events(rec.events())}
    parents = {(e.trace_id, e.parent_id) for e in rec.events()}
    ref = (ex["labels"]["trace_id"], ex["labels"]["span_id"])
    assert ref in spans | parents


def test_no_exemplars_without_flight_or_context():
    with flight.suspended():
        metrics.histogram("quiet_seconds").observe(0.5)
    fams = export.validate(export.render())
    assert export.exemplar_count(fams) == 0


# ---------------------------------------------------------------------------
# Parser strictness
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad, why", [
    ("# EOF", "trailing newline"),
    ("x_total 1\n# EOF\n", "sample before any # TYPE"),
    ("# TYPE x counter\nx 1\n# EOF\n", "must be x_total"),
    ("# TYPE x counter\nx_total -1\n# EOF\n", "negative counter"),
    ("# TYPE x gauge\ny 1\n# EOF\n", "outside"),
    ("# TYPE x counter\nx_total 1\n", "missing # EOF"),
    ("# TYPE x counter\n# EOF\nx_total 1\n", "content after # EOF"),
    ("# TYPE x widget\n# EOF\n", "unknown type"),
    ("# TYPE x counter\n# TYPE x counter\n# EOF\n", "duplicate family"),
    ('# TYPE h histogram\nh_bucket{x="1"} 1\n# EOF\n', "without le"),
    ('# TYPE h histogram\nh_bucket{le="+Inf"} 1 # bad 1\n# EOF\n',
     "malformed exemplar"),
    ('# TYPE h histogram\nh_sum{} 1 # {a="b"} 1\n# EOF\n',
     "exemplar outside a bucket"),
], ids=lambda p: p[:28] if isinstance(p, str) else p)
def test_parser_rejects(bad, why):
    with pytest.raises(ValueError, match=why.replace("+", r"\+")):
        export.parse_exposition(bad)


@pytest.mark.parametrize("bad, why", [
    ('# TYPE h histogram\nh_bucket{le="1.0"} 2\nh_bucket{le="+Inf"} 1\n'
     'h_sum 3\nh_count 1\n# EOF\n', "not cumulative"),
    ('# TYPE h histogram\nh_bucket{le="2.0"} 1\nh_bucket{le="1.0"} 1\n'
     'h_bucket{le="+Inf"} 1\nh_sum 1\nh_count 1\n# EOF\n', "not sorted"),
    ('# TYPE h histogram\nh_bucket{le="1.0"} 1\nh_sum 1\nh_count 1\n# EOF\n',
     r"missing \+Inf"),
    ('# TYPE h histogram\nh_bucket{le="+Inf"} 2\nh_sum 1\nh_count 1\n# EOF\n',
     "!= count"),
    ('# TYPE h histogram\nh_bucket{le="+Inf"} 1\n# EOF\n',
     "missing _sum/_count"),
])
def test_histogram_invariants_rejected(bad, why):
    with pytest.raises(ValueError, match=why):
        export.parse_exposition(bad)


def test_parser_rejects_bad_escapes():
    with pytest.raises(ValueError, match="bad escape"):
        export.parse_exposition(
            '# TYPE x counter\nx_total{a="\\q"} 1\n# EOF\n')


# ---------------------------------------------------------------------------
# The scrape endpoint
# ---------------------------------------------------------------------------


def test_serve_answers_metrics_scrape():
    _seed_registry()
    server = export.make_server(0)  # OS-assigned port
    port = server.server_address[1]
    t = threading.Thread(target=server.serve_forever,
                         kwargs={"poll_interval": 0.05}, daemon=True)
    t.start()
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == export.CONTENT_TYPE
            body = resp.read().decode("utf-8")
        assert export.validate(body)  # scrape == render, still valid
        assert body == export.render()
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/nope", timeout=5)
    finally:
        server.shutdown()
        t.join()
        server.server_close()


# ---------------------------------------------------------------------------
# `repro top`
# ---------------------------------------------------------------------------


def test_render_top_counters_rates_and_histograms():
    snap = {
        "counters": {"hits{ns=a}": 30},
        "gauges": {"depth": 2.5},
        "histograms": {"lat": {"count": 4, "sum": 1.0, "mean": 0.25,
                               "min": 0.1, "max": 0.4}},
    }
    prev = {"counters": {"hits{ns=a}": 10}}
    frame = export.render_top(snap, prev, 2.0)
    assert "1 counters, 1 gauges, 1 histograms" in frame
    assert "10.00/s" in frame  # (30-10)/2
    assert "depth" in frame and "2.5" in frame
    assert "lat" in frame


def test_run_top_frames_and_stop_when():
    calls = []

    def snap():
        calls.append(1)
        return {"counters": {}, "gauges": {}, "histograms": {}}

    buf = io.StringIO()
    frames = export.run_top(interval_s=0.001, iterations=3, stream=buf,
                            snapshot_fn=snap, clear=False)
    assert frames == 3 and len(calls) == 3
    assert buf.getvalue().count("repro top") == 3

    # stop_when ends the loop after one more (final) frame
    buf2 = io.StringIO()
    frames = export.run_top(interval_s=0.001, stream=buf2, snapshot_fn=snap,
                            clear=False, stop_when=lambda: True)
    assert frames == 2
