"""stable_hash and the persistent JSON-on-disk result cache.

The contract under test: keys are canonical (insertion order, hashability
and object identity never matter), the store is content-addressed under
``REPRO_CACHE_DIR``, and *nothing* that goes wrong on disk is allowed to
surface as anything worse than a cache miss.
"""

import dataclasses
import json

import pytest

from repro.gpu.tiling import TilingParams
from repro.perf.cache import (
    CACHE_DIR_ENV,
    NO_CACHE_ENV,
    PersistentCache,
    code_fingerprint,
    default_cache_root,
    stable_hash,
)
from repro.resilience.faults import fault_plan


@pytest.fixture(autouse=True)
def _no_faults():
    """These tests assert *exact* store mechanics (hand-made corruption,
    error counts, specimen files), so an env fault plan — e.g. CI's chaos
    job exporting REPRO_FAULTS over the whole suite — must be masked."""
    with fault_plan(None):
        yield


# ---------------------------------------------------------------------------
# stable_hash
# ---------------------------------------------------------------------------


def test_dict_insertion_order_is_invisible():
    a = {"tensor_core": True, "split_k": 2, "base_efficiency": 0.55}
    b = {"base_efficiency": 0.55, "tensor_core": True, "split_k": 2}
    assert stable_hash(a) == stable_hash(b)


def test_unhashable_and_none_values_are_fine():
    # the exact kwargs shapes that broke tuple(sorted(kwargs.items()))
    a = {"round_steps": None, "shape": [8, 8, 16], "flags": {"x", "y"}}
    b = {"flags": {"y", "x"}, "shape": [8, 8, 16], "round_steps": None}
    assert stable_hash(a) == stable_hash(b)
    assert stable_hash(a) != stable_hash({**a, "round_steps": 0})


def test_values_change_the_digest():
    assert stable_hash({"k": 1}) != stable_hash({"k": 2})
    assert stable_hash(1) != stable_hash(1.0)  # int and float are distinct
    assert stable_hash(0.1) != stable_hash(0.1 + 2e-17)  # exact, not rounded
    assert stable_hash(float("nan")) == stable_hash(float("nan"))


def test_dataclasses_hash_by_field_values():
    t1 = TilingParams(128, 128, 32, 16, 2, 2)
    t2 = TilingParams(128, 128, 32, 16, 2, 2)
    t3 = TilingParams(128, 64, 32, 16, 2, 2)
    assert stable_hash(t1) == stable_hash(t2)
    assert stable_hash(t1) != stable_hash(t3)


def test_nested_structures_round_trip():
    key = {"gemm": [3136, 576, 64], "kwargs": {"out_elem_bytes": 0.5},
           "code": "abc123"}
    assert stable_hash(key) == stable_hash(json.loads(json.dumps(key)))


def test_code_fingerprint_distinguishes_modules():
    from repro.perf import cache as cache_mod
    from repro.perf import parallel as parallel_mod

    fp = code_fingerprint([cache_mod])
    assert len(fp) == 16 and int(fp, 16) >= 0
    assert fp == code_fingerprint([cache_mod])
    assert fp != code_fingerprint([parallel_mod])
    assert fp != code_fingerprint([cache_mod, parallel_mod])


# ---------------------------------------------------------------------------
# PersistentCache
# ---------------------------------------------------------------------------


@pytest.fixture()
def store(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    return PersistentCache("test-ns")


def test_cache_root_follows_env(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    assert default_cache_root() == tmp_path
    store = PersistentCache("ns")
    assert store.directory() == tmp_path / "ns"
    # re-read per access: repointing the env moves the store
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "other"))
    assert store.directory() == tmp_path / "other" / "ns"


def test_put_get_roundtrip_and_stats(store):
    digest = stable_hash({"k": 1})
    assert store.get(digest) is None
    assert store.stats.misses == 1
    assert store.put(digest, {"value": [1.5, None, "x"]})
    assert store.get(digest) == {"value": [1.5, None, "x"]}
    assert store.stats.hits == 1 and store.stats.puts == 1
    assert len(store) == 1
    assert store.path_for(digest).is_file()


def test_cache_dir_isolation(tmp_path, monkeypatch):
    digest = stable_hash("shared-key")
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "a"))
    PersistentCache("ns").put(digest, {"v": 1})
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "b"))
    assert PersistentCache("ns").get(digest) is None  # other root: a miss


def test_truncated_json_is_a_miss_not_a_crash(store):
    digest = stable_hash("x")
    store.put(digest, {"v": 1})
    full = store.path_for(digest).read_text(encoding="utf-8")
    store.path_for(digest).write_text(full[: len(full) // 2], encoding="utf-8")
    assert store.get(digest) is None
    assert store.stats.errors == 1


def test_corruption_is_counted_and_warned_not_silent(store, caplog):
    """Degrading to a miss is fine; degrading *silently* is not: a corrupt
    entry must bump the ``cache_corrupt`` counter and emit a structured
    warning through the ``repro`` logging tree."""
    from repro.obs import metrics as obs_metrics

    obs_metrics.reset()
    digest = stable_hash("rotten")
    store.put(digest, {"v": 1})
    store.path_for(digest).write_text("{not json", encoding="utf-8")
    with caplog.at_level("WARNING", logger="repro.perf.cache"):
        assert store.get(digest) is None
    events = [r.getMessage() for r in caplog.records
              if r.name == "repro.perf.cache"]
    assert any(m.startswith("cache_corrupt")
               and "namespace=test-ns" in m for m in events)
    snap = obs_metrics.snapshot()
    assert snap["counters"]["cache_corrupt{namespace=test-ns}"] == 1
    assert snap["counters"][
        "cache_lookups{namespace=test-ns,outcome=miss}"] == 1
    obs_metrics.reset()


def test_corrupt_entry_quarantined_then_clean_miss(store):
    """Regression: a corrupt entry must be *moved* to ``.quarantine/``,
    not left in place — the second lookup is a plain FileNotFoundError
    miss (no re-parse, no second corruption warning) and the specimen
    survives for debugging."""
    from repro.resilience.atomic import quarantine_dir_for

    digest = stable_hash("quarantine-me")
    store.put(digest, {"v": 1})
    path = store.path_for(digest)
    path.write_text("{torn mid-write", encoding="utf-8")

    assert store.get(digest) is None
    assert not path.exists(), "corrupt entry must leave the namespace"
    qdir = quarantine_dir_for(path)
    specimens = list(qdir.iterdir())
    assert len(specimens) == 1
    assert specimens[0].read_text(encoding="utf-8") == "{torn mid-write"

    errors_after_first = store.stats.errors
    assert store.get(digest) is None  # clean miss now
    assert store.stats.errors == errors_after_first

    # repeated corruption of the same entry keeps every specimen
    path.write_text("{torn again", encoding="utf-8")
    assert store.get(digest) is None
    assert len(list(qdir.iterdir())) == 2

    # quarantined files are invisible to len()/clear() (namespace *.json)
    store.put(digest, {"v": 2})
    assert store.get(digest) == {"v": 2}


def test_non_dict_entry_is_a_miss(store):
    digest = stable_hash("y")
    store.path_for(digest).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(digest).write_text("[1, 2, 3]", encoding="utf-8")
    assert store.get(digest) is None
    assert store.stats.errors == 1


def test_binary_garbage_entry_is_a_miss(store):
    digest = stable_hash("z")
    store.path_for(digest).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(digest).write_bytes(b"\xff\xfe\x00garbage")
    assert store.get(digest) is None


def test_unwritable_root_degrades_to_disabled(tmp_path, monkeypatch):
    # point the root at a regular *file*: every mkdir/open fails with
    # OSError, which must surface as miss/False, never an exception
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("occupied", encoding="utf-8")
    monkeypatch.setenv(CACHE_DIR_ENV, str(blocker))
    store = PersistentCache("ns")
    assert store.put("d" * 8, {"v": 1}) is False
    assert store.get("d" * 8) is None
    assert store.stats.errors >= 1
    assert len(store) == 0 and store.clear() == 0


def test_unserializable_value_fails_softly(store):
    assert store.put(stable_hash("obj"), {"v": object()}) is False
    assert store.stats.errors == 1


def test_no_cache_env_disables_everything(store, monkeypatch):
    monkeypatch.setenv(NO_CACHE_ENV, "1")
    digest = stable_hash("kill-switch")
    assert not store.enabled
    assert store.put(digest, {"v": 1}) is False
    assert store.get(digest) is None
    assert store.stats.lookups == 0  # disabled traffic isn't accounted


def test_clear_removes_entries(store):
    for i in range(3):
        store.put(stable_hash(i), {"v": i})
    assert len(store) == 3
    assert store.clear() == 3
    assert len(store) == 0


def test_namespace_validation():
    with pytest.raises(ValueError):
        PersistentCache("")
    with pytest.raises(ValueError):
        PersistentCache("a/b")


def test_namespaces_do_not_collide(store, tmp_path):
    other = PersistentCache("other-ns")
    digest = stable_hash("k")
    store.put(digest, {"v": "mine"})
    assert other.get(digest) is None
    other.put(digest, {"v": "theirs"})
    assert store.get(digest) == {"v": "mine"}


# ---------------------------------------------------------------------------
# ARM static-schedule memoization through the store
# ---------------------------------------------------------------------------


def test_arm_schedule_persistent_roundtrip(tmp_path, monkeypatch):
    from repro.arm.cost_model import (
        _schedule_cycles,
        clear_schedule_cache,
        schedule_store,
    )

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    clear_schedule_cache()
    sched = schedule_store()
    sched.reset_stats()
    try:
        cold = _schedule_cycles("smlal", 4, 64, True, None)
        assert sched.stats.puts >= 1

        clear_schedule_cache()  # drops the lru memo, keeps the disk store
        sched.reset_stats()
        warm = _schedule_cycles("smlal", 4, 64, True, None)
        assert warm == cold
        assert sched.stats.hits >= 1 and sched.stats.puts == 0
    finally:
        clear_schedule_cache()
        sched.reset_stats()
