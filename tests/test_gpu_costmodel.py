"""GPU cost model: the paper's optimization knobs move time the right way."""

import pytest

from repro.errors import TilingError
from repro.gpu.autotune import autotune, autotune_conv
from repro.gpu.baselines import cudnn_dp4a_time, tensorrt_time
from repro.gpu.device import TU102
from repro.gpu.fusion import FusionMode, fusion_speedups, pipeline_time
from repro.gpu.pipelinemodel import conv_gemm_shape, conv_time, kernel_time
from repro.gpu.tiling import TilingParams, default_tiling
from repro.types import ConvSpec, GemmShape

MID = ConvSpec("mid", in_channels=128, out_channels=128, height=28, width=28,
               kernel=(3, 3), padding=(1, 1))
GEMM = GemmShape(m=784, k=1152, n=128)


def test_breakdown_positive_and_consistent():
    perf = kernel_time(GEMM, 8)
    assert perf.compute_cycles > 0
    assert perf.dram_cycles > 0
    assert perf.smem_cycles > 0
    assert perf.total_cycles >= max(perf.compute_cycles, perf.dram_cycles)
    assert perf.bound in ("compute", "dram", "smem")
    assert perf.microseconds() > 0


def test_int4_faster_than_int8():
    """Sec. 5.3: '4-bit convolution kernels outperform 8-bit ... 1.18x and
    1.32x on average' — double mma K and half the bytes."""
    t8 = autotune(GEMM, 8).best_cycles
    t4 = autotune(GEMM, 4).best_cycles
    assert 1.05 < t8 / t4 < 2.0


def test_tensor_core_beats_dp4a():
    tc = kernel_time(GEMM, 8, tensor_core=True)
    dp = kernel_time(GEMM, 8, tensor_core=False)
    assert dp.compute_cycles > 3 * tc.compute_cycles


def test_double_buffer_overlap_helps():
    t = TilingParams(64, 64, 32, 16, 2, 2)
    on = kernel_time(GEMM, 8, t, double_buffer=True)
    off = kernel_time(GEMM, 8, t, double_buffer=False)
    assert on.total_cycles < off.total_cycles


def test_smem_reordering_helps_when_smem_bound():
    t = TilingParams(64, 64, 32, 16, 2, 2)
    on = kernel_time(GEMM, 8, t, reorder_smem=True)
    off = kernel_time(GEMM, 8, t, reorder_smem=False)
    # the non-reordered path is LDS-instruction bound (4x LDS.32 vs 1x
    # LDS.128, Fig. 5): several-fold fewer shared-memory bytes per cycle
    assert off.smem_cycles > 4 * on.smem_cycles
    assert off.total_cycles >= on.total_cycles


def test_uncoalesced_access_hurts():
    on = kernel_time(GEMM, 8, coalesced=True)
    off = kernel_time(GEMM, 8, coalesced=False)
    assert off.dram_cycles == pytest.approx(4 * on.dram_cycles)


def test_in_place_epilogue_saves_traffic():
    inp = kernel_time(GEMM, 8, in_place_epilogue=True)
    outp = kernel_time(GEMM, 8, in_place_epilogue=False)
    assert outp.dram_cycles > inp.dram_cycles


def test_split_k_fills_small_grids():
    tiny = GemmShape(m=49, k=4608, n=512)
    t = TilingParams(64, 64, 64, 32, 2, 2)
    plain = kernel_time(tiny, 8, t)
    split = kernel_time(tiny, 8, t, split_k=8)
    assert split.blocks == plain.blocks * 8
    assert split.compute_cycles < plain.compute_cycles
    with pytest.raises(TilingError):
        kernel_time(tiny, 8, t, split_k=0)


def test_autotune_beats_default():
    """Fig. 11: profile runs find better tilings than defaults."""
    for bits in (4, 8):
        best = autotune_conv(MID, bits)
        default = conv_time(MID, bits, default_tiling(bits))
        assert best.best_cycles <= default.total_cycles
        assert best.candidates > 50


def test_autotune_cached():
    r1 = autotune(GEMM, 8)
    r2 = autotune(GEMM, 8)
    assert r1 is r2  # per-shape caching (Sec. 5.1)


def test_batch1_speedups_vs_cudnn_in_band():
    """Fig. 10 shape: ours-4bit > ours-8bit >> cuDNN dp4a at batch 1."""
    base = cudnn_dp4a_time(MID).total_cycles
    s8 = base / autotune_conv(MID, 8).best_cycles
    s4 = base / autotune_conv(MID, 4).best_cycles
    assert s4 > s8 > 2.0


def test_batch16_speedups_smaller_than_batch1():
    """Sec. 5.3: 'our implementation achieves better speedup with small
    batch size'."""
    mid16 = MID.with_batch(16)
    s1 = cudnn_dp4a_time(MID).total_cycles / autotune_conv(MID, 8).best_cycles
    s16 = (cudnn_dp4a_time(mid16).total_cycles
           / autotune_conv(mid16, 8).best_cycles)
    assert s16 < s1


def test_tensorrt_closer_than_cudnn():
    """TRT is the strong baseline: much closer to ours than cuDNN."""
    trt = tensorrt_time(MID).total_cycles
    cud = cudnn_dp4a_time(MID).total_cycles
    ours = autotune_conv(MID, 8).best_cycles
    assert cud / trt > 1.5
    assert 0.8 < trt / ours < 4.0


def test_fusion_speedups_in_band():
    """Fig. 12: conv+dequant ~1.18x, conv+ReLU ~1.51x (ReLU fusion wins
    more because it removes more stages)."""
    sp = fusion_speedups(MID)
    assert 1.02 < sp["conv+dequant"] < 1.6
    assert sp["conv+relu"] > sp["conv+dequant"]
    assert 1.1 < sp["conv+relu"] < 2.5


def test_pipeline_time_modes():
    base = pipeline_time(MID, 8, FusionMode.NONE, with_relu=True)
    fused = pipeline_time(MID, 8, FusionMode.CONV_RELU)
    assert base.kernel_launches == 4
    assert fused.kernel_launches == 1
    assert fused.total_cycles < base.total_cycles
    dq = pipeline_time(MID, 8, FusionMode.CONV_DEQUANT)
    assert dq.kernel_launches == 1
