"""ConvSpec / GemmShape geometry and validation."""

import pytest

from repro.errors import ShapeError
from repro.types import ConvSpec, GemmShape, Layout


def test_basic_geometry():
    spec = ConvSpec("c", in_channels=64, out_channels=128, height=56, width=56,
                    kernel=(3, 3), stride=(1, 1), padding=(1, 1))
    assert spec.out_height == 56
    assert spec.out_width == 56
    assert spec.gemm_m == 128
    assert spec.gemm_k == 64 * 9
    assert spec.gemm_n == 56 * 56


def test_strided_geometry():
    spec = ConvSpec("c", in_channels=3, out_channels=64, height=224, width=224,
                    kernel=(7, 7), stride=(2, 2), padding=(3, 3))
    assert spec.out_height == 112
    assert spec.out_width == 112


def test_asymmetric_kernel_and_stride():
    spec = ConvSpec("c", in_channels=4, out_channels=4, height=20, width=30,
                    kernel=(3, 5), stride=(2, 3), padding=(1, 2))
    assert spec.out_height == (20 + 2 - 3) // 2 + 1
    assert spec.out_width == (30 + 4 - 5) // 3 + 1


def test_macs_counts_batch():
    spec = ConvSpec("c", in_channels=8, out_channels=16, height=10, width=10,
                    kernel=(1, 1), batch=4)
    assert spec.macs == 4 * 16 * 8 * 100


def test_shapes_by_layout():
    spec = ConvSpec("c", in_channels=3, out_channels=5, height=7, width=9,
                    kernel=(3, 3), padding=(1, 1))
    assert spec.input_shape(Layout.NCHW) == (1, 3, 7, 9)
    assert spec.input_shape(Layout.NHWC) == (1, 7, 9, 3)
    assert spec.output_shape(Layout.NCHW) == (1, 5, 7, 9)
    assert spec.weight_shape(Layout.NCHW) == (5, 3, 3, 3)
    assert spec.weight_shape(Layout.NHWC) == (5, 3, 3, 3)


def test_winograd_eligibility():
    ok = ConvSpec("c", in_channels=4, out_channels=4, height=8, width=8,
                  kernel=(3, 3), stride=(1, 1), padding=(1, 1))
    assert ok.is_winograd_eligible()
    stride2 = ConvSpec("c", in_channels=4, out_channels=4, height=8, width=8,
                       kernel=(3, 3), stride=(2, 2), padding=(1, 1))
    assert not stride2.is_winograd_eligible()
    one = ConvSpec("c", in_channels=4, out_channels=4, height=8, width=8,
                   kernel=(1, 1))
    assert not one.is_winograd_eligible()


def test_with_batch():
    spec = ConvSpec("c", in_channels=4, out_channels=4, height=8, width=8)
    assert spec.with_batch(16).batch == 16
    assert spec.batch == 1  # frozen original untouched


@pytest.mark.parametrize("field,value", [
    ("in_channels", 0),
    ("out_channels", -1),
    ("height", 0),
    ("batch", 0),
])
def test_invalid_positive_fields(field, value):
    kwargs = dict(in_channels=4, out_channels=4, height=8, width=8)
    kwargs[field] = value
    with pytest.raises(ShapeError):
        ConvSpec("c", **kwargs)


def test_output_must_be_positive():
    with pytest.raises(ShapeError):
        ConvSpec("c", in_channels=4, out_channels=4, height=2, width=2,
                 kernel=(5, 5))


def test_groups_divisibility():
    with pytest.raises(ShapeError):
        ConvSpec("c", in_channels=6, out_channels=4, height=8, width=8, groups=4)


def test_gemm_shape_from_conv():
    spec = ConvSpec("c", in_channels=8, out_channels=16, height=10, width=10,
                    kernel=(3, 3), padding=(1, 1))
    g = GemmShape.from_conv(spec)
    assert (g.m, g.k, g.n) == (16, 72, 100)
    assert g.macs == 16 * 72 * 100


def test_gemm_shape_validation():
    with pytest.raises(ShapeError):
        GemmShape(m=0, k=1, n=1)
