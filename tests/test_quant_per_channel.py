"""Per-channel requantization (per-channel weight scales)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import conv2d_ref
from repro.errors import QuantizationError
from repro.gpu.implicit_gemm import conv2d_implicit_gemm
from repro.gpu.tiling import TilingParams
from repro.quant import requantize, requantize_per_channel, scheme_qrange
from repro.types import ConvSpec, Layout


@given(st.integers(0, 2**32 - 1), st.integers(1, 6))
@settings(max_examples=40)
def test_per_channel_matches_per_tensor_channelwise(seed, channels):
    rng = np.random.default_rng(seed)
    acc = rng.integers(-(2**20), 2**20, (5, channels))
    mults = rng.uniform(1e-4, 0.9, channels)
    qr = scheme_qrange(8)
    out = requantize_per_channel(acc, mults, qr, axis=1)
    for c in range(channels):
        expect = requantize(acc[:, c], float(mults[c]), qr)
        assert np.array_equal(out[:, c], expect)


def test_axis_selection():
    rng = np.random.default_rng(0)
    acc = rng.integers(-1000, 1000, (3, 4, 5))
    mults = rng.uniform(0.1, 0.9, 4)
    qr = scheme_qrange(8)
    out = requantize_per_channel(acc, mults, qr, axis=1)
    assert out.shape == acc.shape
    moved = requantize_per_channel(np.moveaxis(acc, 1, -1), mults, qr, axis=-1)
    assert np.array_equal(np.moveaxis(out, 1, -1), moved)


def test_validation():
    qr = scheme_qrange(8)
    with pytest.raises(QuantizationError):
        requantize_per_channel(np.zeros((2, 3)), np.ones((2, 2)), qr)
    with pytest.raises(QuantizationError):
        requantize_per_channel(np.zeros((2, 3)), np.ones(4), qr, axis=1)


def test_gpu_epilogue_per_channel():
    """The in-place GPU epilogue accepts per-output-channel multipliers."""
    rng = np.random.default_rng(1)
    spec = ConvSpec("g", in_channels=4, out_channels=6, height=6, width=6,
                    kernel=(3, 3), padding=(1, 1))
    x = rng.integers(-8, 8, spec.input_shape(Layout.NHWC)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    mults = rng.uniform(0.001, 0.01, spec.out_channels)
    tiling = TilingParams(16, 16, 16, 16, 1, 1)
    out = conv2d_implicit_gemm(spec, x, w, bits=8, tiling=tiling,
                               epilogue="requant", requant_mult=mults)
    acc = conv2d_ref(spec, x, w, layout=Layout.NHWC)
    expect = requantize_per_channel(acc.reshape(-1, spec.out_channels),
                                    mults, scheme_qrange(8), axis=-1)
    assert np.array_equal(out.data.reshape(-1, spec.out_channels), expect)
