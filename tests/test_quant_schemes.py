"""Linear quantization, requantization and calibration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuantizationError
from repro.quant import (
    LinearQuantizer,
    calibrate_minmax,
    calibrate_percentile,
    compute_scale,
    dequantize_linear,
    quantize_linear,
    requantize,
    scheme_qrange,
)


@given(
    st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=64),
    st.integers(2, 8),
)
@settings(max_examples=80)
def test_roundtrip_error_bounded_by_half_step(values, bits):
    x = np.array(values)
    qr = scheme_qrange(bits)
    max_abs = float(np.max(np.abs(x)))
    if max_abs == 0:
        return
    scale = compute_scale(max_abs, qr)
    q = quantize_linear(x, scale, qr)
    back = dequantize_linear(q, scale)
    # round-trip error is at most half a step, plus one clipped step at the
    # positive edge for the asymmetric full ranges (|qmin| = qmax + 1)
    assert np.all(np.abs(back - x) <= scale + 1e-12)
    interior = np.abs(x) <= qr.qmax * scale
    assert np.all(np.abs(back - x)[interior] <= scale / 2 + 1e-12)


def test_quantize_clips_to_range():
    qr = scheme_qrange(4)
    q = quantize_linear(np.array([100.0, -100.0]), 1.0, qr)
    assert q.tolist() == [qr.qmax, qr.qmin]


def test_per_channel_scale():
    x = np.array([[1.0, 2.0], [10.0, 20.0]])
    qr = scheme_qrange(8)
    scale = compute_scale(np.array([2.0, 20.0]), qr)
    q = quantize_linear(x, scale, qr, axis=0)
    # each row quantized by its own scale: max maps to 127
    assert q[0, 1] == 127
    assert q[1, 1] == 127


def test_per_channel_requires_axis():
    with pytest.raises(QuantizationError):
        quantize_linear(np.ones((2, 2)), np.array([1.0, 2.0]), scheme_qrange(8))


def test_scale_must_be_positive():
    with pytest.raises(QuantizationError):
        quantize_linear(np.ones(3), 0.0, scheme_qrange(8))


def test_compute_scale_zero_data():
    s = compute_scale(0.0, scheme_qrange(8))
    assert float(s) == 1.0


@given(st.integers(-(2**20), 2**20), st.floats(1e-4, 0.99))
@settings(max_examples=120)
def test_fixed_point_requantize_close_to_float(acc, mult):
    qr = scheme_qrange(8)
    fixed = requantize(np.array([acc]), mult, qr, use_fixed_point=True)
    exact = requantize(np.array([acc]), mult, qr, use_fixed_point=False)
    # 31-bit fixed-point multiplier: off by at most 1 quantum from float
    assert abs(int(fixed[0]) - int(exact[0])) <= 1


def test_requantize_clips():
    qr = scheme_qrange(8)
    out = requantize(np.array([10**6, -(10**6)]), 0.5, qr)
    assert out.tolist() == [127, -127]


def test_requantize_multiplier_domain():
    with pytest.raises(QuantizationError):
        requantize(np.array([1]), 1.5, scheme_qrange(8))
    with pytest.raises(QuantizationError):
        requantize(np.array([1]), 0.0, scheme_qrange(8))


def test_linear_quantizer_per_tensor():
    q = LinearQuantizer(bits=4)
    x = np.linspace(-1, 1, 17)
    qt = q.quantize(x)
    assert qt.bits == 4
    assert qt.data.min() >= -8 and qt.data.max() <= 7
    assert int(qt.data[-1]) == 7  # max maps to edge


def test_linear_quantizer_per_channel():
    q = LinearQuantizer(bits=8, per_channel_axis=0)
    x = np.array([[0.5, -0.5], [50.0, -25.0]])
    qt = q.quantize(x)
    assert qt.is_per_channel
    assert qt.scale.shape == (2,)
    assert int(qt.data[0, 0]) == 127  # each channel uses its own edge
    assert int(qt.data[1, 0]) == 127


def test_calibrate_minmax():
    assert calibrate_minmax([np.array([1.0, -3.0]), np.array([2.0])]) == 3.0
    with pytest.raises(QuantizationError):
        calibrate_minmax([np.array([])])


def test_calibrate_percentile_clips_outliers():
    data = np.concatenate([np.ones(999), np.array([1000.0])])
    p = calibrate_percentile([data], percentile=99.0)
    assert p == pytest.approx(1.0)
    with pytest.raises(QuantizationError):
        calibrate_percentile([np.ones(4)], percentile=0.0)
