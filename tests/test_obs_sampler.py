"""The wall-clock stack sampler: grid accounting, collapse format, SVG.

The contract under test: the sampler catches a busy workload without
touching its code, never silently skips grid ticks, exports the standard
collapsed-stack text format round-trippably, and renders to an SVG
flamegraph with deterministic layout.
"""

import time

import pytest

from repro.obs import htmlreport, sampler


def _busy_beacon(stop_at: float) -> int:
    """A distinctive frame for the sampler to catch."""
    acc = 0
    while time.perf_counter() < stop_at:
        acc += 1
    return acc


def test_sampler_catches_a_busy_function():
    with sampler.sampling(interval_s=0.002) as s:
        _busy_beacon(time.perf_counter() + 0.1)
    counts = s.collapsed()
    assert s.sample_count >= 10
    assert counts, "expected at least one collapsed stack"
    hits = [k for k in counts if "_busy_beacon" in k]
    assert hits, f"beacon frame not sampled; got {sorted(counts)[:5]}"
    # stacks are root-first: the beacon is the leaf, not the root
    assert all(not k.startswith("test_obs_sampler.py:_busy_beacon")
               for k in hits if ";" in k)


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        sampler.StackSampler(interval_s=0)
    with pytest.raises(ValueError):
        sampler.StackSampler(interval_s=-0.001)


def test_double_start_rejected_and_stop_idempotent():
    s = sampler.StackSampler(interval_s=0.01).start()
    try:
        with pytest.raises(RuntimeError):
            s.start()
    finally:
        s.stop()
    s.stop()  # second stop is a no-op


def test_missed_ticks_are_counted_not_hidden():
    """Grid determinism: elapsed ticks = sampled + missed, never dropped
    silently.  A 1 µs interval is unmeetable, so misses must show up."""
    with sampler.sampling(interval_s=1e-6) as s:
        time.sleep(0.02)
    assert s.sample_count >= 1
    assert s.missed_ticks > 0


def test_summary_top_cap_is_reported():
    s = sampler.StackSampler(interval_s=0.01)
    s._counts = {f"root;f{i}": i + 1 for i in range(10)}
    s.sample_count = sum(s._counts.values())
    out = s.summary(top=3)
    assert out["distinct_stacks"] == 10
    assert out["stacks_exported"] == 3
    assert list(out["stacks"]) == ["root;f9", "root;f8", "root;f7"]
    assert out["interval_ms"] == 10.0


def test_collapsed_text_round_trips():
    counts = {"a;b;c": 5, "a;b": 2, "a;d e": 7}  # frame labels may hold spaces
    text = sampler.collapsed_text(counts)
    assert text.splitlines()[0] == "a;d e 7"  # heaviest first
    assert sampler.parse_collapsed(text) == counts


def test_parse_collapsed_merges_duplicates_and_rejects_garbage():
    assert sampler.parse_collapsed("a;b 1\na;b 2\n\n") == {"a;b": 3}
    with pytest.raises(ValueError):
        sampler.parse_collapsed("justoneword\n")


def test_flamegraph_svg_structure():
    counts = {"main;work;inner": 6, "main;work;other": 2, "main;idle": 2}
    svg = htmlreport.flamegraph_svg(counts, width=800)
    assert svg.startswith("<svg")
    assert svg.count("<rect") >= 5  # main, work, idle, inner, other
    assert "main — 10 samples (100.0%)" in svg
    assert "inner — 6 samples (60.0%)" in svg
    # deterministic: same input, same bytes
    assert svg == htmlreport.flamegraph_svg(counts, width=800)


def test_flamegraph_svg_empty():
    assert "no samples" in htmlreport.flamegraph_svg({})
