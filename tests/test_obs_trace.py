"""The span tracer: disabled-by-default, nesting, threads, Chrome export.

The contract under test: with no tracer installed every instrumented path
is a no-op (and cheap enough to leave compiled in); under ``capture()``
spans nest, record their thread, and export as a Perfetto-loadable Chrome
``trace_event`` JSON object.
"""

import json
import threading
import time

from repro.obs import flight, trace


def test_disabled_by_default():
    assert trace.active() is False
    assert trace.current() is None
    with flight.suspended():
        # with the flight recorder also off, the null span is shared
        # and stateless — the true zero-cost path
        s1 = trace.span("anything", bits=4)
        s2 = trace.span("else")
        assert s1 is s2
        with s1:
            pass  # records nowhere, raises nothing
        trace.instant("marker")  # also a no-op


def test_spans_land_in_flight_ring_without_a_tracer():
    """No tracer installed, flight recorder on (the default): spans are
    still captured in the ring, carrying trace-context ids."""
    assert trace.active() is False
    with flight.capture() as rec:
        with trace.span("orphanless", cat="test", k=1):
            pass
    spans = flight.span_events(rec.events())
    assert [s.name for s in spans] == ["orphanless"]
    assert spans[0].trace_id and spans[0].span_id
    assert flight.unresolved_parents(rec.events()) == []


def test_instrumented_paths_add_no_spans_when_disabled():
    from repro.perf.parallel import ParallelRunner

    assert not trace.active()
    out = ParallelRunner(2).map(lambda x: x * x, [1, 2, 3])
    assert out == [1, 4, 9]
    assert not trace.active()  # nothing got installed behind our back
    # the same call under a tracer *does* produce spans
    with trace.capture() as tracer:
        ParallelRunner(2).map(lambda x: x * x, [1, 2, 3])
    assert any(r.name == "parallel.map" for r in tracer.spans())


def test_capture_records_nested_spans():
    with trace.capture() as tracer:
        with trace.span("outer", cat="test", layer="conv1"):
            with trace.span("inner", cat="test"):
                time.sleep(0.001)
    assert trace.active() is False  # restored on exit
    by_name = {r.name: r for r in tracer.spans()}
    assert set(by_name) == {"outer", "inner"}
    outer, inner = by_name["outer"], by_name["inner"]
    assert outer.args == {"layer": "conv1"}
    # nesting is time containment on one thread
    assert outer.tid == inner.tid
    assert outer.start_us <= inner.start_us
    assert outer.start_us + outer.dur_us >= inner.start_us + inner.dur_us
    assert inner.dur_us >= 500  # the sleep is visible


def test_capture_restores_previous_tracer():
    with trace.capture() as t_outer:
        with trace.span("a"):
            pass
        with trace.capture() as t_inner:
            assert trace.current() is t_inner
            with trace.span("b"):
                pass
        assert trace.current() is t_outer
        with trace.span("c"):
            pass
    assert [r.name for r in t_outer.spans()] == ["a", "c"]
    assert [r.name for r in t_inner.spans()] == ["b"]


def test_install_uninstall():
    tracer = trace.install()
    try:
        assert trace.active() and trace.current() is tracer
        with trace.span("x"):
            pass
    finally:
        assert trace.uninstall() is tracer
    assert not trace.active()
    assert len(tracer) == 1
    assert trace.uninstall() is None  # idempotent


def test_spans_record_thread_ids():
    with trace.capture() as tracer:
        def work(i):
            with trace.span("worker", idx=i):
                time.sleep(0.001)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    spans = tracer.spans()
    assert len(spans) == 3
    assert len({r.tid for r in spans}) == 3  # one track per thread


def test_chrome_trace_schema(tmp_path):
    with trace.capture() as tracer:
        with trace.span("autotune", cat="gpu", bits=4, obj=object()):
            pass
        tracer.instant("mark", note="hi")
    doc = tracer.chrome_trace(process_name="unit-test")
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["ph"] for e in events} == {"M", "X"}
    assert any(e["name"] == "process_name"
               and e["args"]["name"] == "unit-test" for e in meta)
    assert any(e["name"] == "thread_name" for e in meta)
    assert len(complete) == 2
    for e in complete:
        assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(e)
    span_ev = next(e for e in complete if e["name"] == "autotune")
    assert span_ev["cat"] == "gpu"
    assert span_ev["args"]["bits"] == 4
    assert isinstance(span_ev["args"]["obj"], str)  # non-JSON args stringify

    out = tracer.write(tmp_path / "nested" / "dir" / "t.json",
                       process_name="unit-test")
    assert out.is_file()
    assert json.loads(out.read_text()) == json.loads(
        json.dumps(doc))  # round-trips


def test_chrome_trace_round_trip_reconstructs_span_tree(tmp_path):
    """Export -> reload -> rebuild: nesting (time containment per thread)
    and the cross-thread layout must survive the Chrome trace_event file."""
    with trace.capture() as tracer:
        with trace.span("root", cat="test"):
            with trace.span("child_a", cat="test"):
                with trace.span("grandchild", cat="test"):
                    time.sleep(0.001)
            with trace.span("child_b", cat="test"):
                time.sleep(0.001)

        def work(i):
            with trace.span("thread_root", idx=i):
                with trace.span("thread_child", idx=i):
                    time.sleep(0.001)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    path = tracer.write(tmp_path / "trace.json", process_name="round-trip")
    events = [e for e in json.loads(path.read_text())["traceEvents"]
              if e["ph"] == "X"]

    # rebuild parent links: a span's parent is the innermost same-thread
    # span whose [ts, ts+dur] interval contains it
    def parent_of(ev):
        best = None
        for other in events:
            if other is ev or other["tid"] != ev["tid"]:
                continue
            if (other["ts"] <= ev["ts"]
                    and other["ts"] + other["dur"] >= ev["ts"] + ev["dur"]):
                if best is None or other["dur"] < best["dur"]:
                    best = other
        return best

    tree = {}
    for ev in events:
        p = parent_of(ev)
        tree.setdefault(ev["name"], set()).add(p["name"] if p else None)

    assert tree["root"] == {None}
    assert tree["child_a"] == tree["child_b"] == {"root"}
    assert tree["grandchild"] == {"child_a"}
    # the worker trees live on their own threads, re-rooted there
    assert tree["thread_root"] == {None}
    assert tree["thread_child"] == {"thread_root"}
    tids = {e["tid"] for e in events if e["name"] == "thread_root"}
    assert len(tids) == 2 and all(
        e["tid"] not in tids for e in events if e["name"] == "root")


def test_disabled_span_overhead_is_negligible():
    """The ISSUE budget: instrumentation compiled into hot paths must be
    near-free while no tracer is installed — and the *default* default is
    flight recording ON, so this measures the always-on ring-append path,
    not a pure no-op.  Bound the per-call cost very loosely (CI machines
    vary wildly) — the point is catching an accidental heavyweight
    allocation or lock convoy, which costs 100x this bound."""
    assert not trace.active()
    assert flight.enabled()  # measuring the realistic default path
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with trace.span("hot", k=1):
            pass
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 20e-6, f"flight-only span costs {per_call * 1e6:.2f} us"


def test_fully_disabled_span_overhead_is_negligible():
    """With the flight recorder suspended too, the shared null span is
    returned and the per-call cost is two global reads."""
    assert not trace.active()
    n = 20_000
    with flight.suspended():
        t0 = time.perf_counter()
        for _ in range(n):
            with trace.span("hot", k=1):
                pass
        per_call = (time.perf_counter() - t0) / n
    assert per_call < 20e-6, f"disabled span costs {per_call * 1e6:.2f} us"
