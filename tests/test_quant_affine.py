"""Asymmetric (affine) quantization + the zero-point conv expansion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import conv2d_ref
from repro.errors import QuantizationError, ShapeError
from repro.quant.affine import (
    AffineParams,
    affine_dequantize,
    affine_quantize,
    choose_affine_params,
    conv2d_affine,
    window_counts,
)
from repro.quant.ranges import qrange
from repro.types import ConvSpec, Layout


def test_param_validation():
    with pytest.raises(QuantizationError):
        AffineParams(0.0, 0, qrange(8))
    with pytest.raises(QuantizationError):
        AffineParams(1.0, 1000, qrange(8))


@given(st.floats(-50, 0), st.floats(0, 50), st.integers(2, 8))
@settings(max_examples=60)
def test_choose_params_represents_zero_exactly(lo, hi, bits):
    p = choose_affine_params(lo, hi, qrange(bits))
    # real zero must map to an in-range integer exactly
    z = affine_quantize(np.array([0.0]), p)
    assert affine_dequantize(z, p)[0] == pytest.approx(0.0, abs=p.scale / 2)
    assert p.qrange.qmin <= p.zero_point <= p.qrange.qmax


@given(st.lists(st.floats(-10, 30, allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60)
def test_affine_roundtrip_bounded(values):
    x = np.array(values)
    p = choose_affine_params(float(x.min()), float(x.max()), qrange(8))
    back = affine_dequantize(affine_quantize(x, p), p)
    assert np.all(np.abs(back - x) <= p.scale / 2 + 1e-9)


def test_degenerate_range():
    # the range widens to include zero, so [3, 3] still quantizes 3.0
    p = choose_affine_params(3.0, 3.0, qrange(8))
    back = affine_dequantize(affine_quantize(np.array([3.0]), p), p)
    assert back[0] == pytest.approx(3.0, abs=p.scale / 2)
    # a truly empty range degrades gracefully
    p0 = choose_affine_params(0.0, 0.0, qrange(8))
    assert p0.scale == 1.0


def test_window_counts():
    spec = ConvSpec("c", in_channels=3, out_channels=2, height=4, width=4,
                    kernel=(3, 3), padding=(1, 1))
    counts = window_counts(spec)
    # corners see 4 taps, edges 6, interior 9 (times 3 channels)
    assert counts[0, 0] == 4 * 3
    assert counts[0, 1] == 6 * 3
    assert counts[1, 1] == 9 * 3


@given(st.integers(0, 2**32 - 1), st.integers(0, 2), st.integers(1, 2))
@settings(max_examples=30, deadline=None)
def test_affine_expansion_is_exact(seed, pad, stride):
    """The four-term expansion equals the direct computation on shifted
    operands, with real-zero padding semantics."""
    rng = np.random.default_rng(seed)
    spec = ConvSpec("a", in_channels=3, out_channels=4, height=7, width=6,
                    kernel=(3, 3), stride=(stride, stride), padding=(pad, pad))
    xp = AffineParams(0.1, rng.integers(-20, 20), qrange(8))
    wp = AffineParams(0.05, rng.integers(-5, 5), qrange(8))
    xq = rng.integers(-100, 100, spec.input_shape(Layout.NCHW))
    wq = rng.integers(-100, 100, spec.weight_shape(Layout.NCHW))

    got = conv2d_affine(spec, xq, wq, xp, wp)

    # reference: shift, convolve with *shifted-zero* padding semantics —
    # i.e. pad the raw xq with zx so padded taps contribute (zx - zx) = 0
    ph, pw = spec.padding
    xq_pad = np.full((1, 3, 7 + 2 * ph, 6 + 2 * pw), xp.zero_point,
                     dtype=np.int64)
    xq_pad[:, :, ph : ph + 7, pw : pw + 6] = xq
    nospec = ConvSpec("a0", in_channels=3, out_channels=4,
                      height=7 + 2 * ph, width=6 + 2 * pw, kernel=(3, 3),
                      stride=(stride, stride))
    ref = conv2d_ref(nospec, xq_pad - xp.zero_point,
                     (wq - wp.zero_point).astype(np.int64))
    assert np.array_equal(got, ref)


def test_affine_grouped_rejected():
    spec = ConvSpec("g", in_channels=4, out_channels=4, height=4, width=4,
                    kernel=(3, 3), padding=(1, 1), groups=2)
    p = AffineParams(1.0, 0, qrange(8))
    with pytest.raises(ShapeError):
        conv2d_affine(spec, np.zeros(spec.input_shape(Layout.NCHW), np.int64),
                      np.zeros(spec.weight_shape(Layout.NCHW), np.int64), p, p)
