"""FFT-based convolution: exact-after-rounding on the supported range."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import conv2d, conv2d_ref
from repro.conv.fft import conv2d_fft, fft_exactness_margin
from repro.errors import ShapeError
from repro.types import ConvSpec, Layout


@given(st.integers(0, 2**32 - 1), st.sampled_from([1, 3, 5, 7]),
       st.integers(1, 2), st.integers(0, 3), st.integers(2, 8))
@settings(max_examples=25, deadline=None)
def test_fft_matches_ref(seed, k, stride, pad, bits):
    spec = ConvSpec("f", in_channels=4, out_channels=6, height=11, width=9,
                    kernel=(k, k), stride=(stride, stride), padding=(pad, pad))
    rng = np.random.default_rng(seed)
    half = 1 << (bits - 1)
    x = rng.integers(-half, half, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-half, half, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    assert np.array_equal(conv2d_fft(spec, x, w), conv2d_ref(spec, x, w))


def test_fft_with_bias_and_batch():
    spec = ConvSpec("f", in_channels=3, out_channels=5, height=8, width=8,
                    kernel=(3, 3), padding=(1, 1), batch=3)
    rng = np.random.default_rng(0)
    x = rng.integers(-8, 8, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    bias = rng.integers(-100, 100, 5)
    assert np.array_equal(conv2d_fft(spec, x, w, bias=bias),
                          conv2d_ref(spec, x, w, bias=bias))


def test_registry_exposes_fft():
    spec = ConvSpec("f", in_channels=2, out_channels=2, height=6, width=6,
                    kernel=(3, 3), padding=(1, 1))
    rng = np.random.default_rng(1)
    x = rng.integers(-4, 4, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-4, 4, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    assert np.array_equal(conv2d(spec, x, w, algorithm="fft"),
                          conv2d_ref(spec, x, w))


def test_exactness_margin_grows_with_range_and_k():
    small = ConvSpec("s", in_channels=8, out_channels=8, height=8, width=8,
                     kernel=(3, 3), padding=(1, 1))
    big = ConvSpec("b", in_channels=2048, out_channels=8, height=8, width=8,
                   kernel=(3, 3), padding=(1, 1))
    assert fft_exactness_margin(big, 127, 127) > fft_exactness_margin(small, 127, 127)
    assert (fft_exactness_margin(small, 127, 127)
            > fft_exactness_margin(small, 7, 7))
    # realistic 8-bit layers remain exact
    assert fft_exactness_margin(small, 127, 127) < 0.5


def test_guard_refuses_when_margin_gone():
    # int8 ranges never endanger exactness (double carries them easily);
    # wide-int data at extreme K does — the guard must refuse there
    spec = ConvSpec("x", in_channels=30000, out_channels=1, height=3, width=3,
                    kernel=(3, 3), padding=(1, 1))
    assert fft_exactness_margin(spec, 30000, 30000) >= 0.5
    x = np.full(spec.input_shape(Layout.NCHW), 30000, dtype=np.int32)
    w = np.full(spec.weight_shape(Layout.NCHW), 30000, dtype=np.int32)
    with pytest.raises(ShapeError):
        conv2d_fft(spec, x, w, check_exact=True)


def test_fft_rejects_nhwc_and_floats():
    spec = ConvSpec("f", in_channels=2, out_channels=2, height=4, width=4,
                    kernel=(3, 3), padding=(1, 1))
    x = np.zeros(spec.input_shape(Layout.NCHW), dtype=np.int8)
    w = np.zeros(spec.weight_shape(Layout.NCHW), dtype=np.int8)
    with pytest.raises(ShapeError):
        conv2d_fft(spec, x, w, layout=Layout.NHWC)
    with pytest.raises(ShapeError):
        conv2d_fft(spec, x.astype(np.float64), w)
