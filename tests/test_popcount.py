"""Bit-plane decomposition and bit-serial convolution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv.popcount import (
    conv2d_bitserial,
    from_bitplanes,
    plane_weight,
    to_bitplanes,
)
from repro.errors import ShapeError, UnsupportedBitsError


@given(st.integers(1, 8), st.lists(st.integers(-128, 127), min_size=1, max_size=64))
@settings(max_examples=60)
def test_bitplane_roundtrip(bits, values):
    half = 1 << (bits - 1)
    vals = np.clip(np.array(values), -half, half - 1).astype(np.int8)
    planes = to_bitplanes(vals, bits)
    assert planes.shape == (bits,) + vals.shape
    assert set(np.unique(planes)).issubset({0, 1})
    back = from_bitplanes(planes, bits)
    assert np.array_equal(back, vals)


def test_plane_weight_signs():
    # MSB plane carries the negative weight of two's complement
    assert plane_weight(0, 2) == 1
    assert plane_weight(1, 2) == -2
    assert plane_weight(2, 3) == -4
    assert plane_weight(1, 3) == 2


def test_out_of_range_rejected():
    with pytest.raises(ShapeError):
        to_bitplanes(np.array([2], dtype=np.int8), 2)
    with pytest.raises(UnsupportedBitsError):
        to_bitplanes(np.array([0], dtype=np.int8), 9)
    with pytest.raises(ShapeError):
        to_bitplanes(np.array([0.5]), 2)


def test_plane_count_checked():
    with pytest.raises(ShapeError):
        from_bitplanes(np.zeros((3, 4), dtype=np.uint8), 2)


def test_dot_product_identity():
    """popcount(AND) of planes recombines to the signed dot product."""
    rng = np.random.default_rng(0)
    for bits in (2, 3):
        half = 1 << (bits - 1)
        a = rng.integers(-half, half, 100)
        b = rng.integers(-half, half, 100)
        pa = to_bitplanes(a, bits)
        pb = to_bitplanes(b, bits)
        total = 0
        for p in range(bits):
            for q in range(bits):
                binary = int(np.sum(pa[p] & pb[q]))  # popcount(AND)
                total += plane_weight(p, bits) * plane_weight(q, bits) * binary
        assert total == int(np.dot(a, b))
