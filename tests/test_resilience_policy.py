"""Hardened execution policy: retry, backoff, timeout, quarantine."""

import time

import pytest

from repro.errors import ReproError
from repro.resilience.policy import (
    BACKOFF_ENV,
    RETRY_ENV,
    TIMEOUT_ENV,
    CallTimeout,
    ExecPolicy,
    PermanentFailure,
    Quarantine,
    call_with_policy,
)


# ---------------------------------------------------------------------------
# Policy resolution
# ---------------------------------------------------------------------------


def test_defaults(monkeypatch):
    for var in (RETRY_ENV, TIMEOUT_ENV, BACKOFF_ENV):
        monkeypatch.delenv(var, raising=False)
    policy = ExecPolicy.resolve()
    assert policy.retries == 2
    assert policy.timeout_s is None
    assert policy.backoff_s == pytest.approx(0.05)


def test_env_overrides(monkeypatch):
    monkeypatch.setenv(RETRY_ENV, "5")
    monkeypatch.setenv(TIMEOUT_ENV, "1.5")
    monkeypatch.setenv(BACKOFF_ENV, "0")
    policy = ExecPolicy.resolve()
    assert policy.retries == 5
    assert policy.timeout_s == 1.5
    assert policy.backoff_s == 0.0


def test_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(RETRY_ENV, "5")
    assert ExecPolicy.resolve(retries=1).retries == 1


def test_garbage_env_falls_back(monkeypatch):
    monkeypatch.setenv(RETRY_ENV, "lots")
    monkeypatch.setenv(TIMEOUT_ENV, "soon")
    policy = ExecPolicy.resolve()
    assert policy.retries == 2 and policy.timeout_s is None


# ---------------------------------------------------------------------------
# Retry semantics
# ---------------------------------------------------------------------------


def test_transient_failure_succeeds_on_retry():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise ReproError("transient")
        return "winner"

    policy = ExecPolicy(retries=2, backoff_s=0.0)
    assert call_with_policy(flaky, site="t", policy=policy) == "winner"
    assert len(calls) == 3


def test_permanent_failure_wraps_last_error():
    def dead():
        raise ReproError("always")

    policy = ExecPolicy(retries=2, backoff_s=0.0)
    with pytest.raises(PermanentFailure) as exc:
        call_with_policy(dead, site="t", key="k1", policy=policy)
    assert exc.value.attempts == 3
    assert exc.value.site == "t" and exc.value.key == "k1"
    assert isinstance(exc.value.last, ReproError)
    assert isinstance(exc.value, ReproError)  # catchable as a library error


def test_non_library_errors_propagate_immediately():
    calls = []

    def buggy():
        calls.append(1)
        raise TypeError("programming error")

    policy = ExecPolicy(retries=5, backoff_s=0.0)
    with pytest.raises(TypeError):
        call_with_policy(buggy, site="t", policy=policy)
    assert len(calls) == 1  # never retried


def test_backoff_is_exponential_and_deterministic():
    sleeps = []

    def dead():
        raise ReproError("x")

    policy = ExecPolicy(retries=3, backoff_s=0.1)
    with pytest.raises(PermanentFailure):
        call_with_policy(dead, site="t", policy=policy, sleep=sleeps.append)
    assert sleeps == pytest.approx([0.1, 0.2, 0.4])


def test_zero_retries_means_one_attempt():
    calls = []

    def dead():
        calls.append(1)
        raise ReproError("x")

    with pytest.raises(PermanentFailure):
        call_with_policy(
            dead, site="t", policy=ExecPolicy(retries=0, backoff_s=0.0))
    assert len(calls) == 1


def test_retry_metrics_counted():
    from repro.obs import metrics as obs_metrics

    obs_metrics.reset()

    def dead():
        raise ReproError("x")

    with pytest.raises(PermanentFailure):
        call_with_policy(
            dead, site="msite", policy=ExecPolicy(retries=2, backoff_s=0.0))
    snap = obs_metrics.snapshot()["counters"]
    assert snap["resilience_retries{site=msite}"] == 2
    assert snap["resilience_permanent_failures{site=msite}"] == 1
    obs_metrics.reset()


# ---------------------------------------------------------------------------
# Timeout
# ---------------------------------------------------------------------------


def test_timeout_converts_to_retryable_then_permanent():
    def stuck():
        time.sleep(5)

    policy = ExecPolicy(retries=1, timeout_s=0.05, backoff_s=0.0)
    t0 = time.perf_counter()
    with pytest.raises(PermanentFailure) as exc:
        call_with_policy(stuck, site="t", policy=policy)
    assert time.perf_counter() - t0 < 2.0  # abandoned, not joined to death
    assert isinstance(exc.value.last, CallTimeout)


def test_fast_call_passes_under_timeout():
    policy = ExecPolicy(retries=0, timeout_s=5.0, backoff_s=0.0)
    assert call_with_policy(lambda: 7, site="t", policy=policy) == 7


def test_timeout_worker_errors_surface():
    def dead():
        raise ReproError("inside the worker thread")

    policy = ExecPolicy(retries=0, timeout_s=5.0, backoff_s=0.0)
    with pytest.raises(PermanentFailure):
        call_with_policy(dead, site="t", policy=policy)


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------


def test_quarantine_set_semantics():
    q = Quarantine("test.site")
    assert not q.contains("a") and len(q) == 0
    q.add("a", reason="it died")
    q.add("a", reason="it died again")  # idempotent membership
    q.add("b")
    assert q.contains("a") and q.contains("b")
    assert len(q) == 2
    assert q.entries()["a"] == "it died again"
    q.clear()
    assert len(q) == 0 and not q.contains("a")


def test_quarantine_counts_fresh_entries_only():
    from repro.obs import metrics as obs_metrics

    obs_metrics.reset()
    q = Quarantine("qsite")
    q.add("x")
    q.add("x")
    q.add("y")
    snap = obs_metrics.snapshot()["counters"]
    assert snap["resilience_quarantined{site=qsite}"] == 2
    obs_metrics.reset()
