"""Hardened execution policy: retry, backoff, timeout, quarantine."""

import time

import pytest

from repro.errors import ReproError
from repro.resilience.policy import (
    BACKOFF_ENV,
    RETRY_ENV,
    TIMEOUT_ENV,
    CallTimeout,
    DeadlineExceeded,
    ExecPolicy,
    PermanentFailure,
    Quarantine,
    call_with_policy,
)


# ---------------------------------------------------------------------------
# Policy resolution
# ---------------------------------------------------------------------------


def test_defaults(monkeypatch):
    for var in (RETRY_ENV, TIMEOUT_ENV, BACKOFF_ENV):
        monkeypatch.delenv(var, raising=False)
    policy = ExecPolicy.resolve()
    assert policy.retries == 2
    assert policy.timeout_s is None
    assert policy.backoff_s == pytest.approx(0.05)


def test_env_overrides(monkeypatch):
    monkeypatch.setenv(RETRY_ENV, "5")
    monkeypatch.setenv(TIMEOUT_ENV, "1.5")
    monkeypatch.setenv(BACKOFF_ENV, "0")
    policy = ExecPolicy.resolve()
    assert policy.retries == 5
    assert policy.timeout_s == 1.5
    assert policy.backoff_s == 0.0


def test_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(RETRY_ENV, "5")
    assert ExecPolicy.resolve(retries=1).retries == 1


def test_garbage_env_falls_back(monkeypatch):
    monkeypatch.setenv(RETRY_ENV, "lots")
    monkeypatch.setenv(TIMEOUT_ENV, "soon")
    policy = ExecPolicy.resolve()
    assert policy.retries == 2 and policy.timeout_s is None


def test_malformed_float_envs_fall_back(monkeypatch):
    monkeypatch.setenv(TIMEOUT_ENV, "1.5.3")
    monkeypatch.setenv(BACKOFF_ENV, "0.1s")
    policy = ExecPolicy.resolve()
    assert policy.timeout_s is None
    assert policy.backoff_s == pytest.approx(0.05)  # default, not garbage


def test_negative_retries_clamp_to_zero(monkeypatch):
    monkeypatch.setenv(RETRY_ENV, "-3")
    assert ExecPolicy.resolve().retries == 0  # env path
    assert ExecPolicy.resolve(retries=-7).retries == 0  # explicit path


def test_zero_or_negative_timeout_means_no_timeout(monkeypatch):
    for var in (RETRY_ENV, TIMEOUT_ENV, BACKOFF_ENV):
        monkeypatch.delenv(var, raising=False)
    assert ExecPolicy.resolve(timeout_s=0).timeout_s is None
    assert ExecPolicy.resolve(timeout_s=-1.5).timeout_s is None
    monkeypatch.setenv(TIMEOUT_ENV, "-2")
    assert ExecPolicy.resolve().timeout_s is None


def test_negative_backoff_means_no_backoff():
    assert ExecPolicy.resolve(backoff_s=-0.5).backoff_s == 0.0


# ---------------------------------------------------------------------------
# Retry semantics
# ---------------------------------------------------------------------------


def test_transient_failure_succeeds_on_retry():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise ReproError("transient")
        return "winner"

    policy = ExecPolicy(retries=2, backoff_s=0.0)
    assert call_with_policy(flaky, site="t", policy=policy) == "winner"
    assert len(calls) == 3


def test_permanent_failure_wraps_last_error():
    def dead():
        raise ReproError("always")

    policy = ExecPolicy(retries=2, backoff_s=0.0)
    with pytest.raises(PermanentFailure) as exc:
        call_with_policy(dead, site="t", key="k1", policy=policy)
    assert exc.value.attempts == 3
    assert exc.value.site == "t" and exc.value.key == "k1"
    assert isinstance(exc.value.last, ReproError)
    assert isinstance(exc.value, ReproError)  # catchable as a library error


def test_non_library_errors_propagate_immediately():
    calls = []

    def buggy():
        calls.append(1)
        raise TypeError("programming error")

    policy = ExecPolicy(retries=5, backoff_s=0.0)
    with pytest.raises(TypeError):
        call_with_policy(buggy, site="t", policy=policy)
    assert len(calls) == 1  # never retried


def test_backoff_is_exponential_and_deterministic():
    sleeps = []

    def dead():
        raise ReproError("x")

    policy = ExecPolicy(retries=3, backoff_s=0.1)
    with pytest.raises(PermanentFailure):
        call_with_policy(dead, site="t", policy=policy, sleep=sleeps.append)
    assert sleeps == pytest.approx([0.1, 0.2, 0.4])


def test_zero_retries_means_one_attempt():
    calls = []

    def dead():
        calls.append(1)
        raise ReproError("x")

    with pytest.raises(PermanentFailure):
        call_with_policy(
            dead, site="t", policy=ExecPolicy(retries=0, backoff_s=0.0))
    assert len(calls) == 1


def test_retry_metrics_counted():
    from repro.obs import metrics as obs_metrics

    obs_metrics.reset()

    def dead():
        raise ReproError("x")

    with pytest.raises(PermanentFailure):
        call_with_policy(
            dead, site="msite", policy=ExecPolicy(retries=2, backoff_s=0.0))
    snap = obs_metrics.snapshot()["counters"]
    assert snap["resilience_retries{site=msite}"] == 2
    assert snap["resilience_permanent_failures{site=msite}"] == 1
    obs_metrics.reset()


# ---------------------------------------------------------------------------
# Timeout
# ---------------------------------------------------------------------------


def test_timeout_converts_to_retryable_then_permanent():
    def stuck():
        time.sleep(5)

    policy = ExecPolicy(retries=1, timeout_s=0.05, backoff_s=0.0)
    t0 = time.perf_counter()
    with pytest.raises(PermanentFailure) as exc:
        call_with_policy(stuck, site="t", policy=policy)
    assert time.perf_counter() - t0 < 2.0  # abandoned, not joined to death
    assert isinstance(exc.value.last, CallTimeout)


def test_fast_call_passes_under_timeout():
    policy = ExecPolicy(retries=0, timeout_s=5.0, backoff_s=0.0)
    assert call_with_policy(lambda: 7, site="t", policy=policy) == 7


def test_timeout_worker_errors_surface():
    def dead():
        raise ReproError("inside the worker thread")

    policy = ExecPolicy(retries=0, timeout_s=5.0, backoff_s=0.0)
    with pytest.raises(PermanentFailure):
        call_with_policy(dead, site="t", policy=policy)


# ---------------------------------------------------------------------------
# Deadline propagation
# ---------------------------------------------------------------------------


class FakeClock:
    """A hand-cranked ``now``/``sleep`` pair for deadline tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start
        self.sleeps = []

    def now(self) -> float:
        return self.t

    def sleep(self, dt: float) -> None:
        assert dt >= 0
        self.sleeps.append(dt)
        self.t += dt


def test_deadline_already_passed_raises_without_an_attempt():
    clock = FakeClock(start=10.0)
    calls = []

    with pytest.raises(PermanentFailure) as exc:
        call_with_policy(
            lambda: calls.append(1), site="d", key="k",
            policy=ExecPolicy(retries=3, backoff_s=0.0),
            deadline=5.0, now=clock.now, sleep=clock.sleep)
    assert calls == []  # never started
    assert exc.value.attempts == 0
    assert isinstance(exc.value.last, DeadlineExceeded)
    assert exc.value.last.deadline == 5.0


def test_deadline_stops_retries_mid_sequence():
    clock = FakeClock()
    calls = []

    def dead():
        calls.append(1)
        clock.t += 3.0  # each attempt burns 3s of virtual time
        raise ReproError("x")

    with pytest.raises(PermanentFailure) as exc:
        call_with_policy(
            dead, site="d",
            policy=ExecPolicy(retries=10, backoff_s=0.0),
            deadline=5.0, now=clock.now, sleep=clock.sleep)
    # attempt 1 at t=0 (ends t=3), attempt 2 at t=3 (ends t=6); the
    # eleven-attempt budget is cut off by the deadline at t=5
    assert len(calls) == 2
    assert isinstance(exc.value.last, ReproError)  # the real error, kept


def test_deadline_caps_backoff_sleep():
    clock = FakeClock()

    def dead():
        clock.t += 1.0
        raise ReproError("x")

    with pytest.raises(PermanentFailure):
        call_with_policy(
            dead, site="d",
            policy=ExecPolicy(retries=2, backoff_s=10.0),
            deadline=1.5, now=clock.now, sleep=clock.sleep)
    # the first backoff (10s nominal) is capped to the 0.5s remaining
    assert clock.sleeps == pytest.approx([0.5])


def test_deadline_caps_per_attempt_timeout():
    clock = FakeClock()
    seen = []
    real_run = None

    def probe(fn, timeout_s, site):
        seen.append(timeout_s)
        return fn()

    from repro.resilience import policy as policy_mod

    real_run = policy_mod._run_with_timeout
    policy_mod._run_with_timeout = probe
    try:
        call_with_policy(
            lambda: "ok", site="d",
            policy=ExecPolicy(retries=0, timeout_s=60.0, backoff_s=0.0),
            deadline=2.0, now=clock.now, sleep=clock.sleep)
    finally:
        policy_mod._run_with_timeout = real_run
    assert seen == pytest.approx([2.0])  # min(60, deadline - now)


def test_no_deadline_is_the_old_behavior():
    policy = ExecPolicy(retries=1, backoff_s=0.0)
    assert call_with_policy(lambda: 42, site="d", policy=policy) == 42


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------


def test_quarantine_set_semantics():
    q = Quarantine("test.site")
    assert not q.contains("a") and len(q) == 0
    q.add("a", reason="it died")
    q.add("a", reason="it died again")  # idempotent membership
    q.add("b")
    assert q.contains("a") and q.contains("b")
    assert len(q) == 2
    assert q.entries()["a"] == "it died again"
    q.clear()
    assert len(q) == 0 and not q.contains("a")


def test_quarantine_counts_fresh_entries_only():
    from repro.obs import metrics as obs_metrics

    obs_metrics.reset()
    q = Quarantine("qsite")
    q.add("x")
    q.add("x")
    q.add("y")
    snap = obs_metrics.snapshot()["counters"]
    assert snap["resilience_quarantined{site=qsite}"] == 2
    obs_metrics.reset()


# ---------------------------------------------------------------------------
# Quarantine TTL + half-open probe protocol
# ---------------------------------------------------------------------------


def test_quarantine_without_ttl_never_probes():
    q = Quarantine("perm.site")
    q.add("x", now=0.0)
    assert q.contains("x")
    assert not q.allow_probe("x", now=1e9)  # permanent: no probes, ever


def test_quarantine_ttl_must_be_positive():
    with pytest.raises(ValueError):
        Quarantine("bad", ttl_s=0)
    with pytest.raises(ValueError):
        Quarantine("bad", ttl_s=-1.0)


def test_probe_ticket_is_granted_once_after_ttl():
    q = Quarantine("ttl.site", ttl_s=10.0)
    q.add("x", now=100.0)
    assert q.contains("x")
    assert not q.allow_probe("x", now=105.0)  # TTL not yet elapsed
    assert q.allow_probe("x", now=110.0)      # first caller gets the ticket
    assert q.probing("x")
    assert not q.allow_probe("x", now=120.0)  # second caller does not
    # contains() keeps gating general traffic the whole time
    assert q.contains("x")


def test_probe_success_release_reopens_traffic():
    q = Quarantine("ttl.site", ttl_s=1.0)
    q.add("x", now=0.0)
    assert q.allow_probe("x", now=2.0)
    assert q.release("x")
    assert not q.contains("x") and not q.probing("x")
    assert not q.release("x")  # idempotent


def test_probe_failure_re_add_re_arms_ttl_and_clears_ticket():
    q = Quarantine("ttl.site", ttl_s=10.0)
    q.add("x", now=0.0)
    assert q.allow_probe("x", now=10.0)
    q.add("x", "probe failed", now=10.0)  # failure report
    assert not q.probing("x")
    assert not q.allow_probe("x", now=15.0)  # TTL restarted at t=10
    assert q.allow_probe("x", now=20.0)


def test_probe_unknown_key_is_false():
    q = Quarantine("ttl.site", ttl_s=1.0)
    assert not q.allow_probe("ghost", now=100.0)
    assert not q.probing("ghost")
