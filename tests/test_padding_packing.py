"""Data padding and packing (Sec. 3.2, Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv.padding import (
    pack_a,
    pack_b,
    pack_gemm_operands,
    pad_matrix,
    unpack_c,
)
from repro.errors import ShapeError


def test_pad_matrix():
    m = np.arange(6, dtype=np.int8).reshape(2, 3)
    p = pad_matrix(m, 4, 4)
    assert p.shape == (4, 4)
    assert np.array_equal(p[:2, :3], m)
    assert p[2:].sum() == 0 and p[:, 3].sum() == 0


def test_pad_matrix_noop_when_aligned():
    m = np.ones((4, 8), dtype=np.int8)
    assert pad_matrix(m, 4, 4) is m


def test_fig2_example():
    # the 3x3 example of Fig. 2 with n_a = n_b = 4
    a = np.arange(1, 10, dtype=np.int8).reshape(3, 3)
    packed = pack_a(a, 4)
    # one panel, column-major: column k contiguous with zero pad in row 3
    assert packed[:4].tolist() == [1, 4, 7, 0]
    assert packed[4:8].tolist() == [2, 5, 8, 0]
    b = np.arange(1, 10, dtype=np.int8).reshape(3, 3)
    packed_b = pack_b(b, 4)
    # row-major panels: row k contiguous with zero pad in col 3
    assert packed_b[:4].tolist() == [1, 2, 3, 0]
    assert packed_b[4:8].tolist() == [4, 5, 6, 0]


@given(st.integers(1, 40), st.integers(1, 30), st.integers(1, 25),
       st.sampled_from([4, 8, 16]), st.sampled_from([1, 4]))
@settings(max_examples=40, deadline=None)
def test_packed_panels_reconstruct_gemm(m, k, n, n_a, n_b):
    rng = np.random.default_rng(m * 1000 + k * 10 + n)
    a = rng.integers(-8, 8, (m, k)).astype(np.int8)
    b = rng.integers(-8, 8, (k, n)).astype(np.int8)
    packed = pack_gemm_operands(a, b, n_a, n_b)
    c = np.zeros((packed.m_padded, packed.n_padded), dtype=np.int64)
    for pi in range(packed.m_panels):
        ap = packed.a_panel(pi).astype(np.int64)
        for pj in range(packed.n_panels):
            bp = packed.b_panel(pj).astype(np.int64)
            c[pi * n_a:(pi + 1) * n_a, pj * n_b:(pj + 1) * n_b] = np.einsum(
                "ka,kb->ab", ap, bp)
    assert np.array_equal(unpack_c(c, m, n), a.astype(np.int64) @ b)


def test_pack_overhead_accounting():
    a = np.zeros((17, 10), dtype=np.int8)
    b = np.zeros((10, 5), dtype=np.int8)
    packed = pack_gemm_operands(a, b, 16, 4)
    assert packed.m_padded == 32
    assert packed.n_padded == 8
    assert packed.raw_bytes == 17 * 10 + 10 * 5
    assert packed.packed_bytes == 32 * 10 + 10 * 8
    assert packed.pack_overhead == pytest.approx(400 / 220)


def test_pack_no_overhead_when_aligned():
    a = np.zeros((16, 10), dtype=np.int8)
    b = np.zeros((10, 8), dtype=np.int8)
    packed = pack_gemm_operands(a, b, 16, 4)
    assert packed.pack_overhead == pytest.approx(1.0)


def test_validation():
    with pytest.raises(ShapeError):
        pack_gemm_operands(np.zeros((2, 3), np.int8), np.zeros((4, 2), np.int8), 4, 4)
    with pytest.raises(ShapeError):
        pack_gemm_operands(np.zeros((2, 3), np.int8), np.zeros((3, 2), np.int8), 0, 4)
    with pytest.raises(ShapeError):
        pad_matrix(np.zeros(3, np.int8), 4, 4)
    with pytest.raises(ShapeError):
        unpack_c(np.zeros((2, 2)), 4, 4)
