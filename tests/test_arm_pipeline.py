"""In-order dual-issue pipeline model behavior."""

import pytest

from repro.arm.isa import Instr, MemRef
from repro.arm.pipeline import A53_COST_TABLE, PipelineModel
from repro.errors import SimulationError


def sched(stream):
    return PipelineModel(A53_COST_TABLE).schedule(stream)


def test_empty_stream():
    r = sched([])
    assert r.instructions == 0


def test_dual_issue_of_independent_scalars():
    # 8 independent 1-cycle scalar ops at width 2 -> 4 cycles-ish
    stream = [Instr("MOV_X_IMM", dst=(f"x{i}",), imm=0) for i in range(8)]
    r = sched(stream)
    assert r.cycles <= 5
    assert r.ipc > 1.5


def test_neon_pipe_serializes_vector_ops():
    # independent 128-bit NEON ops occupy the 64-bit pipe 2 cycles each
    stream = [Instr("MOVI_ZERO", dst=(f"v{i}",)) for i in range(8)]
    stream += [
        Instr("AND_16B", dst=(f"v{8 + i}",), src=(f"v{i}", f"v{i}"))
        for i in range(8)
    ]
    r = sched(stream)
    assert r.neon_busy == 8 * 1 + 8 * 2
    assert r.cycles >= r.neon_busy


def test_mem_port_is_single():
    stream = [
        Instr("LD1_16B", dst=(f"v{i}",), mem=MemRef("A", 16 * i)) for i in range(6)
    ]
    r = sched(stream)
    assert r.mem_busy == 12
    assert r.cycles >= 12  # one LS pipe


def test_raw_hazard_stalls():
    a = [
        Instr("LD1_16B", dst=("v0",), mem=MemRef("A", 0)),
        Instr("AND_16B", dst=("v1",), src=("v0", "v0")),  # depends on load
    ]
    r = sched(a)
    # load latency 4 forces the AND to wait
    assert r.cycles >= 4 + 1


def test_accumulator_forwarding_keeps_mac_chains_fast():
    """Back-to-back SMLAL into the same register must not pay full latency;
    this is what makes the paper's accumulate chains viable at all."""
    chain = [
        Instr("SMLAL_8H", dst=("v2",), src=("v0", "v1")) for _ in range(32)
    ]
    r = sched(chain)
    # with 1-cycle accumulate forwarding the chain is throughput-bound:
    # ~2 cycles per instruction, not ~4 (the general latency)
    assert r.cycles <= 32 * 2 + 6
    # same ops into *different* non-dependent accumulators schedule the same
    indep = [
        Instr("SMLAL_8H", dst=(f"v{2 + (i % 8)}",), src=("v0", "v1"))
        for i in range(32)
    ]
    r2 = sched(indep)
    assert abs(r2.cycles - r.cycles) <= 4


def test_loads_overlap_neon_work():
    """Dual issue lets the LS pipe run under NEON ops — the reason the
    paper interleaves {LD1, LD4R} with SMLAL (Alg. 1 lines 3-8)."""
    neon = [Instr("SMLAL_8H", dst=(f"v{10 + i % 4}",), src=("v0", "v1"))
            for i in range(16)]
    loads = [Instr("LD1_16B", dst=("v5",), mem=MemRef("A", 16 * i))
             for i in range(8)]
    # interleaved: loads hide under the NEON pipe occupancy
    inter = []
    for i in range(16):
        inter.append(neon[i])
        if i < 8:
            inter.append(loads[i])
    r_inter = sched(inter)
    r_neon_only = sched(neon)
    assert r_inter.cycles <= r_neon_only.cycles + 4  # loads nearly free


def test_unknown_opcode_cost_rejected():
    class Fake:
        op = "TOTALLY_FAKE"
        dst = ()
        src = ()

    with pytest.raises(SimulationError):
        sched([Fake()])


def test_result_seconds():
    r = sched([Instr("MOV_X_IMM", dst=("x0",), imm=0)])
    assert r.seconds() == pytest.approx(r.cycles / 1.2e9)
