"""Branch-and-bound pruning safety and the autotune cache rework.

Pruning is only legal because the lower bound is *admissible* (never above
the achieved kernel time).  The acceptance test for the engine is the
sweep below: pruning on vs off must produce the same winner and the same
``best_cycles`` on every shape, with the tie-break on search-space order
preserved.
"""

import dataclasses

import pytest

from repro.errors import AutotuneError
from repro.gpu.autotune import (
    AutotuneResult,
    autotune,
    autotune_conv,
    autotune_options,
    autotune_reference,
    cache_store,
    clear_cache,
)
from repro.gpu.device import TU102
from repro.gpu.pipelinemodel import conv_gemm_shape, kernel_lower_bound, kernel_time
from repro.gpu.tiling import search_space, search_space_size
from repro.models import get_model_layers
from repro.perf.cache import CACHE_DIR_ENV
from repro.resilience.faults import fault_plan
from repro.types import GemmShape


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    clear_cache()
    # exact put/hit/error counts are asserted here; mask any env fault
    # plan (CI's chaos job runs the suite with REPRO_FAULTS exported —
    # fault-tolerance of the sweep itself is covered by test_chaos.py)
    with fault_plan(None):
        yield
    clear_cache()


_SHAPES = [
    conv_gemm_shape(get_model_layers("resnet50")[0]),
    conv_gemm_shape(get_model_layers("resnet50")[7]),
    GemmShape(3136, 576, 64),
    GemmShape(37, 123, 211),     # nothing tile-aligned
    GemmShape(1, 16, 8),         # degenerate tiny GEMM
    GemmShape(4096, 4096, 4096), # compute bound
]

_KWARGS_VARIANTS = [
    {},
    {"tensor_core": False},
    {"double_buffer": False, "coalesced": False},
    {"split_k": 2, "out_elem_bytes": 4.0},
    {"base_efficiency": 0.8, "in_place_epilogue": False},
]


# ---------------------------------------------------------------------------
# The bound is admissible
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bits", [8, 4])
def test_lower_bound_never_exceeds_kernel_time(bits):
    gemms = [GemmShape(3136, 576, 64), GemmShape(37, 123, 211),
             GemmShape(196, 2304, 256)]
    space = list(search_space(bits))
    sample = space[:: max(1, len(space) // 40)]  # ~40 tilings across the grid
    for gemm in gemms:
        for kwargs in _KWARGS_VARIANTS:
            for tiling in sample:
                bound = kernel_lower_bound(gemm, bits, tiling, **kwargs)
                actual = kernel_time(gemm, bits, tiling, **kwargs).total_cycles
                assert bound <= actual + 1e-9, (
                    f"inadmissible bound for {gemm} {bits}b {tiling} {kwargs}: "
                    f"{bound} > {actual}"
                )


# ---------------------------------------------------------------------------
# Pruning safety (acceptance test)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bits", [8, 4])
def test_pruning_preserves_winner_and_cycles(bits):
    for gemm in _SHAPES:
        reference = autotune_reference(gemm, bits)
        with autotune_options(persistent=False):
            exhaustive = autotune(gemm, bits, prune=False)
            clear_cache()
            pruned = autotune(gemm, bits, prune=True)

        assert exhaustive.best == reference.best
        assert pruned.best == reference.best
        assert pruned.best_cycles == reference.best_cycles
        assert pruned.best_perf == exhaustive.best_perf

        assert exhaustive.pruned == 0
        assert exhaustive.evaluated == exhaustive.candidates
        assert pruned.evaluated + pruned.pruned == pruned.candidates
        assert pruned.candidates == exhaustive.candidates == reference.candidates


def test_pruning_actually_prunes():
    with autotune_options(persistent=False):
        res = autotune(GemmShape(3136, 576, 64), 4)
    assert res.pruned > 0
    assert res.evaluated < res.candidates
    assert res.candidates > 50  # the sweep still covers the full legal grid


# ---------------------------------------------------------------------------
# Cache-key robustness + clear_cache
# ---------------------------------------------------------------------------


def test_kwarg_order_hits_the_same_entry():
    g = GemmShape(196, 2304, 256)
    r1 = autotune(g, 8, tensor_core=True, double_buffer=True)
    r2 = autotune(g, 8, double_buffer=True, tensor_core=True)
    assert r1 is r2  # same digest, same memoized object


def test_distinct_kwargs_are_distinct_entries():
    g = GemmShape(196, 2304, 256)
    r1 = autotune(g, 8)
    r2 = autotune(g, 8, out_elem_bytes=4.0)
    assert r1 is not r2
    assert r1 == autotune(g, 8)  # and the original entry is intact


def test_clear_cache_is_public_and_effective():
    g = GemmShape(37, 123, 211)
    r1 = autotune(g, 4)
    assert autotune(g, 4) is r1
    clear_cache(persistent=True)
    r2 = autotune(g, 4)
    assert r2 is not r1
    assert r2 == r1  # recomputed, identical


# ---------------------------------------------------------------------------
# Persistent store round trip
# ---------------------------------------------------------------------------


def test_result_json_roundtrip():
    import json

    res = autotune_reference(GemmShape(37, 123, 211), 4)
    back = AutotuneResult.from_json(json.loads(json.dumps(res.to_json())))
    assert back == res
    assert back.best_cycles == res.best_cycles


def test_persistent_cache_warm_hit_is_exact():
    g = GemmShape(3136, 576, 64)
    store = cache_store()
    store.reset_stats()
    r1 = autotune(g, 8)
    assert store.stats.puts == 1

    clear_cache()  # memo only; the disk entry survives
    store.reset_stats()
    r2 = autotune(g, 8)
    assert store.stats.hits == 1
    assert r2 == r1  # exact floats via JSON round trip
    assert r2.best_cycles == r1.best_cycles


def test_corrupt_persistent_entry_recomputes():
    g = GemmShape(196, 2304, 256)
    store = cache_store()
    r1 = autotune(g, 4)
    entries = list(store.directory().glob("*.json"))
    assert len(entries) == 1
    entries[0].write_text("{\"gemm\": [1,", encoding="utf-8")  # truncated

    clear_cache()
    store.reset_stats()
    r2 = autotune(g, 4)
    assert r2 == r1
    assert store.stats.errors >= 1  # tolerated, recomputed, re-stored
    assert store.stats.puts == 1


def test_autotune_conv_uses_the_cache(monkeypatch):
    spec = get_model_layers("resnet50")[2]
    monkeypatch.setenv("REPRO_JOBS", "2")
    r1 = autotune_conv(spec, 4)
    assert autotune_conv(spec, 4) is r1
    assert r1.best_cycles > 0


# ---------------------------------------------------------------------------
# Failure diagnostics
# ---------------------------------------------------------------------------


def test_autotune_error_is_diagnostic():
    cramped = dataclasses.replace(
        TU102, name="toy-gpu", smem_per_sm=64, max_smem_per_block=64,
        max_threads_per_sm=8,
    )
    with pytest.raises(AutotuneError) as exc:
        autotune(GemmShape(64, 64, 64), 4, device=cramped)
    msg = str(exc.value)
    assert "4-bit" in msg
    assert "toy-gpu" in msg
    assert str(search_space_size(4)) in msg
    assert "0 of" in msg


def test_reference_raises_the_same_diagnostic():
    cramped = dataclasses.replace(TU102, name="tiny", smem_per_sm=1,
                                  max_smem_per_block=1, max_threads_per_sm=1)
    with pytest.raises(AutotuneError, match="tiny"):
        autotune_reference(GemmShape(8, 16, 8), 8, device=cramped)
