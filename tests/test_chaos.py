"""Chaos suite: end-to-end invariants under seeded fault plans.

The acceptance bar (ISSUE 5): with a seeded plan making >=10% of autotune
candidates fail transiently, the sweep — and the whole bench — must
finish with the bit-identical winner of a fault-free run; permanent
failures quarantine and the search continues over survivors; injected
crashes at the persistence sites leave zero torn artifacts.
"""

import json

import pytest

from repro.errors import AutotuneError
from repro.gpu.autotune import autotune, clear_cache, profile_quarantine
from repro.resilience.chaos import (
    CANNED_SEED,
    run_chaos,
    scenario_autotune_invariance,
    scenario_executor_degradation,
    scenario_persistence_crash_safety,
)
from repro.resilience.faults import FaultPlan, fault_plan, install_plan
from repro.types import GemmShape

GEMM = GemmShape(m=64, k=288, n=100)
BITS = 4


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_BACKOFF_S", "0")
    install_plan(None)
    clear_cache()
    yield
    install_plan(None)
    clear_cache()


# ---------------------------------------------------------------------------
# Transient faults: same winner, bit-identical cycles
# ---------------------------------------------------------------------------


def test_autotune_winner_invariant_under_transient_faults(monkeypatch):
    # an active plan on the profile site degrades the sweep to the scalar
    # engine, so take the fault-free baseline on the same engine — the
    # evaluated/pruned split is engine-specific even though the winner
    # is not
    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    base = autotune(GEMM, BITS, persistent=False)
    clear_cache()

    monkeypatch.setenv("REPRO_RETRY", "3")
    plan = FaultPlan.from_spec("autotune.profile:raise:0.4:2", seed=7)
    with fault_plan(plan):
        chaotic = autotune(GEMM, BITS, persistent=False)

    assert plan.total_injected() >= max(1, chaotic.evaluated // 10)
    assert chaotic.best == base.best
    assert chaotic.best_cycles == base.best_cycles  # bit-identical
    assert chaotic.skipped == 0
    assert chaotic.evaluated == base.evaluated
    assert chaotic.pruned == base.pruned
    assert len(profile_quarantine()) == 0


def test_reference_sweep_wears_the_same_armor(monkeypatch):
    from repro.gpu.autotune import autotune_reference

    base = autotune_reference(GEMM, BITS)
    monkeypatch.setenv("REPRO_RETRY", "3")
    with fault_plan("autotune.profile:raise:0.4:2", seed=7):
        chaotic = autotune_reference(GEMM, BITS)
    assert chaotic.best == base.best
    assert chaotic.best_cycles == base.best_cycles
    assert chaotic.skipped == 0


# ---------------------------------------------------------------------------
# Permanent faults: quarantine, survivors win, never silently empty
# ---------------------------------------------------------------------------


def test_permanent_failures_quarantine_and_search_continues(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY", "1")
    # times=0 (unlimited): retries can never absorb these — permanent
    plan = FaultPlan.from_spec("autotune.profile:raise:0.25:0", seed=11)
    with fault_plan(plan):
        result = autotune(GEMM, BITS, persistent=False, prune=False)

    assert result.skipped > 0, "the seeded plan must kill some candidates"
    assert result.evaluated + result.pruned + result.skipped == result.candidates
    assert result.best_perf.total_cycles > 0  # a survivor won
    assert len(profile_quarantine()) == result.skipped
    # quarantine reasons carry the underlying error for debugging
    assert all("InjectedFault" in reason
               for reason in profile_quarantine().entries().values())


def test_quarantined_candidates_skipped_cheaply_on_resweep(monkeypatch):
    from repro.obs import metrics as obs_metrics

    monkeypatch.setenv("REPRO_RETRY", "0")
    with fault_plan("autotune.profile:raise:0.25:0", seed=11):
        first = autotune(GEMM, BITS, persistent=False, prune=False)
        obs_metrics.reset()
        # drop the memo but keep the quarantine: the resweep must skip the
        # known-dead candidates without re-profiling (and re-failing) them
        from repro.gpu.autotune import _MEM_CACHE

        _MEM_CACHE.clear()
        second = autotune(GEMM, BITS, persistent=False, prune=False)
    assert second.best == first.best
    assert second.skipped == first.skipped
    snap = obs_metrics.snapshot()["counters"]
    assert snap.get("autotune_skipped{reason=quarantined}", 0) == second.skipped
    assert "autotune_skipped{reason=failed}" not in snap


def test_all_candidates_dead_raises_not_empty(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY", "0")
    with fault_plan("autotune.profile:raise:1:0"):
        with pytest.raises(AutotuneError, match="no survivor"):
            autotune(GEMM, BITS, persistent=False)


# ---------------------------------------------------------------------------
# The full bench completes under the canned transient plan
# ---------------------------------------------------------------------------


def test_bench_smoke_completes_under_transient_faults(
        tmp_path, monkeypatch, capsys):
    """The acceptance criterion end to end: a seeded transient plan over
    the smoke bench changes nothing — the engine-vs-reference equality
    asserted inside the bench still holds, and the report is intact."""
    from repro.cli import main

    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_RETRY", "3")
    plan = FaultPlan.from_spec(
        "autotune.profile:raise:0.3:2;cache.get:garbage:0.15:1;"
        "cache.put:raise:0.1:1", seed=CANNED_SEED)
    with fault_plan(plan):
        rc = main(["bench", "--smoke", "--no-arm",
                   "--out", str(tmp_path),
                   "--cache-dir", str(tmp_path / "cache")])
    assert rc == 0
    assert plan.total_injected() > 0, "the plan must actually have fired"
    out = capsys.readouterr().out
    assert "identical best tilings: True" in out
    report = json.loads(
        (tmp_path / "BENCH_autotune_smoke.json").read_text())
    assert report["gpu_autotune"]["identical_series"] is True
    # no torn/partial artifacts anywhere in the output tree
    for path in tmp_path.rglob("*"):
        if path.is_file() and path.suffix == ".json":
            json.loads(path.read_text(encoding="utf-8"))
        assert path.suffix != ".tmp"


# ---------------------------------------------------------------------------
# The packaged scenarios (what `python -m repro chaos` runs)
# ---------------------------------------------------------------------------


def test_scenario_autotune_invariance_passes():
    result = scenario_autotune_invariance()
    assert result.passed, result.checks


def test_scenario_executor_degradation_passes():
    result = scenario_executor_degradation()
    assert result.passed, result.checks


def test_scenario_persistence_crash_safety_passes():
    result = scenario_persistence_crash_safety()
    assert result.passed, result.checks


def test_run_chaos_exit_codes(capsys):
    assert run_chaos() == 0
    out = capsys.readouterr().out
    assert out.count("[PASS]") == 4 and "[FAIL]" not in out


def test_run_chaos_named_subset(capsys):
    assert run_chaos(names=["executor-degradation"]) == 0
    out = capsys.readouterr().out
    assert out.count("[PASS]") == 1
    assert "executor-degradation" in out


def test_scenario_names_listing():
    from repro.resilience.chaos import scenario_names

    names = scenario_names()
    assert "autotune-invariance" in names
    assert "serve-slo" in names


def test_scenario_serve_slo_passes():
    from repro.resilience.chaos import scenario_serve_slo

    result = scenario_serve_slo()
    assert result.passed, result.checks
