"""Paper-fidelity of the generated streams: Alg. 1's structure is visible
in the rendered listings, register allocations match Sec. 3.3's text."""

import re

from repro.arm.kernels import (
    generate_mla_kernel,
    generate_ncnn_kernel,
    generate_smlal_kernel,
)


def listing(kern):
    return [ins.render() for ins in kern.stream]


def test_alg1_interleave_structure():
    """Alg. 1 lines 3-8: {LD1, LD4R} pairs interleave with SMLAL(2) groups
    using alternating register groups (v0/v2~v5 vs v1/v6~v9)."""
    kern = generate_smlal_kernel(4, 8)
    ops = [ins.op for ins in kern.stream]
    # find the first LD1 -> LD4R -> (LD1 -> LD4R ->) SMLAL pattern
    text = " ".join(ops)
    assert "LD1_16B LD4R_B LD1_16B LD4R_B SMLAL_8H" in text
    # both register groups appear as SMLAL sources
    srcs = {ins.src for ins in kern.stream if ins.op == "SMLAL_8H"}
    a_regs = {s[0] for s in srcs}
    assert a_regs == {"v0", "v1"}
    b_regs = {s[1] for s in srcs}
    assert b_regs == {"v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9"}


def test_alg1_register_allocation():
    """Sec. 3.3: v10~v17 hold 16-bit partials, v18~v31 + x0~x3 the 32-bit
    results."""
    kern = generate_smlal_kernel(8, 16)
    acc16 = {ins.dst[0] for ins in kern.stream if ins.op.startswith("SMLAL")}
    assert acc16 == {f"v{i}" for i in range(10, 18)}
    acc32 = {ins.dst[0] for ins in kern.stream if ins.op.startswith("SADDW")}
    assert acc32 <= {f"v{i}" for i in range(18, 32)} | {"v0", "v1"}
    xregs = {ins.dst[0] for ins in kern.stream if ins.op == "MOV_V_TO_X"}
    assert xregs == {"x0", "x1", "x2", "x3"}


def test_mla_register_allocation():
    """Sec. 3.3: v0~v3 read A, v4~v7 read B, v8~v11 8-bit accumulators,
    v12~v19 16-bit, v20~v31 + x0~x7 32-bit."""
    kern = generate_mla_kernel(2, 64)
    mla_srcs_a = {ins.src[0] for ins in kern.stream if ins.op == "MLA_16B"}
    assert mla_srcs_a == {"v0", "v1", "v2", "v3"}
    mla_srcs_b = {ins.src[1] for ins in kern.stream if ins.op == "MLA_16B"}
    assert mla_srcs_b <= {"v4", "v5", "v6", "v7"}
    acc8 = {ins.dst[0] for ins in kern.stream if ins.op == "MLA_16B"}
    assert acc8 == {"v8", "v9", "v10", "v11"}
    acc16 = {ins.dst[0] for ins in kern.stream if ins.op.endswith("_8H")
             and ins.op.startswith("SADDW")}
    assert acc16 == {f"v{i}" for i in range(12, 20)}
    xregs = {ins.dst[0] for ins in kern.stream if ins.op == "MOV_V_TO_X"}
    assert xregs == {f"x{i}" for i in range(8)}


def test_smlal_drain_frequency_by_bits():
    """8-bit drains every 2 steps, 4-bit every 32: the SADDW share of the
    stream shrinks exactly with the paper's ratios."""
    k = 64
    def saddw_per_smlal(bits):
        kern = generate_smlal_kernel(bits, k)
        ops = kern.summary()
        smlal = ops.get("SMLAL_8H", 0) + ops.get("SMLAL2_8H", 0)
        saddw = ops.get("SADDW_4S", 0) + ops.get("SADDW2_4S", 0)
        return saddw / smlal

    assert saddw_per_smlal(8) > 5 * saddw_per_smlal(4)


def test_render_is_parseable_text():
    kern = generate_ncnn_kernel(4)
    for line in listing(kern):
        assert re.match(r"^[A-Z0-9_]+( .*)?$", line)
    text = "\n".join(listing(kern))
    assert "SSHLL_8H" in text  # the widening ncnn relies on
