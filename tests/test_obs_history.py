"""The append-only bench ledger: resolution, provenance, durability."""

import json

from repro.obs import history
from repro.obs.history import (
    BENCH_DIR_ENV,
    BenchLedger,
    build_entry,
    history_dir,
    machine_fingerprint,
)


def test_history_dir_resolution(tmp_path, monkeypatch):
    monkeypatch.delenv(BENCH_DIR_ENV, raising=False)
    assert history_dir() == history.DEFAULT_HISTORY_DIR
    monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path / "env"))
    assert history_dir() == tmp_path / "env"
    # an explicit argument beats the environment
    assert history_dir(tmp_path / "arg") == tmp_path / "arg"


def test_append_and_read_back(tmp_path):
    ledger = BenchLedger(tmp_path)
    assert ledger.entries() == [] and len(ledger) == 0
    ledger.append({"run_id": "a", "n": 1})
    ledger.append({"run_id": "b", "n": 2})
    assert [e["run_id"] for e in ledger.entries()] == ["a", "b"]
    assert [e["run_id"] for e in ledger.latest(1)] == ["b"]
    assert [e["run_id"] for e in ledger.latest(5)] == ["b", "a"]
    # JSONL: one sorted-key object per line, stable for diffing
    lines = ledger.path.read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0]) == {"n": 1, "run_id": "a"}


def test_corrupt_and_blank_lines_skipped(tmp_path):
    ledger = BenchLedger(tmp_path)
    ledger.append({"run_id": "good"})
    with open(ledger.path, "a", encoding="utf-8") as fh:
        fh.write("\n}{ broken\n[1,2]\n")
    ledger.append({"run_id": "after"})
    assert [e["run_id"] for e in ledger.entries()] == ["good", "after"]


def test_build_entry_schema_v3(monkeypatch):
    monkeypatch.setattr(history, "git_sha", lambda: "abcdef0123456789")
    entry = build_entry(
        kind="smoke", model="resnet50", batch=1, jobs=4,
        backends=["gpu", "arm"], timestamp="2026-08-06T00:00:00",
        model_cycles={"gpu_8bit": 42}, figures={"fig10": {"s": [1.0]}},
        wall_seconds={"gpu_cold": 1.23456789},
        metrics_snapshot={"schema": 1},
    )
    assert entry["schema"] == history.LEDGER_SCHEMA == 3
    assert entry["run_id"] == "2026-08-06T00:00:00-abcdef012345"
    assert entry["git_sha"] == "abcdef0123456789"
    assert entry["wall_seconds"] == {"gpu_cold": 1.234568}  # rounded
    assert entry["fingerprint"] == machine_fingerprint()
    json.dumps(entry)  # plain JSON throughout


def test_build_entry_without_git(monkeypatch):
    monkeypatch.setattr(history, "git_sha", lambda: None)
    entry = build_entry(
        kind="smoke", model="resnet50", batch=1, jobs=1, backends=[],
        timestamp="t0", model_cycles={}, figures={}, wall_seconds={},
        metrics_snapshot={},
    )
    assert entry["git_sha"] is None
    assert entry["run_id"] == "t0-nogit"


def test_machine_fingerprint_is_stable_and_short():
    a, b = machine_fingerprint(), machine_fingerprint()
    assert a == b
    assert len(a) == 16 and all(c in "0123456789abcdef" for c in a)
