"""Tiling independence: any legal tiling computes the same convolution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import conv2d_ref
from repro.gpu.autotune import autotune
from repro.gpu.implicit_gemm import conv2d_implicit_gemm
from repro.gpu.pipelinemodel import kernel_time
from repro.gpu.tiling import search_space
from repro.types import ConvSpec, GemmShape, Layout

_SPACE8 = [t for t in search_space(8) if t.m_tile <= 64 and t.n_tile <= 64]
_SPACE4 = [t for t in search_space(4) if t.m_tile <= 64 and t.n_tile <= 64]


@given(st.integers(0, len(_SPACE8) - 1), st.integers(0, 2**32 - 1))
@settings(max_examples=12, deadline=None)
def test_any_legal_tiling_is_exact_int8(idx, seed):
    tiling = _SPACE8[idx]
    rng = np.random.default_rng(seed)
    spec = ConvSpec("t", in_channels=5, out_channels=7, height=6, width=7,
                    kernel=(3, 3), padding=(1, 1))
    x = rng.integers(-128, 128, spec.input_shape(Layout.NHWC)).astype(np.int8)
    w = rng.integers(-128, 128, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    out = conv2d_implicit_gemm(spec, x, w, bits=8, tiling=tiling)
    assert np.array_equal(out.data, conv2d_ref(spec, x, w, layout=Layout.NHWC))


@given(st.integers(0, len(_SPACE4) - 1), st.integers(0, 2**32 - 1))
@settings(max_examples=8, deadline=None)
def test_any_legal_tiling_is_exact_int4(idx, seed):
    tiling = _SPACE4[idx]
    rng = np.random.default_rng(seed)
    spec = ConvSpec("t", in_channels=4, out_channels=6, height=5, width=6,
                    kernel=(3, 3), padding=(1, 1))
    x = rng.integers(-8, 8, spec.input_shape(Layout.NHWC)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    out = conv2d_implicit_gemm(spec, x, w, bits=4, tiling=tiling)
    assert np.array_equal(out.data, conv2d_ref(spec, x, w, layout=Layout.NHWC))


@given(st.integers(0, len(_SPACE8) - 1))
@settings(max_examples=25, deadline=None)
def test_autotune_is_optimal_over_sampled_configs(idx):
    """The autotuner's pick is never slower than any sampled legal config."""
    gemm = GemmShape(m=784, k=576, n=128)
    best = autotune(gemm, 8).best_cycles
    sampled = kernel_time(gemm, 8, _SPACE8[idx]).total_cycles
    assert best <= sampled + 1e-6
