"""Tiling independence: any legal tiling computes the same convolution —
and the vectorized cost model prices any tiling bit-identically to the
scalar one."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import conv2d_ref
from repro.errors import TilingError
from repro.gpu.autotune import autotune
from repro.gpu.implicit_gemm import conv2d_implicit_gemm
from repro.gpu.mma import mma_shape
from repro.gpu.pipelinemodel import kernel_lower_bound, kernel_time
from repro.gpu.tiling import TilingParams, search_space, validate_tiling
from repro.gpu.vecmodel import (
    TilingArrays,
    kernel_lower_bound_batch,
    kernel_time_batch,
    validate_mask,
)
from repro.types import ConvSpec, GemmShape, Layout

_SPACE8 = [t for t in search_space(8) if t.m_tile <= 64 and t.n_tile <= 64]
_SPACE4 = [t for t in search_space(4) if t.m_tile <= 64 and t.n_tile <= 64]


@given(st.integers(0, len(_SPACE8) - 1), st.integers(0, 2**32 - 1))
@settings(max_examples=12, deadline=None)
def test_any_legal_tiling_is_exact_int8(idx, seed):
    tiling = _SPACE8[idx]
    rng = np.random.default_rng(seed)
    spec = ConvSpec("t", in_channels=5, out_channels=7, height=6, width=7,
                    kernel=(3, 3), padding=(1, 1))
    x = rng.integers(-128, 128, spec.input_shape(Layout.NHWC)).astype(np.int8)
    w = rng.integers(-128, 128, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    out = conv2d_implicit_gemm(spec, x, w, bits=8, tiling=tiling)
    assert np.array_equal(out.data, conv2d_ref(spec, x, w, layout=Layout.NHWC))


@given(st.integers(0, len(_SPACE4) - 1), st.integers(0, 2**32 - 1))
@settings(max_examples=8, deadline=None)
def test_any_legal_tiling_is_exact_int4(idx, seed):
    tiling = _SPACE4[idx]
    rng = np.random.default_rng(seed)
    spec = ConvSpec("t", in_channels=4, out_channels=6, height=5, width=6,
                    kernel=(3, 3), padding=(1, 1))
    x = rng.integers(-8, 8, spec.input_shape(Layout.NHWC)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    out = conv2d_implicit_gemm(spec, x, w, bits=4, tiling=tiling)
    assert np.array_equal(out.data, conv2d_ref(spec, x, w, layout=Layout.NHWC))


@given(st.integers(0, len(_SPACE8) - 1))
@settings(max_examples=25, deadline=None)
def test_autotune_is_optimal_over_sampled_configs(idx):
    """The autotuner's pick is never slower than any sampled legal config."""
    gemm = GemmShape(m=784, k=576, n=128)
    best = autotune(gemm, 8).best_cycles
    sampled = kernel_time(gemm, 8, _SPACE8[idx]).total_cycles
    assert best <= sampled + 1e-6


# ---------------------------------------------------------------------------
# Vector/scalar pricing equivalence (the SoA model's bit-identity contract)
# ---------------------------------------------------------------------------

#: every kernel-kwarg axis the autotuner forwards, exercised in the same
#: combinations the pruning suite pins down, plus the smem-reorder switch
_EQ_KWARGS = [
    {},
    {"tensor_core": False},
    {"double_buffer": False, "coalesced": False, "reorder_smem": False},
    {"split_k": 2, "out_elem_bytes": 4.0},
    {"base_efficiency": 0.8, "in_place_epilogue": False},
]

_EQ_GEMMS = [
    GemmShape(784, 576, 128),
    GemmShape(37, 123, 211),     # nothing tile-aligned
    GemmShape(1, 16, 8),         # degenerate tiny GEMM
    GemmShape(4096, 4096, 4096), # compute bound
]


@pytest.mark.parametrize("bits", [8, 4])
@pytest.mark.parametrize("kwargs", _EQ_KWARGS,
                         ids=lambda kw: "-".join(kw) or "defaults")
def test_vector_pricing_is_bit_identical(bits, kwargs):
    """Every lane of the batched model equals the scalar call exactly —
    total and component cycles, occupancy, residency, legality, and the
    pruning bound — for the full legal space of the bit width."""
    space = list(search_space(bits))
    arrays = TilingArrays.from_params(space)
    for gemm in _EQ_GEMMS:
        batch = kernel_time_batch(gemm, bits, arrays, **kwargs)
        bounds = kernel_lower_bound_batch(gemm, bits, arrays, **kwargs)
        totals = batch.total_cycles
        assert bool(batch.legal.all())  # search_space pre-validates
        for i, tiling in enumerate(space):
            scalar = kernel_time(gemm, bits, tiling, **kwargs)
            assert batch.perf_at(i) == scalar  # full dataclass, bit-exact
            assert totals[i] == scalar.total_cycles
            assert batch.occupancy[i] == scalar.occupancy
            assert int(batch.blocks_per_sm[i]) == scalar.blocks_per_sm
            assert bounds[i] == kernel_lower_bound(gemm, bits, tiling, **kwargs)


@pytest.mark.parametrize("bits", [8, 4])
def test_validate_mask_matches_scalar_validation(bits):
    """The legality mask agrees with validate_tiling over the *raw*
    template grid — including the illegal points search_space filters."""
    kk = mma_shape(bits)[2]
    raw = [
        TilingParams(m, n, kt, ks, brw, bcw)
        for m in (16, 32, 64, 128, 256)
        for n in (16, 32, 64, 128, 256)
        for kt in (kk, kk * 2, kk * 4)
        for ks in (kk, kk * 2)
        for brw, bcw in ((1, 1), (1, 2), (2, 2), (2, 4), (4, 4), (3, 1))
    ]
    arrays = TilingArrays.from_params(raw)
    for double_buffer in (True, False):
        mask = validate_mask(arrays, bits, double_buffer=double_buffer)
        for i, tiling in enumerate(raw):
            try:
                validate_tiling(tiling, bits, double_buffer=double_buffer)
                legal = True
            except TilingError:
                legal = False
            assert bool(mask[i]) == legal, tiling


@given(
    st.integers(0, len(_SPACE8) - 1),
    st.integers(1, 4096), st.integers(1, 4096), st.integers(1, 4096),
)
@settings(max_examples=40, deadline=None)
def test_vector_pricing_property_random_gemms(idx, m, k, n):
    """Property form: a random (tiling, GEMM) pair prices identically
    through both models."""
    gemm = GemmShape(m, k, n)
    tiling = _SPACE8[idx]
    batch = kernel_time_batch(gemm, 8, TilingArrays.from_params([tiling]))
    scalar = kernel_time(gemm, 8, tiling)
    assert batch.perf_at(0) == scalar
    assert batch.total_cycles[0] == scalar.total_cycles
