"""Workload tables: ResNet-50 / SCR-ResNet-50 / DenseNet-121."""

import pytest

from repro.errors import ReproError
from repro.models import (
    densenet121_conv_layers,
    get_model_layers,
    resnet50_conv_layers,
    scr_resnet50_conv_layers,
)
from repro.models.layers import shape_key, total_macs, unique_conv_layers, with_batch
from repro.models.resnet50 import resnet50_all_conv_layers
from repro.models.scr_resnet50 import scr_resnet50_all_conv_layers
from repro.types import ConvSpec


def test_resnet50_has_53_convs():
    assert len(resnet50_all_conv_layers()) == 53  # 1 stem + 16*3 + 4 proj


def test_resnet50_unique_count_matches_paper():
    uniq = resnet50_conv_layers()
    # the paper plots exactly 19 unique layers (fp32 stem excluded)
    assert len(uniq) == 19
    # Sec. 5.2: conv1 is a "1x1 kernel with 64 channels"
    assert uniq[0].kernel == (1, 1) and uniq[0].in_channels == 64
    names = [s.name for s in uniq]
    assert names == [f"conv{i + 1}" for i in range(len(uniq))]
    with_stem = resnet50_conv_layers(include_stem=True)
    assert len(with_stem) == 20
    assert with_stem[0].kernel == (7, 7)


def test_resnet50_macs_match_published_flops():
    # ~3.86 GMACs of convolution at 224x224 (4.1 GFLOPs with FC/pool)
    g = total_macs(resnet50_all_conv_layers()) / 1e9
    assert 3.5 < g < 4.2


def test_resnet50_contains_expected_shapes():
    keys = {shape_key(s) for s in resnet50_conv_layers()}
    mid = ConvSpec("x", in_channels=128, out_channels=128, height=28, width=28,
                   kernel=(3, 3), stride=(1, 1), padding=(1, 1))
    assert shape_key(mid) in keys
    deep = ConvSpec("x", in_channels=2048, out_channels=512, height=7, width=7,
                    kernel=(1, 1))
    assert shape_key(deep) in keys


def test_unique_dedup():
    base = resnet50_all_conv_layers()
    uniq = unique_conv_layers(base)
    assert len({shape_key(s) for s in uniq}) == len(uniq)
    assert {shape_key(s) for s in uniq} == {shape_key(s) for s in base}


def test_scr_is_reallocated_but_iso_flops():
    """The synthesized SCR keeps ResNet-50's budget but different shapes."""
    r50 = total_macs(resnet50_all_conv_layers())
    scr = total_macs(scr_resnet50_all_conv_layers())
    assert 0.85 < scr / r50 < 1.25
    r_keys = {shape_key(s) for s in resnet50_conv_layers()}
    s_keys = {shape_key(s) for s in scr_resnet50_conv_layers()}
    overlap = r_keys & s_keys
    assert len(overlap) <= 1  # only the stem could collide, and it doesn't
    # widths off the power-of-two grid (the 'unusual shapes' property)
    assert any(s.out_channels not in (64, 128, 256, 512, 1024, 2048)
               for s in scr_resnet50_conv_layers())


def test_densenet_representative_16():
    rep = densenet121_conv_layers()
    assert len(rep) == 16
    assert any(s.kernel == (3, 3) for s in rep)
    assert not any(s.kernel == (7, 7) for s in rep)  # stem excluded
    # the Sec. 5.5 example shape: 736 channels at 14x14
    assert any(s.in_channels == 736 and s.height == 14 for s in rep)


def test_densenet_full_unique():
    full = densenet121_conv_layers(representative=None)
    assert len(full) > 40
    # growth convs are always 128 -> 32
    k3 = [s for s in full if s.kernel == (3, 3)]
    assert all(s.in_channels == 128 and s.out_channels == 32 for s in k3)


def test_zoo_lookup_and_batch():
    layers = get_model_layers("resnet50", batch=16)
    assert all(s.batch == 16 for s in layers)
    with pytest.raises(ReproError):
        get_model_layers("vgg16")


def test_with_batch_helper():
    layers = with_batch(resnet50_conv_layers(), 4)
    assert all(s.batch == 4 for s in layers)
