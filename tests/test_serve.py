"""Serving-layer invariants: clock, workload, cost tables, the simulator.

The acceptance bar (ISSUE 10): request accounting conserves
(offered == admitted + shed, admitted == completed + expired), batches
never exceed the cap, the virtual clock never runs backwards, and a
seeded replay is byte-identical across runs — including under the chaos
plan with a scripted primary kill (breaker opens, traffic browns out to
the fallback, a half-open probe re-admits the primary).

Simulator tests run on hand-built cost tables so they price nothing and
finish in milliseconds; one test prices a real (ref-backend) table to
cover :meth:`CostTable.build`.
"""

import json

import pytest

from repro.errors import ReproError
from repro.resilience.faults import fault_plan
from repro.serve import (
    ClockError,
    CostTable,
    Request,
    ServeConfig,
    VirtualClock,
    generate_trace,
    load_trace,
    run_serve,
    save_trace,
    summary_digest,
)

# ---------------------------------------------------------------------------
# Virtual clock
# ---------------------------------------------------------------------------


def test_clock_advances_and_never_backwards():
    clk = VirtualClock()
    clk.advance_to_us(100.0)
    clk.advance_us(50.0)
    assert clk.now_us == 150.0
    assert clk.now_s() == pytest.approx(150e-6)
    with pytest.raises(ClockError):
        clk.advance_to_us(149.0)
    with pytest.raises(ClockError):
        clk.advance_us(-1.0)
    clk.advance_to_us(150.0)  # equal is fine (no-op)
    assert clk.now_us == 150.0


def test_clock_fork_is_independent():
    clk = VirtualClock(1000.0)
    lane = clk.fork()
    lane.sleep_s(0.001)
    assert lane.now_us == pytest.approx(2000.0)
    assert clk.now_us == 1000.0  # the global timeline did not move


# ---------------------------------------------------------------------------
# Workload generation
# ---------------------------------------------------------------------------


def test_trace_is_seeded_sorted_and_sized():
    a = generate_trace(1000, 500, seed=7, slo_us=10_000)
    b = generate_trace(1000, 500, seed=7, slo_us=10_000)
    c = generate_trace(1000, 500, seed=8, slo_us=10_000)
    assert a == b  # pure function of the arguments
    assert a != c
    assert len(a) == 500
    arrivals = [r.arrival_us for r in a]
    assert arrivals == sorted(arrivals)
    assert all(r.deadline_us == r.arrival_us + 10_000 for r in a)


def test_burst_shape_concentrates_arrivals():
    steady = generate_trace(1000, 4000, seed=1, shape="steady")
    burst = generate_trace(1000, 4000, seed=1, shape="burst")
    horizon = 4000 / 1000 * 1e6

    def in_window(trace):
        return sum(1 for r in trace
                   if 0.45 * horizon <= r.arrival_us < 0.60 * horizon)

    # the burst window holds ~3x the steady density of arrivals
    assert in_window(burst) > 2 * in_window(steady)


def test_bad_workload_arguments():
    with pytest.raises(ReproError):
        generate_trace(0, 10)
    with pytest.raises(ReproError):
        generate_trace(100, -1)
    with pytest.raises(ReproError):
        generate_trace(100, 10, shape="sawtooth")


def test_trace_roundtrip_and_validation(tmp_path):
    trace = generate_trace(2000, 100, seed=3)
    path = save_trace(tmp_path / "t.jsonl", trace)
    assert load_trace(path) == trace
    # unsorted arrivals are rejected
    bad = tmp_path / "bad.jsonl"
    bad.write_text(
        json.dumps({"rid": 0, "arrival_us": 100.0, "slo_us": 1.0}) + "\n" +
        json.dumps({"rid": 1, "arrival_us": 50.0, "slo_us": 1.0}) + "\n")
    with pytest.raises(ReproError):
        load_trace(bad)
    # missing fields are rejected with a line number
    bad.write_text('{"rid": 0}\n')
    with pytest.raises(ReproError, match="bad.jsonl:1"):
        load_trace(bad)
    with pytest.raises(ReproError):
        load_trace(tmp_path / "absent.jsonl")


# ---------------------------------------------------------------------------
# Cost tables
# ---------------------------------------------------------------------------


def make_table(backend="prim", per_batch=(200.0, 250.0, 280.0, 300.0),
               overhead=10.0):
    return CostTable(backend=backend, model="toy", bits=4,
                     service_us=tuple(per_batch), overhead_us=overhead)


def test_cost_table_views():
    t = make_table()
    assert t.max_batch == 4
    assert t.service(1) == pytest.approx(210.0)
    assert t.service(4) == pytest.approx(310.0)
    assert t.per_image(4) == pytest.approx(310.0 / 4)
    assert t.best_batch() == 4  # amortization wins
    assert t.best_batch(cap=2) == 2
    with pytest.raises(ReproError):
        t.service(0)
    with pytest.raises(ReproError):
        t.service(5)


def test_cost_table_build_prices_a_real_backend():
    t = CostTable.build("ref", "resnet50", bits=4, max_batch=2,
                        overhead_us=5.0)
    assert t.max_batch == 2
    assert t.service(1) > 0
    # the ref cost model is linear in batch: no amortization, so batch 1
    # (lowest per-image including overhead share...) — just sanity-check
    # monotonicity of the absolute service time
    assert t.service(2) > t.service(1)


# ---------------------------------------------------------------------------
# The simulator
# ---------------------------------------------------------------------------

#: primary: strongly batch-amortizing (per-image 210 -> 77.5 us)
PRIMARY = make_table("prim")
#: fallback: flat and ~20x slower — a brownout-grade degraded service
FALLBACK = make_table("fb", per_batch=(5000.0, 10_000.0, 15_000.0, 20_000.0),
                      overhead=10.0)


def make_config(**kw):
    base = dict(
        backend="prim", fallback="fb", qps=5000.0, requests=2000,
        seed=11, slo_ms=20.0, lanes=2, max_batch=4, queue_cap=64,
        hold_us=300.0, retries=2, backoff_ms=0.1, fault_detect_us=100.0,
        breaker_threshold=3, breaker_open_ms=50.0)
    base.update(kw)
    return ServeConfig(**base)


def run(cfg, **kw):
    return run_serve(cfg, primary_table=PRIMARY, fallback_table=FALLBACK,
                     **kw)


def test_conservation_invariant_clean_run():
    s = run(make_config())
    c = s["counts"]
    assert c["offered"] == 2000
    assert c["offered"] == c["admitted"] + c["shed"]["total"]
    assert c["admitted"] == c["completed"] + c["expired"]
    assert s["invariants"]["conservation"] is True
    # a clean run on a fast primary sheds nothing and meets every SLO
    assert c["shed"]["total"] == 0 and c["slo_missed"] == 0
    assert s["slo_attainment"] == 1.0


def test_batches_never_exceed_the_cap():
    s = run(make_config(max_batch=3))
    sizes = [int(k) for k in s["batch_hist"]]
    assert sizes and max(sizes) <= 3
    assert sum(s["batch_hist"].values()) == s["counts"]["batches"]
    # batch-size histogram accounts for every completed request
    total = sum(int(k) * v for k, v in s["batch_hist"].items())
    assert total == s["counts"]["completed"]


def test_virtual_clock_covers_the_whole_trace():
    s = run(make_config())
    assert s["invariants"]["clock_end_us"] >= s["workload"]["horizon_us"]


def test_seeded_replay_is_byte_identical():
    a = run(make_config())
    b = run(make_config())
    ja = json.dumps(a, sort_keys=True)
    jb = json.dumps(b, sort_keys=True)
    assert ja == jb
    assert summary_digest(a) == summary_digest(b)


def test_bounded_queue_sheds_on_queue_full():
    # huge SLO disables deadline shedding; a glacial primary backs the
    # queue up against its cap instead
    slow = make_table("prim", per_batch=(100_000.0,) * 4, overhead=0.0)
    cfg = make_config(qps=10_000.0, requests=300, slo_ms=10_000.0,
                      queue_cap=8, lanes=1)
    s = run_serve(cfg, primary_table=slow, fallback_table=FALLBACK)
    c = s["counts"]
    assert c["shed"]["queue_full"] > 0
    assert s["queue_peak"] <= 8
    assert c["offered"] == c["admitted"] + c["shed"]["total"]


def test_deadline_shedding_rejects_at_admission():
    # tight SLO + slow primary: most requests are priced out on arrival
    slow = make_table("prim", per_batch=(15_000.0,) * 4, overhead=0.0)
    cfg = make_config(qps=2000.0, requests=500, slo_ms=20.0, lanes=1)
    s = run_serve(cfg, primary_table=slow, fallback_table=FALLBACK)
    c = s["counts"]
    assert c["shed"]["deadline"] > 0
    # shed at the front door, not starved in the queue
    assert c["expired"] == 0
    # whatever was admitted was served within its SLO
    assert s["slo_attainment"] == 1.0


def test_kill_window_trips_breaker_and_browns_out():
    cfg = make_config(
        requests=3000,
        kill_start_us=0.4 * 3000 / 5000 * 1e6,
        kill_end_us=0.6 * 3000 / 5000 * 1e6)
    s = run(cfg)
    brk = s["breaker"]
    assert brk["opens"] >= 1  # the kill tripped it
    assert brk["closes"] >= 1  # the probe re-admitted the primary
    assert s["counts"]["brownout_batches"] > 0
    assert s["counts"]["probe_batches"] >= 1
    states = [st for _, st in brk["transitions"]]
    assert states[0] == "open" and states[-1] == "closed"
    assert "half_open" in states
    # degraded, not broken: accounting still conserves, and no admitted
    # request starved in the queue
    assert s["invariants"]["conservation"] is True
    assert s["counts"]["expired"] <= s["counts"]["admitted"] * 1e-3


def test_chaos_replay_is_deterministic_with_faults():
    from repro.serve.harness import chaos_spec

    cfg = make_config(
        requests=2000,
        kill_start_us=0.4 * 2000 / 5000 * 1e6,
        kill_end_us=0.6 * 2000 / 5000 * 1e6)
    summaries = []
    for _ in range(2):
        with fault_plan(chaos_spec(cfg.backend), seed=cfg.seed):
            summaries.append(run(cfg))
    assert summary_digest(summaries[0]) == summary_digest(summaries[1])
    injected = summaries[0]["faults_injected"]
    assert sum(injected.values()) > 0
    assert all(site.startswith("serve.backend.prim")
               for site in injected)


def test_request_dataclass_deadline():
    r = Request(rid=1, arrival_us=100.0, slo_us=50.0)
    assert r.deadline_us == 150.0
