"""Crash-safe persistence primitives and startup recovery."""

import json
import os

import pytest

from repro.resilience.atomic import (
    atomic_append_line,
    atomic_write_json,
    atomic_write_text,
    quarantine_dir_for,
    quarantine_file,
    recover_jsonl,
)
from repro.resilience.faults import InjectedFault, fault_plan, install_plan


@pytest.fixture(autouse=True)
def _no_plan():
    install_plan(None)
    yield
    install_plan(None)


# ---------------------------------------------------------------------------
# Atomic writes
# ---------------------------------------------------------------------------


def test_atomic_write_publishes_and_cleans_up(tmp_path):
    path = tmp_path / "out.json"
    atomic_write_json(path, {"v": 1}, indent=2)
    assert json.loads(path.read_text()) == {"v": 1}
    assert list(tmp_path.iterdir()) == [path]  # no stranded temp files


def test_atomic_write_replaces_whole_file(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "long old content " * 100)
    atomic_write_text(path, "short")
    assert path.read_text() == "short"


def test_crash_before_write_leaves_old_file(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "old", site="w")
    with fault_plan("w:raise"):
        with pytest.raises(InjectedFault):
            atomic_write_text(path, "new", site="w")
    assert path.read_text() == "old"
    assert list(tmp_path.iterdir()) == [path]


def test_crash_in_tmp_window_leaves_old_file_no_temp(tmp_path):
    """The kill -9 window between temp-write and rename: destination
    untouched, temp file cleaned up."""
    path = tmp_path / "out.txt"
    atomic_write_text(path, "old", site="w")
    with fault_plan("w.tmp:raise"):
        with pytest.raises(InjectedFault):
            atomic_write_text(path, "new", site="w")
    assert path.read_text() == "old"
    assert list(tmp_path.iterdir()) == [path]


def test_corrupt_rule_corrupts_the_published_payload(tmp_path):
    path = tmp_path / "out.json"
    with fault_plan("w:corrupt:1:1:6", seed=9):
        atomic_write_json(path, {"value": [1, 2, 3]}, site="w")
    with pytest.raises(ValueError):
        json.loads(path.read_text())  # reader-side recovery's problem


# ---------------------------------------------------------------------------
# Append + recovery
# ---------------------------------------------------------------------------


def test_append_lines_accumulate(tmp_path):
    path = tmp_path / "log.jsonl"
    for i in range(3):
        atomic_append_line(path, json.dumps({"i": i}))
    lines = path.read_text().splitlines()
    assert [json.loads(ln)["i"] for ln in lines] == [0, 1, 2]


def test_recover_noop_on_clean_or_absent_file(tmp_path):
    path = tmp_path / "log.jsonl"
    assert recover_jsonl(path) == 0  # absent
    atomic_append_line(path, '{"ok": 1}')
    assert recover_jsonl(path) == 0  # clean
    assert path.read_text() == '{"ok": 1}\n'


def test_recover_truncates_torn_tail_and_keeps_specimen(tmp_path):
    path = tmp_path / "log.jsonl"
    atomic_append_line(path, '{"ok": 1}')
    with open(path, "ab") as fh:
        fh.write(b'{"torn": tr')  # kill -9 mid-append
    torn = recover_jsonl(path)
    assert torn == len(b'{"torn": tr')
    assert path.read_text() == '{"ok": 1}\n'
    specimens = list(quarantine_dir_for(path).iterdir())
    assert len(specimens) == 1
    assert specimens[0].read_bytes() == b'{"torn": tr'


def test_recover_counts_bytes_and_records_in_metrics(tmp_path):
    from repro.obs import metrics as obs_metrics

    obs_metrics.reset()
    path = tmp_path / "log.jsonl"
    atomic_append_line(path, '{"ok": 1}')
    with open(path, "ab") as fh:
        fh.write(b'{"torn": tr')  # kill -9 mid-append
    torn = recover_jsonl(path)
    assert torn == len(b'{"torn": tr')
    snap = obs_metrics.snapshot()["counters"]
    assert snap["ledger_recovered_bytes"] == torn
    assert snap["ledger_recovered_records"] == 1
    # a second recovery on another file accumulates
    other = tmp_path / "log2.jsonl"
    atomic_append_line(other, '{"ok": 2}')
    with open(other, "ab") as fh:
        fh.write(b'{"bad": json}\n')  # corrupt *complete* final line
    assert recover_jsonl(other) == len(b'{"bad": json}\n')
    snap = obs_metrics.snapshot()["counters"]
    assert snap["ledger_recovered_records"] == 2
    obs_metrics.reset()


def test_recover_metric_floors_at_one_record(tmp_path):
    """Even a pure-whitespace torn tail counts as one recovered record:
    recovery that touched the file must never report zero."""
    from repro.obs import metrics as obs_metrics

    obs_metrics.reset()
    path = tmp_path / "log.jsonl"
    atomic_append_line(path, '{"ok": 1}')
    with open(path, "ab") as fh:
        fh.write(b"   ")  # whitespace fragment, no newline
    assert recover_jsonl(path) == 3
    snap = obs_metrics.snapshot()["counters"]
    assert snap["ledger_recovered_records"] == 1
    obs_metrics.reset()


def test_recover_unparseable_final_line_with_newline(tmp_path):
    """A corrupt *complete* final line is also a crash signature (e.g. a
    corrupt-rule write): recovered, earlier lines kept."""
    path = tmp_path / "log.jsonl"
    atomic_append_line(path, '{"ok": 1}')
    with open(path, "ab") as fh:
        fh.write(b"garbage not json\n")
    assert recover_jsonl(path) > 0
    assert path.read_text() == '{"ok": 1}\n'


def test_recover_whole_file_torn(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_bytes(b"no newline at all")
    assert recover_jsonl(path) == len(b"no newline at all")
    assert path.read_bytes() == b""


def test_repeated_recovery_keeps_every_specimen(tmp_path):
    path = tmp_path / "log.jsonl"
    for _ in range(2):
        with open(path, "ab") as fh:
            fh.write(b"torn")
        recover_jsonl(path)
    names = sorted(p.name for p in quarantine_dir_for(path).iterdir())
    assert names == ["log.jsonl.torn", "log.jsonl.torn.1"]


# ---------------------------------------------------------------------------
# Quarantine moves
# ---------------------------------------------------------------------------


def test_quarantine_file_moves_and_never_raises(tmp_path):
    victim = tmp_path / "bad.json"
    victim.write_text("{")
    target = quarantine_file(victim, reason="test")
    assert target is not None and target.read_text() == "{"
    assert not victim.exists()
    # quarantining a missing file degrades to None, no exception
    assert quarantine_file(tmp_path / "ghost.json", reason="test") is None


def test_quarantine_collision_gets_serial_suffix(tmp_path):
    for content in ("one", "two"):
        victim = tmp_path / "same.json"
        victim.write_text(content)
        quarantine_file(victim, reason="test")
    qdir = quarantine_dir_for(tmp_path / "same.json")
    assert sorted(p.name for p in qdir.iterdir()) == [
        "same.json", "same.json.1"]


# ---------------------------------------------------------------------------
# The ledger uses all of the above
# ---------------------------------------------------------------------------


def test_ledger_survives_kill_nine_mid_append(tmp_path):
    from repro.obs.history import BenchLedger

    ledger = BenchLedger(tmp_path)
    ledger.append({"schema": 3, "run_id": "r1"})
    ledger.append({"schema": 3, "run_id": "r2"})
    with open(ledger.path, "ab") as fh:
        fh.write(b'{"schema": 3, "run_id": "r3", "mod')  # torn
    entries = ledger.entries()  # recovery runs on open
    assert [e["run_id"] for e in entries] == ["r1", "r2"]
    # the next append lands after the recovered tail, not glued to it
    ledger.append({"schema": 3, "run_id": "r4"})
    assert [e["run_id"] for e in ledger.entries()] == ["r1", "r2", "r4"]


def test_ledger_append_failure_leaves_no_bytes(tmp_path):
    from repro.obs.history import BenchLedger
    from repro.resilience.faults import fault_plan

    ledger = BenchLedger(tmp_path)
    ledger.append({"schema": 3, "run_id": "r1"})
    size = ledger.path.stat().st_size
    with fault_plan("history.append:raise"):
        with pytest.raises(InjectedFault):
            ledger.append({"schema": 3, "run_id": "r2"})
    assert ledger.path.stat().st_size == size
