"""Property tests on the ARM pipeline model and simulator invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arm.isa import Instr, MemRef
from repro.arm.pipeline import A53_COST_TABLE, PipelineModel
from repro.arm.simulator import ArmSimulator

_VECTOR_POOL = [
    ("MOVI_ZERO", 1, 0),
    ("SMLAL_8H", 1, 2),
    ("MLA_16B", 1, 2),
    ("SADDW_4S", 1, 2),
    ("AND_16B", 1, 2),
    ("CNT_16B", 1, 1),
    ("SDOT_4S", 1, 2),
]


@st.composite
def random_streams(draw):
    n = draw(st.integers(1, 60))
    stream = []
    for _ in range(n):
        kind = draw(st.integers(0, len(_VECTOR_POOL) + 1))
        if kind == len(_VECTOR_POOL):
            stream.append(Instr("LD1_16B", dst=(f"v{draw(st.integers(0, 31))}",),
                                mem=MemRef("A", draw(st.integers(0, 15)) * 16)))
        elif kind == len(_VECTOR_POOL) + 1:
            stream.append(Instr("SUBS", dst=("x9",), src=("x9",), imm=1))
        else:
            op, n_dst, n_src = _VECTOR_POOL[kind]
            dst = tuple(f"v{draw(st.integers(0, 31))}" for _ in range(n_dst))
            src = tuple(f"v{draw(st.integers(0, 31))}" for _ in range(n_src))
            stream.append(Instr(op, dst=dst, src=src))
    return stream


@given(random_streams())
@settings(max_examples=60, deadline=None)
def test_cycle_bounds(stream):
    """cycles is bracketed by issue width below and serial latency above."""
    r = PipelineModel(A53_COST_TABLE).schedule(stream)
    lower = max(
        -(-len(stream) // A53_COST_TABLE.issue_width),
        r.mem_busy,
        r.neon_busy,
    )
    assert r.cycles >= lower
    serial = sum(
        max(A53_COST_TABLE.cost(i.op).latency,
            A53_COST_TABLE.cost(i.op).mem_cycles,
            A53_COST_TABLE.cost(i.op).neon_cycles) + 1
        for i in stream
    )
    assert r.cycles <= serial + 1
    assert r.stall_cycles >= 0
    assert r.instructions == len(stream)


@given(random_streams(), random_streams())
@settings(max_examples=40, deadline=None)
def test_concatenation_superadditive_lower_bound(a, b):
    """Scheduling a+b takes at least as long as the longer prefix and no
    more than the sum (in-order issue can't speed up by appending)."""
    model = PipelineModel(A53_COST_TABLE)
    ra = model.schedule(a)
    rb = model.schedule(b)
    rab = model.schedule(a + b)
    assert rab.cycles >= max(ra.cycles - 1, 1)
    assert rab.cycles <= ra.cycles + rb.cycles + 2


@given(random_streams())
@settings(max_examples=30, deadline=None)
def test_simulator_is_deterministic(stream):
    def run():
        sim = ArmSimulator({"A": np.arange(256, dtype=np.uint8)})
        sim.run(stream)
        return sim.regs.snapshot()

    s1, s2 = run(), run()
    assert np.array_equal(s1["v"], s2["v"])
    assert np.array_equal(s1["x"], s2["x"])


@given(random_streams())
@settings(max_examples=30, deadline=None)
def test_checked_mode_agrees_when_it_passes(stream):
    """If overflow checking raises nothing, results match unchecked mode."""
    from repro.errors import OverflowDetected

    base = ArmSimulator({"A": np.arange(256, dtype=np.uint8)})
    base.run(stream)
    checked = ArmSimulator({"A": np.arange(256, dtype=np.uint8)},
                           check_overflow=True)
    try:
        checked.run(stream)
    except OverflowDetected:
        return  # wrap occurred; nothing to compare
    assert np.array_equal(base.regs.snapshot()["v"],
                          checked.regs.snapshot()["v"])
