"""Command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "fig17" in out and "tab1" in out


def test_chains(capsys):
    assert main(["chains"]) == 0
    out = capsys.readouterr().out
    assert "511 : 1" in out and "31 : 1" in out


def test_reproduce_tab1(capsys):
    assert main(["reproduce", "tab1"]) == 0
    out = capsys.readouterr().out
    assert "Cortex-A53" in out and "TU102" in out


def test_reproduce_fig13(capsys):
    assert main(["reproduce", "fig13"]) == 0
    out = capsys.readouterr().out
    assert "im2col" in out and "geomean" in out


def test_reproduce_unknown(capsys):
    assert main(["reproduce", "fig99"]) == 2
    err = capsys.readouterr().err
    # one line, lists the valid choices, no traceback
    assert err.count("\n") == 1
    assert "fig99" in err and "fig13" in err and "tab1" in err
    assert "Traceback" not in err


def test_layers(capsys):
    assert main(["layers", "resnet50"]) == 0
    out = capsys.readouterr().out
    assert "conv1:" in out and "conv19:" in out


def test_kernel_summary_and_listing(capsys):
    assert main(["kernel", "smlal", "4", "8", "--listing"]) == 0
    out = capsys.readouterr().out
    assert "SMLAL_8H" in out
    assert "MACs/cycle" in out
    assert "LD4R_B" in out  # listing shows the load-replicate


def test_kernel_sdot(capsys):
    assert main(["kernel", "sdot", "8", "16"]) == 0
    out = capsys.readouterr().out
    assert "SDOT_4S_LANE" in out


def test_bench_smoke(tmp_path, capsys):
    assert main(["bench", "--smoke", "--no-arm",
                 "--out", str(tmp_path),
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "identical best tilings: True" in out
    report = tmp_path / "BENCH_autotune_smoke.json"
    assert report.is_file()
    import json

    data = json.loads(report.read_text())
    assert data["gpu_autotune"]["identical_series"] is True
    # the report always carries an obs metrics block and, since v3, the
    # git/fingerprint provenance used by the bench-history ledger
    assert data["schema"] == 3
    assert "fingerprint" in data
    metrics = data["metrics"]
    assert set(metrics) >= {"schema", "counters", "gauges", "histograms"}
    assert any(k.startswith("cache_lookups{") for k in metrics["counters"])
    assert any(k.startswith("autotune_evaluated{")
               for k in metrics["counters"])


def test_bench_smoke_trace_and_metrics_outputs(tmp_path, capsys):
    tpath = tmp_path / "trace.json"
    mpath = tmp_path / "metrics.json"
    assert main(["bench", "--smoke", "--no-arm",
                 "--out", str(tmp_path),
                 "--cache-dir", str(tmp_path / "cache"),
                 "--trace", str(tpath), "--metrics", str(mpath)]) == 0
    import json

    doc = json.loads(tpath.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert any(e["name"] == "autotune.search"
               for e in doc["traceEvents"] if e["ph"] == "X")
    snap = json.loads(mpath.read_text())
    assert set(snap) >= {"schema", "counters", "gauges", "histograms"}


def test_bench_save_then_regress_clean(tmp_path, capsys):
    """The acceptance loop: two identical --save runs, then a clean regress."""
    hist = tmp_path / "history"
    for _ in range(2):
        assert main(["bench", "--smoke", "--no-arm",
                     "--out", str(tmp_path),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--save", "--history-dir", str(hist)]) == 0
    assert (hist / "ledger.jsonl").is_file()
    assert main(["regress", "--history-dir", str(hist)]) == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out and "regress: clean" in out


def test_regress_needs_two_entries(tmp_path, capsys):
    assert main(["regress", "--history-dir", str(tmp_path)]) == 2
    assert "at least 2 ledger entries" in capsys.readouterr().out


def test_report_html(tmp_path, capsys):
    out_html = tmp_path / "report.html"
    assert main(["report", "--html", str(out_html),
                 "--backend", "ref",
                 "--history-dir", str(tmp_path / "history")]) == 0
    text = out_html.read_text()
    assert text.startswith("<!doctype html>")
    assert "<svg" in text and "Roofline" in text
    assert "prefers-color-scheme: dark" in text  # dark mode is selected


def test_report_text(capsys):
    assert main(["report", "--backend", "ref"]) == 0
    out = capsys.readouterr().out
    assert "roofline [ref]" in out
    assert "CAL/LD" in out and "chain" in out


def test_report_unknown_backend(capsys):
    assert main(["report", "--backend", "nope"]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert "nope" in err and "arm" in err and "gpu" in err and "ref" in err
    assert "Traceback" not in err


def test_layers_unknown_backend(capsys):
    assert main(["layers", "resnet50", "--backend", "nope"]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert "nope" in err and "arm" in err and "ref" in err
    assert "Traceback" not in err


def test_profile_unknown_backend(capsys):
    assert main(["profile", "resnet50", "--backend", "nope"]) == 2
    out = capsys.readouterr().out
    assert "nope" in out and "Traceback" not in out


def test_chaos_command_registered():
    from repro.cli import build_parser

    args = build_parser().parse_args(["chaos"])
    assert args.command == "chaos"


def test_chaos_list_prints_scenarios(capsys):
    assert main(["chaos", "--list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert "autotune-invariance" in out and "serve-slo" in out


def test_chaos_unknown_scenario_exits_two(capsys):
    assert main(["chaos", "not-a-scenario"]) == 2
    err = capsys.readouterr().err
    # one line, lists the valid choices, no traceback
    assert err.count("\n") == 1
    assert "not-a-scenario" in err and "serve-slo" in err
    assert "Traceback" not in err


def test_serve_smoke_and_summary_out(tmp_path, capsys):
    out = tmp_path / "serve.json"
    assert main(["serve", "--qps", "2000", "--requests", "300",
                 "--seed", "5", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "offered 300" in text and "slo_attainment" in text
    import json

    summary = json.loads(out.read_text())
    assert summary["schema"] == "repro.serve.summary/v1"
    assert summary["counts"]["offered"] == 300
    assert summary["invariants"]["conservation"] is True


def test_serve_json_output_is_canonical(capsys):
    assert main(["serve", "--qps", "2000", "--requests", "200",
                 "--seed", "5", "--json"]) == 0
    import json

    line = capsys.readouterr().out.strip()
    summary = json.loads(line)
    assert line == json.dumps(summary, sort_keys=True,
                              separators=(",", ":"))


def test_serve_trace_save_and_replay(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["serve", "--qps", "1000", "--requests", "100",
                 "--seed", "2", "--save-trace", str(trace)]) == 0
    assert trace.exists()
    capsys.readouterr()
    assert main(["serve", "--trace-file", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "offered 100" in out


def test_serve_unknown_shape_exits_two(capsys):
    assert main(["serve", "--shape", "sawtooth"]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert "sawtooth" in err and "steady" in err


def test_report_html_serve_summary_card(tmp_path, capsys):
    summary_path = tmp_path / "serve.json"
    assert main(["serve", "--qps", "2000", "--requests", "200",
                 "--seed", "5", "--out", str(summary_path)]) == 0
    capsys.readouterr()
    html = tmp_path / "dash.html"
    assert main(["report", "--html", str(html), "--backend", "gpu",
                 "--serve-summary", str(summary_path)]) == 0
    text = html.read_text()
    assert "Serving &amp; overload robustness" in text
    assert "SLO attainment" in text


def test_report_serve_summary_unreadable_exits_two(tmp_path, capsys):
    assert main(["report", "--html", str(tmp_path / "x.html"),
                 "--serve-summary", str(tmp_path / "missing.json")]) == 2
    assert "cannot read serve summary" in capsys.readouterr().err


def test_bad_command():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_flight_dump(tmp_path, capsys):
    import json

    out = tmp_path / "flight.json"
    assert main(["flight", "--run", "fig7", "--dump", str(out)]) == 0
    text = capsys.readouterr().out
    assert "flight recorder: enabled" in text
    assert "0 unresolved parents" in text
    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ms"
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans and all(e["args"]["trace_id"] for e in spans)


def test_flight_unknown_target(capsys):
    assert main(["flight", "--run", "fig99"]) == 2
    assert "fig99" in capsys.readouterr().err


def test_metrics_export_stdout_and_file(tmp_path, capsys):
    from repro.obs import export

    assert main(["metrics-export", "--run", "fig7"]) == 0
    text = capsys.readouterr().out
    assert text.endswith("# EOF\n")
    export.validate(text)  # printed exposition is parseable as-is

    out = tmp_path / "metrics.txt"
    assert main(["metrics-export", "--run", "fig7", "--out", str(out)]) == 0
    export.validate(out.read_text())
    assert "metric families" in capsys.readouterr().out


def test_top_iterations(capsys):
    assert main(["top", "--iterations", "2", "--interval", "0.01",
                 "--no-clear"]) == 0
    assert capsys.readouterr().out.count("repro top") == 2


def test_profile_sample_flag_and_flamegraph(tmp_path, capsys):
    fg = tmp_path / "fg.svg"
    assert main(["profile", "fig7", "--profile-sample", "1",
                 "--flamegraph", str(fg)]) == 0
    out = capsys.readouterr().out
    assert "sampler:" in out and "missed ticks" in out
    assert fg.read_text().startswith("<svg")


def test_report_html_sample_collapsed(tmp_path, capsys):
    collapsed = tmp_path / "stacks.txt"
    collapsed.write_text("main;work;hot 9\nmain;idle 1\n")
    out_html = tmp_path / "report.html"
    assert main(["report", "--html", str(out_html), "--backend", "ref",
                 "--sample-collapsed", str(collapsed)]) == 0
    html = out_html.read_text()
    assert "Sampled wall-clock profile" in html
    assert "flamegraph" in html.lower()
