"""Generated micro-kernels: bit-exactness, overflow certification, cost
structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arm.kernels import (
    generate_mla_kernel,
    generate_ncnn_kernel,
    generate_popcount_kernel,
    generate_smlal_kernel,
)
from repro.arm.kernels.popcount_scheme import execute_popcount
from repro.arm.ratios import mla_chain_length, smlal_chain_length
from repro.conv.padding import pack_a, pack_b
from repro.errors import (
    ChainOverflowError,
    OverflowDetected,
    ShapeError,
    UnsupportedBitsError,
)


def run_gemm_kernel(kern, a, b, **kw):
    ap = pack_a(a, kern.m_r)
    bp = pack_b(b, kern.n_r)
    if kern.name == "ncnn8":
        bp = np.concatenate([bp, np.zeros(4, dtype=bp.dtype)])
    return kern.execute(ap, bp, **kw)


def rand_operands(rng, bits, m, k, n):
    half = 1 << (bits - 1)
    lo, hi = (-(half - 1), half) if bits >= 7 else (-half, half)
    a = rng.integers(lo, hi, (m, k)).astype(np.int8)
    b = rng.integers(lo, hi, (k, n)).astype(np.int8)
    return a, b


@pytest.mark.parametrize("bits", [4, 5, 6, 7, 8])
def test_smlal_kernel_exact(bits):
    rng = np.random.default_rng(bits)
    a, b = rand_operands(rng, bits, 16, 130, 4)
    kern = generate_smlal_kernel(bits, 130)
    tile = run_gemm_kernel(kern, a, b, check_overflow=True)
    assert np.array_equal(tile, a.astype(np.int64) @ b.astype(np.int64))


@pytest.mark.parametrize("bits", [2, 3])
def test_mla_kernel_exact(bits):
    rng = np.random.default_rng(bits)
    a, b = rand_operands(rng, bits, 64, 95, 1)
    kern = generate_mla_kernel(bits, 95)
    tile = run_gemm_kernel(kern, a, b, check_overflow=True)
    assert np.array_equal(tile, a.astype(np.int64) @ b.astype(np.int64))


def test_ncnn_kernel_exact():
    rng = np.random.default_rng(99)
    a, b = rand_operands(rng, 8, 8, 61, 4)
    kern = generate_ncnn_kernel(61)
    tile = run_gemm_kernel(kern, a, b, check_overflow=True)
    assert np.array_equal(tile, a.astype(np.int64) @ b.astype(np.int64))


@given(st.integers(0, 2**32 - 1), st.integers(2, 8), st.integers(1, 70))
@settings(max_examples=25, deadline=None)
def test_any_scheme_any_k_exact(seed, bits, k):
    rng = np.random.default_rng(seed)
    if bits in (2, 3):
        kern = generate_mla_kernel(bits, k)
        a, b = rand_operands(rng, bits, 64, k, 1)
    else:
        kern = generate_smlal_kernel(bits, k)
        a, b = rand_operands(rng, bits, 16, k, 4)
    tile = run_gemm_kernel(kern, a, b, check_overflow=True)
    assert np.array_equal(tile, a.astype(np.int64) @ b.astype(np.int64))


def test_interleave_off_still_exact():
    rng = np.random.default_rng(5)
    a, b = rand_operands(rng, 4, 16, 67, 4)
    kern = generate_smlal_kernel(4, 67, interleave=False)
    tile = run_gemm_kernel(kern, a, b, check_overflow=True)
    assert np.array_equal(tile, a.astype(np.int64) @ b.astype(np.int64))
    a2, b2 = rand_operands(rng, 2, 64, 40, 1)
    kern2 = generate_mla_kernel(2, 40, interleave=False)
    tile2 = run_gemm_kernel(kern2, a2, b2, check_overflow=True)
    assert np.array_equal(tile2, a2.astype(np.int64) @ b2.astype(np.int64))
    a3, b3 = rand_operands(rng, 8, 8, 33, 4)
    kern3 = generate_ncnn_kernel(33, interleave=False)
    tile3 = run_gemm_kernel(kern3, a3, b3, check_overflow=True)
    assert np.array_equal(tile3, a3.astype(np.int64) @ b3.astype(np.int64))


# ---------------------------------------------------------------------------
# Overflow certification of the Sec. 3.3 chain lengths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bits", [4, 5, 6, 7, 8])
def test_published_chain_never_overflows_smlal(bits):
    """Worst-case operands at the published chain length stay exact."""
    chain = smlal_chain_length(bits)
    k = min(chain, 600)
    half = 1 << (bits - 1)
    worst = -(half - 1) if bits >= 7 else -half  # scheme range extreme
    a = np.full((16, k), worst, dtype=np.int8)
    b = np.full((k, 4), worst, dtype=np.int8)
    kern = generate_smlal_kernel(bits, k, round_steps=k)
    tile = run_gemm_kernel(kern, a, b, check_overflow=True)  # must not raise
    assert tile[0, 0] == k * worst * worst


@pytest.mark.parametrize("bits", [4, 5, 6, 7, 8])
def test_one_past_chain_overflows_smlal(bits):
    chain = smlal_chain_length(bits)
    if chain >= 600:
        pytest.skip("4-bit chain too long to execute exhaustively here")
    k = chain + 1
    half = 1 << (bits - 1)
    worst = -(half - 1) if bits >= 7 else -half
    a = np.full((16, k), worst, dtype=np.int8)
    b = np.full((k, 4), worst, dtype=np.int8)
    # drain too late: needs allow_unsafe past the construction-time check
    kern = generate_smlal_kernel(bits, k, round_steps=k, allow_unsafe=True)
    with pytest.raises(OverflowDetected):
        run_gemm_kernel(kern, a, b, check_overflow=True)


@pytest.mark.parametrize("bits", [2, 3])
def test_published_chain_never_overflows_mla(bits):
    chain = mla_chain_length(bits)
    half = 1 << (bits - 1)
    a = np.full((64, chain), -half, dtype=np.int8)
    b = np.full((chain, 1), -half, dtype=np.int8)
    kern = generate_mla_kernel(bits, chain, chain_steps=chain)
    tile = run_gemm_kernel(kern, a, b, check_overflow=True)
    assert tile[0, 0] == chain * half * half


@pytest.mark.parametrize("bits", [2, 3])
def test_one_past_chain_overflows_mla(bits):
    chain = mla_chain_length(bits)
    k = chain + 1
    half = 1 << (bits - 1)
    a = np.full((64, k), -half, dtype=np.int8)
    b = np.full((k, 1), -half, dtype=np.int8)
    kern = generate_mla_kernel(bits, k, chain_steps=k, allow_unsafe=True)
    with pytest.raises(OverflowDetected):
        run_gemm_kernel(kern, a, b, check_overflow=True)


@pytest.mark.parametrize("bits", [4, 5, 6, 7, 8])
def test_unsafe_smlal_chain_rejected_at_construction(bits):
    """A drain interval past the Sec. 3.3 safe chain is a typed error."""
    chain = smlal_chain_length(bits)
    k = chain + 1
    with pytest.raises(ChainOverflowError) as exc:
        generate_smlal_kernel(bits, k, round_steps=k)
    assert exc.value.bits == bits
    assert exc.value.limit == chain
    assert exc.value.requested == k


@pytest.mark.parametrize("bits", [2, 3])
def test_unsafe_mla_chain_rejected_at_construction(bits):
    chain = mla_chain_length(bits)
    with pytest.raises(ChainOverflowError) as exc:
        generate_mla_kernel(bits, chain + 1, chain_steps=chain + 1)
    assert exc.value.limit == chain
    assert exc.value.scheme == "MLA"


def test_long_k_with_safe_interval_is_fine():
    """A long reduction with the *default* interval never trips the
    construction check — only the interval matters, not k."""
    kern = generate_smlal_kernel(8, 700)  # chain limit 2, k >> limit
    assert kern.k == 700
    kern2 = generate_mla_kernel(3, 200)
    assert kern2.k == 200


# ---------------------------------------------------------------------------
# Popcount kernel
# ---------------------------------------------------------------------------


@given(st.integers(0, 2**32 - 1), st.integers(1, 400))
@settings(max_examples=20, deadline=None)
def test_popcount_kernel_exact(seed, k):
    rng = np.random.default_rng(seed)
    a = rng.integers(-2, 2, (2, k)).astype(np.int8)
    b = rng.integers(-2, 2, (2, k)).astype(np.int8)
    kern = generate_popcount_kernel(k)
    tile = execute_popcount(kern, a, b)
    assert np.array_equal(tile, a.astype(np.int64) @ b.T.astype(np.int64))


def test_popcount_operand_shape_checked():
    kern = generate_popcount_kernel(10)
    with pytest.raises(ShapeError):
        execute_popcount(kern, np.zeros((2, 9), np.int8), np.zeros((2, 10), np.int8))


# ---------------------------------------------------------------------------
# Cost structure
# ---------------------------------------------------------------------------


def test_mac_throughput_ordering():
    """Cycles/MAC: MLA scheme < SMLAL scheme < ncnn (the paper's premise)."""
    k = 256

    def cpm(kern):
        return kern.cycles().cycles / (kern.m_r * kern.n_r * k)

    mla = cpm(generate_mla_kernel(2, k))
    smlal = cpm(generate_smlal_kernel(4, k))
    ncnn = cpm(generate_ncnn_kernel(k))
    assert mla < smlal < ncnn
    # MLA's 16 lanes vs SMLAL's 8: roughly 2x ("twice computation throughput")
    assert smlal / mla == pytest.approx(2.0, rel=0.35)


def test_lower_bits_cost_less_in_smlal_scheme():
    """Fewer SADDW drains at lower bit widths -> monotone kernel cycles."""
    k = 512
    cycles = [generate_smlal_kernel(b, k).cycles().cycles for b in (4, 5, 6, 7, 8)]
    assert cycles == sorted(cycles)
    assert cycles[-1] > cycles[0] * 1.5  # 8-bit pays drains every 2 steps


def test_interleave_reduces_cycles():
    for gen in (
        lambda il: generate_smlal_kernel(4, 128, interleave=il),
        lambda il: generate_mla_kernel(2, 128, interleave=il),
        lambda il: generate_ncnn_kernel(128, interleave=il),
    ):
        fast = gen(True).cycles().cycles
        slow = gen(False).cycles().cycles
        assert fast < slow


def test_kernel_validation():
    with pytest.raises(UnsupportedBitsError):
        generate_smlal_kernel(3, 10)
    with pytest.raises(UnsupportedBitsError):
        generate_mla_kernel(4, 10)
    with pytest.raises(ShapeError):
        generate_smlal_kernel(4, 0)
    with pytest.raises(ShapeError):
        generate_ncnn_kernel(-1)


def test_mac_lane_accounting():
    kern = generate_smlal_kernel(4, 32)
    assert kern.mac_lanes == 16 * 4 * 32
    kern2 = generate_mla_kernel(2, 32)
    assert kern2.mac_lanes == 64 * 1 * 32
    kern3 = generate_ncnn_kernel(32)
    assert kern3.mac_lanes == 8 * 4 * 32
