"""im2col correctness: the lowered GEMM reproduces the convolution."""

import numpy as np
import pytest

from repro.conv.im2col import im2col, im2col_nhwc, output_from_gemm, weight_matrix
from repro.conv.ref import conv2d_ref
from repro.errors import ShapeError
from repro.types import ConvSpec, Layout


@pytest.fixture
def spec():
    return ConvSpec("i", in_channels=3, out_channels=5, height=8, width=9,
                    kernel=(3, 3), stride=(2, 2), padding=(1, 1), batch=2)


def _rand(spec, rng):
    x = rng.integers(-8, 8, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    return x, w


def test_im2col_gemm_equals_ref(spec):
    rng = np.random.default_rng(0)
    x, w = _rand(spec, rng)
    a = weight_matrix(spec, w).astype(np.int64)
    cols = im2col(spec, x).astype(np.int64)
    c = np.stack([a @ cols[i] for i in range(spec.batch)])
    out = output_from_gemm(spec, c)
    assert np.array_equal(out, conv2d_ref(spec, x, w))


def test_im2col_nhwc_equals_ref(spec):
    rng = np.random.default_rng(1)
    x, w = _rand(spec, rng)
    x_nhwc = np.ascontiguousarray(np.transpose(x, (0, 2, 3, 1)))
    rows = im2col_nhwc(spec, x_nhwc).astype(np.int64)  # (batch*P, K)
    a = weight_matrix(spec, w, layout=Layout.NHWC).astype(np.int64)
    c = rows @ a.T  # (batch*P, M)
    out = output_from_gemm(spec, c, layout=Layout.NHWC)
    ref = conv2d_ref(spec, x_nhwc, w, layout=Layout.NHWC)
    assert np.array_equal(out, ref)


def test_im2col_shape(spec):
    x = np.zeros(spec.input_shape(Layout.NCHW), dtype=np.int8)
    cols = im2col(spec, x)
    assert cols.shape == (spec.batch, spec.gemm_k, spec.gemm_n)
    assert cols.flags["C_CONTIGUOUS"]


def test_im2col_1x1_is_reshape():
    spec = ConvSpec("p", in_channels=4, out_channels=4, height=5, width=6,
                    kernel=(1, 1))
    rng = np.random.default_rng(2)
    x = rng.integers(-8, 8, spec.input_shape(Layout.NCHW)).astype(np.int8)
    cols = im2col(spec, x)
    assert np.array_equal(cols[0], x[0].reshape(4, 30))


def test_shape_validation(spec):
    with pytest.raises(ShapeError):
        im2col(spec, np.zeros((1, 3, 8, 9), dtype=np.int8))  # wrong batch
    with pytest.raises(ShapeError):
        weight_matrix(spec, np.zeros((5, 3, 5, 5), dtype=np.int8))
    with pytest.raises(ShapeError):
        output_from_gemm(spec, np.zeros((1, 5, 10), dtype=np.int64))
