"""Winograd F(2x2, 3x3): transforms, exactness, and the Sec. 3.4 range rule."""

from fractions import Fraction

import numpy as np
import pytest

from repro.conv.ref import conv2d_ref
from repro.conv.winograd import (
    AT,
    BT,
    G2,
    WinogradRangeReport,
    conv2d_winograd,
    f4_input_growth,
    winograd_eligible_bits,
    winograd_range_report,
    winograd_transform_input,
    winograd_transform_weight,
)
from repro.errors import ShapeError, UnsupportedBitsError
from repro.types import ConvSpec, Layout


def test_transform_matrices_satisfy_winograd_identity():
    """Scalar identity: for any 3-tap filter g and 4-sample signal d,
    A^T[(G g)(.)(B^T d)] = conv1d(d, g) valid outputs (F(2,3))."""
    rng = np.random.default_rng(0)
    for _ in range(50):
        g = rng.integers(-10, 10, 3)
        d = rng.integers(-10, 10, 4)
        u4 = G2 @ g  # 2*G applied: scale 2
        v = BT @ d
        y2 = AT @ (u4 * v)  # scale 2 result
        ref = np.array([np.dot(d[0:3], g), np.dot(d[1:4], g)])
        assert np.array_equal(y2, 2 * ref)


def test_weight_transform_shapes_and_scale():
    w = np.ones((2, 3, 3, 3), dtype=np.int8)
    u4 = winograd_transform_weight(w, scaled=True)
    assert u4.shape == (2, 3, 4, 4)
    # all-ones filter: G g G^T center entries are 9/4 -> u4 center = 9
    assert u4[0, 0, 1, 1] == 9
    rounded = winograd_transform_weight(w, scaled=False)
    assert rounded[0, 0, 1, 1] == 2  # round(9/4)


def test_input_transform_range_growth():
    # worst case: alternating-sign tile at magnitude m grows by exactly 4x
    m = 8
    tile = np.zeros((4, 4), dtype=np.int64)
    tile[0, 0] = m
    tile[2, 0] = -m
    tile[0, 2] = -m
    tile[2, 2] = m
    v = winograd_transform_input(tile)
    assert np.abs(v).max() == 4 * m


@pytest.mark.parametrize("mode", ["exact"])
def test_exact_mode_is_bit_identical(mode):
    rng = np.random.default_rng(1)
    spec = ConvSpec("w", in_channels=4, out_channels=6, height=9, width=10,
                    kernel=(3, 3), padding=(1, 1), batch=2)
    for bits in (2, 4, 6, 8):
        half = 1 << (bits - 1)
        x = rng.integers(-half, half, spec.input_shape(Layout.NCHW)).astype(np.int8)
        w = rng.integers(-half, half, spec.weight_shape(Layout.NCHW)).astype(np.int8)
        assert np.array_equal(conv2d_winograd(spec, x, w, mode=mode),
                              conv2d_ref(spec, x, w))


def test_paper_mode_error_is_bounded():
    """Rounded transformed weights deviate by at most 1/4 per tap pre-
    transform; the output error per element is bounded by the A-transform
    gain times the input magnitude."""
    rng = np.random.default_rng(2)
    spec = ConvSpec("w", in_channels=8, out_channels=4, height=8, width=8,
                    kernel=(3, 3), padding=(1, 1))
    half = 1 << 3  # 4-bit
    x = rng.integers(-half, half, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-half, half, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    approx = conv2d_winograd(spec, x, w, mode="paper")
    ref = conv2d_ref(spec, x, w)
    # |U - round(U)| <= 1/2 per transformed tap; 16 taps, Cin channels,
    # |V| <= 4*half, A^T..A gain <= 9 per output element
    bound = 0.5 * 16 * spec.in_channels * 4 * half
    assert np.abs(approx - ref).max() <= bound
    # and it should usually be *much* smaller (sanity: not wildly wrong)
    assert np.abs(approx - ref).mean() < bound / 50


def test_range_report_matches_paper():
    r4 = winograd_range_report(4)
    assert r4.input_growth == 4
    assert r4.weight_growth == Fraction(9, 4)
    assert r4.fits_int8
    r6 = winograd_range_report(6)
    assert r6.transformed_input_max_abs == 128
    assert r6.fits_int8
    r7 = winograd_range_report(7)
    assert not r7.fits_int8


def test_eligible_bits_is_4_to_6():
    assert winograd_eligible_bits() == [4, 5, 6]


def test_f4x4_rejected():
    # F(4x4, 3x3) input growth is (13/2)^2 = 42.25x -> unusable at low bits
    assert f4_input_growth() == Fraction(169, 4)
    assert float(f4_input_growth()) > 40


def test_requires_3x3_stride1():
    spec = ConvSpec("w", in_channels=2, out_channels=2, height=8, width=8,
                    kernel=(3, 3), stride=(2, 2), padding=(1, 1))
    x = np.zeros(spec.input_shape(Layout.NCHW), dtype=np.int8)
    w = np.zeros(spec.weight_shape(Layout.NCHW), dtype=np.int8)
    with pytest.raises(ShapeError):
        conv2d_winograd(spec, x, w)


def test_range_report_bits_validation():
    with pytest.raises(UnsupportedBitsError):
        winograd_range_report(1)
    with pytest.raises(UnsupportedBitsError):
        winograd_range_report(9)


def test_odd_output_sizes_cropped_correctly():
    rng = np.random.default_rng(3)
    spec = ConvSpec("w", in_channels=2, out_channels=3, height=7, width=5,
                    kernel=(3, 3), padding=(0, 0))  # 5x3 output, both odd
    x = rng.integers(-8, 8, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    assert np.array_equal(conv2d_winograd(spec, x, w), conv2d_ref(spec, x, w))
