"""Numeric ranges and the paper's adjusted-range rule (Sec. 3.3)."""

import pytest

from repro.errors import UnsupportedBitsError
from repro.quant.ranges import (
    ADJUSTED_RANGE_BITS,
    QRange,
    adjusted_qrange,
    max_abs_product,
    qrange,
    scheme_qrange,
)


@pytest.mark.parametrize("bits,lo,hi", [
    (2, -2, 1), (3, -4, 3), (4, -8, 7), (8, -128, 127),
])
def test_full_range(bits, lo, hi):
    r = qrange(bits)
    assert (r.qmin, r.qmax) == (lo, hi)


@pytest.mark.parametrize("bits,lo,hi", [
    (7, -63, 63), (8, -127, 127),
])
def test_adjusted_range(bits, lo, hi):
    r = adjusted_qrange(bits)
    assert (r.qmin, r.qmax) == (lo, hi)


def test_scheme_range_follows_paper():
    # 7/8-bit adjusted ("we adjust its value range to [-127,127]"), rest full
    assert ADJUSTED_RANGE_BITS == {7, 8}
    assert scheme_qrange(8).qmin == -127
    assert scheme_qrange(7).qmin == -63
    assert scheme_qrange(6).qmin == -32
    assert scheme_qrange(2).qmin == -2


@pytest.mark.parametrize("bits,expected", [
    (2, 4), (3, 16), (4, 64), (5, 256), (6, 1024),
    (7, 63 * 63), (8, 127 * 127),
])
def test_max_abs_product_scheme(bits, expected):
    assert max_abs_product(bits) == expected


def test_max_abs_product_explicit_modes():
    assert max_abs_product(8, adjusted=False) == 128 * 128
    assert max_abs_product(8, adjusted=True) == 127 * 127
    assert max_abs_product(4, adjusted=True) == 49


def test_qrange_validation():
    with pytest.raises(ValueError):
        QRange(3, 2)
    with pytest.raises(UnsupportedBitsError):
        qrange(0)
    with pytest.raises(UnsupportedBitsError):
        qrange(64)


def test_qrange_helpers():
    r = qrange(4)
    assert r.max_abs == 8
    assert r.num_levels == 16
    assert r.contains(-8, 7)
    assert not r.contains(-9, 0)
