"""Coalescing and shared-memory reordering analyzers (Sec. 4.3, Fig. 5)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gpu.memory import (
    coalesced_transactions,
    fig5_reordering_example,
    lds_instructions,
    strided_warp_addresses,
    vectorized_warp_addresses,
)


def test_vectorized_access_is_minimal():
    """32 threads x 16 contiguous bytes = 512 bytes = 16 sectors exactly."""
    addrs = vectorized_warp_addresses(0, 16)
    assert coalesced_transactions(addrs, 16) == 16


def test_strided_access_wastes_sectors():
    # one byte per thread, 128-byte stride: every thread its own sector
    addrs = strided_warp_addresses(0, 128)
    assert coalesced_transactions(addrs, 1) == 32
    # contiguous single bytes: whole warp fits one sector
    assert coalesced_transactions(vectorized_warp_addresses(0, 1), 1) == 1


def test_unaligned_access_costs_extra():
    aligned = coalesced_transactions(vectorized_warp_addresses(0, 16), 16)
    unaligned = coalesced_transactions(vectorized_warp_addresses(8, 16), 16)
    assert unaligned >= aligned


def test_transaction_validation():
    with pytest.raises(ShapeError):
        coalesced_transactions(np.zeros(16, dtype=np.int64), 4)
    with pytest.raises(ShapeError):
        coalesced_transactions(np.zeros(32, dtype=np.int64), 0)


def test_fig5_quarter_reduction():
    """'the number of access instructions is reduced to one-quarter'."""
    before, after = fig5_reordering_example()
    assert before.lds_instructions == 4
    assert before.lds_width_bytes == 4
    assert after.lds_instructions == 1
    assert after.lds_width_bytes == 16
    assert after.lds_instructions * 4 == before.lds_instructions


def test_lds_instruction_counts_scale():
    r = lds_instructions(64, reordered=True)
    assert r.lds_instructions == 4
    u = lds_instructions(64, reordered=False)
    assert u.lds_instructions == 16
    assert r.instructions_ratio_vs_unordered == pytest.approx(0.25)
    with pytest.raises(ShapeError):
        lds_instructions(0, reordered=True)
