"""Multi-core scaling model for ARM layer costs."""

import pytest

from repro.arm.conv_runner import time_arm_conv
from repro.arm.threading import MAX_THREADS, scale_to_threads, thread_scaling_curve
from repro.errors import ReproError
from repro.types import ConvSpec

MID = ConvSpec("mid", in_channels=128, out_channels=128, height=28, width=28,
               kernel=(3, 3), padding=(1, 1))


def test_single_thread_is_identity():
    perf = time_arm_conv(MID, 4)
    assert scale_to_threads(perf, 1) is perf


def test_speedup_monotone_but_sublinear():
    perf = time_arm_conv(MID, 4)
    curve = thread_scaling_curve(perf)
    speeds = [curve[t] for t in range(1, MAX_THREADS + 1)]
    assert speeds[0] == pytest.approx(1.0)
    assert speeds == sorted(speeds)  # more cores never hurt
    for t in range(2, MAX_THREADS + 1):
        assert curve[t] < t  # sublinear: shared memory system + sync


def test_memory_term_does_not_scale():
    perf = time_arm_conv(MID, 2)
    scaled = scale_to_threads(perf, 4)
    assert scaled.mem_cycles == perf.mem_cycles
    assert scaled.kernel_cycles < perf.kernel_cycles
    assert scaled.overhead_cycles > perf.overhead_cycles  # coordination


def test_memory_bound_layers_scale_worse():
    """A layer whose time is mostly memory saturates earlier."""
    compute_heavy = ConvSpec("c", in_channels=512, out_channels=512,
                             height=14, width=14, kernel=(3, 3),
                             padding=(1, 1))
    mem_heavy = ConvSpec("m", in_channels=64, out_channels=64, height=112,
                         width=112, kernel=(1, 1))
    s_c = thread_scaling_curve(time_arm_conv(compute_heavy, 8))[4]
    s_m = thread_scaling_curve(time_arm_conv(mem_heavy, 8))[4]
    assert s_c > s_m


def test_thread_bounds():
    perf = time_arm_conv(MID, 4)
    with pytest.raises(ReproError):
        scale_to_threads(perf, 0)
    with pytest.raises(ReproError):
        scale_to_threads(perf, 5)
