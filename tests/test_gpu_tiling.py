"""Tiling parameters, legality and the search space."""

import pytest

from repro.errors import TilingError
from repro.gpu.device import TU102
from repro.gpu.tiling import (
    TilingParams,
    default_tiling,
    grid_blocks,
    search_space,
    validate_tiling,
)
from repro.types import GemmShape


def test_fragment_geometry():
    t = TilingParams(128, 128, 64, 32, 2, 4)
    assert t.warps_per_block == 8
    assert t.threads_per_block == 256
    assert t.m_frag == 64
    assert t.n_frag == 32


def test_smem_accounting():
    t = TilingParams(64, 64, 32, 16, 2, 2)
    single = t.smem_bytes(8, double_buffer=False)
    assert single == (64 * 32 + 32 * 64)
    assert t.smem_bytes(8, double_buffer=True) == 2 * single
    assert t.smem_bytes(4, double_buffer=False) == single // 2  # int4 packed


def test_default_tiling_is_legal():
    for bits in (4, 8):
        validate_tiling(default_tiling(bits), bits)


@pytest.mark.parametrize("bad,bits", [
    (TilingParams(120, 128, 64, 32, 2, 4), 8),   # m_frag 60 not mma multiple
    (TilingParams(128, 128, 64, 24, 2, 4), 8),   # k_step not mma-k multiple
    (TilingParams(128, 128, 48, 32, 2, 4), 8),   # k_tile not k_step multiple
    (TilingParams(128, 128, 64, 32, 8, 8), 8),   # 2048 threads
    (TilingParams(256, 256, 128, 32, 2, 4), 8),  # smem blowout
    (TilingParams(128, 128, 64, 16, 2, 4), 4),   # k_step 16 < mma k 32
])
def test_illegal_tilings_rejected(bad, bits):
    with pytest.raises(TilingError):
        validate_tiling(bad, bits)


def test_search_space_all_legal_and_nonempty():
    for bits in (4, 8):
        space = list(search_space(bits))
        assert len(space) > 50
        for t in space:
            validate_tiling(t, bits)  # must not raise


def test_grid_blocks():
    t = TilingParams(64, 64, 32, 16, 2, 2)
    assert grid_blocks(GemmShape(m=100, k=64, n=100), t) == 2 * 2
    assert grid_blocks(GemmShape(m=64, k=64, n=64), t) == 1


def test_regs_scale_with_fragment():
    small = TilingParams(32, 32, 32, 16, 1, 1)
    big = TilingParams(256, 128, 32, 16, 2, 4)
    assert big.regs_per_thread(8) > small.regs_per_thread(8)
