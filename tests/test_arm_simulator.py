"""Functional NEON-subset simulator: exact per-instruction semantics."""

import numpy as np
import pytest

from repro.arm.isa import Instr, MemRef
from repro.arm.simulator import ArmSimulator
from repro.errors import OverflowDetected, SimulationError


def make_sim(**buffers):
    bufs = {"mem": np.zeros(256, dtype=np.uint8)}
    bufs.update(buffers)
    return ArmSimulator(bufs)


def test_ld1_st1_roundtrip():
    data = np.arange(16, dtype=np.uint8)
    sim = make_sim(src=data.copy(), dst=np.zeros(16, np.uint8))
    sim.run([
        Instr("LD1_16B", dst=("v0",), mem=MemRef("src", 0)),
        Instr("ST1_16B", src=("v0",), mem=MemRef("dst", 0)),
    ])
    assert np.array_equal(sim.buffer("dst"), data)


def test_ld1_8b_zeroes_upper():
    sim = make_sim(src=np.full(16, 7, np.uint8))
    sim.regs.v_bytes("v0")[:] = 0xFF
    sim.step(Instr("LD1_8B", dst=("v0",), mem=MemRef("src", 0)))
    assert sim.regs.v_bytes("v0")[:8].tolist() == [7] * 8
    assert sim.regs.v_bytes("v0")[8:].tolist() == [0] * 8


def test_ld4r_replicates():
    sim = make_sim(src=np.array([1, 2, 3, 4], dtype=np.uint8))
    sim.step(Instr("LD4R_B", dst=("v0", "v1", "v2", "v3"), mem=MemRef("src", 0)))
    for i, reg in enumerate(("v0", "v1", "v2", "v3")):
        assert sim.regs.v_bytes(reg).tolist() == [i + 1] * 16


def test_ld1r_replicates():
    sim = make_sim(src=np.array([200], dtype=np.uint8))
    sim.step(Instr("LD1R_B", dst=("v5",), mem=MemRef("src", 0)))
    assert sim.regs.v_i8("v5").tolist() == [200 - 256] * 16  # -56


def test_smlal_8h_lower_and_upper():
    sim = make_sim()
    sim.regs.v_i8("v0")[:] = np.arange(-8, 8)
    sim.regs.v_i8("v1")[:] = 3
    sim.step(Instr("SMLAL_8H", dst=("v2",), src=("v0", "v1")))
    assert sim.regs.v_i16("v2").tolist() == [3 * v for v in range(-8, 0)]
    sim.step(Instr("SMLAL2_8H", dst=("v3",), src=("v0", "v1")))
    assert sim.regs.v_i16("v3").tolist() == [3 * v for v in range(0, 8)]


def test_smlal_accumulates_and_wraps():
    sim = make_sim()
    sim.regs.v_i8("v0")[:] = 127
    sim.regs.v_i8("v1")[:] = 127
    for _ in range(2):
        sim.step(Instr("SMLAL_8H", dst=("v2",), src=("v0", "v1")))
    assert sim.regs.v_i16("v2")[0] == 2 * 127 * 127  # 32258, still fits
    sim.step(Instr("SMLAL_8H", dst=("v2",), src=("v0", "v1")))
    # 3*16129 = 48387 wraps to 48387 - 65536
    assert sim.regs.v_i16("v2")[0] == 48387 - 65536


def test_check_overflow_raises_on_wrap():
    sim = ArmSimulator({"m": np.zeros(16, np.uint8)}, check_overflow=True)
    sim.regs.v_i8("v0")[:] = 127
    sim.regs.v_i8("v1")[:] = 127
    sim.step(Instr("SMLAL_8H", dst=("v2",), src=("v0", "v1")))
    sim.step(Instr("SMLAL_8H", dst=("v2",), src=("v0", "v1")))
    with pytest.raises(OverflowDetected):
        sim.step(Instr("SMLAL_8H", dst=("v2",), src=("v0", "v1")))


def test_mla_16b_wraps_mod_256():
    sim = make_sim()
    sim.regs.v_i8("v0")[:] = 10
    sim.regs.v_i8("v1")[:] = 10
    sim.step(Instr("MLA_16B", dst=("v2",), src=("v0", "v1")))
    assert sim.regs.v_i8("v2")[0] == 100
    sim.step(Instr("MLA_16B", dst=("v2",), src=("v0", "v1")))
    assert sim.regs.v_i8("v2")[0] == 200 - 256  # -56: wrapped


def test_smlal_4s_and_lane_forms():
    sim = make_sim()
    sim.regs.v_i16("v0")[:] = np.arange(8) * 100
    sim.regs.v_i16("v1")[:] = 2
    sim.step(Instr("SMLAL_4S", dst=("v2",), src=("v0", "v1")))
    assert sim.regs.v_i32("v2").tolist() == [0, 200, 400, 600]
    sim.step(Instr("SMLAL2_4S", dst=("v3",), src=("v0", "v1")))
    assert sim.regs.v_i32("v3").tolist() == [800, 1000, 1200, 1400]
    sim.regs.v_i16("v4")[:] = np.array([5, 7, 11, 13, 0, 0, 0, 0])
    sim.step(Instr("SMLAL_4S_LANE", dst=("v5",), src=("v0", "v4"), lane=2))
    assert sim.regs.v_i32("v5").tolist() == [0, 1100, 2200, 3300]


def test_saddw_widen_paths():
    sim = make_sim()
    sim.regs.v_i8("v0")[:] = np.arange(-8, 8)
    sim.regs.v_i16("v1")[:] = 1000
    sim.step(Instr("SADDW_8H", dst=("v1",), src=("v1", "v0")))
    assert sim.regs.v_i16("v1").tolist() == [1000 + v for v in range(-8, 0)]
    sim.regs.v_i16("v2")[:] = np.arange(8)
    sim.regs.v_i32("v3")[:] = 7
    sim.step(Instr("SADDW_4S", dst=("v3",), src=("v3", "v2")))
    assert sim.regs.v_i32("v3").tolist() == [7, 8, 9, 10]
    sim.step(Instr("SADDW2_4S", dst=("v3",), src=("v3", "v2")))
    assert sim.regs.v_i32("v3").tolist() == [11, 13, 15, 17]


def test_sshll_sign_extends():
    sim = make_sim()
    sim.regs.v_i8("v0")[:] = np.arange(-8, 8)
    sim.step(Instr("SSHLL_8H", dst=("v1",), src=("v0",)))
    assert sim.regs.v_i16("v1").tolist() == list(range(-8, 0))
    sim.step(Instr("SSHLL2_8H", dst=("v2",), src=("v0",)))
    assert sim.regs.v_i16("v2").tolist() == list(range(0, 8))


def test_cnt_and_uadalp():
    sim = make_sim()
    sim.regs.v_bytes("v0")[:] = 0b10110000
    sim.regs.v_bytes("v1")[:] = 0b10010001
    sim.step(Instr("AND_16B", dst=("v2",), src=("v0", "v1")))
    assert sim.regs.v_bytes("v2")[0] == 0b10010000
    sim.step(Instr("CNT_16B", dst=("v3",), src=("v2",)))
    assert sim.regs.v_bytes("v3").tolist() == [2] * 16
    sim.regs.v_u16("v4")[:] = 100
    sim.step(Instr("UADALP_8H", dst=("v4",), src=("v3",)))
    assert sim.regs.v_u16("v4").tolist() == [104] * 8


def test_mov_v_x_roundtrip():
    sim = make_sim()
    sim.regs.v_i32("v0")[:] = np.array([-1, 2, -3, 4])
    sim.step(Instr("MOV_V_TO_X", dst=("x0",), src=("v0",), lane=0))
    sim.step(Instr("MOV_V_TO_X", dst=("x1",), src=("v0",), lane=1))
    sim.step(Instr("MOV_X_TO_V", dst=("v1",), src=("x0",), lane=0))
    sim.step(Instr("MOV_X_TO_V", dst=("v1",), src=("x1",), lane=1))
    assert sim.regs.v_i32("v1").tolist() == [-1, 2, -3, 4]


def test_scalar_ops():
    sim = make_sim()
    sim.step(Instr("MOV_X_IMM", dst=("x9",), imm=10))
    sim.step(Instr("SUBS", dst=("x9",), src=("x9",), imm=3))
    assert sim.regs.x_i64("x9") == 7
    sim.step(Instr("ADD_X", dst=("x9",), src=("x9",), imm=5))
    assert sim.regs.x_i64("x9") == 12


def test_buffer_overrun_detected():
    sim = make_sim(small=np.zeros(8, np.uint8))
    with pytest.raises(SimulationError):
        sim.step(Instr("LD1_16B", dst=("v0",), mem=MemRef("small", 0)))


def test_unbound_buffer():
    sim = make_sim()
    with pytest.raises(SimulationError):
        sim.step(Instr("LD1_16B", dst=("v0",), mem=MemRef("nope", 0)))


def test_bad_buffer_dtype_rejected():
    with pytest.raises(SimulationError):
        ArmSimulator({"m": np.zeros(16, np.int32)})


def test_instr_validation():
    with pytest.raises(SimulationError):
        Instr("NOT_AN_OP")
    with pytest.raises(SimulationError):
        Instr("SMLAL_8H", dst=("v99",), src=("v0", "v1"))
    with pytest.raises(SimulationError):
        Instr("LD1_16B", dst=("v0",))  # missing mem
    with pytest.raises(SimulationError):
        MemRef("b", -1)


def test_instr_render():
    i = Instr("SMLAL_8H", dst=("v10",), src=("v0", "v2"))
    assert "SMLAL_8H" in i.render() and "v10" in i.render()
