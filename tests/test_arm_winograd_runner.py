"""ARM winograd path: instruction-level exactness + Fig. 8 cost structure."""

import numpy as np
import pytest

from repro.arm.conv_runner import ncnn_conv_cycles, time_arm_conv
from repro.arm.winograd_runner import (
    WINOGRAD_BITS,
    exact_scaled_chain_length,
    execute_winograd_arm,
    time_winograd_conv,
    winograd_chain_length,
)
from repro.conv import conv2d_ref
from repro.errors import ShapeError, UnsupportedBitsError
from repro.types import ConvSpec, Layout


def test_transformed_chain_lengths():
    """Ranges grow 4x (input) and 9/4x (weight) -> chains shrink to
    56/14/3 for 4/5/6-bit."""
    assert winograd_chain_length(4) == 32767 // (32 * 18)
    assert winograd_chain_length(5) == 32767 // (64 * 36)
    assert winograd_chain_length(6) == 32767 // (128 * 72)
    assert winograd_chain_length(4) == 56
    assert winograd_chain_length(5) == 14
    assert winograd_chain_length(6) == 3
    with pytest.raises(UnsupportedBitsError):
        winograd_chain_length(7)
    with pytest.raises(UnsupportedBitsError):
        winograd_chain_length(3)


def test_exact_scaled_chain():
    assert exact_scaled_chain_length(4) == 32767 // (32 * 72)
    with pytest.raises(UnsupportedBitsError):
        exact_scaled_chain_length(5)  # 9 * 16 = 144 > int8


def test_execute_winograd_matches_ref():
    rng = np.random.default_rng(0)
    spec = ConvSpec("w", in_channels=6, out_channels=10, height=8, width=10,
                    kernel=(3, 3), padding=(1, 1))
    x = rng.integers(-8, 8, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    out = execute_winograd_arm(spec, x, w, 4, check_overflow=True)
    assert np.array_equal(out, conv2d_ref(spec, x, w))


def test_execute_winograd_batched_odd_sizes():
    rng = np.random.default_rng(1)
    spec = ConvSpec("w", in_channels=3, out_channels=5, height=7, width=9,
                    kernel=(3, 3), padding=(1, 1), batch=2)
    x = rng.integers(-8, 8, spec.input_shape(Layout.NCHW)).astype(np.int8)
    w = rng.integers(-8, 8, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    out = execute_winograd_arm(spec, x, w, 4, check_overflow=True)
    assert np.array_equal(out, conv2d_ref(spec, x, w))


def test_execute_winograd_bits_restricted():
    spec = ConvSpec("w", in_channels=2, out_channels=2, height=6, width=6,
                    kernel=(3, 3), padding=(1, 1))
    x = np.zeros(spec.input_shape(Layout.NCHW), dtype=np.int8)
    w = np.zeros(spec.weight_shape(Layout.NCHW), dtype=np.int8)
    with pytest.raises(UnsupportedBitsError):
        execute_winograd_arm(spec, x, w, 6)


MID = ConvSpec("mid", in_channels=128, out_channels=128, height=28, width=28,
               kernel=(3, 3), padding=(1, 1))


def test_winograd_beats_gemm_at_4_to_6_bit():
    """Fig. 8: 'the performance of 4~6-bit winograd implementations
    outperforms the baseline and GEMM-based implementations in all cases'."""
    base = ncnn_conv_cycles(MID).total_cycles
    for bits in WINOGRAD_BITS:
        wino = time_winograd_conv(MID, bits).total_cycles
        gemm = time_arm_conv(MID, bits).total_cycles
        assert wino < gemm, f"{bits}-bit winograd should beat GEMM"
        assert base / wino > 1.0, f"{bits}-bit winograd should beat ncnn"


def test_winograd_advantage_fades_with_bits():
    """Shorter chains at higher bits erode the winograd win (Fig. 8 trend:
    1.50x > 1.44x > 1.34x average for 4/5/6-bit)."""
    gains = []
    for bits in WINOGRAD_BITS:
        wino = time_winograd_conv(MID, bits).total_cycles
        gemm = time_arm_conv(MID, bits).total_cycles
        gains.append(gemm / wino)
    assert gains == sorted(gains, reverse=True)


def test_winograd_requires_3x3_s1():
    bad = ConvSpec("b", in_channels=4, out_channels=4, height=8, width=8,
                   kernel=(1, 1))
    with pytest.raises(ShapeError):
        time_winograd_conv(bad, 4)


def test_ncnn_winograd_variant():
    ours = time_winograd_conv(MID, 4, scheme="smlal")
    ncnn = time_winograd_conv(MID, 8, scheme="ncnn")
    assert ours.total_cycles < ncnn.total_cycles
    with pytest.raises(UnsupportedBitsError):
        time_winograd_conv(MID, 4, scheme="bogus")
