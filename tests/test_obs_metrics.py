"""The metrics registry: labeled series, snapshots, thread-safety.

Most tests use a private :class:`MetricsRegistry` so they can't interfere
with the process default that library instrumentation writes into; the
default-registry convenience API gets its own reset-bracketed test.
"""

import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, metric_key


def test_metric_key_canonicalization():
    assert metric_key("hits", {}) == "hits"
    assert metric_key("hits", {"ns": "gpu", "bits": 4}) == \
        metric_key("hits", {"bits": 4, "ns": "gpu"}) == "hits{bits=4,ns=gpu}"


def test_metric_key_escapes_special_label_values():
    """Regression: values containing the key's own structural characters
    (`,` `{` `}` `=`) used to collide — ``{"a": "1,b=2"}`` keyed the same
    as ``{"a": "1", "b": "2"}``."""
    collide_a = metric_key("m", {"a": "1,b=2"})
    collide_b = metric_key("m", {"a": "1", "b": "2"})
    assert collide_a != collide_b
    assert collide_a == "m{a=1\\,b\\=2}"
    # backslashes themselves escape, so escaping never cascades ambiguously
    assert metric_key("m", {"a": "\\"}) == "m{a=\\\\}"
    assert metric_key("m", {"p": "x{y}"}) == "m{p=x\\{y\\}}"


def test_metric_key_round_trips_through_parse():
    cases = [
        ("plain", {}),
        ("hits", {"ns": "gpu", "bits": "4"}),
        ("m", {"a": "1,b=2"}),
        ("m", {"a": "1", "b": "2"}),
        ("m", {"path": "a\\b{c}=d,e"}),
    ]
    for name, labels in cases:
        parsed = metrics.parse_metric_key(metric_key(name, labels))
        assert parsed == (name, labels), f"round-trip failed for {labels}"


def test_metric_key_distinct_labels_stay_distinct():
    nasty = [
        {"a": "1,b=2"}, {"a": "1", "b": "2"}, {"a": "1\\,b\\=2"},
        {"a": "{"}, {"a": "}"}, {"a": "="}, {"a": ","}, {"a": "\\"},
    ]
    keys = [metric_key("m", labels) for labels in nasty]
    assert len(set(keys)) == len(nasty)


def test_metric_key_rejects_malformed_names():
    with pytest.raises(ValueError):
        metric_key("bad{name", {})
    with pytest.raises(ValueError):
        metric_key("m", {"not a name": "v"})
    with pytest.raises(ValueError):
        metric_key("m", {"no=eq": "v"})


def test_escape_label_value_inverse():
    for raw in ("", "plain", "a,b", "{x}", "k=v", "\\", "a\\,b", "\\\\"):
        assert metrics.unescape_label_value(
            metrics.escape_label_value(raw)) == raw


def test_counter_inc_and_identity():
    reg = MetricsRegistry()
    c = reg.counter("lookups", ns="a", outcome="hit")
    c.inc()
    c.inc(3)
    # keyword order doesn't split the series: same object comes back
    assert reg.counter("lookups", outcome="hit", ns="a") is c
    assert c.value == 4
    assert reg.counter("lookups", ns="a", outcome="miss").value == 0


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("c").inc(-1)


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    g = reg.gauge("cycles", layer="conv1")
    g.set(100.0)
    g.set(42.5)
    assert g.value == 42.5


def test_histogram_summary_stats():
    reg = MetricsRegistry()
    h = reg.histogram("gap", bits=4)
    for v in (3.0, 1.0, 2.0):
        h.observe(v)
    d = h.as_dict()
    assert d == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}
    assert reg.histogram("gap", bits=8).as_dict()["count"] == 0


def test_histogram_percentile_empty_raises():
    h = MetricsRegistry().histogram("h")
    with pytest.raises(ValueError):
        h.percentile(50.0)


def test_histogram_percentile_out_of_range_raises():
    h = MetricsRegistry().histogram("h")
    h.observe(1.0)
    for q in (-0.1, 100.1):
        with pytest.raises(ValueError):
            h.percentile(q)


def test_histogram_percentile_single_sample():
    h = MetricsRegistry().histogram("h")
    h.observe(7.5)
    assert h.percentile(0.0) == h.percentile(50.0) == h.percentile(100.0) == 7.5


def test_histogram_percentile_multi_sample():
    h = MetricsRegistry().histogram("h")
    for v in (4.0, 1.0, 3.0, 2.0):  # order must not matter
        h.observe(v)
    assert h.percentile(0.0) == 1.0
    assert h.percentile(100.0) == 4.0
    assert h.percentile(50.0) == pytest.approx(2.5)  # linear interpolation
    assert h.percentile(25.0) == pytest.approx(1.75)


def test_histogram_percentile_under_decimation():
    """Past SAMPLE_CAP the retained samples are a deterministic stride
    subsample — quantiles stay close to the true distribution."""
    from repro.obs.metrics import SAMPLE_CAP

    h = MetricsRegistry().histogram("h")
    n = SAMPLE_CAP * 4
    for i in range(n):
        h.observe(float(i))
    assert h.count == n
    assert h.percentile(50.0) == pytest.approx((n - 1) / 2, rel=0.01)
    assert h.percentile(90.0) == pytest.approx(0.9 * (n - 1), rel=0.01)


def test_histogram_merge():
    from repro.obs.metrics import Histogram

    a, b = Histogram(), Histogram()
    for v in (1.0, 2.0):
        a.observe(v)
    b.observe(10.0)
    m = Histogram.merge([a, b])
    assert m.count == 3
    assert m.as_dict() == {"count": 3, "sum": 13.0, "min": 1.0, "max": 10.0,
                           "mean": 13.0 / 3}
    assert m.percentile(100.0) == 10.0
    # merging is non-destructive
    assert a.count == 2 and b.count == 1


def test_histogram_merge_empty_inputs():
    from repro.obs.metrics import Histogram

    m = Histogram.merge([])
    assert m.count == 0
    m2 = Histogram.merge([Histogram(), Histogram()])
    assert m2.count == 0


def test_snapshot_layout_and_sorting():
    reg = MetricsRegistry()
    reg.counter("b_counter").inc(2)
    reg.counter("a_counter", x=1).inc()
    reg.gauge("g").set(7.0)
    reg.histogram("h").observe(1.5)
    snap = reg.snapshot()
    assert snap["schema"] == metrics.SCHEMA_VERSION
    assert list(snap) == ["schema", "counters", "gauges", "histograms"]
    assert list(snap["counters"]) == ["a_counter{x=1}", "b_counter"]
    assert snap["counters"]["b_counter"] == 2
    assert snap["gauges"] == {"g": 7.0}
    assert snap["histograms"]["h"]["count"] == 1
    import json

    json.dumps(snap)  # plain JSON, no custom types


def test_reset_drops_every_series():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.gauge("g").set(1.0)
    reg.histogram("h").observe(1.0)
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"] == snap["gauges"] == snap["histograms"] == {}


def test_concurrent_increments_do_not_lose_updates():
    reg = MetricsRegistry()

    def work():
        for _ in range(1000):
            reg.counter("racy", src="t").inc()
            reg.histogram("racy_h").observe(1.0)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter("racy", src="t").value == 8000
    assert reg.histogram("racy_h").count == 8000


def test_default_registry_convenience_api():
    metrics.reset()
    try:
        metrics.counter("conv_runs", backend="arm").inc(5)
        metrics.gauge("cycles", layer="conv1").set(123.0)
        snap = metrics.snapshot()
        assert snap["counters"]["conv_runs{backend=arm}"] == 5
        assert snap["gauges"]["cycles{layer=conv1}"] == 123.0
        assert metrics.registry().snapshot() == snap
    finally:
        metrics.reset()  # leave no residue for other tests
