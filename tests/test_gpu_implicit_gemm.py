"""Implicit-precomp GEMM convolution: exactness + offset buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conv import conv2d_ref
from repro.errors import ShapeError
from repro.gpu.implicit_gemm import conv2d_implicit_gemm
from repro.gpu.precompute import build_offsets
from repro.gpu.tiling import TilingParams
from repro.types import ConvSpec, Layout


def small_tiling(bits):
    kk = 32 if bits == 4 else 16
    return TilingParams(16, 16, kk, kk, 1, 1)


def rand_case(rng, spec, bits):
    half = 1 << (bits - 1)
    x = rng.integers(-half, half, spec.input_shape(Layout.NHWC)).astype(np.int8)
    w = rng.integers(-half, half, spec.weight_shape(Layout.NCHW)).astype(np.int8)
    return x, w


@pytest.mark.parametrize("bits", [4, 8])
def test_matches_reference(bits):
    rng = np.random.default_rng(bits)
    spec = ConvSpec("g", in_channels=6, out_channels=10, height=9, width=7,
                    kernel=(3, 3), stride=(1, 1), padding=(1, 1), batch=2)
    x, w = rand_case(rng, spec, bits)
    out = conv2d_implicit_gemm(spec, x, w, bits=bits, tiling=small_tiling(bits))
    assert np.array_equal(out.data, conv2d_ref(spec, x, w, layout=Layout.NHWC))


@given(st.integers(0, 2**32 - 1), st.sampled_from([4, 8]),
       st.integers(1, 2), st.integers(0, 2))
@settings(max_examples=15, deadline=None)
def test_strided_padded_cases(seed, bits, stride, pad):
    rng = np.random.default_rng(seed)
    spec = ConvSpec("h", in_channels=3, out_channels=5, height=8, width=9,
                    kernel=(3, 3), stride=(stride, stride), padding=(pad, pad))
    x, w = rand_case(rng, spec, bits)
    out = conv2d_implicit_gemm(spec, x, w, bits=bits, tiling=small_tiling(bits))
    assert np.array_equal(out.data, conv2d_ref(spec, x, w, layout=Layout.NHWC))


def test_default_tiling_large_blocks_still_exact():
    rng = np.random.default_rng(1)
    spec = ConvSpec("g", in_channels=4, out_channels=6, height=6, width=6,
                    kernel=(1, 1))
    x, w = rand_case(rng, spec, 8)
    out = conv2d_implicit_gemm(spec, x, w, bits=8)  # 128x128 default tile
    assert np.array_equal(out.data, conv2d_ref(spec, x, w, layout=Layout.NHWC))
    assert out.blocks == 1


def test_int4_nibble_roundtrip_path():
    rng = np.random.default_rng(2)
    spec = ConvSpec("g", in_channels=8, out_channels=8, height=5, width=5,
                    kernel=(3, 3), padding=(1, 1))
    x, w = rand_case(rng, spec, 4)
    packed = conv2d_implicit_gemm(spec, x, w, bits=4, tiling=small_tiling(4),
                                  pack_nibbles=True)
    plain = conv2d_implicit_gemm(spec, x, w, bits=4, tiling=small_tiling(4),
                                 pack_nibbles=False)
    assert np.array_equal(packed.data, plain.data)


def test_epilogues():
    rng = np.random.default_rng(3)
    spec = ConvSpec("g", in_channels=4, out_channels=6, height=6, width=6,
                    kernel=(3, 3), padding=(1, 1))
    x, w = rand_case(rng, spec, 8)
    bias = rng.integers(-50, 50, spec.out_channels).astype(np.int32)
    ref = conv2d_ref(spec, x, w, layout=Layout.NHWC, bias=bias)

    raw = conv2d_implicit_gemm(spec, x, w, bits=8, tiling=small_tiling(8),
                               epilogue="none", bias=bias)
    assert np.array_equal(raw.data, ref)

    dq = conv2d_implicit_gemm(spec, x, w, bits=8, tiling=small_tiling(8),
                              epilogue="dequant", bias=bias, dequant_scale=0.25)
    assert np.allclose(dq.data, ref * 0.25)

    relu = conv2d_implicit_gemm(spec, x, w, bits=8, tiling=small_tiling(8),
                                epilogue="requant_relu", bias=bias)
    assert relu.data.dtype == np.int8
    assert relu.data.min() >= 0
    # where the requantized value would be positive, relu leaves it alone
    rq = conv2d_implicit_gemm(spec, x, w, bits=8, tiling=small_tiling(8),
                              epilogue="requant", bias=bias)
    pos = rq.data > 0
    assert np.array_equal(relu.data[pos], rq.data[pos])
    assert np.all(relu.data[~pos] == 0)


def test_input_validation():
    spec = ConvSpec("g", in_channels=4, out_channels=4, height=6, width=6,
                    kernel=(3, 3), padding=(1, 1))
    x = np.zeros(spec.input_shape(Layout.NHWC), dtype=np.int8)
    w = np.zeros(spec.weight_shape(Layout.NCHW), dtype=np.int8)
    with pytest.raises(ShapeError):
        conv2d_implicit_gemm(spec, x, w, epilogue="bogus")
    with pytest.raises(ShapeError):
        conv2d_implicit_gemm(spec, np.zeros((1, 4, 6, 6), np.int8), w)
    xf = np.full(spec.input_shape(Layout.NHWC), 10, dtype=np.int8)
    with pytest.raises(ShapeError):
        conv2d_implicit_gemm(spec, xf, w, bits=4)  # out of 4-bit range


def test_offset_buffer_size_in_paper_band():
    """Sec. 5.4: the precomputed buffer occupies 0.5 KB ~ 50 KB."""
    from repro.models import resnet50_conv_layers

    for spec in resnet50_conv_layers():
        nbytes = build_offsets(spec).nbytes
        assert nbytes <= 200 * 1024  # offsets stay tiny for every layer
    big = build_offsets(ConvSpec("b", in_channels=512, out_channels=512,
                                 height=14, width=14, kernel=(3, 3),
                                 padding=(1, 1)))
    assert big.nbytes >= 512  # and are not trivially empty


def test_offset_gather_equals_im2col():
    from repro.conv.im2col import im2col_nhwc

    rng = np.random.default_rng(4)
    spec = ConvSpec("g", in_channels=3, out_channels=2, height=7, width=6,
                    kernel=(3, 3), stride=(2, 2), padding=(1, 1))
    x = rng.integers(-8, 8, spec.input_shape(Layout.NHWC)).astype(np.int8)
    offs = build_offsets(spec)
    pixels = np.arange(spec.out_spatial)
    ks = np.arange(spec.gemm_k)
    gathered = offs.gather(x[0], pixels, ks)
    assert np.array_equal(gathered, im2col_nhwc(spec, x))
