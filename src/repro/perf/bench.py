"""Wall-clock benchmark harness: ``python -m repro bench``.

Times the Fig. 10/11 autotune sweep (the dominant cost of the GPU figure
reproductions) in three phases over an isolated cache directory:

* ``serial``  — the pre-optimization baseline: the original exhaustive
  single-threaded sweep (``autotune_reference`` semantics), in-process
  memo only;
* ``cold``    — the search engine with an *empty* persistent cache:
  branch-and-bound pruning + parallel candidate evaluation;
* ``warm``    — the engine again with the persistent cache the cold phase
  just wrote: every sweep is a content-addressed disk hit.

Each phase regenerates the actual figure data, so besides wall-clock the
harness asserts the engine changes **nothing**: identical best tilings,
identical ``best_cycles`` and identical figure series versus the serial
baseline.  Results (wall-clock, speedups, cache hit rates, candidates
pruned, equivalence verdicts) are written to ``BENCH_*.json`` so the perf
trajectory is tracked from PR to PR; ``--smoke`` runs a three-layer sweep
for CI.  An ``arm`` section times the Fig. 7 reproduction cold vs warm
through the persistent static-schedule cache.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import tempfile
import time
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..perf.cache import CACHE_DIR_ENV
from ..perf.parallel import resolve_jobs
from ..resilience import atomic as res_atomic

#: bump when the BENCH_*.json layout changes
#: v2: added the ``metrics`` block (repro.obs registry snapshot)
#: v3: added provenance (``git_sha``, ``fingerprint``) and ``--save``
#:     ledger integration (repro.obs.history, schema shared with it)
SCHEMA_VERSION = 3

DEFAULT_OUT_DIR = pathlib.Path("benchmarks") / "out"


# ---------------------------------------------------------------------------
# Phase plumbing
# ---------------------------------------------------------------------------


@dataclass
class PhaseReport:
    """Everything measured while reproducing the sweep once."""

    name: str
    seconds: float
    cache: dict = field(default_factory=dict)
    candidates: int = 0
    evaluated: int = 0
    pruned: int = 0
    #: which candidate-pricing engine the phase ran: ``vector`` (batched
    #: numpy pricing) or ``scalar`` (per-candidate calls)
    pricing_mode: str = "scalar"
    #: per "<layer>/<bits>b": [tiling description, best_cycles]
    best: dict[str, list] = field(default_factory=dict)
    #: per figure name: {series name: [values...]}
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    @property
    def candidates_per_sec(self) -> float | None:
        """Candidate-pricing throughput of the phase (trended by the
        ledger/HTML report); ``None`` when nothing was timed."""
        if not self.candidates or not self.seconds:
            return None
        return self.candidates / self.seconds

    def as_dict(self) -> dict:
        cps = self.candidates_per_sec
        return {
            "seconds": round(self.seconds, 6),
            "cache": self.cache,
            "candidates": self.candidates,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "pruned_fraction": (
                round(self.pruned / self.candidates, 4) if self.candidates else 0.0
            ),
            "pricing_mode": self.pricing_mode,
            "candidates_per_sec": round(cps, 1) if cps is not None else None,
        }


@contextmanager
def _isolated_cache_dir(cache_dir: str | os.PathLike | None):
    """Point ``REPRO_CACHE_DIR`` at ``cache_dir`` (or a fresh temp dir)."""
    prev = os.environ.get(CACHE_DIR_ENV)

    def _set(value: str | None) -> None:
        if value is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = value

    if cache_dir is not None:
        try:
            pathlib.Path(cache_dir).mkdir(parents=True, exist_ok=True)
        except OSError:
            pass  # unusable dir degrades to cache misses, never a crash
        _set(str(cache_dir))
        try:
            yield pathlib.Path(cache_dir)
        finally:
            _set(prev)
        return
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        _set(tmp)
        try:
            yield pathlib.Path(tmp)
        finally:
            _set(prev)


def _figure_series(data) -> dict[str, list[float]]:
    out = {s.name: list(s.values) for s in data.series}
    out[data.baseline_label] = list(data.baseline_times)
    return out


def _gpu_sweep_items(model: str, batch: int, smoke: bool):
    from ..figures import GPU_BITS
    from ..models import get_model_layers

    layers = get_model_layers(model, batch=batch)
    if smoke:
        layers = layers[:3]
    return [(spec, bits) for spec in layers for bits in GPU_BITS]


def _run_gpu_phase(
    name: str,
    *,
    model: str,
    batch: int,
    smoke: bool,
    jobs: int | None,
    engine: bool,
    persistent: bool,
) -> PhaseReport:
    from ..figures import fig10_gpu_speedups, fig11_gpu_autotune
    from ..gpu.autotune import (
        autotune_conv,
        autotune_options,
        cache_store,
        clear_cache,
        pricing_mode,
    )

    clear_cache()  # in-process memo only; the disk store is the subject
    store = cache_store()
    store.reset_stats()
    items = _gpu_sweep_items(model, batch, smoke)

    # the serial baseline always prices per candidate; the engine phases
    # report whatever the env/fault-plan dispatch resolves to
    report = PhaseReport(
        name=name, seconds=0.0,
        pricing_mode=pricing_mode() if engine else "scalar",
    )
    t0 = time.perf_counter()
    with autotune_options(engine=engine, persistent=persistent, jobs=jobs):
        if smoke:
            for spec, bits in items:
                autotune_conv(spec, bits)
        else:
            report.series[f"fig10[{model},b{batch}]"] = _figure_series(
                fig10_gpu_speedups(model, batch=batch))
            report.series[f"fig11[{model},b{batch}]"] = _figure_series(
                fig11_gpu_autotune(model, batch=batch))
        report.seconds = time.perf_counter() - t0

        # collected after the clock stops: every call below is a memo hit
        for spec, bits in items:
            res = autotune_conv(spec, bits)
            report.best[f"{spec.name}/{bits}b"] = [
                res.best.describe(), res.best_cycles
            ]
            report.candidates += res.candidates
            report.evaluated += res.evaluated
            report.pruned += res.pruned
    report.cache = store.stats.as_dict()
    return report


def _run_arm_phase(name: str, *, model: str, jobs: int | None) -> PhaseReport:
    from ..arm.cost_model import clear_schedule_cache, schedule_store
    from ..figures import fig7_arm_speedups

    clear_schedule_cache()
    store = schedule_store()
    store.reset_stats()
    del jobs  # the fig7 prewarm resolves REPRO_JOBS itself
    report = PhaseReport(name=name, seconds=0.0)
    t0 = time.perf_counter()
    data = fig7_arm_speedups(model)
    report.seconds = time.perf_counter() - t0
    report.series[f"fig7[{model}]"] = _figure_series(data)
    report.cache = store.stats.as_dict()
    return report


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


def _equal_series(a: dict, b: dict) -> bool:
    return a == b  # exact float equality is the point: bit-for-bit series


def run_bench(
    *,
    model: str = "resnet50",
    batch: int = 1,
    smoke: bool = False,
    jobs: int | None = None,
    out_dir: str | os.PathLike = DEFAULT_OUT_DIR,
    cache_dir: str | os.PathLike | None = None,
    backends: Sequence[str] = ("gpu", "arm"),
    trace_path: str | os.PathLike | None = None,
    metrics_path: str | os.PathLike | None = None,
    sample_interval_ms: float | None = None,
    flamegraph_path: str | os.PathLike | None = None,
    stacks_path: str | os.PathLike | None = None,
    save: bool = False,
    history_dir: str | os.PathLike | None = None,
    echo: Callable[[str], None] = print,
) -> pathlib.Path:
    """Run the three-phase bench and write ``BENCH_*.json``; returns the
    report path.  ``cache_dir=None`` uses a throwaway temp dir so the run
    is hermetic; pass a directory to keep the warm cache around.

    ``backends`` selects the sections to run; names are validated against
    the :mod:`repro.backends` registry (``gpu`` times the autotune engine
    against the serial baseline, ``arm`` times the static-schedule cache;
    other registered backends have no sweep to bench and are rejected).

    The report always carries a ``metrics`` block (the
    :mod:`repro.obs.metrics` snapshot covering the whole run).
    ``trace_path`` additionally installs a tracer for the run and writes
    the Chrome trace there — timings then include tracing overhead, so
    leave it off for regression comparisons.  ``metrics_path`` writes the
    same metrics snapshot standalone.

    ``sample_interval_ms`` runs the :mod:`repro.obs.sampler` wall-clock
    stack sampler over the whole bench (``--profile-sample``); the report
    gains a ``sampler`` block with collapsed stacks,
    ``flamegraph_path`` additionally renders them as a standalone SVG
    flamegraph, and ``stacks_path`` exports them as collapsed-stack text
    (the ``repro diff A.txt B.txt`` interchange format).  Like tracing,
    sampling perturbs the timings slightly — leave it off for regression
    comparisons.

    ``save=True`` appends a schema-v3 entry (git sha, machine
    fingerprint, deterministic per-figure cycles/series, wall-clock,
    metrics) to the :mod:`repro.obs.history` ledger under ``history_dir``
    (default ``REPRO_BENCH_DIR`` or ``benchmarks/history/``) so
    ``python -m repro regress`` can compare runs.
    """
    from ..backends import get_backend

    backends = tuple(get_backend(b).name for b in backends)
    unbenchable = [b for b in backends if b not in ("gpu", "arm")]
    if unbenchable:
        raise AssertionError(
            f"no bench section for backend(s) {', '.join(unbenchable)}; "
            f"benchable: gpu, arm"
        )
    t_start = time.time()
    obs_metrics.reset()  # the metrics block describes this run only
    with ExitStack() as stack:
        tracer = (stack.enter_context(obs_trace.capture())
                  if trace_path is not None else None)
        sampler = None
        if sample_interval_ms is not None:
            from ..obs import sampler as obs_sampler

            sampler = stack.enter_context(
                obs_sampler.sampling(interval_s=sample_interval_ms / 1e3))
        stack.enter_context(_isolated_cache_dir(cache_dir))
        serial = cold = warm = None
        if "gpu" in backends:
            serial = _run_gpu_phase(
                "serial", model=model, batch=batch, smoke=smoke, jobs=1,
                engine=False, persistent=False,
            )
            cold = _run_gpu_phase(
                "cold", model=model, batch=batch, smoke=smoke, jobs=jobs,
                engine=True, persistent=True,
            )
            warm = _run_gpu_phase(
                "warm", model=model, batch=batch, smoke=smoke, jobs=jobs,
                engine=True, persistent=True,
            )
        arm_section = None
        if "arm" in backends and not smoke:
            arm_cold = _run_arm_phase("arm-cold", model=model, jobs=jobs)
            arm_warm = _run_arm_phase("arm-warm", model=model, jobs=jobs)
            arm_section = {
                "cold": arm_cold.as_dict(),
                "warm": arm_warm.as_dict(),
                "speedup_warm": round(arm_cold.seconds / arm_warm.seconds, 3)
                if arm_warm.seconds else None,
                "identical_series": _equal_series(arm_cold.series, arm_warm.series),
            }

    gpu_section = None
    identical_best = identical_series = True
    if serial is not None:
        identical_best = serial.best == cold.best == warm.best
        identical_series = (_equal_series(serial.series, cold.series)
                            and _equal_series(serial.series, warm.series))
        speedup_cold = serial.seconds / cold.seconds if cold.seconds else None
        speedup_warm = serial.seconds / warm.seconds if warm.seconds else None
        gpu_section = {
            "serial": serial.as_dict(),
            "cold": cold.as_dict(),
            "warm": warm.as_dict(),
            "speedup_cold": round(speedup_cold, 3) if speedup_cold else None,
            "speedup_warm": round(speedup_warm, 3) if speedup_warm else None,
            "identical_best": identical_best,
            "identical_series": identical_series,
        }

    from ..obs.history import git_sha, machine_fingerprint

    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "smoke" if smoke else "full",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(t_start)),
        "git_sha": git_sha(),
        "fingerprint": machine_fingerprint(),
        "host": {"python": platform.python_version(),
                 "platform": platform.platform(),
                 "cpus": os.cpu_count()},
        "model": model,
        "batch": batch,
        "jobs": resolve_jobs(jobs),
        "backends": list(backends),
        "gpu_autotune": gpu_section,
        "arm_schedule": arm_section,
        "metrics": obs_metrics.snapshot(),
    }
    if sampler is not None:
        # additive block (no schema bump): collapsed wall-clock stacks
        # from the deterministic-interval sampler, heaviest first
        payload["sampler"] = sampler.summary(top=50)

    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    suffix = "smoke" if smoke else f"{model}_b{batch}"
    path = out_dir / f"BENCH_autotune_{suffix}.json"
    # atomic + fsynced: a crash mid-write leaves the previous report (or
    # nothing), never a torn BENCH_*.json for CI to choke on
    res_atomic.atomic_write_json(
        path, payload, site="bench.write", key=path.name, indent=2)

    echo(f"== bench: {model} batch {batch}"
         f"{' (smoke)' if smoke else ''} ==")
    if gpu_section is not None:
        echo(f"serial baseline : {serial.seconds:8.3f} s "
             f"({serial.evaluated} profile runs)")
        echo(f"engine cold     : {cold.seconds:8.3f} s  "
             f"speedup {gpu_section['speedup_cold']}x  "
             f"(pruned {cold.pruned}/{cold.candidates} candidates)")
        echo(f"engine warm     : {warm.seconds:8.3f} s  "
             f"speedup {gpu_section['speedup_warm']}x  "
             f"(cache hit rate {warm.cache.get('hit_rate', 0.0):.0%})")
        cold_cps = gpu_section["cold"]["candidates_per_sec"]
        echo(f"pricing mode    : {cold.pricing_mode}  "
             f"(cold {cold_cps if cold_cps is not None else '—'} candidates/s)")
        echo(f"identical best tilings: {identical_best}   "
             f"identical figure series: {identical_series}")
    if arm_section:
        echo(f"arm fig7 cold/warm: {arm_section['cold']['seconds']:.3f} s / "
             f"{arm_section['warm']['seconds']:.3f} s "
             f"(speedup {arm_section['speedup_warm']}x)")
    echo(f"wrote {path}")
    if tracer is not None:
        tpath = tracer.write(trace_path, process_name=f"repro bench {suffix}")
        echo(f"wrote trace {tpath}")
    if metrics_path is not None:
        mpath = pathlib.Path(metrics_path)
        # sort_keys keeps the file byte-stable and diffable across runs
        res_atomic.atomic_write_json(
            mpath, payload["metrics"],
            site="bench.metrics", key=mpath.name, indent=2, sort_keys=True,
        )
        echo(f"wrote metrics {mpath}")
    if sampler is not None:
        echo(f"sampler: {sampler.sample_count} samples @ "
             f"{sample_interval_ms:g} ms "
             f"({sampler.missed_ticks} missed ticks, "
             f"{payload['sampler']['distinct_stacks']} stacks)")
        if flamegraph_path is not None:
            from ..obs import htmlreport as obs_htmlreport

            fpath = pathlib.Path(flamegraph_path)
            fpath.parent.mkdir(parents=True, exist_ok=True)
            fpath.write_text(
                obs_htmlreport.flamegraph_svg(sampler.collapsed()),
                encoding="utf-8")
            echo(f"wrote flamegraph {fpath}")
        if stacks_path is not None:
            from ..obs import sampler as obs_sampler

            spath = obs_sampler.write_collapsed(
                sampler.collapsed(), stacks_path)
            echo(f"wrote collapsed stacks {spath}")
    if not (identical_best and identical_series):
        raise AssertionError(
            "bench equivalence check failed: engine results differ from the "
            f"serial baseline (see {path})"
        )
    if save:
        # only verified runs enter the ledger: the equivalence gate above
        # has already vouched that the engine changed nothing
        from ..obs.history import BenchLedger, build_entry

        figures: dict[str, dict[str, list[float]]] = {}
        model_cycles: dict[str, list] = {}
        wall: dict[str, float] = {}
        throughput: dict[str, float] = {}
        if serial is not None:
            model_cycles = dict(warm.best)
            wall.update({"gpu_serial": serial.seconds,
                         "gpu_cold": cold.seconds,
                         "gpu_warm": warm.seconds})
            for phase in (serial, cold, warm):
                figures.update(phase.series)
                cps = phase.candidates_per_sec
                if cps is not None:
                    throughput[f"gpu_{phase.name}"] = cps
        if arm_section is not None:
            wall.update({"arm_cold": arm_cold.seconds,
                         "arm_warm": arm_warm.seconds})
            figures.update(arm_cold.series)
        entry = build_entry(
            kind=payload["kind"],
            model=model,
            batch=batch,
            jobs=payload["jobs"],
            backends=list(backends),
            timestamp=payload["timestamp"],
            model_cycles=model_cycles,
            figures=figures,
            wall_seconds=wall,
            metrics_snapshot=payload["metrics"],
            throughput=throughput or None,
        )
        from ..errors import ReproError

        try:
            ledger_path = BenchLedger(history_dir).append(entry)
        except (OSError, ReproError) as exc:
            # the bench run itself succeeded and its report is on disk;
            # losing one history line degrades, it does not fail the run
            obs_metrics.counter("ledger_entries", outcome="failed").inc()
            obs_log.warning(
                "ledger_append_failed", logger="repro.perf.bench",
                error=type(exc).__name__,
            )
            echo(f"WARNING: ledger append failed ({type(exc).__name__}); "
                 f"run not recorded in history")
        else:
            echo(f"appended ledger entry {entry['run_id']} -> {ledger_path}")
    return path
