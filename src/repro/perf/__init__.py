"""Search/execution performance layer.

Everything under :mod:`repro.perf` makes the reproduction *faster without
changing any result*:

* :class:`~repro.perf.parallel.ParallelRunner` — ``concurrent.futures``
  fan-out with a deterministic, input-order merge, so parallel runs are
  bit-for-bit identical to serial ones (``REPRO_JOBS`` overrides the
  worker count);
* :class:`~repro.perf.cache.PersistentCache` — content-addressed
  JSON-on-disk memoization under ``~/.cache/repro`` (``REPRO_CACHE_DIR``
  overrides), tolerant of corruption and unwritable filesystems;
* :func:`~repro.perf.cache.stable_hash` — a canonical hash for cache keys
  built from dataclasses / dicts / kwargs, independent of insertion order
  and safe for unhashable values;
* :mod:`repro.perf.bench` — the wall-clock benchmark harness behind
  ``python -m repro bench`` (imported lazily; it pulls in the figure
  generators).

The consumers are the GPU profile-run autotuner (:mod:`repro.gpu.autotune`,
branch-and-bound pruned sweep), the ARM static scheduler memo
(:mod:`repro.arm.cost_model`) and the per-layer figure sweeps
(:mod:`repro.figures`, :mod:`repro.runtime.executor`).
"""

from __future__ import annotations

from .cache import PersistentCache, code_fingerprint, stable_hash
from .parallel import ParallelRunner, resolve_jobs

__all__ = [
    "ParallelRunner",
    "resolve_jobs",
    "PersistentCache",
    "stable_hash",
    "code_fingerprint",
]
