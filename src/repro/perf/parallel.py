"""Deterministic parallel fan-out for candidate sweeps.

The autotuner and the figure generators evaluate many independent pure
functions (cost-model calls).  :class:`ParallelRunner` fans those out over
a ``concurrent.futures`` executor and merges results **by input index**,
so the output is bit-for-bit identical to a serial loop no matter how many
workers run or in which order futures complete.  Anything that must stay
deterministic (chunk boundaries, tie-breaking) is therefore decided by the
caller's input order alone, never by scheduling.

Worker-count resolution (first match wins):

1. explicit ``jobs=`` argument,
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``jobs=1`` (or an unparsable override) degrades to a plain in-process
loop — no executor, no threads — which is also the fallback whenever an
executor cannot be created.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..obs import flight as obs_flight
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience import faults as res_faults

T = TypeVar("T")
R = TypeVar("R")


class _ContextCall:
    """Picklable wrapper re-activating a trace context around ``fn``.

    Process-pool workers import their own :mod:`repro.obs.flight` with
    its own ring buffer, so worker-side events stay in the worker — but
    the *context* still propagates: anything the worker records (or
    returns for the parent to record) carries the sweep's trace_id and a
    parent span that resolves in the parent's trace.
    """

    __slots__ = ("fn", "ctx")

    def __init__(self, fn, ctx) -> None:
        self.fn = fn
        self.ctx = ctx

    def __call__(self, item):
        with obs_flight.context(self.ctx):
            return self.fn(item)

#: environment variable overriding the worker count
JOBS_ENV = "REPRO_JOBS"
#: environment variable selecting the executor kind ("thread" | "process")
EXECUTOR_ENV = "REPRO_EXECUTOR"

_MAX_DEFAULT_JOBS = 8


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count: arg > ``REPRO_JOBS`` > cpu count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = 1
    if jobs is None:
        jobs = min(os.cpu_count() or 1, _MAX_DEFAULT_JOBS)
    return max(1, jobs)


class ParallelRunner:
    """Order-preserving ``map`` over a worker pool.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` resolves via :func:`resolve_jobs`.
    mode:
        ``"thread"`` (default), ``"process"`` or ``"serial"``; ``None``
        reads ``REPRO_EXECUTOR``.  Process mode requires picklable
        functions and is only worth it for very coarse work items; the
        shared-memory thread mode is the default because every consumer
        here mutates in-process memo caches.
    """

    def __init__(self, jobs: int | None = None, *, mode: str | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        if mode is None:
            mode = os.environ.get(EXECUTOR_ENV, "").strip() or "thread"
        if mode not in ("thread", "process", "serial"):
            raise ValueError(f"unknown executor mode {mode!r}")
        self.mode = "serial" if self.jobs == 1 else mode

    # -- internals ----------------------------------------------------------

    def _executor(self) -> Executor:
        if self.mode == "process":
            return ProcessPoolExecutor(max_workers=self.jobs)
        return ThreadPoolExecutor(max_workers=self.jobs)

    @staticmethod
    def _chunks(n: int, chunksize: int) -> Iterable[range]:
        for start in range(0, n, chunksize):
            yield range(start, min(start + chunksize, n))

    # -- API ----------------------------------------------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        chunksize: int | None = None,
    ) -> list[R]:
        """``[fn(x) for x in items]`` with deterministic ordering.

        Results are returned in input order regardless of completion
        order; the first exception raised by any work item propagates
        (lowest input index wins, again for determinism).  ``chunksize``
        only batches executor round-trips; it never changes results.
        """
        items = list(items)
        n = len(items)
        if n == 0:
            return []
        # chaos hook: a fault plan can fail/delay whole map calls here,
        # proving callers survive executor-level trouble deterministically
        res_faults.inject("parallel.map", key=f"{self.mode}:{n}")
        if self.mode == "serial" or n == 1:
            with obs_trace.span("parallel.map", mode="serial", items=n):
                return [fn(x) for x in items]
        if chunksize is None:
            chunksize = max(1, n // (self.jobs * 4))
        out: list[R] = [None] * n  # type: ignore[list-item]
        try:
            pool = self._executor()
        except OSError as exc:  # sandboxes without threads/processes
            obs_log.warning(
                "parallel_executor_unavailable",
                logger="repro.perf.parallel",
                mode=self.mode, jobs=self.jobs, error=type(exc).__name__,
            )
            return [fn(x) for x in items]
        if self.mode == "process":
            # Executor.map already yields in input order; fn must pickle.
            with pool, obs_trace.span(
                "parallel.map", mode="process", items=n, jobs=self.jobs
            ):
                # the map span's context, shipped into each worker so
                # worker-side records join the caller's trace tree
                call = _ContextCall(fn, obs_flight.current_context())
                return list(pool.map(call, items, chunksize=chunksize))
        with pool, obs_trace.span(
            "parallel.map", mode="thread", items=n, jobs=self.jobs
        ):
            observe = obs_trace.active() or obs_flight.enabled()
            # captured inside the map span: worker chunks re-activate it
            # so their spans are children of parallel.map, not orphans on
            # whatever the pool thread last ran
            parent_ctx = obs_flight.current_context()

            def run_chunk(idx: range) -> list[R]:
                # keyed by chunk start: deterministic no matter which
                # worker thread picks the chunk up
                res_faults.inject("parallel.chunk", key=str(idx.start))
                if not observe:
                    return [fn(items[i]) for i in idx]
                # per-worker task timing: the span lands on the worker
                # thread's track, so Perfetto shows pool utilization
                t0 = time.perf_counter()
                with obs_flight.context(parent_ctx):
                    with obs_trace.span(
                        "parallel.chunk", start=idx.start, size=len(idx)
                    ):
                        res = [fn(items[i]) for i in idx]
                    obs_metrics.histogram(
                        "parallel_chunk_seconds", mode=self.mode
                    ).observe(time.perf_counter() - t0)
                obs_metrics.counter(
                    "parallel_tasks", mode=self.mode
                ).inc(len(idx))
                return res

            futures = [(idx, pool.submit(run_chunk, idx))
                       for idx in self._chunks(n, chunksize)]
            pending_error: tuple[int, BaseException] | None = None
            for idx, fut in futures:
                try:
                    res = fut.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if pending_error is None or idx.start < pending_error[0]:
                        pending_error = (idx.start, exc)
                    continue
                for i, r in zip(idx, res):
                    out[i] = r
            if pending_error is not None:
                raise pending_error[1]
        return out

    def starmap(
        self,
        fn: Callable[..., R],
        items: Sequence[tuple],
        *,
        chunksize: int | None = None,
    ) -> list[R]:
        """:meth:`map` with argument tuples unpacked into ``fn``."""
        return self.map(lambda args: fn(*args), items, chunksize=chunksize)
