"""Content-addressed persistent result cache (JSON on disk).

Autotune results and ARM static schedules are pure functions of (shape,
bits, device, kernel kwargs, code).  This module memoizes them across
*processes*: a cache entry is one JSON file named by the
:func:`stable_hash` of its key, stored under

* ``$REPRO_CACHE_DIR`` if set (re-read on every access, so tests can
  isolate with ``tmp_path``), else
* ``$XDG_CACHE_HOME/repro`` if set, else
* ``~/.cache/repro``.

Design rules:

* **Keys are canonical.**  :func:`stable_hash` serializes dataclasses,
  dicts (sorted), tuples, ``None`` and floats into canonical JSON before
  hashing — kwargs dicts with unhashable or unorderable values are fine,
  unlike ``tuple(sorted(kwargs.items()))``.
* **Code versions the key.**  Callers mix a :func:`code_fingerprint` of
  the modules that produce the value into the key, so editing a cost
  model invalidates stale entries instead of replaying them.
* **The cache is an optimization, never a failure source.**  Unreadable
  directories, truncated/corrupt JSON, injected faults, or racing
  writers degrade to a cache miss; writes go through
  :func:`repro.resilience.atomic.atomic_write_text`
  (temp file + fsync + ``os.replace``) so readers never observe a
  partial entry even across ``kill -9``.  Setting ``REPRO_NO_CACHE=1``
  disables all disk traffic.
* **Corruption is quarantined, not just tolerated.**  A corrupt entry is
  moved into the ``.quarantine/`` sibling directory (keeping the
  specimen for debugging) so the next lookup is a clean
  ``FileNotFoundError`` miss instead of re-parsing garbage forever.
* **Degradation is never silent.**  Every tolerated corruption or failed
  write increments a :mod:`repro.obs.metrics` counter (``cache_corrupt``,
  ``cache_put_errors``) and emits a structured ``repro.obs.log`` warning,
  and every lookup lands in ``cache_lookups{namespace=...,outcome=...}``.
* **Chaos-testable.**  ``get``/``put`` run under the
  :mod:`repro.resilience.faults` sites ``cache.get`` / ``cache.put``
  (plus the ``cache.put.tmp`` crash window inside the atomic writer), so
  a seeded fault plan can prove every degradation path above.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import inspect
import json
import os
import pathlib
from typing import Any, Iterable

from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..resilience import atomic as res_atomic
from ..resilience import faults as res_faults
from ..resilience.faults import InjectedFault

#: environment variable overriding the on-disk cache root
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: set to a non-empty value to disable all persistent caching
NO_CACHE_ENV = "REPRO_NO_CACHE"


# ---------------------------------------------------------------------------
# Stable hashing
# ---------------------------------------------------------------------------


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-serializable canonical form."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; NaN/inf get distinct tags
        return ["f", repr(obj)]
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, _canonical(obj.value)]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: _canonical(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return ["dc", type(obj).__name__, fields]
    if isinstance(obj, dict):
        items = [(str(k), _canonical(v)) for k, v in obj.items()]
        items.sort(key=lambda kv: (kv[0], json.dumps(kv[1], sort_keys=True)))
        return ["dict", items]
    if isinstance(obj, (list, tuple)):
        return ["seq", [_canonical(v) for v in obj]]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted(json.dumps(_canonical(v)) for v in obj)]
    if isinstance(obj, bytes):
        return ["bytes", obj.hex()]
    # last resort: a stable textual form (no id()-bearing default reprs)
    text = repr(obj)
    if " at 0x" in text:
        text = f"{type(obj).__module__}.{type(obj).__qualname__}"
    return ["repr", text]


def stable_hash(obj: Any) -> str:
    """Canonical sha256 hex digest of an arbitrary key object.

    Insertion order of dicts, tuple-vs-list distinctions and object
    identity do not affect the digest; float values do, exactly.
    """
    blob = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def code_fingerprint(modules: Iterable[Any]) -> str:
    """A short digest of the source text of ``modules``.

    Mixed into cache keys so results are re-derived after any edit to the
    code that produced them.  Modules whose source is unavailable (frozen,
    REPL) contribute their name only — weaker, but still usable.
    """
    h = hashlib.sha256()
    for mod in modules:
        try:
            src = inspect.getsource(mod)
        except (OSError, TypeError):
            src = getattr(mod, "__name__", repr(mod))
        h.update(src.encode("utf-8", "replace"))
        h.update(b"\0")
    return h.hexdigest()[:16]


# ---------------------------------------------------------------------------
# On-disk store
# ---------------------------------------------------------------------------


def default_cache_root() -> pathlib.Path:
    """Resolve the cache root from the environment (re-read every call)."""
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    if xdg:
        return pathlib.Path(xdg) / "repro"
    return pathlib.Path.home() / ".cache" / "repro"


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`PersistentCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0  #: corrupt entries tolerated + failed writes

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "errors": self.errors,
            "hit_rate": round(self.hit_rate, 4),
        }


class PersistentCache:
    """One namespace of the JSON-on-disk store.

    ``get``/``put`` speak plain JSON-serializable dicts; callers own the
    (de)serialization of their domain objects so this class stays generic.
    """

    def __init__(self, namespace: str, root: str | os.PathLike | None = None) -> None:
        if not namespace or "/" in namespace:
            raise ValueError(f"invalid cache namespace {namespace!r}")
        self.namespace = namespace
        self._root = pathlib.Path(root) if root is not None else None
        self.stats = CacheStats()

    # -- location -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return not os.environ.get(NO_CACHE_ENV, "").strip()

    def directory(self) -> pathlib.Path:
        root = self._root if self._root is not None else default_cache_root()
        return root / self.namespace

    def path_for(self, digest: str) -> pathlib.Path:
        return self.directory() / f"{digest}.json"

    # -- operations ---------------------------------------------------------

    def _count_lookup(self, outcome: str) -> None:
        obs_metrics.counter(
            "cache_lookups", namespace=self.namespace, outcome=outcome
        ).inc()

    def _degrade(self, path: pathlib.Path, exc: BaseException | None,
                 reason: str) -> None:
        """A corrupt/unreadable entry tolerated as a miss — but signaled,
        and the offending file is quarantined so the next lookup misses
        cleanly instead of re-parsing the same garbage."""
        self.stats.misses += 1
        self.stats.errors += 1
        self._count_lookup("miss")
        obs_metrics.counter("cache_corrupt", namespace=self.namespace).inc()
        obs_log.warning(
            "cache_corrupt",
            logger="repro.perf.cache",
            namespace=self.namespace,
            path=str(path),
            reason=reason,
            error=type(exc).__name__ if exc is not None else "none",
        )
        if path.exists():
            res_atomic.quarantine_file(path, reason=f"cache-{reason}")

    def get(self, digest: str) -> dict | None:
        """The stored entry, or ``None`` on miss/corruption/disablement."""
        if not self.enabled:
            return None
        path = self.path_for(digest)
        try:
            res_faults.inject("cache.get", key=digest)
            with open(path, "r", encoding="utf-8") as fh:
                value = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            self._count_lookup("miss")
            return None
        except (OSError, ValueError, UnicodeDecodeError, InjectedFault) as exc:
            # truncated/corrupt/unreadable entry: a miss, never a crash
            self._degrade(path, exc, "unreadable-or-invalid-json")
            return None
        value = res_faults.maybe_garbage("cache.get", value, key=digest)
        if not isinstance(value, dict):
            self._degrade(path, None, "entry-not-a-dict")
            return None
        self.stats.hits += 1
        self._count_lookup("hit")
        return value

    def put(self, digest: str, value: dict) -> bool:
        """Atomically persist ``value``; failures are swallowed (False)."""
        if not self.enabled:
            return False
        path = self.path_for(digest)
        try:
            # fsync=False: rename atomicity alone makes entries kill-safe
            # (readers see old-or-new, never torn); skipping the fsync
            # keeps hot-sweep puts off the disk-flush path.  Power-loss
            # durability is not a cache's contract — a lost entry is a
            # recomputable miss.
            res_atomic.atomic_write_text(
                path, json.dumps(value, separators=(",", ":")),
                site="cache.put", key=digest, fsync=False,
            )
        except (OSError, TypeError, ValueError, InjectedFault) as exc:
            self.stats.errors += 1
            obs_metrics.counter(
                "cache_put_errors", namespace=self.namespace
            ).inc()
            obs_log.warning(
                "cache_put_failed",
                logger="repro.perf.cache",
                namespace=self.namespace,
                path=str(path),
                error=type(exc).__name__,
            )
            return False
        self.stats.puts += 1
        obs_metrics.counter("cache_puts", namespace=self.namespace).inc()
        return True

    def clear(self) -> int:
        """Delete every entry in this namespace; returns files removed."""
        removed = 0
        try:
            entries = list(self.directory().glob("*.json"))
        except OSError:
            return 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory().glob("*.json"))
        except OSError:
            return 0

    def reset_stats(self) -> None:
        self.stats = CacheStats()
