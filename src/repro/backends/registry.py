"""Backend registry: one dispatch point for every pricing target.

Mirrors :mod:`repro.conv.registry`: downstream code selects backends by
name, and registering here is all a new target needs to become reachable
from the executor, network pricer, figures, CLI and bench.  Factories are
registered lazily (a zero-argument callable) so importing the registry
never drags in a backend's kernel stack; the instance is built on first
:func:`get_backend` and reused after that.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict

from ..errors import ReproError
from .base import Backend

BackendFactory = Callable[[], Backend]

_FACTORIES: Dict[str, BackendFactory] = {}
_INSTANCES: Dict[str, Backend] = {}
_LOCK = threading.Lock()


def register_backend(
    name: str,
    factory: "BackendFactory | Backend",
    *,
    replace: bool = False,
) -> None:
    """Make a backend reachable by ``name``.

    ``factory`` is either a ready :class:`Backend` instance or a
    zero-argument callable building one (preferred: construction — and
    the imports it pulls in — is deferred until first use).  Registering
    an existing name raises unless ``replace=True``.
    """
    with _LOCK:
        if name in _FACTORIES and not replace:
            raise ReproError(
                f"backend {name!r} is already registered; "
                f"pass replace=True to override"
            )
        if isinstance(factory, Backend):
            instance = factory
            _FACTORIES[name] = lambda: instance
        else:
            _FACTORIES[name] = factory
        _INSTANCES.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove a backend (unknown names are a no-op)."""
    with _LOCK:
        _FACTORIES.pop(name, None)
        _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    with _LOCK:
        return tuple(sorted(_FACTORIES))


def get_backend(name: "str | Backend") -> Backend:
    """Resolve a backend by name (instances pass through unchanged)."""
    if isinstance(name, Backend):
        return name
    with _LOCK:
        instance = _INSTANCES.get(name)
        if instance is not None:
            return instance
        factory = _FACTORIES.get(name)
    if factory is None:
        raise ReproError(
            f"unknown backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    instance = factory()
    if not isinstance(instance, Backend):
        raise ReproError(
            f"backend factory for {name!r} returned "
            f"{type(instance).__name__}, not a Backend"
        )
    with _LOCK:
        return _INSTANCES.setdefault(name, instance)
