"""The ARM CPU target (Tab. 1 left column: simulated Raspberry Pi 3B).

Wraps the layer-level ARM cost model (:func:`repro.arm.conv_runner
.time_arm_conv` and friends) behind the :class:`~repro.backends.base
.Backend` protocol.  The ARM model always prices the whole layer
including the fp32->int quantize and int->fp32 dequantize passes, so the
mapped :class:`ConvPrice` carries those as ``quant_cycles`` and
``graph_cycles`` subtracts them for graphs that charge quantization ops
explicitly — exactly the accounting the runtime executor used before
this package existed.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ReproError
from ..types import ConvSpec
from ..util import vector_enabled
from .base import Backend, BaselineFn, ConvPrice, PrewarmItem


#: peak MACs per cycle per scheme on the A53 NEON pipe, from the pipeline
#: cost table: MLA.16B retires 16 int8 lanes per 2-cycle occupancy,
#: SMLAL.8H 8 int16 lanes per 2 cycles, SDOT 16 MACs per 2 cycles
_PEAK_MACS_PER_CYCLE = {"mla": 8.0, "smlal": 4.0, "ncnn": 4.0, "sdot": 8.0}


class ArmBackend(Backend):
    """ARMv8 GEMM/winograd kernels on the simulated Cortex-A53."""

    name = "arm"
    display_name = "ARM CPU"

    def __init__(self, machine=None):
        from ..arm.cost_model import PI3B

        self.machine = machine if machine is not None else PI3B

    def _price(self, perf) -> ConvPrice:
        """Map an :class:`~repro.arm.conv_runner.ArmConvPerf` breakdown."""
        return ConvPrice(
            backend=self.name,
            spec_name=perf.spec_name,
            bits=perf.bits,
            total_cycles=perf.total_cycles,
            compute_cycles=perf.kernel_cycles,
            quant_cycles=perf.quant_cycles,
            clock_hz=self.machine.clock_hz,
            meta={
                "scheme": perf.scheme,
                "im2col_cycles": perf.im2col_cycles,
                "pack_cycles": perf.pack_cycles,
                "requant_cycles": perf.requant_cycles,
                "mem_cycles": perf.mem_cycles,
                "overhead_cycles": perf.overhead_cycles,
            },
        )

    def price_conv(
        self,
        spec: ConvSpec,
        bits: int,
        epilogue: str | None = None,
        *,
        scheme: str | None = None,
        algorithm: str = "gemm",
    ) -> ConvPrice:
        # The ARM layer price is epilogue-independent (requantization is
        # always charged; graph_cycles strips the quant passes instead).
        del epilogue
        if algorithm == "gemm":
            from ..arm.conv_runner import time_arm_conv

            perf = time_arm_conv(spec, bits, scheme=scheme, machine=self.machine)
        elif algorithm == "winograd":
            from ..arm.winograd_runner import time_winograd_conv

            perf = (
                time_winograd_conv(spec, bits, machine=self.machine)
                if scheme is None
                else time_winograd_conv(
                    spec, bits, scheme=scheme, machine=self.machine
                )
            )
        else:
            raise ReproError(
                f"unknown ARM conv algorithm {algorithm!r}; "
                f"available: gemm, winograd"
            )
        return self._price(perf)

    def prewarm(
        self, work: Sequence[PrewarmItem], jobs: int | None = None
    ) -> None:
        """Batch-schedule the distinct micro-kernel streams first, then
        fall through to the generic per-item warm-up.

        One :func:`~repro.arm.conv_runner.gemm_kernel_cycles_batch` call
        per (scheme, bits) group prices a whole network's reduction
        lengths through the vectorized cost model, so each distinct
        static schedule is computed exactly once before any worker (or
        the serial pricing pass) asks for it.  ``REPRO_NO_VECTOR``
        disables the batching; warming stays best-effort either way.
        """
        work = list(work)
        if vector_enabled() and len(work) >= 2:
            from ..arm.conv_runner import gemm_kernel_cycles_batch
            from ..arm.cost_model import scheme_for_bits
            from ..errors import UnsupportedBitsError
            from ..obs import log as obs_log
            from ..obs import metrics as obs_metrics
            from ..types import GemmShape

            groups: dict[tuple[str, int], list[GemmShape]] = {}
            for spec, bits, _epilogue in work:
                try:
                    scheme = scheme_for_bits(bits)
                except UnsupportedBitsError:
                    continue  # the per-item pass surfaces this properly
                groups.setdefault((scheme, bits), []).append(GemmShape(
                    m=spec.out_channels // spec.groups,
                    k=spec.gemm_k, n=spec.gemm_n,
                ))
            for (scheme, bits), gemms in groups.items():
                try:
                    gemm_kernel_cycles_batch(gemms, scheme, bits)
                except Exception as exc:  # noqa: BLE001 - warming only
                    obs_metrics.counter(
                        "prewarm_errors", backend=self.name).inc()
                    obs_log.warning(
                        "prewarm_failed", logger="repro.backends",
                        backend=self.name, scheme=scheme, bits=bits,
                        error=type(exc).__name__,
                    )
        super().prewarm(work, jobs)

    def price_elementwise(self, kind: str, elems: int) -> float:
        per_elem = {
            "quantize": self.machine.quantize_cycles_per_elem,
            "dequantize": self.machine.dequantize_cycles_per_elem,
            "relu": 1.0,
        }.get(kind)
        if per_elem is None:
            raise ReproError(f"unknown element-wise op {kind!r} on {self.name}")
        return elems * per_elem

    def peak_ops_per_sec(self, bits: int) -> float:
        from ..arm.cost_model import scheme_for_bits

        return _PEAK_MACS_PER_CYCLE[scheme_for_bits(bits)] * self.machine.clock_hz

    def peak_bandwidth_bytes_per_sec(self) -> float:
        return self.machine.dram_bytes_per_cycle * self.machine.clock_hz

    def conv_traffic(self, spec: ConvSpec, bits: int) -> dict[str, float]:
        """DRAM bytes the layer-level cost model charges (Sec. 3 passes):
        the raw activation read, the im2col write (skipped for pointwise
        unit-stride layers), the packed-B stream, the cold weight read and
        the int32 accumulator write-back.  Mirrors the ``unique`` traffic
        term of :func:`repro.arm.conv_runner._gemm_mem_cycles`."""
        from ..arm.cost_model import (
            is_pointwise_unit_stride,
            kernel_geometry,
            scheme_for_bits,
        )
        from ..util import round_up

        _, n_r = kernel_geometry(scheme_for_bits(bits))
        groups = spec.groups
        k = spec.gemm_k
        n = spec.gemm_n
        im2col = 0.0 if is_pointwise_unit_stride(spec) else float(
            spec.batch * groups * k * n
        )
        traffic = {
            "input": float(spec.input_elems),
            "im2col": im2col,
            "pack": float(spec.batch * groups * k * round_up(n, n_r)),
            "weights": float(spec.weight_elems),
            "output": float(spec.output_elems * 4),  # int32 write-back
        }
        traffic["total"] = sum(traffic.values())
        return traffic

    def baselines(self) -> dict[str, BaselineFn]:
        from ..arm.conv_runner import ncnn_conv_cycles, tvm_popcount_cycles

        return {
            "ncnn": lambda spec: self._price(
                ncnn_conv_cycles(spec, machine=self.machine)
            ),
            "tvm-popcount": lambda spec: self._price(
                tvm_popcount_cycles(spec, machine=self.machine)
            ),
        }

    def describe(self) -> dict[str, object]:
        m = self.machine
        return {
            "device": "Raspberry Pi 3B (simulated)",
            "architecture": "ARM Cortex-A53",
            "clock_hz": m.clock_hz,
            "l1_bytes": m.l1_bytes,
            "l2_bytes": m.l2_bytes,
            "baseline": "ncnn-like 8-bit GEMM kernels",
        }
