"""Unified backend abstraction: registered pricing targets.

``get_backend("arm" | "gpu" | "ref")`` returns a :class:`Backend` with a
common protocol — ``price_conv`` / ``price_elementwise`` / ``prewarm`` /
``baselines`` / ``machine`` — so the runtime executor, network pricer,
figures, CLI and bench never branch on backend-name strings and never
import a target's kernel stack directly.  Built-ins register lazy
factories here; third targets call :func:`register_backend` the same way.
"""

from .base import Backend, BaselineFn, ConvPrice, PrewarmItem
from .registry import (
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)

__all__ = [
    "Backend",
    "BaselineFn",
    "ConvPrice",
    "PrewarmItem",
    "available_backends",
    "get_backend",
    "register_backend",
    "unregister_backend",
]


def _arm_factory() -> Backend:
    from .arm import ArmBackend

    return ArmBackend()


def _gpu_factory() -> Backend:
    from .gpu import GpuBackend

    return GpuBackend()


def _ref_factory() -> Backend:
    from .ref import RefBackend

    return RefBackend()


register_backend("arm", _arm_factory)
register_backend("gpu", _gpu_factory)
register_backend("ref", _ref_factory)
