"""The backend protocol: one uniform pricing surface per simulated target.

Every target the runtime can price a network on — the ARM CPU, the Turing
GPU, the op-count reference, and any future machine — is a
:class:`Backend`: a named object exposing the *same* small vocabulary
(``price_conv`` / ``price_elementwise`` / ``prewarm`` / ``baselines``)
plus its machine description.  Per-conv results are mapped into one
:class:`ConvPrice` shape so downstream layers (runtime executor, network
pricer, figures, CLI, bench) never see a target-specific perf object and
never branch on a backend-name string.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Sequence, Tuple

from ..types import ConvSpec

#: one unit of prewarm work: ``(spec, bits, epilogue)``.  ``epilogue=None``
#: prices the bare conv kernel (the figures path); an explicit epilogue
#: string prices the conv as the graph executor charges it.
PrewarmItem = Tuple[ConvSpec, int, "str | None"]

#: a baseline pricer: maps a conv spec to that baseline's ConvPrice
BaselineFn = Callable[[ConvSpec], "ConvPrice"]


@dataclass(frozen=True)
class ConvPrice:
    """Uniform per-convolution price every backend maps its native perf
    object into (``ArmConvPerf``, ``AutotuneResult``/``GpuKernelPerf``,
    ref op counts).

    ``total_cycles`` is the whole layer as the backend's cost model sees
    it; ``quant_cycles`` is the share charged to the quantize/dequantize
    element passes *inside* that total (zero on backends whose conv price
    excludes them).  :attr:`graph_cycles` is what a graph executor that
    carries explicit quantize/dequantize ops should charge the conv op —
    the total minus the passes the graph already pays for separately.
    """

    backend: str
    spec_name: str
    bits: int
    total_cycles: float
    compute_cycles: float
    quant_cycles: float
    clock_hz: float
    #: backend-specific tuning metadata (scheme, tiling, sweep tallies...)
    meta: Mapping[str, object] = field(default_factory=dict)

    @property
    def graph_cycles(self) -> float:
        """Conv-op charge inside an explicit-quantization graph."""
        return self.total_cycles - self.quant_cycles

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @property
    def microseconds(self) -> float:
        return self.seconds * 1e6


class Backend(abc.ABC):
    """A pricing target.  Subclasses set :attr:`name` and :attr:`machine`
    (any object with a ``clock_hz`` attribute) and implement the two
    pricing primitives; ``prewarm`` and ``baselines`` have defaults."""

    #: registry key (``get_backend(name)``)
    name: str
    #: human-facing platform label (Tab. 1 row headers)
    display_name: str
    #: machine description; must expose ``clock_hz``
    machine: object

    @property
    def clock_hz(self) -> float:
        return self.machine.clock_hz

    @abc.abstractmethod
    def price_conv(
        self,
        spec: ConvSpec,
        bits: int,
        epilogue: str | None = None,
        **kwargs,
    ) -> ConvPrice:
        """Price one convolution layer.

        ``epilogue=None`` prices the bare conv kernel with the backend's
        default output handling (what the per-layer figures compare);
        ``"requant"``/``"requant_relu"``/``"dequant"`` price the conv as
        the graph executor's fused epilogues emit it.  Extra keywords are
        backend-specific knobs (ARM: ``scheme``/``algorithm``; GPU:
        ``tuned`` and kernel kwargs) and must default to the bare path.
        """

    @abc.abstractmethod
    def price_elementwise(self, kind: str, elems: int) -> float:
        """Cycles for one element-wise graph op (``quantize`` /
        ``dequantize`` / ``relu``) over ``elems`` elements."""

    def prewarm(
        self, work: Sequence[PrewarmItem], jobs: int | None = None
    ) -> None:
        """Fan independent per-conv pricing over a worker pool purely to
        warm the backend's memo caches; serial re-reads then assemble the
        actual report, so results are identical for any worker count
        (``REPRO_JOBS`` applies when ``jobs`` is unset).

        Warming is best-effort by contract: a failing item is counted
        (``prewarm_errors``) and swallowed here, because the serial
        pricing pass that follows re-raises — or gracefully degrades —
        through the real error path.  Crashing a *warm-up* would turn an
        optimization into a failure source."""
        from ..obs import log as obs_log
        from ..obs import metrics as obs_metrics
        from ..obs import trace as obs_trace
        from ..perf.parallel import ParallelRunner

        work = list(work)
        if len(work) < 2:
            return

        def warm_one(w: PrewarmItem) -> None:
            try:
                self.price_conv(w[0], w[1], epilogue=w[2])
            except Exception as exc:  # noqa: BLE001 - warming only
                obs_metrics.counter("prewarm_errors", backend=self.name).inc()
                obs_log.warning(
                    "prewarm_failed", logger="repro.backends",
                    backend=self.name, layer=w[0].name, bits=w[1],
                    error=type(exc).__name__,
                )

        with obs_trace.span(
            "backend.prewarm", backend=self.name, items=len(work)
        ):
            ParallelRunner(jobs).map(warm_one, work)

    def baselines(self) -> Dict[str, BaselineFn]:
        """Named library baselines this backend is evaluated against
        (e.g. ``ncnn`` on ARM, ``cudnn-dp4a``/``tensorrt`` on GPU)."""
        return {}

    # -- roofline hooks (repro.obs.roofline) --------------------------------

    def peak_ops_per_sec(self, bits: int) -> float:
        """Peak multiply-accumulate throughput (MACs/s) at ``bits`` —
        the compute roof the roofline analyzer measures layers against.
        Backends without a machine MAC-rate model may raise
        :class:`~repro.errors.ReproError`."""
        from ..errors import ReproError

        raise ReproError(
            f"backend {self.name!r} does not model a peak MAC rate"
        )

    def peak_bandwidth_bytes_per_sec(self) -> float:
        """Peak main-memory bandwidth (bytes/s) — the memory roof."""
        from ..errors import ReproError

        raise ReproError(
            f"backend {self.name!r} does not model memory bandwidth"
        )

    def conv_traffic(self, spec: ConvSpec, bits: int) -> Dict[str, float]:
        """Estimated main-memory traffic (bytes) one conv layer moves, as
        the backend's cost model charges it — im2col/packing streams on
        ARM, tile re-reads on GPU.  Must return a ``"total"`` key plus any
        per-component breakdown; the roofline analyzer divides MACs by
        ``total`` for the layer's arithmetic intensity."""
        from ..errors import ReproError

        raise ReproError(
            f"backend {self.name!r} does not model memory traffic"
        )

    def describe(self) -> Dict[str, object]:
        """Tab. 1-style machine description row."""
        return {"device": self.name, "clock_hz": self.clock_hz}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"
