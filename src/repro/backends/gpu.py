"""The Turing GPU target (Tab. 1 right column: simulated RTX 2080Ti).

Wraps the profile-run autotuner (:func:`repro.gpu.autotune.autotune_conv`)
and the GPU pipeline model behind the :class:`~repro.backends.base
.Backend` protocol.  GPU conv prices fold the epilogue into the kernel
(the quantize passes are separate kernel launches priced by
``price_elementwise``), so ``quant_cycles`` is always zero and
``graph_cycles == total_cycles``.

``epilogue`` selects the output element width the executor's fused
epilogues emit (``dequant`` writes fp32; requantizing epilogues write
``bits/8``-byte ints); ``epilogue=None`` keeps the pipeline model's
default — the bare-kernel price the per-layer figures compare.
"""

from __future__ import annotations

from ..errors import ReproError
from ..types import ConvSpec
from .base import Backend, BaselineFn, ConvPrice


class GpuBackend(Backend):
    """Auto-tuned Tensor Core kernels on the simulated TU102."""

    name = "gpu"
    display_name = "NVIDIA GPU"

    def __init__(self, device=None):
        from ..gpu.device import TU102

        self.machine = device if device is not None else TU102

    def _price(self, spec: ConvSpec, bits: int, perf, **meta) -> ConvPrice:
        """Map a :class:`~repro.gpu.pipelinemodel.GpuKernelPerf`."""
        return ConvPrice(
            backend=self.name,
            spec_name=spec.name,
            bits=bits,
            total_cycles=perf.total_cycles,
            compute_cycles=perf.compute_cycles,
            quant_cycles=0.0,
            clock_hz=self.machine.clock_hz,
            meta={
                "tiling": perf.tiling.describe(),
                "dram_cycles": perf.dram_cycles,
                "smem_cycles": perf.smem_cycles,
                "occupancy": perf.occupancy,
                "bound": perf.bound,
                **meta,
            },
        )

    def price_conv(
        self,
        spec: ConvSpec,
        bits: int,
        epilogue: str | None = None,
        *,
        tuned: bool = True,
        **kernel_kwargs,
    ) -> ConvPrice:
        if epilogue is not None:
            kernel_kwargs.setdefault(
                "out_elem_bytes", 4.0 if epilogue == "dequant" else bits / 8
            )
        if tuned:
            from ..gpu.autotune import autotune_conv

            result = autotune_conv(
                spec, bits, device=self.machine, **kernel_kwargs
            )
            return self._price(
                spec,
                bits,
                result.best_perf,
                candidates=result.candidates,
                evaluated=result.evaluated,
                pruned=result.pruned,
            )
        # untuned: the fixed 'programmer experience' default tiling
        # (Fig. 11's w/o-profile arm)
        from ..gpu.pipelinemodel import conv_time
        from ..gpu.tiling import default_tiling

        perf = conv_time(
            spec, bits, default_tiling(bits), device=self.machine,
            **kernel_kwargs,
        )
        return self._price(spec, bits, perf, tuned=False)

    def price_elementwise(self, kind: str, elems: int) -> float:
        from ..gpu.fusion import elementwise_kernel_cycles

        io = {
            "quantize": (4.0, 1.0),
            "dequantize": (1.0, 4.0),
            "relu": (1.0, 1.0),
        }.get(kind)
        if io is None:
            raise ReproError(f"unknown element-wise op {kind!r} on {self.name}")
        return elementwise_kernel_cycles(
            elems * io[0], elems * io[1], device=self.machine
        )

    def peak_ops_per_sec(self, bits: int) -> float:
        """Whole-device Tensor Core MAC rate (Turing whitepaper ratios)."""
        m = self.machine
        return m.mac_rate(bits) * m.sm_count * m.clock_hz

    def peak_bandwidth_bytes_per_sec(self) -> float:
        return self.machine.dram_bytes_per_sec

    def conv_traffic(self, spec: ConvSpec, bits: int) -> dict[str, float]:
        """DRAM bytes the pipeline model charges the tuned kernel — tile
        re-reads included, L2-served re-reads excluded — recovered from
        the priced kernel's ``dram_cycles`` at the device bandwidth."""
        price = self.price_conv(spec, bits)
        dram = float(price.meta["dram_cycles"]) * self.machine.dram_bytes_per_cycle
        return {"dram": dram, "total": dram}

    def baselines(self) -> dict[str, BaselineFn]:
        from ..gpu.baselines import cudnn_dp4a_time, tensorrt_time

        return {
            "cudnn-dp4a": lambda spec: self._price(
                spec, 8, cudnn_dp4a_time(spec, device=self.machine),
                library="cudnn",
            ),
            "tensorrt": lambda spec: self._price(
                spec, 8, tensorrt_time(spec, device=self.machine),
                library="tensorrt",
            ),
        }

    def describe(self) -> dict[str, object]:
        m = self.machine
        return {
            "device": "RTX 2080Ti (simulated)",
            "architecture": "NVIDIA Turing TU102",
            "sm_count": m.sm_count,
            "clock_hz": m.clock_hz,
            "dram_bytes_per_sec": m.dram_bytes_per_sec,
            "baseline": "cuDNN-like dp4a kernels; TensorRT-like int8 kernels",
        }
