"""The op-count reference target: the cheapest possible third backend.

A deliberately minimal backend proving the registry's third-target path:
no kernel model, no caches — convolutions are priced as MACs over a flat
issue rate and element-wise ops as elements over a flat rate.  Useful as
a machine-independent floor for sanity checks, and as the template for
real future targets (sdot-ARM machine variants, bit-serial CPU, ...):
implement two pricing primitives and register a factory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..types import ConvSpec
from .base import Backend, BaselineFn, ConvPrice


@dataclass(frozen=True)
class RefMachine:
    """An idealized 1 GHz machine with flat issue rates."""

    name: str = "op-count-reference"
    clock_hz: float = 1.0e9
    macs_per_cycle: float = 64.0
    elementwise_per_cycle: float = 8.0


REF = RefMachine()


class RefBackend(Backend):
    """Pure op-count pricing (bit-width independent by construction)."""

    name = "ref"
    display_name = "Reference"

    def __init__(self, machine: RefMachine | None = None):
        self.machine = machine if machine is not None else REF

    def price_conv(
        self,
        spec: ConvSpec,
        bits: int,
        epilogue: str | None = None,
        **kwargs,
    ) -> ConvPrice:
        if kwargs:
            raise ReproError(
                f"ref backend takes no conv knobs, got {sorted(kwargs)}"
            )
        compute = spec.macs / self.machine.macs_per_cycle
        # one pass over the output for the (re)quantizing epilogue
        epilogue_cycles = spec.output_elems / self.machine.elementwise_per_cycle
        return ConvPrice(
            backend=self.name,
            spec_name=spec.name,
            bits=bits,
            total_cycles=compute + epilogue_cycles,
            compute_cycles=compute,
            quant_cycles=0.0,
            clock_hz=self.machine.clock_hz,
            meta={"algorithm": "op-count", "epilogue": epilogue or "requant"},
        )

    def price_elementwise(self, kind: str, elems: int) -> float:
        if kind not in ("quantize", "dequantize", "relu"):
            raise ReproError(f"unknown element-wise op {kind!r} on {self.name}")
        return elems / self.machine.elementwise_per_cycle

    def prewarm(self, work, jobs=None) -> None:
        # nothing to warm: pricing is closed-form arithmetic
        return

    def peak_ops_per_sec(self, bits: int) -> float:
        del bits  # flat-rate machine: width-independent by construction
        return self.machine.macs_per_cycle * self.machine.clock_hz

    def peak_bandwidth_bytes_per_sec(self) -> float:
        # the idealized machine streams one element-wise operand per cycle
        return self.machine.elementwise_per_cycle * self.machine.clock_hz

    def conv_traffic(self, spec: ConvSpec, bits: int) -> dict[str, float]:
        """Compulsory traffic only: each operand touched exactly once."""
        elem_bytes = bits / 8
        traffic = {
            "input": spec.input_elems * elem_bytes,
            "weights": spec.weight_elems * elem_bytes,
            "output": spec.output_elems * elem_bytes,
        }
        traffic["total"] = sum(traffic.values())
        return traffic

    def baselines(self) -> dict[str, BaselineFn]:
        return {"op-count-8bit": lambda spec: self.price_conv(spec, 8)}

    def describe(self) -> dict[str, object]:
        m = self.machine
        return {
            "device": "op-count reference (analytic)",
            "architecture": "idealized flat-rate machine",
            "clock_hz": m.clock_hz,
            "macs_per_cycle": m.macs_per_cycle,
            "baseline": "itself at 8-bit",
        }
