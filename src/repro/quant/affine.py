"""Asymmetric (affine) quantization and zero-point convolution algebra.

The paper's kernels use signed *symmetric* quantization (zero point 0) —
that is what the signed SMLAL/MLA/mma datapaths want.  Production runtimes
(gemmlowp, QNNPACK, TFLite) often quantize activations *asymmetrically*:

    real = scale * (q - zero_point)

A library release must interoperate, so this module provides the affine
quantizer and the classic zero-point expansion that lets an affine conv
run on the very same integer kernels:

    sum (xq - zx) * (wq - zw)
      = sum xq*wq  -  zw * sum xq  -  zx * sum wq  +  K * zx * zw

The first term is the ordinary integer convolution (any kernel in this
package); the corrections are a per-window activation sum (a cheap
ones-kernel convolution), a per-output-channel weight sum (precomputable)
and a constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError, ShapeError
from ..types import ConvSpec, Layout
from .ranges import QRange


@dataclass(frozen=True)
class AffineParams:
    """scale/zero-point pair with its target range."""

    scale: float
    zero_point: int
    qrange: QRange

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise QuantizationError("affine scale must be positive")
        if not (self.qrange.qmin <= self.zero_point <= self.qrange.qmax):
            raise QuantizationError(
                f"zero point {self.zero_point} outside {self.qrange}"
            )


def choose_affine_params(
    lo: float, hi: float, qrange: QRange
) -> AffineParams:
    """Standard TFLite-style parameter choice for an observed [lo, hi].

    The range is widened to include 0 so that zero is exactly
    representable (padding must quantize to the zero point).
    """
    lo = min(0.0, float(lo))
    hi = max(0.0, float(hi))
    scale = (hi - lo) / (qrange.qmax - qrange.qmin)
    if not np.isfinite(scale) or scale <= 0.0:  # empty or sub-denormal range
        return AffineParams(1.0, 0 if qrange.contains(0, 0) else qrange.qmin,
                            qrange)
    zp = int(round(qrange.qmin - lo / scale))
    zp = max(qrange.qmin, min(qrange.qmax, zp))
    return AffineParams(scale, zp, qrange)


def affine_quantize(x: np.ndarray, params: AffineParams) -> np.ndarray:
    q = np.rint(np.asarray(x, dtype=np.float64) / params.scale) + params.zero_point
    return np.clip(q, params.qrange.qmin, params.qrange.qmax).astype(np.int64)


def affine_dequantize(q: np.ndarray, params: AffineParams) -> np.ndarray:
    return (np.asarray(q, dtype=np.float64) - params.zero_point) * params.scale


def window_counts(spec: ConvSpec) -> np.ndarray:
    """Valid (non-padding) tap count of each output position, ``(OH, OW)``.

    The zero-point expansion's constant term is ``K * zx * zw`` only for
    windows fully inside the image; padded windows contribute fewer taps.
    Computed exactly with a ones-input convolution.
    """
    from ..conv.ref import conv2d_ref

    ones = np.ones(spec.input_shape(Layout.NCHW), dtype=np.int64)[:1, :1]
    one_spec = ConvSpec(
        spec.name + "_ones", in_channels=1, out_channels=1,
        height=spec.height, width=spec.width, kernel=spec.kernel,
        stride=spec.stride, padding=spec.padding,
    )
    w = np.ones(one_spec.weight_shape(Layout.NCHW), dtype=np.int64)
    counts = conv2d_ref(one_spec, ones, w)[0, 0]
    return counts * (spec.in_channels // spec.groups)


def conv2d_affine(
    spec: ConvSpec,
    xq: np.ndarray,
    wq: np.ndarray,
    x_params: AffineParams,
    w_params: AffineParams,
    *,
    algorithm: str = "gemm",
) -> np.ndarray:
    """Affine-quantized convolution on symmetric integer kernels.

    ``xq``/``wq`` are affine-quantized values (zero points folded *out*
    via the expansion); the result is the exact int64 accumulator of
    ``sum (xq - zx)(wq - zw)``.  Zero-padding is handled by construction:
    a padded tap contributes ``(0 - 0)`` in the shifted domain, which the
    window-count term accounts for.
    """
    from ..conv.registry import conv2d

    xq = np.asarray(xq)
    wq = np.asarray(wq)
    if spec.groups != 1:
        raise ShapeError("affine expansion implemented for groups=1")
    zx, zw = x_params.zero_point, w_params.zero_point

    # main term: ordinary integer convolution of the raw quantized values
    main = conv2d(spec, xq.astype(np.int64), wq.astype(np.int64),
                  algorithm=algorithm)

    # -zw * sum_window(xq): one ones-weight convolution over the input
    ones_w = np.ones(spec.weight_shape(Layout.NCHW), dtype=np.int64)
    x_window = conv2d(spec, xq.astype(np.int64), ones_w, algorithm="direct")
    x_window = x_window[:, :1]  # identical across the ones output channels

    # -zx * sum_window(wq): position-dependent at padded edges (only the
    # taps inside the image carry the x zero point), so it is the ones-
    # input convolution of the weights rather than a flat per-channel sum
    ones_x = np.ones(spec.input_shape(Layout.NCHW), dtype=np.int64)[:1]
    w_window = conv2d(spec, ones_x, wq.astype(np.int64), algorithm="direct")[0]

    # + zx*zw * (valid tap count per output position)
    counts = window_counts(spec)

    return (
        main
        - zw * x_window
        - zx * w_window[None, :, :, :]
        + zx * zw * counts[None, None, :, :]
    )
