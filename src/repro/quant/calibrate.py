"""Activation-range calibration.

Post-training quantization needs a representative activation range.  The two
standard estimators are min-max (exact, outlier-sensitive) and a percentile
clip (what TensorRT-style calibrators approximate).  These feed
:func:`repro.quant.schemes.compute_scale`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import QuantizationError


def calibrate_minmax(samples: Iterable[np.ndarray]) -> float:
    """Largest absolute value observed across all sample batches."""
    best = 0.0
    seen = False
    for s in samples:
        s = np.asarray(s, dtype=np.float64)
        if s.size:
            best = max(best, float(np.max(np.abs(s))))
            seen = True
    if not seen:
        raise QuantizationError("calibrate_minmax received no data")
    return best


def calibrate_percentile(
    samples: Iterable[np.ndarray], percentile: float = 99.9
) -> float:
    """``percentile``-th percentile of ``|x|`` pooled over all samples.

    Clipping a tiny tail dramatically improves low-bit ranges when
    activations have outliers; this mirrors common PTQ practice.
    """
    if not (0.0 < percentile <= 100.0):
        raise QuantizationError(f"percentile must be in (0, 100], got {percentile}")
    pooled: list[np.ndarray] = []
    for s in samples:
        s = np.abs(np.asarray(s, dtype=np.float64)).ravel()
        if s.size:
            pooled.append(s)
    if not pooled:
        raise QuantizationError("calibrate_percentile received no data")
    allv = np.concatenate(pooled)
    return float(np.percentile(allv, percentile))
