"""QTensor: a quantized tensor (integer data + scale + bit width)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import QuantizationError
from .ranges import QRange, scheme_qrange
from .schemes import dequantize_linear


def storage_dtype(bits: int) -> np.dtype:
    """Narrowest NumPy dtype that holds ``bits``-wide signed values.

    Everything at or below 8 bits is stored in int8, exactly like the
    paper's kernels (sub-byte values sit one-per-byte in registers; the
    GPU int4 path additionally supports nibble packing, see
    :mod:`repro.gpu.mma`).
    """
    if bits <= 8:
        return np.dtype(np.int8)
    if bits <= 16:
        return np.dtype(np.int16)
    return np.dtype(np.int32)


@dataclass(frozen=True)
class QTensor:
    """Immutable container pairing integer data with quantization metadata.

    Attributes
    ----------
    data:
        Integer array, values within the bit width's scheme range.
    scale:
        Per-tensor scalar or per-channel 1-D array of float scales.
    bits:
        Logical bit width (2..8 for the paper's kernels).
    channel_axis:
        Axis of ``data`` that ``scale`` varies along, or ``None``.
    """

    data: np.ndarray
    scale: np.ndarray
    bits: int
    channel_axis: int | None = None

    def __post_init__(self) -> None:
        qr = self.qrange
        data = np.asarray(self.data)
        if not np.issubdtype(data.dtype, np.integer):
            raise QuantizationError(f"QTensor data must be integer, got {data.dtype}")
        lo, hi = (int(data.min()), int(data.max())) if data.size else (0, 0)
        if not qr.contains(lo, hi):
            raise QuantizationError(
                f"data range [{lo}, {hi}] exceeds {self.bits}-bit scheme range {qr}"
            )
        object.__setattr__(self, "data", data.astype(storage_dtype(self.bits)))
        scale = np.asarray(self.scale, dtype=np.float64)
        if np.any(scale <= 0):
            raise QuantizationError("QTensor scale must be strictly positive")
        if scale.ndim > 1:
            raise QuantizationError("scale must be scalar or 1-D (per-channel)")
        if scale.ndim == 1:
            if self.channel_axis is None:
                raise QuantizationError("per-channel scale requires channel_axis")
            if scale.shape[0] != data.shape[self.channel_axis]:
                raise QuantizationError(
                    f"scale length {scale.shape[0]} != axis size "
                    f"{data.shape[self.channel_axis]}"
                )
        object.__setattr__(self, "scale", scale)

    # ---- views -------------------------------------------------------------

    @property
    def qrange(self) -> QRange:
        return scheme_qrange(self.bits)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def is_per_channel(self) -> bool:
        return self.scale.ndim == 1

    def dequantize(self) -> np.ndarray:
        """Recover the float values this tensor represents."""
        return dequantize_linear(self.data, self.scale, axis=self.channel_axis)

    def astype_int32(self) -> np.ndarray:
        return self.data.astype(np.int32)

    def with_data(self, data: np.ndarray) -> "QTensor":
        """Same metadata, different payload (must still be in range)."""
        return QTensor(
            data=data, scale=self.scale, bits=self.bits, channel_axis=self.channel_axis
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "per-channel" if self.is_per_channel else "per-tensor"
        return f"QTensor(shape={self.shape}, bits={self.bits}, {kind})"
