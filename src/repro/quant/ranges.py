"""Numeric ranges of signed low-bit values, including the paper's adjusted
(symmetric) ranges.

Section 3.3 of the paper derives how many ``SMLAL``/``MLA`` products may be
accumulated before a 16-/8-bit accumulator can overflow.  That analysis
depends on the *value range* of the quantized operands:

* For most bit widths the full two's-complement range
  ``[-2**(b-1), 2**(b-1)-1]`` is used, whose worst-case product magnitude is
  ``2**(2b-2)`` (the square of the most negative value).
* For 7- and 8-bit the paper *adjusts* the range to the symmetric
  ``[-(2**(b-1)-1), 2**(b-1)-1]`` ("we adjust its value range to
  [-127, 127]"), shrinking the worst-case product to ``(2**(b-1)-1)**2``
  and buying one extra accumulation step.

This module is the single source of truth for those ranges; the chain-length
computation itself lives in :mod:`repro.arm.ratios`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UnsupportedBitsError

#: Bit widths the ARM path supports (Sec. 1: "ARM CPU (2~8-bit)").
ARM_BITS = range(2, 9)
#: Bit widths the GPU path supports (Sec. 1: "NVIDIA GPU (4-bit and 8-bit)").
GPU_BITS = (4, 8)

#: Bit widths for which the paper adjusts to a symmetric range so the
#: SMLAL chain length stays >= 2 (Sec. 3.3).
ADJUSTED_RANGE_BITS = frozenset({7, 8})


@dataclass(frozen=True)
class QRange:
    """Inclusive integer range ``[qmin, qmax]`` of a quantized value."""

    qmin: int
    qmax: int

    def __post_init__(self) -> None:
        if self.qmin > self.qmax:
            raise ValueError(f"empty QRange [{self.qmin}, {self.qmax}]")

    @property
    def max_abs(self) -> int:
        return max(abs(self.qmin), abs(self.qmax))

    @property
    def num_levels(self) -> int:
        return self.qmax - self.qmin + 1

    def contains(self, lo: int, hi: int) -> bool:
        return self.qmin <= lo and hi <= self.qmax

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.qmin}, {self.qmax}]"


def _check_bits(bits: int) -> None:
    if not isinstance(bits, int) or bits < 1 or bits > 32:
        raise UnsupportedBitsError(bits, "qrange supports 1..32 bits")


def qrange(bits: int) -> QRange:
    """Full signed two's-complement range for ``bits``-wide data."""
    _check_bits(bits)
    half = 1 << (bits - 1)
    return QRange(-half, half - 1)


def adjusted_qrange(bits: int) -> QRange:
    """Symmetric range ``[-(2**(b-1)-1), 2**(b-1)-1]`` (paper Sec. 3.3)."""
    _check_bits(bits)
    half = 1 << (bits - 1)
    return QRange(-(half - 1), half - 1)


def scheme_qrange(bits: int) -> QRange:
    """The value range the paper's ARM instruction schemes assume.

    7- and 8-bit use the adjusted symmetric range so that at least
    8 (resp. 2) SMLAL products can be chained; all lower widths keep the
    full range.
    """
    if bits in ADJUSTED_RANGE_BITS:
        return adjusted_qrange(bits)
    return qrange(bits)


def max_abs_product(bits: int, adjusted: bool | None = None) -> int:
    """Worst-case magnitude of a product of two ``bits``-wide values.

    ``adjusted=None`` follows the paper's per-bit-width choice
    (:func:`scheme_qrange`).
    """
    if adjusted is None:
        r = scheme_qrange(bits)
    elif adjusted:
        r = adjusted_qrange(bits)
    else:
        r = qrange(bits)
    return r.max_abs * r.max_abs
