"""Linear (uniform, symmetric) quantization.

The paper's kernels consume signed ``bits``-wide integers produced by a
linear quantizer (Sec. 5.1: "we apply the same quantization scheme" as the
cited QNN training papers, all of which use uniform quantization).  We
implement:

* per-tensor and per-channel symmetric quantization (zero point fixed at 0,
  which is what the signed-integer ARM/GPU kernels assume),
* exact integer *requantization*: rescaling an int32 accumulator back to a
  ``bits``-wide integer using a fixed-point multiplier, the way inference
  runtimes (gemmlowp, QNNPACK) do it on hardware without floats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError
from .ranges import QRange, scheme_qrange


def compute_scale(max_abs: float | np.ndarray, qrange: QRange) -> np.ndarray:
    """Scale such that ``max_abs`` maps to the edge of ``qrange``.

    Accepts a scalar (per-tensor) or an array (per-channel) of magnitudes.
    A zero magnitude yields scale 1.0 (the tensor is all zeros; any scale
    round-trips it exactly), and so does a denormal magnitude whose
    ``max_abs / edge`` underflows to 0.0 — the quantizer needs a strictly
    positive scale, and values that small clip to 0 under any scale.
    """
    max_abs = np.asarray(max_abs, dtype=np.float64)
    if np.any(max_abs < 0):
        raise QuantizationError("max_abs must be non-negative")
    edge = float(qrange.max_abs)
    if edge == 0:
        raise QuantizationError(f"degenerate quantization range {qrange}")
    scale = np.where(max_abs > 0, max_abs / edge, 1.0)
    return np.where(scale > 0, scale, 1.0)


def quantize_linear(
    x: np.ndarray,
    scale: float | np.ndarray,
    qrange: QRange,
    *,
    axis: int | None = None,
) -> np.ndarray:
    """Quantize float data to integers: ``clip(round(x / scale), qrange)``.

    ``axis`` selects the per-channel dimension when ``scale`` is an array.
    Returns int64 (caller narrows to a storage dtype).
    """
    x = np.asarray(x, dtype=np.float64)
    scale_arr = np.asarray(scale, dtype=np.float64)
    if np.any(scale_arr <= 0):
        raise QuantizationError("scale must be strictly positive")
    if scale_arr.ndim > 0 and axis is not None:
        shape = [1] * x.ndim
        shape[axis] = -1
        scale_arr = scale_arr.reshape(shape)
    elif scale_arr.ndim > 0 and scale_arr.size > 1:
        raise QuantizationError("per-channel scale requires axis")
    q = np.rint(x / scale_arr)
    return np.clip(q, qrange.qmin, qrange.qmax).astype(np.int64)


def dequantize_linear(
    q: np.ndarray,
    scale: float | np.ndarray,
    *,
    axis: int | None = None,
) -> np.ndarray:
    """Map integers back to floats: ``q * scale``."""
    q = np.asarray(q)
    scale_arr = np.asarray(scale, dtype=np.float64)
    if scale_arr.ndim > 0 and axis is not None:
        shape = [1] * q.ndim
        shape[axis] = -1
        scale_arr = scale_arr.reshape(shape)
    return q.astype(np.float64) * scale_arr


def _fixed_point_multiplier(real_multiplier: float) -> tuple[int, int]:
    """Decompose ``real_multiplier`` in (0, 1) as ``m * 2**-shift`` with
    ``m`` a 31-bit integer — the gemmlowp/QNNPACK requantization encoding.
    """
    if not (0.0 < real_multiplier < 1.0):
        raise QuantizationError(
            f"requantization multiplier must be in (0, 1), got {real_multiplier}"
        )
    shift = 0
    m = real_multiplier
    while m < 0.5:
        m *= 2.0
        shift += 1
    q = int(round(m * (1 << 31)))
    if q == (1 << 31):  # rounding pushed us to 1.0; renormalize
        q //= 2
        shift -= 1
    return q, shift + 31


def requantize(
    acc: np.ndarray,
    multiplier: float,
    out_range: QRange,
    *,
    use_fixed_point: bool = True,
) -> np.ndarray:
    """Rescale an int32 accumulator to a narrow integer output.

    ``multiplier`` is ``scale_in * scale_w / scale_out`` and must lie in
    (0, 1) — inference runtimes guarantee this by construction of the output
    scale.  With ``use_fixed_point`` the computation is the exact integer
    rounding-halfway-away-from-zero fixed-point product used on hardware;
    otherwise a float round (useful as a cross-check in tests).
    """
    acc = np.asarray(acc, dtype=np.int64)
    if use_fixed_point:
        m, shift = _fixed_point_multiplier(multiplier)
        prod = acc * np.int64(m)
        half = np.int64(1) << np.int64(shift - 1)
        # round half away from zero, matching ARMv8 SQRDMULH-based paths
        rounded = np.where(prod >= 0, (prod + half) >> shift, -((-prod + half) >> shift))
    else:
        rounded = np.rint(acc * multiplier).astype(np.int64)
    return np.clip(rounded, out_range.qmin, out_range.qmax)


def requantize_per_channel(
    acc: np.ndarray,
    multipliers: np.ndarray,
    out_range: QRange,
    *,
    axis: int = -1,
    use_fixed_point: bool = True,
) -> np.ndarray:
    """Per-output-channel requantization (per-channel weight scales).

    ``multipliers`` is a 1-D array over the ``axis`` dimension of ``acc``;
    each channel uses its own fixed-point multiplier exactly as
    :func:`requantize` does per-tensor.
    """
    acc = np.asarray(acc, dtype=np.int64)
    multipliers = np.asarray(multipliers, dtype=np.float64)
    if multipliers.ndim != 1:
        raise QuantizationError("per-channel multipliers must be 1-D")
    axis = axis % acc.ndim
    if multipliers.shape[0] != acc.shape[axis]:
        raise QuantizationError(
            f"{multipliers.shape[0]} multipliers for axis of size "
            f"{acc.shape[axis]}"
        )
    out = np.empty_like(acc)
    moved = np.moveaxis(acc, axis, 0)
    out_moved = np.moveaxis(out, axis, 0)
    for c, mult in enumerate(multipliers):
        out_moved[c] = requantize(
            moved[c], float(mult), out_range, use_fixed_point=use_fixed_point
        )
    return out


@dataclass(frozen=True)
class LinearQuantizer:
    """Symmetric linear quantizer bound to a bit width.

    Example
    -------
    >>> q = LinearQuantizer(bits=4)
    >>> import numpy as np
    >>> data = np.linspace(-1, 1, 5)
    >>> qt = q.quantize(data)
    >>> qt.bits
    4
    """

    bits: int
    per_channel_axis: int | None = None

    @property
    def qrange(self) -> QRange:
        return scheme_qrange(self.bits)

    def quantize(self, x: np.ndarray, max_abs: float | np.ndarray | None = None):
        from .qtensor import QTensor  # local import to avoid a cycle

        x = np.asarray(x, dtype=np.float64)
        if max_abs is None:
            if self.per_channel_axis is None:
                max_abs = float(np.max(np.abs(x))) if x.size else 0.0
            else:
                moved = np.moveaxis(x, self.per_channel_axis, 0)
                max_abs = np.max(np.abs(moved.reshape(moved.shape[0], -1)), axis=1)
        scale = compute_scale(max_abs, self.qrange)
        data = quantize_linear(x, scale, self.qrange, axis=self.per_channel_axis)
        return QTensor(
            data=data,
            scale=scale,
            bits=self.bits,
            channel_axis=self.per_channel_axis,
        )
