"""Quantization substrate: numeric ranges, linear quantizers, QTensor.

This implements the linear (uniform) quantization scheme the paper inherits
from DSQ/LSQ-style training work (Sec. 5.1): the kernels operate on signed
``bits``-wide integers with a floating-point scale per tensor (or per output
channel for weights), and all accuracy-critical arithmetic is exact int32.
"""

from .ranges import (
    QRange,
    qrange,
    adjusted_qrange,
    scheme_qrange,
    max_abs_product,
)
from .schemes import (
    LinearQuantizer,
    quantize_linear,
    dequantize_linear,
    requantize,
    requantize_per_channel,
    compute_scale,
)
from .qtensor import QTensor
from .calibrate import calibrate_minmax, calibrate_percentile
from .affine import (
    AffineParams,
    affine_quantize,
    affine_dequantize,
    choose_affine_params,
    conv2d_affine,
)

__all__ = [
    "QRange",
    "qrange",
    "adjusted_qrange",
    "scheme_qrange",
    "max_abs_product",
    "LinearQuantizer",
    "quantize_linear",
    "dequantize_linear",
    "requantize",
    "requantize_per_channel",
    "compute_scale",
    "QTensor",
    "calibrate_minmax",
    "calibrate_percentile",
    "AffineParams",
    "affine_quantize",
    "affine_dequantize",
    "choose_affine_params",
    "conv2d_affine",
]
