"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every reproducible artifact.
``reproduce <artifact> [--model M] [--batch B]``
    Regenerate one paper table/figure and print it.
``layers <model> [--backend B] [--bits N]``
    Print a model's unique conv layer table; with ``--backend`` each
    layer is also priced on that registered backend (arm | gpu | ref).
``chains``
    Print the Sec. 3.3 accumulation-chain table.
``kernel <scheme> <bits> <k>``
    Generate a micro-kernel, print its opcode histogram, cycle estimate
    and (with ``--listing``) the full instruction listing.
``bench [--smoke] [--model M] [--batch B] [--jobs N] ...``
    Time the Fig. 10/11 autotune sweep (serial baseline vs the pruned/
    parallel/cached engine, cold and warm), verify bit-identical results,
    and write ``BENCH_*.json`` (see :mod:`repro.perf.bench`).
``profile <target> [--trace out.json] [--metrics out.json]``
    Run one figure (or a whole model) under the :mod:`repro.obs` tracer
    and metrics registry; print a text summary and optionally write a
    Chrome/Perfetto trace and a metrics snapshot.
``report [--html out.html] [--backend arm,gpu]``
    Roofline analytics over a model: per-layer arithmetic intensity and
    %-of-roof per backend, the Fig. 1 CAL/LD ratio, the Sec. 3.3 chain
    overhead, and the bench-history tail — as text, or as a
    self-contained HTML dashboard with ``--html``.
``regress [--baseline SHA] [--no-wall] [--json] [--attribute]``
    Compare the newest ``bench --save`` ledger entry against a baseline:
    model cycles bit-identical, wall clock within a noise-aware median
    threshold.  Exits non-zero on regression (the CI gate).  ``--json``
    emits one machine-readable verdict object; ``--attribute`` runs the
    differential-profiling engine on failure and embeds the ranked
    attribution (``--no-collect`` keeps it byte-stable for CI).
``diff A B [--flamegraph out.svg] [--json] [--top N]``
    Differential profiling between two runs: each side is a trace JSON,
    collapsed-stack file, metrics snapshot, BENCH report, or a ledger
    selector (``-1``/``-2``, run-id / git-sha / fingerprint prefix).
    Prints ranked phase/span/frame/metric deltas + ledger changepoints;
    ``--flamegraph`` writes the red/blue differential flamegraph SVG.
``chaos [SCENARIO ...] [--list]``
    Run the :mod:`repro.resilience.chaos` scenarios (all, or the named
    subset): autotune under a seeded transient-fault plan must return
    bit-identical winners, the executor must degrade to the ``ref``
    backend loudly, injected crashes at every persistence site must
    leave zero torn files, and the serving layer must hold its SLO
    under chaos.  ``--list`` prints the scenario names; an unknown name
    exits 2 with the valid choices.  Exits non-zero when any invariant
    breaks.
``serve [--qps N] [--requests N] [--seed N] [--chaos] ...``
    Replay seeded open-loop traffic through the :mod:`repro.serve`
    simulator — SLO-aware admission control, priced dynamic batching,
    per-backend circuit breakers with brownout fallback — entirely on a
    virtual clock, and print (or ``--out``) the byte-stable summary.
    ``--chaos`` adds the canned transient-fault plan and a scripted
    primary-kill window (the CI gate scenario).
``flight [--run TARGET] [--dump OUT.json] [--last SECONDS]``
    Inspect the always-on flight recorder (:mod:`repro.obs.flight`) and
    export the last N seconds as a Chrome trace — after the fact, no
    tracer required up front.
``metrics-export [--run TARGET] [--out FILE] [--serve PORT]``
    Render the metrics registry in OpenMetrics text exposition (with
    span-id exemplars on histograms), self-validated by the strict
    in-repo parser; ``--serve`` exposes it on ``/metrics``.
``top [--run TARGET] [--interval S] [--iterations N]``
    Live terminal view over the metrics registry: gauges, counter
    rates, histogram tails, refreshed in place.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.report import Series, format_table


def _figure_registry():
    """argparse adapter over :func:`repro.figures.figure_registry`."""
    from .figures import figure_registry

    return {
        name: (lambda a, fn=fn: fn(model=a.model, batch=a.batch))
        for name, fn in figure_registry().items()
    }


def cmd_list(args: argparse.Namespace) -> int:
    print("reproducible artifacts:")
    for name in sorted(_figure_registry()):
        print(f"  {name}")
    print("  tab1  (via: python -m repro reproduce tab1)")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    if args.artifact == "tab1":
        import json

        from .figures import tab1_configurations

        print(json.dumps(tab1_configurations(), indent=2))
        return 0
    registry = _figure_registry()
    if args.artifact not in registry:
        choices = ", ".join([*sorted(registry), "tab1"])
        print(f"unknown artifact {args.artifact!r}; valid choices: {choices}",
              file=sys.stderr)
        return 2
    data = registry[args.artifact](args)
    series = list(data.series) + [Series(data.baseline_label, data.baseline_times)]
    print(f"== {data.figure} ==")
    print(format_table(list(data.labels), series))
    return 0


def cmd_layers(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .models import get_model_layers

    layers = get_model_layers(args.model, batch=args.batch)
    if args.backend is None:
        for spec in layers:
            print(spec.describe())
        return 0
    from .backends import get_backend

    try:
        be = get_backend(args.backend)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    be.prewarm([(spec, args.bits, None) for spec in layers])
    total = 0.0
    for spec in layers:
        price = be.price_conv(spec, args.bits)
        total += price.total_cycles
        print(f"{spec.describe()}  "
              f"[{be.name} {args.bits}-bit: {price.total_cycles:,.0f} cycles, "
              f"{price.milliseconds:.3f} ms]")
    print(f"total: {total:,.0f} cycles, {total / be.clock_hz * 1e3:.3f} ms "
          f"on {be.display_name} @ {be.clock_hz / 1e9:.3g} GHz")
    return 0


def cmd_chains(args: argparse.Namespace) -> int:
    from .arm.ratios import chain_table

    print("bits  scheme  chain : drain")
    for bits, chain in sorted(chain_table().items()):
        scheme = "MLA" if bits in (2, 3) else "SMLAL"
        print(f"{bits:>4}  {scheme:>6}  {chain} : 1")
    return 0


def cmd_kernel(args: argparse.Namespace) -> int:
    from .arm.cost_model import _generate

    kern = _generate(args.scheme, args.bits, args.k, True, None)
    print(f"{kern.name}: {kern.m_r}x{kern.n_r} tile over K={kern.k}")
    print("opcode histogram:")
    for op, count in sorted(kern.summary().items()):
        print(f"  {op:<16} {count}")
    perf = kern.cycles()
    print(f"pipeline estimate: {perf.cycles} cycles, IPC {perf.ipc:.2f}, "
          f"{kern.mac_lanes / perf.cycles:.2f} MACs/cycle")
    if args.listing:
        print("\nlisting:")
        for ins in kern.stream:
            print(f"  {ins.render()}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import DEFAULT_OUT_DIR, run_bench

    backends = (args.backend,) if args.backend in ("gpu", "arm") else ("gpu", "arm")
    if args.no_arm:
        backends = tuple(b for b in backends if b != "arm")
    try:
        run_bench(
            model=args.model,
            batch=args.batch,
            smoke=args.smoke,
            jobs=args.jobs,
            out_dir=args.out if args.out else DEFAULT_OUT_DIR,
            cache_dir=args.cache_dir,
            backends=backends,
            trace_path=args.trace,
            metrics_path=args.metrics,
            save=args.save,
            history_dir=args.history_dir,
            sample_interval_ms=args.profile_sample,
            flamegraph_path=args.flamegraph,
            stacks_path=args.stacks,
        )
    except AssertionError as exc:
        print(f"bench FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .obs.report import run_profile

    return run_profile(
        args.target,
        model=args.model,
        batch=args.batch,
        backend=args.backend,
        trace_path=args.trace,
        metrics_path=args.metrics,
        sample_interval_ms=args.profile_sample,
        flamegraph_path=args.flamegraph,
        stacks_path=args.stacks,
    )


def _run_workload(target: str, model: str, batch: int) -> int:
    """Run one profile-style target to populate telemetry; 0 on success."""
    from .obs.report import MODELS, resolve_target

    try:
        runner = resolve_target(target, model, batch)
    except KeyError:
        print(f"unknown target {target!r}; use fig7..fig17, tab1, or one of "
              f"{', '.join(MODELS)}", file=sys.stderr)
        return 2
    runner()
    return 0


def cmd_flight(args: argparse.Namespace) -> int:
    from .obs import flight as obs_flight

    if args.run:
        rc = _run_workload(args.run, args.model, args.batch)
        if rc:
            return rc
    rec = obs_flight.recorder()
    events = rec.events(last_s=args.last)
    spans = obs_flight.span_events(events)
    orphans = obs_flight.unresolved_parents(events)
    window = f" in the last {args.last:g} s" if args.last is not None else ""
    print(f"flight recorder: {'enabled' if obs_flight.enabled() else 'DISABLED'}"
          f", capacity {rec.capacity} events"
          f" ({rec.total_recorded} recorded, {rec.dropped} dropped)")
    print(f"{len(events)} events{window}: {len(spans)} spans, "
          f"{len(events) - len(spans)} instants, "
          f"{len(obs_flight.trace_ids(events))} traces, "
          f"{len(orphans)} unresolved parents")
    if args.dump:
        path = rec.write(args.dump, last_s=args.last)
        print(f"wrote flight trace {path}  "
              f"(open in chrome://tracing or Perfetto)")
    elif not args.run:
        print("hint: add --run TARGET to record a workload, "
              "--dump OUT.json to export")
    return 0


def cmd_metrics_export(args: argparse.Namespace) -> int:
    from .obs import export as obs_export

    if args.run:
        rc = _run_workload(args.run, args.model, args.batch)
        if rc:
            return rc
    if args.serve is not None:
        import threading

        ready = threading.Event()
        print(f"serving OpenMetrics on http://127.0.0.1:{args.serve}/metrics "
              f"(Ctrl-C to stop)")
        obs_export.serve(args.serve, ready=ready)
        return 0
    text = obs_export.render()
    # self-check: the renderer's output must round-trip the strict parser
    families = obs_export.validate(text)
    if args.out:
        import pathlib

        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(f"wrote {path}: {len(families)} metric families, "
              f"{obs_export.exemplar_count(families)} exemplars")
    else:
        sys.stdout.write(text)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from .obs import export as obs_export

    worker = None
    if args.run:
        import threading

        from .obs.report import MODELS, resolve_target

        try:
            runner = resolve_target(args.run, args.model, args.batch)
        except KeyError:
            print(f"unknown target {args.run!r}; use fig7..fig17, tab1, or "
                  f"one of {', '.join(MODELS)}", file=sys.stderr)
            return 2
        worker = threading.Thread(
            target=runner, name="repro-top-workload", daemon=True)
        worker.start()
    frames = obs_export.run_top(
        interval_s=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
        stop_when=(lambda: not worker.is_alive()) if worker else None,
    )
    return 0 if frames else 1


def cmd_report(args: argparse.Namespace) -> int:
    from .backends import available_backends
    from .errors import ReproError

    backends = tuple(b for b in args.backend.split(",") if b)
    known = available_backends()
    for name in backends:
        if name not in known:
            print(f"unknown backend {name!r}; registered: "
                  f"{', '.join(known)}", file=sys.stderr)
            return 2
    if args.html:
        import json as _json

        from .obs.htmlreport import write_report

        serve_summary = None
        if args.serve_summary:
            import pathlib

            try:
                serve_summary = _json.loads(
                    pathlib.Path(args.serve_summary).read_text(
                        encoding="utf-8"))
            except (OSError, ValueError) as exc:
                print(f"cannot read serve summary "
                      f"{args.serve_summary!r}: {exc}", file=sys.stderr)
                return 2
        sample = None
        diff_sample = None
        if args.sample_collapsed or args.diff_collapsed:
            import pathlib

            from .obs import sampler as obs_sampler

            if args.sample_collapsed:
                sample = obs_sampler.parse_collapsed(
                    pathlib.Path(args.sample_collapsed).read_text(
                        encoding="utf-8"))
            if args.diff_collapsed:
                diff_sample = tuple(
                    obs_sampler.parse_collapsed(
                        pathlib.Path(p).read_text(encoding="utf-8"))
                    for p in args.diff_collapsed)
        try:
            path = write_report(
                args.html, model=args.model, backends=backends,
                batch=args.batch, history_dir=args.history_dir,
                sample=sample, diff_sample=diff_sample,
                serve_summary=serve_summary,
            )
        except ReproError as exc:
            print(f"report FAILED: {exc}", file=sys.stderr)
            return 1
        print(f"wrote report  {path}")
        return 0
    from .obs import roofline as obs_roofline

    for name in backends:
        try:
            points = obs_roofline.model_roofline(
                args.model, name, batch=args.batch)
        except ReproError as exc:
            print(f"roofline [{name}] unavailable: {exc}", file=sys.stderr)
            continue
        print(f"== roofline [{name}] ({args.model}, batch {args.batch}) ==")
        for line in obs_roofline.roofline_table(points):
            print(line)
        for line in obs_roofline.ascii_roofline(points):
            print(line)
    print("== CAL/LD ratio (Fig. 1) ==")
    for line in obs_roofline.cal_ld_lines(
            obs_roofline.model_cal_ld(args.model, batch=args.batch)):
        print(line)
    print("== accumulation-chain overhead (Sec. 3.3) ==")
    for line in obs_roofline.chain_overhead_lines(
            obs_roofline.chain_overhead_table()):
        print(line)
    return 0


def cmd_regress(args: argparse.Namespace) -> int:
    from .obs.regress import (
        DEFAULT_WALL_TOLERANCE,
        DEFAULT_WALL_WINDOW,
        run_regress,
    )

    return run_regress(
        history_dir=args.history_dir,
        baseline=args.baseline,
        wall_window=(args.wall_window if args.wall_window is not None
                     else DEFAULT_WALL_WINDOW),
        wall_tolerance=(args.wall_tolerance if args.wall_tolerance is not None
                        else DEFAULT_WALL_TOLERANCE),
        check_wall=not args.no_wall,
        json_out=args.json,
        attribute=args.attribute,
        attribute_top=args.top,
        collect=not args.no_collect,
    )


def cmd_diff(args: argparse.Namespace) -> int:
    import pathlib

    from .obs import diff as obs_diff

    try:
        a = obs_diff.load_side(args.a, history_dir=args.history_dir)
        b = obs_diff.load_side(args.b, history_dir=args.history_dir)
    except (ValueError, OSError) as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    report = obs_diff.diff_sides(a, b)
    if a.kind == "ledger" and b.kind == "ledger" and b.entry is not None:
        from .obs.history import BenchLedger

        entries = BenchLedger(args.history_dir).entries()
        if entries:
            obs_diff.attach_ledger_changepoints(report, entries, b.entry)
    if args.flamegraph:
        if report.stacks_a is None or report.stacks_b is None:
            print("diff: --flamegraph needs collapsed stacks on both sides "
                  "(export them with `bench`/`profile` --profile-sample "
                  "--stacks OUT.txt)", file=sys.stderr)
            return 2
        svg = obs_diff.differential_flamegraph_svg(
            report.stacks_a, report.stacks_b,
            label_a=report.label_a, label_b=report.label_b)
        path = pathlib.Path(args.flamegraph)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(svg, encoding="utf-8")
        # stdout stays pure JSON under --json; the note goes to stderr
        print(f"wrote differential flamegraph {path}",
              file=sys.stderr if args.json else sys.stdout)
    if args.json:
        sys.stdout.write(report.to_json(top=args.top))
        return 0
    print(f"== diff: {report.label_a} [{report.kind_a}] -> "
          f"{report.label_b} [{report.kind_b}] ==")
    for line in report.table(top=args.top):
        print(line)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience.chaos import run_chaos, scenario_names

    known = scenario_names()
    if args.list:
        for name in known:
            print(name)
        return 0
    unknown = [n for n in args.scenario if n not in known]
    if unknown:
        print(f"unknown scenario {unknown[0]!r}; valid choices: "
              f"{', '.join(known)}", file=sys.stderr)
        return 2
    return run_chaos(names=args.scenario or None)


def cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from .errors import ReproError
    from .serve import ServeConfig, format_summary, run_harness, save_trace
    from .serve.workload import SHAPES, generate_trace

    if args.shape not in SHAPES:
        print(f"unknown shape {args.shape!r}; valid choices: "
              f"{', '.join(SHAPES)}", file=sys.stderr)
        return 2
    cfg = ServeConfig(
        model=args.model, bits=args.bits,
        backend=args.backend, fallback=args.fallback,
        qps=args.qps, requests=args.requests, seed=args.seed,
        shape=args.shape, slo_ms=args.slo_ms, lanes=args.lanes,
        max_batch=args.max_batch, queue_cap=args.queue_cap,
        hold_us=args.hold_us, retries=args.retries,
    )
    if args.save_trace:
        path = save_trace(args.save_trace, generate_trace(
            cfg.qps, cfg.requests, seed=cfg.seed, slo_us=cfg.slo_us,
            shape=cfg.shape))
        print(f"wrote trace {path}")
        return 0
    try:
        summary = run_harness(
            cfg, chaos=args.chaos, trace_file=args.trace_file, out=args.out)
    except ReproError as exc:
        print(f"serve FAILED: {exc}", file=sys.stderr)
        return 1
    if args.json:
        sys.stdout.write(
            _json.dumps(summary, sort_keys=True, separators=(",", ":"))
            + "\n")
    else:
        print(format_summary(summary))
    if args.out:
        print(f"wrote summary {args.out}",
              file=sys.stderr if args.json else sys.stdout)
    ok = bool(summary["invariants"]["conservation"])  # type: ignore[index]
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICPP'20 extremely-low-bit convolution paper",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show reproducible artifacts").set_defaults(
        fn=cmd_list)

    rp = sub.add_parser("reproduce", help="regenerate one table/figure")
    rp.add_argument("artifact", help="fig7..fig17 or tab1")
    rp.add_argument("--model", default="resnet50",
                    choices=["resnet50", "scr-resnet50", "densenet121"])
    rp.add_argument("--batch", type=int, default=1)
    rp.set_defaults(fn=cmd_reproduce)

    lp = sub.add_parser("layers", help="print a model's conv table")
    lp.add_argument("model",
                    choices=["resnet50", "scr-resnet50", "densenet121"])
    lp.add_argument("--batch", type=int, default=1)
    lp.add_argument("--backend", default=None, metavar="NAME",
                    help="also price each layer on a registered backend "
                         "(arm | gpu | ref)")
    lp.add_argument("--bits", type=int, default=8,
                    help="bit width for --backend pricing (default 8)")
    lp.set_defaults(fn=cmd_layers)

    sub.add_parser("chains", help="print the Sec. 3.3 chain table"
                   ).set_defaults(fn=cmd_chains)

    kp = sub.add_parser("kernel", help="inspect a generated micro-kernel")
    kp.add_argument("scheme",
                    choices=["smlal", "mla", "ncnn", "sdot", "popcount"])
    kp.add_argument("bits", type=int)
    kp.add_argument("k", type=int)
    kp.add_argument("--listing", action="store_true",
                    help="print the full instruction stream")
    kp.set_defaults(fn=cmd_kernel)

    bp = sub.add_parser(
        "bench", help="time the autotune sweep and write BENCH_*.json")
    bp.add_argument("--model", default="resnet50",
                    choices=["resnet50", "scr-resnet50", "densenet121"])
    bp.add_argument("--batch", type=int, default=1)
    bp.add_argument("--smoke", action="store_true",
                    help="3-layer sweep for CI; skips figure regeneration")
    bp.add_argument("--jobs", type=int, default=None,
                    help="parallel workers (default: REPRO_JOBS or cpu count)")
    bp.add_argument("--out", default=None,
                    help="output directory (default: benchmarks/out)")
    bp.add_argument("--cache-dir", default=None,
                    help="persistent cache dir (default: throwaway temp dir)")
    bp.add_argument("--backend", default="all",
                    choices=["all", "gpu", "arm"],
                    help="which backend sections to run (default: all)")
    bp.add_argument("--no-arm", action="store_true",
                    help="skip the ARM schedule-cache section "
                         "(same as --backend gpu)")
    bp.add_argument("--trace", default=None, metavar="OUT.json",
                    help="also record a Chrome/Perfetto trace of the run")
    bp.add_argument("--metrics", default=None, metavar="OUT.json",
                    help="also write the metrics snapshot standalone")
    bp.add_argument("--save", action="store_true",
                    help="append this run to the bench-history ledger "
                         "(benchmarks/history/ledger.jsonl)")
    bp.add_argument("--history-dir", default=None, metavar="DIR",
                    help="ledger directory for --save "
                         "(default: $REPRO_BENCH_DIR or benchmarks/history)")
    bp.add_argument("--profile-sample", nargs="?", const=5.0, default=None,
                    type=float, metavar="MS",
                    help="run the wall-clock stack sampler over the bench "
                         "(optional tick interval in ms, default 5)")
    bp.add_argument("--flamegraph", default=None, metavar="OUT.svg",
                    help="write the sampled stacks as a flamegraph SVG "
                         "(requires --profile-sample)")
    bp.add_argument("--stacks", default=None, metavar="OUT.txt",
                    help="write the sampled stacks as collapsed-stack text "
                         "for `repro diff` (requires --profile-sample)")
    bp.set_defaults(fn=cmd_bench)

    pp = sub.add_parser(
        "profile",
        help="run one artifact under the tracer/metrics and summarize")
    pp.add_argument("target",
                    help="fig7..fig17, tab1, or a model name "
                         "(resnet50, scr-resnet50, densenet121)")
    pp.add_argument("--model", default="resnet50",
                    choices=["resnet50", "scr-resnet50", "densenet121"],
                    help="model for figure targets that take one")
    pp.add_argument("--batch", type=int, default=1)
    pp.add_argument("--backend", default=None, metavar="NAME",
                    help="price model targets on one registered backend "
                         "(default: every registered backend)")
    pp.add_argument("--trace", default=None, metavar="OUT.json",
                    help="write a Chrome trace_event file (Perfetto-loadable)")
    pp.add_argument("--metrics", default=None, metavar="OUT.json",
                    help="write the metrics registry snapshot as JSON")
    pp.add_argument("--profile-sample", nargs="?", const=5.0, default=None,
                    type=float, metavar="MS",
                    help="run the wall-clock stack sampler over the run "
                         "(optional tick interval in ms, default 5)")
    pp.add_argument("--flamegraph", default=None, metavar="OUT.svg",
                    help="write the sampled stacks as a flamegraph SVG "
                         "(requires --profile-sample)")
    pp.add_argument("--stacks", default=None, metavar="OUT.txt",
                    help="write the sampled stacks as collapsed-stack text "
                         "for `repro diff` (requires --profile-sample)")
    pp.set_defaults(fn=cmd_profile)

    rr = sub.add_parser(
        "report",
        help="roofline analytics: text tables or an --html dashboard")
    rr.add_argument("--model", default="resnet50",
                    choices=["resnet50", "scr-resnet50", "densenet121"])
    rr.add_argument("--batch", type=int, default=1)
    rr.add_argument("--backend", default="arm,gpu", metavar="A,B",
                    help="comma-separated backends to chart (default: arm,gpu)")
    rr.add_argument("--html", default=None, metavar="OUT.html",
                    help="write the self-contained HTML dashboard here "
                         "instead of printing text tables")
    rr.add_argument("--history-dir", default=None, metavar="DIR",
                    help="bench ledger shown in the dashboard "
                         "(default: $REPRO_BENCH_DIR or benchmarks/history)")
    rr.add_argument("--sample-collapsed", default=None, metavar="FILE",
                    help="collapsed-stack file (from the sampler) to render "
                         "as a flamegraph panel in the --html dashboard")
    rr.add_argument("--diff-collapsed", default=None, nargs=2,
                    metavar=("A", "B"),
                    help="two collapsed-stack files to render as a red/blue "
                         "differential flamegraph in the --html dashboard")
    rr.add_argument("--serve-summary", default=None, metavar="FILE",
                    help="serve summary JSON (from `serve --out`) to render "
                         "as a serving-robustness card in the --html "
                         "dashboard")
    rr.set_defaults(fn=cmd_report)

    gp = sub.add_parser(
        "regress",
        help="compare the newest ledger run against a baseline; "
             "non-zero exit on regression")
    gp.add_argument("--history-dir", default=None, metavar="DIR",
                    help="ledger directory "
                         "(default: $REPRO_BENCH_DIR or benchmarks/history)")
    gp.add_argument("--baseline", default=None, metavar="RUN|SHA",
                    help="baseline selector: run_id or git sha prefix "
                         "(default: newest comparable run)")
    gp.add_argument("--wall-window", type=int, default=None,
                    help="prior runs in the wall-clock median window")
    gp.add_argument("--wall-tolerance", type=float, default=None,
                    help="flat wall-clock tolerance fraction (default 0.5)")
    gp.add_argument("--no-wall", action="store_true",
                    help="demote wall-clock overruns to advisory warnings")
    gp.add_argument("--json", action="store_true",
                    help="emit one machine-readable JSON verdict object "
                         "instead of the text table")
    gp.add_argument("--attribute", action="store_true",
                    help="on failure, run the repro.obs.diff attribution "
                         "(ranked phase/metric deltas + ledger changepoints)")
    gp.add_argument("--top", type=int, default=10, metavar="N",
                    help="rows per attribution section (default 10)")
    gp.add_argument("--no-collect", action="store_true",
                    help="skip the fresh trace+sample hot-spot collection "
                         "(keeps --attribute output deterministic; CI does)")
    gp.set_defaults(fn=cmd_regress)

    dp = sub.add_parser(
        "diff",
        help="differential profiling between two runs: ranked attribution "
             "+ red/blue differential flamegraph")
    dp.add_argument("a", metavar="A",
                    help="first run: trace/BENCH/metrics JSON, collapsed-"
                         "stack file, or a ledger selector (-2, run_id / "
                         "git sha / fingerprint prefix)")
    dp.add_argument("b", metavar="B",
                    help="second run (same forms; -1 is the newest entry)")
    dp.add_argument("--history-dir", default=None, metavar="DIR",
                    help="ledger directory for selector sides "
                         "(default: $REPRO_BENCH_DIR or benchmarks/history)")
    dp.add_argument("--flamegraph", default=None, metavar="OUT.svg",
                    help="write the red/blue differential flamegraph "
                         "(needs collapsed stacks on both sides)")
    dp.add_argument("--json", action="store_true",
                    help="emit the byte-stable JSON report on stdout")
    dp.add_argument("--top", type=int, default=10, metavar="N",
                    help="rows per ranked section (default 10)")
    dp.set_defaults(fn=cmd_diff)

    cp = sub.add_parser(
        "chaos",
        help="run the resilience chaos scenarios; non-zero exit on any "
             "broken invariant")
    cp.add_argument("scenario", nargs="*", metavar="SCENARIO",
                    help="scenario name(s) to run (default: all; "
                         "see --list)")
    cp.add_argument("--list", action="store_true",
                    help="print the scenario names and exit")
    cp.set_defaults(fn=cmd_chaos)

    sv = sub.add_parser(
        "serve",
        help="replay open-loop traffic through the SLO-guarded serving "
             "simulator (admission control, batching, circuit breakers)")
    sv.add_argument("--model", default="resnet50",
                    choices=["resnet50", "scr-resnet50", "densenet121"])
    sv.add_argument("--bits", type=int, default=4,
                    help="quantization bit width (default 4)")
    sv.add_argument("--backend", default="gpu",
                    help="primary serving backend (default gpu)")
    sv.add_argument("--fallback", default="ref",
                    help="brownout fallback backend (default ref)")
    sv.add_argument("--qps", type=float, default=2000.0,
                    help="offered load, requests/second (default 2000)")
    sv.add_argument("--requests", type=int, default=10_000,
                    help="trace length (default 10000)")
    sv.add_argument("--seed", type=int, default=0,
                    help="arrival + chaos seed (default 0)")
    sv.add_argument("--shape", default="steady",
                    help="arrival shape: steady | burst | ramp")
    sv.add_argument("--slo-ms", type=float, default=50.0,
                    help="per-request latency SLO in ms (default 50)")
    sv.add_argument("--lanes", type=int, default=2,
                    help="parallel execution lanes (default 2)")
    sv.add_argument("--max-batch", type=int, default=16,
                    help="dynamic batcher cap (default 16)")
    sv.add_argument("--queue-cap", type=int, default=256,
                    help="bounded queue depth (default 256)")
    sv.add_argument("--hold-us", type=float, default=500.0,
                    help="max batch-fill hold after the head arrives "
                         "(default 500us)")
    sv.add_argument("--retries", type=int, default=2,
                    help="per-batch dispatch retries (default 2)")
    sv.add_argument("--chaos", action="store_true",
                    help="inject the canned transient-fault plan plus a "
                         "scripted primary-backend kill window")
    sv.add_argument("--trace-file", default=None, metavar="IN.jsonl",
                    help="replay this saved arrival trace instead of "
                         "generating one")
    sv.add_argument("--save-trace", default=None, metavar="OUT.jsonl",
                    help="generate the arrival trace, write it, and exit")
    sv.add_argument("--out", default=None, metavar="OUT.json",
                    help="write the byte-stable summary JSON here")
    sv.add_argument("--json", action="store_true",
                    help="print the summary as canonical JSON on stdout")
    sv.set_defaults(fn=cmd_serve)

    fl = sub.add_parser(
        "flight",
        help="inspect the always-on flight recorder; --dump exports the "
             "last N seconds as a Chrome trace")
    fl.add_argument("--run", default=None, metavar="TARGET",
                    help="record a workload first: fig7..fig17, tab1, or a "
                         "model name")
    fl.add_argument("--model", default="resnet50",
                    choices=["resnet50", "scr-resnet50", "densenet121"],
                    help="model for figure targets that take one")
    fl.add_argument("--batch", type=int, default=1)
    fl.add_argument("--dump", default=None, metavar="OUT.json",
                    help="write the recorded window as a Chrome trace_event "
                         "file (Perfetto-loadable)")
    fl.add_argument("--last", type=float, default=None, metavar="SECONDS",
                    help="restrict to events from the last N seconds "
                         "(default: the whole ring)")
    fl.set_defaults(fn=cmd_flight)

    me = sub.add_parser(
        "metrics-export",
        help="render the metrics registry as OpenMetrics text "
             "(with histogram exemplars)")
    me.add_argument("--run", default=None, metavar="TARGET",
                    help="run a workload first: fig7..fig17, tab1, or a "
                         "model name")
    me.add_argument("--model", default="resnet50",
                    choices=["resnet50", "scr-resnet50", "densenet121"],
                    help="model for figure targets that take one")
    me.add_argument("--batch", type=int, default=1)
    me.add_argument("--out", default=None, metavar="FILE",
                    help="write the exposition here instead of stdout")
    me.add_argument("--serve", type=int, default=None, metavar="PORT",
                    help="serve /metrics on 127.0.0.1:PORT until Ctrl-C")
    me.set_defaults(fn=cmd_metrics_export)

    tp = sub.add_parser(
        "top",
        help="live terminal view over the metrics registry")
    tp.add_argument("--run", default=None, metavar="TARGET",
                    help="run a workload on a background thread while "
                         "watching: fig7..fig17, tab1, or a model name")
    tp.add_argument("--model", default="resnet50",
                    choices=["resnet50", "scr-resnet50", "densenet121"],
                    help="model for figure targets that take one")
    tp.add_argument("--batch", type=int, default=1)
    tp.add_argument("--interval", type=float, default=1.0, metavar="S",
                    help="refresh interval in seconds (default 1.0)")
    tp.add_argument("--iterations", type=int, default=None, metavar="N",
                    help="stop after N frames (default: until Ctrl-C or "
                         "the --run workload finishes)")
    tp.add_argument("--no-clear", action="store_true",
                    help="append frames instead of redrawing in place")
    tp.set_defaults(fn=cmd_top)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `python -m repro ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
