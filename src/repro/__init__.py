"""repro — reproduction of "Extremely Low-bit Convolution Optimization for
Quantized Neural Network on Modern Computer Architectures" (ICPP 2020).

Layout (see DESIGN.md for the full inventory):

* :mod:`repro.quant` — linear quantization, ranges, QTensor;
* :mod:`repro.conv` — exact convolution algorithms (direct / explicit GEMM
  / integer winograd / bit-serial popcount);
* :mod:`repro.gemm` — the re-designed GEMM and its Eq. 1-4 analysis;
* :mod:`repro.arm` — simulated ARMv8.1: NEON-subset functional simulator,
  in-order dual-issue cost model, the paper's kernel generators (SMLAL and
  MLA schemes), ncnn-like and TVM-popcount baselines, winograd path;
* :mod:`repro.gpu` — simulated Turing: exact mma/dp4a, implicit-precomp
  GEMM, tiling + autotuner, memory analyzers, fusion, cuDNN/TensorRT
  baselines;
* :mod:`repro.models` — ResNet-50 / SCR-ResNet-50 / DenseNet-121 tables;
* :mod:`repro.runtime` — QNN pipeline IR, fusion passes, executors;
* :mod:`repro.analysis` — space-overhead accounting and report formatting.

Quick start::

    import numpy as np
    from repro import ConvSpec, LinearQuantizer, conv2d

    spec = ConvSpec("demo", in_channels=8, out_channels=16,
                    height=16, width=16, kernel=(3, 3), padding=(1, 1))
    q = LinearQuantizer(bits=4)
    x = q.quantize(np.random.randn(*spec.input_shape()))
    w = q.quantize(np.random.randn(*spec.weight_shape()))
    y = conv2d(spec, x.data, w.data, algorithm="winograd")
"""

from .types import ConvSpec, GemmShape, Layout
from .errors import (
    ReproError,
    QuantizationError,
    UnsupportedBitsError,
    ShapeError,
    SimulationError,
    OverflowDetected,
    TilingError,
    AutotuneError,
)
from .quant import LinearQuantizer, QTensor, qrange, scheme_qrange
from .conv import conv2d, conv2d_ref, conv2d_gemm, conv2d_winograd, conv2d_bitserial

__version__ = "1.0.0"

__all__ = [
    "ConvSpec",
    "GemmShape",
    "Layout",
    "ReproError",
    "QuantizationError",
    "UnsupportedBitsError",
    "ShapeError",
    "SimulationError",
    "OverflowDetected",
    "TilingError",
    "AutotuneError",
    "LinearQuantizer",
    "QTensor",
    "qrange",
    "scheme_qrange",
    "conv2d",
    "conv2d_ref",
    "conv2d_gemm",
    "conv2d_winograd",
    "conv2d_bitserial",
    "__version__",
]
