"""Per-batch service-time tables priced from the backends' cycle models.

Everything the serving layer decides — admission, shedding, batch
sizing, early batch close, brownout degradation — is priced against the
*same* :meth:`Backend.price_conv` cycle curves the rest of the repo
reproduces from the paper, summed over the model's unique conv layers at
each batch size.  That is the point of the exercise: the batcher's
"optimal batch" is whatever batch the measured (simulated) Fig. 10
batch-efficiency curve says amortizes best, not a hand-tuned constant.

A :class:`CostTable` is immutable once built: ``service_us[b-1]`` is the
full-model service time for a batch of ``b`` images, plus a fixed
``overhead_us`` per dispatch (launch/queue overhead the per-conv model
does not include).  Helper views:

* :meth:`service` — total time to run one batch of ``b``;
* :meth:`per_image` — amortized per-image cost at batch ``b``, the
  quantity batching exists to minimize;
* :meth:`best_batch` — the batch size (<= a cap) with the lowest
  per-image cost, i.e. where the efficiency curve bottoms out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..backends import get_backend
from ..errors import ReproError
from ..models import get_model_layers
from ..obs import log as obs_log


@dataclass(frozen=True)
class CostTable:
    """Priced service time of one (backend, model, bits) per batch size."""

    backend: str
    model: str
    bits: int
    #: full-model service microseconds, indexed ``[batch-1]``
    service_us: Tuple[float, ...]
    #: fixed per-dispatch overhead added to every batch
    overhead_us: float = 0.0

    @property
    def max_batch(self) -> int:
        return len(self.service_us)

    def service(self, batch: int) -> float:
        """Microseconds to serve one batch of ``batch`` images."""
        if not 1 <= batch <= self.max_batch:
            raise ReproError(
                f"batch {batch} outside table range 1..{self.max_batch}")
        return self.service_us[batch - 1] + self.overhead_us

    def per_image(self, batch: int) -> float:
        return self.service(batch) / batch

    def best_batch(self, cap: int | None = None) -> int:
        """Batch size with the lowest per-image cost (ties: smallest)."""
        hi = self.max_batch if cap is None else max(1, min(cap, self.max_batch))
        return min(range(1, hi + 1), key=lambda b: (self.per_image(b), b))

    @classmethod
    def build(
        cls,
        backend: str,
        model: str = "resnet50",
        *,
        bits: int = 4,
        max_batch: int = 16,
        overhead_us: float = 0.0,
    ) -> "CostTable":
        """Price the full model at every batch size ``1..max_batch``.

        Prewarms the backend's memo caches across all (spec, batch)
        combinations first (parallel, best-effort), then sums the serial
        re-read — the same warm-then-read pattern the bench harness uses,
        so building a 16-entry gpu table costs well under a second.
        """
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        be = get_backend(backend)
        layers = get_model_layers(model, batch=1)
        work = [
            (spec.with_batch(b), bits, None)
            for b in range(1, max_batch + 1)
            for spec in layers
        ]
        be.prewarm(work)
        service = []
        for b in range(1, max_batch + 1):
            total_s = sum(
                be.price_conv(spec.with_batch(b), bits).seconds
                for spec in layers)
            service.append(total_s * 1e6)
        table = cls(
            backend=backend, model=model, bits=bits,
            service_us=tuple(service), overhead_us=overhead_us)
        obs_log.info(
            "cost_table_built", logger="repro.serve.cost",
            backend=backend, model=model, bits=bits, max_batch=max_batch,
            b1_us=round(service[0], 2),
            per_image_best_us=round(table.per_image(table.best_batch()), 2),
            best_batch=table.best_batch(),
        )
        return table
