"""Open-loop workload generation and trace persistence.

The load generator is *open-loop* (arrivals do not wait for responses):
that is the regime where overload actually happens and where admission
control earns its keep — a closed-loop generator self-throttles and can
never drive the queue past its own concurrency.  Arrivals are a Poisson
process (``Random(seed).expovariate``) whose instantaneous rate is
modulated by a named *shape* over the nominal horizon ``requests/qps``:

``steady``
    Constant rate ``qps``.
``burst``
    Constant rate with a mid-run spike: between 45% and 60% of the
    horizon the rate is multiplied by ``burst_factor`` (default 3x) —
    the overload window the shed/SLO gates in CI watch.
``ramp``
    Linear ramp from 0.2x to 1.8x of ``qps`` — same mean rate, reveals
    where along the ramp admission starts shedding.

Every request carries the same relative SLO; its absolute deadline is
``arrival + slo``.  Traces are plain JSONL so a run can be replayed from
file (``--trace-file``) bit-identically, or a generated trace saved for
later comparison.
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import dataclass
from typing import Iterable, List

from ..errors import ReproError

SHAPES = ("steady", "burst", "ramp")

#: burst shape: rate multiplier inside [BURST_START, BURST_END) x horizon
BURST_FACTOR = 3.0
BURST_START = 0.45
BURST_END = 0.60
RAMP_LO = 0.2
RAMP_HI = 1.8


@dataclass(frozen=True)
class Request:
    """One inference request on the virtual timeline."""

    rid: int
    arrival_us: float
    slo_us: float

    @property
    def deadline_us(self) -> float:
        return self.arrival_us + self.slo_us


def _rate_factor(shape: str, frac: float) -> float:
    """Instantaneous rate multiplier at fraction ``frac`` of the horizon."""
    if shape == "steady":
        return 1.0
    if shape == "burst":
        return BURST_FACTOR if BURST_START <= frac < BURST_END else 1.0
    if shape == "ramp":
        return RAMP_LO + (RAMP_HI - RAMP_LO) * min(1.0, max(0.0, frac))
    raise ReproError(f"unknown workload shape {shape!r} (choose from {SHAPES})")


def generate_trace(
    qps: float,
    requests: int,
    *,
    seed: int = 0,
    slo_us: float = 50_000.0,
    shape: str = "steady",
) -> List[Request]:
    """A seeded open-loop arrival trace of exactly ``requests`` requests.

    Thinning-free construction: each inter-arrival gap is drawn at the
    *local* rate ``qps * factor(t/horizon)``, so the shape modulates
    density directly and the draw sequence — hence the whole trace — is a
    pure function of ``(qps, requests, seed, slo_us, shape)``.
    """
    if qps <= 0:
        raise ReproError(f"qps must be > 0, got {qps}")
    if requests < 0:
        raise ReproError(f"requests must be >= 0, got {requests}")
    _rate_factor(shape, 0.0)  # validate the shape name up front
    rng = random.Random(seed)
    horizon_us = requests / qps * 1e6
    out: List[Request] = []
    t_us = 0.0
    for rid in range(requests):
        frac = t_us / horizon_us if horizon_us > 0 else 0.0
        rate_per_us = qps * _rate_factor(shape, frac) / 1e6
        t_us += rng.expovariate(rate_per_us)
        out.append(Request(rid=rid, arrival_us=t_us, slo_us=slo_us))
    return out


def save_trace(path: "str | pathlib.Path", trace: Iterable[Request]) -> pathlib.Path:
    """Write a trace as JSONL (one request per line, sorted keys)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for req in trace:
            fh.write(json.dumps(
                {"rid": req.rid, "arrival_us": req.arrival_us,
                 "slo_us": req.slo_us},
                sort_keys=True) + "\n")
    return path


def load_trace(path: "str | pathlib.Path") -> List[Request]:
    """Read a JSONL trace back; validates ordering and field presence."""
    path = pathlib.Path(path)
    out: List[Request] = []
    last_arrival = float("-inf")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                    req = Request(
                        rid=int(row["rid"]),
                        arrival_us=float(row["arrival_us"]),
                        slo_us=float(row["slo_us"]),
                    )
                except (ValueError, KeyError, TypeError) as exc:
                    raise ReproError(
                        f"{path}:{lineno}: bad trace record: {exc}") from exc
                if req.arrival_us < last_arrival:
                    raise ReproError(
                        f"{path}:{lineno}: arrivals not sorted "
                        f"({req.arrival_us} after {last_arrival})")
                last_arrival = req.arrival_us
                out.append(req)
    except OSError as exc:
        raise ReproError(f"cannot read trace {path}: {exc}") from exc
    return out
