"""SLO-guarded inference serving over the priced backends.

The repo's cost models price a convolution; this package prices a
*service*: a simulated serving layer that takes open-loop traffic
against the quantized-network backends and keeps its latency SLO under
overload and faults, using the same cycle curves the paper's figures are
built from.

* :mod:`.clock`    — the virtual clock everything runs on
* :mod:`.workload` — seeded open-loop traces (steady/burst/ramp) + JSONL
* :mod:`.cost`     — per-batch service-time tables from ``price_conv``
* :mod:`.server`   — the discrete-event simulator: admission control,
  dynamic batching, circuit breaking, brownout fallback
* :mod:`.harness`  — the ``python -m repro serve`` entry: chaos plan,
  kill window, byte-stable summary JSON

Everything is deterministic by construction: virtual time, seeded
arrivals, seeded faults — two identical invocations produce
byte-identical summaries, which is what lets CI gate on a hash.
"""

from .clock import ClockError, VirtualClock
from .cost import CostTable
from .harness import chaos_spec, format_summary, run_harness, summary_digest
from .server import BackendDown, ServeConfig, ServeSim, run_serve
from .workload import Request, generate_trace, load_trace, save_trace

__all__ = [
    "BackendDown",
    "ClockError",
    "CostTable",
    "Request",
    "ServeConfig",
    "ServeSim",
    "VirtualClock",
    "chaos_spec",
    "format_summary",
    "generate_trace",
    "load_trace",
    "run_harness",
    "run_serve",
    "save_trace",
    "summary_digest",
]
