"""The serving simulator: admission control, dynamic batching, breakers.

One single-threaded discrete-event loop on a :class:`~.clock.VirtualClock`
drives the whole serving stack — which is what makes 50k-request chaos
replays fast (no real sleeping) and bit-reproducible (no scheduler in
the loop).  The moving parts, and where each decision's numbers come
from:

**Admission control** (reject-on-arrival).  Every arrival is priced
against the *active* cost table — the primary backend's while its
breaker is closed, the fallback's while it is open (brownout pricing:
during degradation the front door must tell the truth about degraded
service times).  The admission estimate is

    ``est_finish = now + (busy + queued_work) / lanes + service(1)``

where ``busy`` sums the remaining busy time of all lanes and
``queued_work`` prices the queue at the table's best amortized rate.  A
request whose estimate misses its deadline — or that finds the bounded
queue full — is shed *now*, costing microseconds, instead of timing out
in the queue, costing its full SLO.

**Dynamic batching.**  An idle lane batches up to the size the priced
batch-efficiency curve says amortizes best (:meth:`CostTable.best_batch`,
the simulated Fig. 10 curve), clamped to what the queue head's deadline
can still afford (``now + service(b) <= head deadline``).  A short queue
holds for ``hold_us`` after the head arrived hoping to fill the batch,
but never past the point where waiting would cost the head its SLO.

**Circuit breaking and brownout.**  Primary dispatch runs under
:func:`call_with_policy` — retries, backoff and deadline propagation all
on the *lane's* forked clock, so a retried batch pays its detection and
backoff time in virtual microseconds.  A permanently-failed batch trips
the per-backend :class:`CircuitBreaker` and is served late on the
fallback (brownout: admitted requests are never dropped).  While open,
all traffic browns out to the fallback table; after ``breaker_open_ms``
one probe batch re-tries the primary and either closes the breaker or
re-arms it.

**Chaos.**  Fault injection fires at site ``serve.backend.<primary>``
keyed by batch sequence number, so a fault plan targets primary
dispatches without touching the fallback path; a scripted kill window
(``kill_start_us..kill_end_us``) makes every primary attempt fail, which
is what forces the breaker open in the CI scenario.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs import flight as obs_flight
from ..obs import metrics as obs_metrics
from ..resilience import faults
from ..resilience.breaker import CLOSED, CircuitBreaker
from ..resilience.policy import ExecPolicy, PermanentFailure, call_with_policy
from .clock import VirtualClock
from .cost import CostTable
from .workload import Request, generate_trace

SUMMARY_SCHEMA = "repro.serve.summary/v1"


class BackendDown(ReproError):
    """The scripted kill window: the primary backend is hard-down."""


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of one serving run (echoed into the summary)."""

    model: str = "resnet50"
    bits: int = 4
    backend: str = "gpu"
    fallback: str = "ref"
    qps: float = 2000.0
    requests: int = 10_000
    seed: int = 0
    shape: str = "steady"
    slo_ms: float = 50.0
    lanes: int = 2
    max_batch: int = 16
    queue_cap: int = 256
    hold_us: float = 500.0
    dispatch_overhead_us: float = 5.0
    retries: int = 2
    backoff_ms: float = 1.0
    fault_detect_us: float = 200.0
    breaker_threshold: int = 3
    breaker_open_ms: float = 200.0
    #: scripted primary-kill window on the virtual timeline (None = no kill)
    kill_start_us: Optional[float] = None
    kill_end_us: Optional[float] = None

    @property
    def slo_us(self) -> float:
        return self.slo_ms * 1e3

    def echo(self) -> Dict[str, object]:
        """JSON-stable config echo for the summary."""
        return {
            "model": self.model, "bits": self.bits,
            "backend": self.backend, "fallback": self.fallback,
            "qps": self.qps, "requests": self.requests, "seed": self.seed,
            "shape": self.shape, "slo_ms": self.slo_ms,
            "lanes": self.lanes, "max_batch": self.max_batch,
            "queue_cap": self.queue_cap, "hold_us": self.hold_us,
            "dispatch_overhead_us": self.dispatch_overhead_us,
            "retries": self.retries, "backoff_ms": self.backoff_ms,
            "fault_detect_us": self.fault_detect_us,
            "breaker_threshold": self.breaker_threshold,
            "breaker_open_ms": self.breaker_open_ms,
            "kill_start_us": self.kill_start_us,
            "kill_end_us": self.kill_end_us,
        }


@dataclass
class _Lane:
    lane_id: int
    busy_until_us: float = 0.0
    busy: bool = False


@dataclass
class _Stats:
    offered: int = 0
    admitted: int = 0
    shed_deadline: int = 0
    shed_queue_full: int = 0
    completed: int = 0
    expired: int = 0
    slo_met: int = 0
    slo_missed: int = 0
    batches: int = 0
    brownout_batches: int = 0
    probe_batches: int = 0
    queue_peak: int = 0
    batch_hist: Dict[int, int] = field(default_factory=dict)
    latencies_us: List[float] = field(default_factory=list)


def _percentile(sorted_vals: List[float], q: float) -> float:
    """Exact nearest-rank percentile of a pre-sorted list."""
    if not sorted_vals:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_vals)))
    return sorted_vals[rank - 1]


class ServeSim:
    """One serving run.  Build, :meth:`run`, read the summary."""

    def __init__(
        self,
        config: ServeConfig,
        *,
        primary_table: CostTable,
        fallback_table: CostTable,
        trace: "List[Request] | None" = None,
    ) -> None:
        self.cfg = config
        self.primary = primary_table
        self.fallback = fallback_table
        self.trace = trace if trace is not None else generate_trace(
            config.qps, config.requests, seed=config.seed,
            slo_us=config.slo_us, shape=config.shape)
        self.clock = VirtualClock()
        self.breaker = CircuitBreaker(
            config.backend,
            failure_threshold=config.breaker_threshold,
            open_s=config.breaker_open_ms / 1e3,
            now=self.clock.now_s)
        self.queue: Deque[Request] = deque()
        self.lanes = [_Lane(i) for i in range(max(1, config.lanes))]
        self.stats = _Stats()
        self._events: List[Tuple[float, int, int, object]] = []
        self._seq = 0
        self._batch_seq = 0
        self._hold_token = 0
        self._hold_pending = False
        self._policy = ExecPolicy(
            retries=max(0, config.retries),
            timeout_s=None,
            backoff_s=max(0.0, config.backoff_ms) / 1e3)
        self._root_ctx = obs_flight.new_trace()

    # -- event plumbing ------------------------------------------------------

    _ARRIVE, _FREE, _HOLD = 0, 1, 2

    def _push(self, t_us: float, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._events, (t_us, self._seq, kind, payload))

    # -- pricing views -------------------------------------------------------

    def _active_table(self) -> CostTable:
        """The table admission and batching price against.

        Fallback pricing applies not only while the breaker is open but
        also while it is *suspect* (failures accumulating toward the
        trip): requests admitted in that window at healthy-primary
        prices are exactly the ones that expire in the queue when the
        trip lands, so the front door turns pessimistic first.
        """
        healthy = (self.breaker.state() == CLOSED
                   and not self.breaker.suspect())
        return self.primary if healthy else self.fallback

    def _busy_us(self, now: float) -> float:
        return sum(max(0.0, ln.busy_until_us - now)
                   for ln in self.lanes if ln.busy)

    def _estimate_finish_us(self, now: float, table: CostTable) -> float:
        queued_work = len(self.queue) * table.per_image(
            table.best_batch(self.cfg.max_batch))
        backlog = (self._busy_us(now) + queued_work) / len(self.lanes)
        return now + backlog + table.service(1)

    # -- admission -----------------------------------------------------------

    def _admit(self, req: Request, now: float) -> None:
        self.stats.offered += 1
        if len(self.queue) >= self.cfg.queue_cap:
            self._shed(req, "queue_full")
            return
        table = self._active_table()
        if self._estimate_finish_us(now, table) > req.deadline_us:
            self._shed(req, "deadline")
            return
        self.stats.admitted += 1
        self.queue.append(req)
        self.stats.queue_peak = max(self.stats.queue_peak, len(self.queue))
        self._plan(now)

    def _shed(self, req: Request, reason: str) -> None:
        if reason == "deadline":
            self.stats.shed_deadline += 1
        else:
            self.stats.shed_queue_full += 1
        obs_metrics.counter("serve_shed", reason=reason).inc()

    # -- batching ------------------------------------------------------------

    def _feasible_batch(self, now: float, table: CostTable,
                        cap: int) -> int:
        """Largest batch <= cap whose service still makes the head's
        deadline (arrivals are sorted and SLOs uniform, so the head's
        deadline is the batch's earliest).  0 when even batch 1 misses."""
        head = self.queue[0]
        best = 0
        for b in range(1, min(cap, len(self.queue)) + 1):
            if now + table.service(b) <= head.deadline_us:
                best = b
            else:
                break
        return best

    def _plan(self, now: float) -> None:
        """Dispatch work onto idle lanes, or arm the hold timer."""
        while self.queue:
            lane = next((ln for ln in self.lanes if not ln.busy), None)
            if lane is None:
                return
            # requests whose deadline passed while queued are hopeless;
            # complete them as 'expired' rather than wasting a dispatch
            while self.queue and self.queue[0].deadline_us <= now:
                req = self.queue.popleft()
                self.stats.expired += 1
                obs_metrics.counter("serve_expired").inc()
            if not self.queue:
                return
            table = self._active_table()
            target = table.best_batch(self.cfg.max_batch)
            feasible = self._feasible_batch(now, table, self.cfg.max_batch)
            head = self.queue[0]
            if len(self.queue) >= target:
                self._dispatch(lane, max(1, min(feasible or 1, target)), now)
                continue
            # queue is short of the optimal batch: hold for stragglers,
            # but never past the instant waiting costs the head its SLO
            t_close = min(
                head.arrival_us + self.cfg.hold_us,
                head.deadline_us - table.service(1))
            if now >= t_close:
                self._dispatch(
                    lane, max(1, min(feasible or 1, target, len(self.queue))),
                    now)
                continue
            if not self._hold_pending:
                self._hold_pending = True
                self._hold_token += 1
                self._push(t_close, self._HOLD, self._hold_token)
            return

    def _on_hold(self, now: float, token: int) -> None:
        if token != self._hold_token:
            return  # a dispatch already consumed this hold
        self._hold_pending = False
        self._plan(now)

    # -- dispatch / execution ------------------------------------------------

    def _kill_active(self, at_us: float) -> bool:
        return (self.cfg.kill_start_us is not None
                and self.cfg.kill_end_us is not None
                and self.cfg.kill_start_us <= at_us < self.cfg.kill_end_us)

    def _dispatch(self, lane: _Lane, batch_size: int, now: float) -> None:
        batch = [self.queue.popleft() for _ in range(batch_size)]
        self._batch_seq += 1
        self._hold_token += 1  # invalidate any pending hold for the old head
        self._hold_pending = False
        end_us, served_on, kind = self._execute(batch, now)
        lane.busy = True
        lane.busy_until_us = end_us
        self._push(end_us, self._FREE,
                   (lane.lane_id, tuple(batch), now, served_on, kind))

    def _execute(self, batch: List[Request],
                 now: float) -> Tuple[float, str, str]:
        """Run one batch on a forked lane clock; returns
        ``(end_us, served_backend, kind)`` with kind in
        ``normal|brownout|probe|probe_failed``."""
        cfg = self.cfg
        lane_clock = self.clock.fork()
        b = len(batch)
        state = self.breaker.acquire(lane_clock.now_s())
        batch_key = f"b{self._batch_seq}"
        self.stats.batches += 1
        self.stats.batch_hist[b] = self.stats.batch_hist.get(b, 0) + 1
        obs_metrics.histogram("serve_batch_size").observe(b)

        if state == "open":
            # brownout: the breaker says the primary is down, serve on
            # the fallback at its (honest, slower) price
            lane_clock.sleep_s(self.fallback.service(b) / 1e6)
            self.stats.brownout_batches += 1
            obs_metrics.counter(
                "serve_batches", path="brownout").inc()
            return lane_clock.now_us, self.fallback.backend, "brownout"

        if state == "probe":
            self.stats.probe_batches += 1

        site = f"serve.backend.{cfg.backend}"
        deadline_s = min(r.deadline_us for r in batch) / 1e6

        def attempt() -> None:
            try:
                faults.inject(site, key=batch_key)
                if self._kill_active(lane_clock.now_us):
                    raise BackendDown(
                        f"{cfg.backend} killed "
                        f"[{cfg.kill_start_us:.0f}..{cfg.kill_end_us:.0f}]us")
            except ReproError:
                # failure is not free: the dispatcher burns detection
                # time before it can retry
                lane_clock.sleep_s(cfg.fault_detect_us / 1e6)
                raise
            lane_clock.sleep_s(self.primary.service(b) / 1e6)

        try:
            call_with_policy(
                attempt, site=site, key=batch_key, policy=self._policy,
                deadline=deadline_s,
                now=lane_clock.now_s, sleep=lane_clock.sleep_s)
        except PermanentFailure as exc:
            self.breaker.record_failure(
                lane_clock.now_s(), reason=type(exc.last).__name__)
            # graceful degradation: an admitted request is never dropped —
            # the failed batch reruns on the fallback, late but served
            lane_clock.sleep_s(self.fallback.service(b) / 1e6)
            self.stats.brownout_batches += 1
            obs_metrics.counter("serve_batches", path="failed_over").inc()
            kind = "probe_failed" if state == "probe" else "brownout"
            return lane_clock.now_us, self.fallback.backend, kind
        self.breaker.record_success(lane_clock.now_s())
        obs_metrics.counter("serve_batches", path="primary").inc()
        return (lane_clock.now_us, cfg.backend,
                "probe" if state == "probe" else "normal")

    def _on_free(self, now: float, payload: object) -> None:
        lane_id, batch, start_us, served_on, kind = payload  # type: ignore
        lane = self.lanes[lane_id]
        lane.busy = False
        if obs_flight.enabled():
            ctx = self._root_ctx.child()
            obs_flight.record_span(
                f"serve.batch.{kind}", "serve",
                {"batch": len(batch), "backend": served_on},
                start_us, now, ctx, tid=lane_id)
        for req in batch:
            latency = now - req.arrival_us
            self.stats.completed += 1
            self.stats.latencies_us.append(latency)
            met = now <= req.deadline_us
            if met:
                self.stats.slo_met += 1
            else:
                self.stats.slo_missed += 1
            obs_metrics.histogram(
                "serve_latency_us", backend=served_on).observe(latency)
            obs_metrics.counter(
                "serve_completed", slo="met" if met else "missed").inc()
            if obs_flight.enabled():
                obs_flight.record_span(
                    "serve.request", "serve",
                    {"rid": req.rid, "slo_met": met,
                     "latency_us": round(latency, 3)},
                    req.arrival_us, now, ctx.child(), tid=lane_id)
        self._plan(now)

    # -- the loop ------------------------------------------------------------

    def run(self) -> Dict[str, object]:
        fault_counts_before = faults.active_plan().counts()
        for req in self.trace:
            self._push(req.arrival_us, self._ARRIVE, req)
        while self._events:
            t_us, _, kind, payload = heapq.heappop(self._events)
            self.clock.advance_to_us(t_us)
            if kind == self._ARRIVE:
                self._admit(payload, t_us)  # type: ignore[arg-type]
            elif kind == self._FREE:
                self._on_free(t_us, payload)
            else:
                self._on_hold(t_us, payload)  # type: ignore[arg-type]
        # anything still queued when the trace drains can only be hopeless
        # heads the final plan pass expired; the loop above always leaves
        # an idle lane for a non-empty queue, so this is belt-and-braces
        while self.queue:
            req = self.queue.popleft()
            self.stats.expired += 1
        if obs_flight.enabled():
            # the root span every batch span parents to — recorded last
            # (its end is the run's end) so the ring holds no orphans
            obs_flight.record_span(
                "serve.run", "serve",
                {"offered": self.stats.offered,
                 "admitted": self.stats.admitted},
                0.0, self.clock.now_us, self._root_ctx)
        fault_counts_after = faults.active_plan().counts()
        injected = {
            k: v - fault_counts_before.get(k, 0)
            for k, v in sorted(fault_counts_after.items())
            if k.startswith("serve.") and v - fault_counts_before.get(k, 0) > 0
        }
        return self._summary(injected)

    # -- reporting -----------------------------------------------------------

    def _summary(self, injected: Dict[str, int]) -> Dict[str, object]:
        s = self.stats
        lats = sorted(s.latencies_us)
        shed = s.shed_deadline + s.shed_queue_full
        goodput = s.slo_met / s.offered if s.offered else 0.0
        conservation = (s.offered == s.admitted + shed
                        and s.admitted == s.completed + s.expired)
        return {
            "schema": SUMMARY_SCHEMA,
            "config": self.cfg.echo(),
            "workload": {
                "trace_requests": len(self.trace),
                "horizon_us": round(self.trace[-1].arrival_us, 3)
                if self.trace else 0.0,
            },
            "counts": {
                "offered": s.offered,
                "admitted": s.admitted,
                "shed": {"deadline": s.shed_deadline,
                         "queue_full": s.shed_queue_full,
                         "total": shed},
                "completed": s.completed,
                "expired": s.expired,
                "slo_met": s.slo_met,
                "slo_missed": s.slo_missed,
                "batches": s.batches,
                "brownout_batches": s.brownout_batches,
                "probe_batches": s.probe_batches,
            },
            "goodput": round(goodput, 6),
            "slo_attainment": round(
                s.slo_met / s.admitted, 6) if s.admitted else 1.0,
            "latency_us": {
                "p50": round(_percentile(lats, 0.50), 3),
                "p90": round(_percentile(lats, 0.90), 3),
                "p99": round(_percentile(lats, 0.99), 3),
                "p999": round(_percentile(lats, 0.999), 3),
                "max": round(lats[-1], 3) if lats else 0.0,
            },
            "queue_peak": s.queue_peak,
            "batch_hist": {str(k): v for k, v in sorted(s.batch_hist.items())},
            "breaker": {
                "opens": self.breaker.opens,
                "closes": self.breaker.closes,
                "probe_failures": self.breaker.probe_failures,
                "transitions": [
                    [round(t, 6), state]
                    for t, state in self.breaker.transitions],
            },
            "faults_injected": injected,
            "invariants": {
                "conservation": conservation,
                "clock_end_us": round(self.clock.now_us, 3),
            },
        }


def run_serve(
    config: ServeConfig,
    *,
    primary_table: CostTable,
    fallback_table: CostTable,
    trace: "List[Request] | None" = None,
) -> Dict[str, object]:
    """Build and run one :class:`ServeSim`; returns the summary dict."""
    sim = ServeSim(
        config, primary_table=primary_table,
        fallback_table=fallback_table, trace=trace)
    return sim.run()
