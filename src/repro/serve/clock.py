"""The virtual clock every serving component runs on.

A 50k-request replay must be fast, bit-reproducible, and independent of
the host's scheduler — so no serving code ever reads wall time.  Time is
a float microsecond counter advanced explicitly by the event loop, with
monotonicity enforced (an attempted backwards step is a simulator bug
and raises immediately rather than silently corrupting latencies).

Two views exist on purpose:

* the **event clock** — the single global timeline the discrete-event
  loop advances as it pops events;
* **lane clocks** (:meth:`VirtualClock.fork`) — a scratch copy handed to
  one batch execution, whose ``sleep_s`` models service time, fault
  detection, and retry backoff *locally*.  The lane's final reading
  becomes the batch's completion event on the global timeline, so
  in-flight work never has to mutate global time out of order.

The seconds-facing pair (:meth:`now_s` / :meth:`sleep_s`) plugs straight
into :func:`repro.resilience.policy.call_with_policy` as its ``now`` and
``sleep`` hooks — deadline propagation and backoff capping run unchanged
on virtual time.
"""

from __future__ import annotations

from ..errors import ReproError


class ClockError(ReproError):
    """A component tried to move a virtual clock backwards."""


class VirtualClock:
    """A monotonic float-microsecond counter advanced explicitly."""

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        return self._now_us

    def now_s(self) -> float:
        """Seconds view (the ``now`` hook for ``call_with_policy``)."""
        return self._now_us / 1e6

    def advance_to_us(self, t_us: float) -> None:
        """Jump to the absolute instant ``t_us`` (>= now)."""
        if t_us < self._now_us - 1e-9:
            raise ClockError(
                f"virtual clock cannot run backwards: "
                f"{self._now_us:.3f}us -> {t_us:.3f}us")
        if t_us > self._now_us:
            self._now_us = float(t_us)

    def advance_us(self, dt_us: float) -> None:
        """Advance by a relative duration ``dt_us`` (>= 0)."""
        if dt_us < 0:
            raise ClockError(f"negative advance: {dt_us}us")
        self._now_us += float(dt_us)

    def sleep_s(self, dt_s: float) -> None:
        """Seconds view of :meth:`advance_us` (the ``sleep`` hook)."""
        self.advance_us(dt_s * 1e6)

    def fork(self) -> "VirtualClock":
        """An independent lane clock starting at this clock's instant."""
        return VirtualClock(self._now_us)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VirtualClock {self._now_us:.3f}us>"
