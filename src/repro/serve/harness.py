"""Load-generator harness behind ``python -m repro serve``.

Composes the pieces: price the primary and fallback cost tables, build
(or load) the arrival trace, optionally install the canned chaos plan +
scripted kill window, run the :class:`~.server.ServeSim`, and publish a
byte-stable summary JSON via :func:`atomic_write_json`.

Chaos mode (``--chaos``) is the CI scenario the acceptance gates watch:

* a transient fault plan ``serve.backend.<primary>:raise:0.3:1`` seeded
  with the run seed — ~30% of primary batch dispatches eat exactly one
  injected failure (retry absorbs it at the price of detection+backoff);
* a scripted hard kill of the primary across 40%..60% of the nominal
  horizon — every attempt fails, the breaker opens, traffic browns out
  to the fallback table, and the half-open probe re-admits the primary
  once the window passes.

Determinism contract: the summary contains only virtual-clock
quantities, counts, and the config echo — no wall time, no paths — and
is serialized with sorted keys, so two identical invocations produce
byte-identical files (the CI gate hashes them).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional

from ..obs import log as obs_log
from ..resilience import faults
from ..resilience.atomic import atomic_write_json
from .cost import CostTable
from .server import ServeConfig, run_serve
from .workload import Request, load_trace

#: chaos transient-fault rate on primary batch dispatches
CHAOS_RATE = 0.3
#: scripted kill window as fractions of the nominal horizon
KILL_WINDOW = (0.40, 0.60)


def chaos_spec(backend: str) -> str:
    """The canned transient-fault plan for ``--chaos`` runs."""
    return f"serve.backend.{backend}:raise:{CHAOS_RATE}:1"


def run_harness(
    config: ServeConfig,
    *,
    chaos: bool = False,
    trace_file: "str | pathlib.Path | None" = None,
    out: "str | pathlib.Path | None" = None,
) -> Dict[str, object]:
    """One full serving run; returns the summary dict (and writes it
    to ``out`` when given)."""
    cfg = config
    if chaos and cfg.kill_start_us is None:
        horizon_us = cfg.requests / cfg.qps * 1e6
        cfg = ServeConfig(**{
            **cfg.echo(),  # type: ignore[arg-type]
            "kill_start_us": KILL_WINDOW[0] * horizon_us,
            "kill_end_us": KILL_WINDOW[1] * horizon_us,
        })

    trace: Optional[List[Request]] = None
    if trace_file is not None:
        trace = load_trace(trace_file)

    primary = CostTable.build(
        cfg.backend, cfg.model, bits=cfg.bits, max_batch=cfg.max_batch,
        overhead_us=cfg.dispatch_overhead_us)
    fallback = CostTable.build(
        cfg.fallback, cfg.model, bits=cfg.bits, max_batch=cfg.max_batch,
        overhead_us=cfg.dispatch_overhead_us)

    if chaos:
        with faults.fault_plan(chaos_spec(cfg.backend), seed=cfg.seed):
            summary = run_serve(
                cfg, primary_table=primary, fallback_table=fallback,
                trace=trace)
    else:
        summary = run_serve(
            cfg, primary_table=primary, fallback_table=fallback, trace=trace)

    obs_log.info(
        "serve_run_done", logger="repro.serve.harness",
        offered=summary["counts"]["offered"],  # type: ignore[index]
        goodput=summary["goodput"], chaos=chaos,
    )
    if out is not None:
        atomic_write_json(
            out, summary, site="serve.summary",
            sort_keys=True, separators=(",", ":"))
    return summary


def format_summary(summary: Dict[str, object]) -> str:
    """Human-facing one-screen report of a serving run."""
    c = summary["counts"]  # type: ignore[assignment]
    lat = summary["latency_us"]  # type: ignore[assignment]
    brk = summary["breaker"]  # type: ignore[assignment]
    cfg = summary["config"]  # type: ignore[assignment]
    lines = [
        f"serve: {cfg['model']} int{cfg['bits']} on {cfg['backend']} "
        f"(fallback {cfg['fallback']}), {cfg['qps']:g} qps x "
        f"{cfg['requests']} requests, shape={cfg['shape']}, "
        f"slo={cfg['slo_ms']:g}ms",
        f"  offered {c['offered']}  admitted {c['admitted']}  "
        f"shed {c['shed']['total']} "
        f"(deadline {c['shed']['deadline']}, "
        f"queue_full {c['shed']['queue_full']})",
        f"  completed {c['completed']}  expired {c['expired']}  "
        f"slo_met {c['slo_met']}  slo_missed {c['slo_missed']}",
        f"  goodput {summary['goodput']:.4f}  "
        f"slo_attainment {summary['slo_attainment']:.4f}",
        f"  latency_us p50 {lat['p50']:.1f}  p90 {lat['p90']:.1f}  "
        f"p99 {lat['p99']:.1f}  p999 {lat['p999']:.1f}  max {lat['max']:.1f}",
        f"  batches {c['batches']} (brownout {c['brownout_batches']}, "
        f"probe {c['probe_batches']})  queue_peak {summary['queue_peak']}",
        f"  breaker opens {brk['opens']}  closes {brk['closes']}  "
        f"probe_failures {brk['probe_failures']}",
    ]
    injected = summary.get("faults_injected") or {}
    if injected:
        lines.append("  faults injected: " + ", ".join(
            f"{site}={n}" for site, n in injected.items()))
    inv = summary["invariants"]  # type: ignore[assignment]
    lines.append(
        f"  invariants: conservation={'ok' if inv['conservation'] else 'VIOLATED'}"
        f"  virtual_end={inv['clock_end_us'] / 1e6:.3f}s")
    return "\n".join(lines)


def summary_digest(summary: Dict[str, object]) -> str:
    """The canonical bytes the determinism gate hashes."""
    import hashlib

    blob = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
