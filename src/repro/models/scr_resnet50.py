"""SCR-ResNet-50: a CRNAS-style channel-reallocated ResNet-50.

The paper evaluates "SCR-ResNet-50 (convolution layers with different
shapes from ResNet-50) searched by CRNAS [19]" (Sec. 5.1).  The searched
architecture itself is unpublished, so — per the substitution rule in
DESIGN.md — we synthesize it the way CRNAS describes its search: keep the
ResNet-50 topology and FLOP budget, *reallocate computation across stages*
(fewer channels early, more late) and perturb widths off the usual
power-of-two grid.  That yields exactly the property the paper exploits in
Sec. 5.5: "the convolution shapes ... are not commonly used", so
heuristically-tuned libraries miss them while shape-profiled kernels
don't.
"""

from __future__ import annotations

from ..types import ConvSpec
from .layers import unique_conv_layers

#: (blocks, mid_channels, out_channels): channels reallocated toward the
#: deeper stages and snapped off the power-of-two grid (multiples of 16/32
#: the searches emit), total MACs within ~10% of the original ResNet-50
_STAGES = (
    (2, 48, 192),
    (4, 112, 448),
    (7, 288, 1152),
    (3, 608, 2432),
)


def scr_resnet50_all_conv_layers(batch: int = 1) -> list[ConvSpec]:
    layers: list[ConvSpec] = []

    def conv(cin, cout, size, k, s, p):
        layers.append(
            ConvSpec(
                f"l{len(layers)}", in_channels=cin, out_channels=cout,
                height=size, width=size, kernel=(k, k), stride=(s, s),
                padding=(p, p), batch=batch,
            )
        )

    conv(3, 48, 224, 7, 2, 3)
    in_ch = 48
    size = 56
    for stage_idx, (blocks, mid, out) in enumerate(_STAGES):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage_idx > 0) else 1
            conv(in_ch, mid, size, 1, stride, 0)
            blk_size = size // stride
            conv(mid, mid, blk_size, 3, 1, 1)
            conv(mid, out, blk_size, 1, 1, 0)
            if block == 0:
                conv(in_ch, out, size, 1, stride, 0)
            in_ch = out
            size = blk_size
    return layers


def scr_resnet50_conv_layers(batch: int = 1, *, include_stem: bool = False) -> list[ConvSpec]:
    """Unique conv shapes of the synthesized SCR-ResNet-50 (stem excluded
    by default, like :func:`repro.models.resnet50.resnet50_conv_layers`)."""
    layers = scr_resnet50_all_conv_layers(batch)
    if not include_stem:
        layers = layers[1:]
    return unique_conv_layers(layers)
