"""Workload substrate: conv layer tables of the paper's three networks.

The evaluation (Sec. 5.1) covers "all convolution layers in ResNet-50 ...
representative and non-repetitive convolution layers from SCR-ResNet-50
... and DenseNet-121".  Tables are generated from the architecture
definitions and de-duplicated to unique shapes, labelled ``conv1..convN``
in topological order — matching the paper's presentation style (its exact
index mapping is unpublished; see DESIGN.md).
"""

from .layers import unique_conv_layers
from .resnet50 import resnet50_conv_layers
from .scr_resnet50 import scr_resnet50_conv_layers
from .densenet121 import densenet121_conv_layers
from .mobilenetv1 import mobilenetv1_conv_layers
from .zoo import get_model_layers, MODELS

__all__ = [
    "unique_conv_layers",
    "resnet50_conv_layers",
    "scr_resnet50_conv_layers",
    "densenet121_conv_layers",
    "mobilenetv1_conv_layers",
    "get_model_layers",
    "MODELS",
]
