"""DenseNet-121 convolution layers (Huang et al. 2017, growth rate 32).

Dense blocks of (6, 12, 24, 16) layers; each dense layer is a 1x1
bottleneck to ``4*k`` channels followed by a 3x3 to ``k = 32``; transitions
halve channels with a 1x1 and 2x2-pool.  The input channel count of the
1x1 bottlenecks grows by 32 per layer, producing the long tail of unusual
shapes (e.g. 736 input channels at 14x14 — the paper's Sec. 5.5 example).
The paper evaluates "representative and non-repetitive" layers; we emit
every conv, de-duplicate, and (like the paper's 16-layer figure) provide a
representative subsample.
"""

from __future__ import annotations

from ..types import ConvSpec
from .layers import unique_conv_layers

GROWTH = 32
_BLOCKS = (6, 12, 24, 16)


def densenet121_all_conv_layers(batch: int = 1) -> list[ConvSpec]:
    layers: list[ConvSpec] = []

    def conv(cin, cout, size, k, s, p):
        layers.append(
            ConvSpec(
                f"l{len(layers)}", in_channels=cin, out_channels=cout,
                height=size, width=size, kernel=(k, k), stride=(s, s),
                padding=(p, p), batch=batch,
            )
        )

    conv(3, 64, 224, 7, 2, 3)  # stem (pool follows: 112 -> 56)
    channels = 64
    size = 56
    for b_idx, n_layers in enumerate(_BLOCKS):
        for _ in range(n_layers):
            conv(channels, 4 * GROWTH, size, 1, 1, 0)  # bottleneck
            conv(4 * GROWTH, GROWTH, size, 3, 1, 1)  # growth conv
            channels += GROWTH
        if b_idx < len(_BLOCKS) - 1:
            conv(channels, channels // 2, size, 1, 1, 0)  # transition
            channels //= 2
            size //= 2  # 2x2 average pool
    return layers


def densenet121_conv_layers(batch: int = 1, *,
                            representative: int | None = 16,
                            include_stem: bool = False) -> list[ConvSpec]:
    """Unique conv shapes; ``representative`` subsamples to the paper's
    16-layer presentation (None keeps all unique shapes).

    The stem is excluded by default (kept full-precision, like ResNet-50's).
    The subsample is stratified, not blind: every distinct 3x3 growth conv
    is kept (they are the structural shapes), the Sec. 5.5 example layer
    (736 input channels at 14x14) is kept, and the remaining slots spread
    evenly over the growing-1x1 bottleneck tail.
    """
    layers = densenet121_all_conv_layers(batch)
    if not include_stem:
        layers = layers[1:]
    uniq = unique_conv_layers(layers)
    if representative is None or len(uniq) <= representative:
        return uniq
    must = [s for s in uniq
            if s.kernel != (1, 1)
            or (s.in_channels == 736 and s.height == 14)]
    rest = [s for s in uniq if s not in must]
    slots = max(0, representative - len(must))
    idx = sorted({round(i * (len(rest) - 1) / max(1, slots - 1))
                  for i in range(slots)})
    picked = must + [rest[i] for i in idx][:slots]
    picked.sort(key=lambda s: int(s.name.removeprefix("conv")))
    return unique_conv_layers(picked)
