"""Helpers for building and de-duplicating conv layer tables."""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

from ..types import ConvSpec


def shape_key(spec: ConvSpec) -> tuple:
    """Everything that makes two conv layers the 'same shape' for the
    paper's de-duplication (name and batch excluded)."""
    return (
        spec.in_channels,
        spec.out_channels,
        spec.height,
        spec.width,
        spec.kernel,
        spec.stride,
        spec.padding,
        spec.groups,
    )


def unique_conv_layers(layers: Iterable[ConvSpec],
                       prefix: str = "conv") -> list[ConvSpec]:
    """Keep the first occurrence of each shape, relabelled conv1..convN."""
    seen: set[tuple] = set()
    out: list[ConvSpec] = []
    for spec in layers:
        key = shape_key(spec)
        if key in seen:
            continue
        seen.add(key)
        out.append(replace(spec, name=f"{prefix}{len(out) + 1}"))
    return out


def with_batch(layers: Sequence[ConvSpec], batch: int) -> list[ConvSpec]:
    return [spec.with_batch(batch) for spec in layers]


def total_macs(layers: Iterable[ConvSpec]) -> int:
    return sum(spec.macs for spec in layers)
