"""ResNet-50 convolution layers (He et al. 2016, Caffe Model Zoo variant).

The Caffe prototxt places the stride-2 downsampling on the *first 1x1*
convolution of each stage's leading bottleneck (unlike torchvision's
3x3-stride variant) — the paper takes its model "from Caffe Model Zoo"
(Sec. 5.1), so that is what we generate.  All 53 convolutions are emitted
in topological order, then de-duplicated to unique shapes.
"""

from __future__ import annotations

from ..types import ConvSpec
from .layers import unique_conv_layers

#: (blocks, mid_channels, out_channels) per stage; input 56x56 after stem
_STAGES = (
    (3, 64, 256),
    (4, 128, 512),
    (6, 256, 1024),
    (3, 512, 2048),
)


def resnet50_all_conv_layers(batch: int = 1) -> list[ConvSpec]:
    """Every convolution of ResNet-50, in execution order."""
    layers: list[ConvSpec] = []

    def conv(cin, cout, size, k, s, p):
        layers.append(
            ConvSpec(
                f"l{len(layers)}", in_channels=cin, out_channels=cout,
                height=size, width=size, kernel=(k, k), stride=(s, s),
                padding=(p, p), batch=batch,
            )
        )

    conv(3, 64, 224, 7, 2, 3)  # stem (pooling follows, 112 -> 56)

    in_ch = 64
    size = 56
    for stage_idx, (blocks, mid, out) in enumerate(_STAGES):
        for block in range(blocks):
            # Caffe variant: stride 2 on the first 1x1 of stages 3..5
            stride = 2 if (block == 0 and stage_idx > 0) else 1
            conv(in_ch, mid, size, 1, stride, 0)  # reduce
            blk_size = size // stride
            conv(mid, mid, blk_size, 3, 1, 1)  # spatial
            conv(mid, out, blk_size, 1, 1, 0)  # expand
            if block == 0:
                conv(in_ch, out, size, 1, stride, 0)  # projection shortcut
            in_ch = out
            size = blk_size
    return layers


def resnet50_conv_layers(batch: int = 1, *, include_stem: bool = False) -> list[ConvSpec]:
    """The unique conv shapes, labelled conv1..convN (Fig. 7's x-axis).

    By default the 7x7 stem is excluded: quantized inference keeps the
    first layer in full precision, and only then does the table have the
    paper's 19 layers with conv1 a "1x1 kernel with 64 channels"
    (Sec. 5.2) and Fig. 13's maximum of 8.60x at the first 3x3.
    """
    layers = resnet50_all_conv_layers(batch)
    if not include_stem:
        layers = layers[1:]
    return unique_conv_layers(layers)
