"""MobileNetV1 conv layers (Howard et al. 2017) — the depthwise stress case.

Not in the paper's evaluation; included as the extension workload that
shows *where GEMM-based low-bit convolution stops paying off*: depthwise
layers have ``K = kh*kw`` (9!) per group and one output channel per group,
so the re-designed GEMM's register tiles are almost entirely padding.
The per-layer tables separate depthwise (``groups == channels``) from
pointwise layers so the benches can report them apart.
"""

from __future__ import annotations

from ..types import ConvSpec
from .layers import unique_conv_layers

#: (out_channels, stride) of each depthwise/pointwise pair after the stem
_PAIRS = (
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1),
    (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
    (1024, 2), (1024, 1),
)


def mobilenetv1_all_conv_layers(batch: int = 1) -> list[ConvSpec]:
    layers: list[ConvSpec] = []

    def conv(cin, cout, size, k, s, p, groups=1):
        layers.append(
            ConvSpec(
                f"l{len(layers)}", in_channels=cin, out_channels=cout,
                height=size, width=size, kernel=(k, k), stride=(s, s),
                padding=(p, p), batch=batch, groups=groups,
            )
        )

    conv(3, 32, 224, 3, 2, 1)  # stem
    cin, size = 32, 112
    for cout, stride in _PAIRS:
        conv(cin, cin, size, 3, stride, 1, groups=cin)  # depthwise
        size //= stride
        conv(cin, cout, size, 1, 1, 0)  # pointwise
        cin = cout
    return layers


def mobilenetv1_conv_layers(batch: int = 1, *,
                            include_stem: bool = False) -> list[ConvSpec]:
    """Unique conv shapes (stem excluded by default, as elsewhere)."""
    layers = mobilenetv1_all_conv_layers(batch)
    if not include_stem:
        layers = layers[1:]
    return unique_conv_layers(layers)


def is_depthwise(spec: ConvSpec) -> bool:
    return spec.groups > 1 and spec.groups == spec.in_channels
