"""Model lookup by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ReproError
from ..types import ConvSpec
from .densenet121 import densenet121_conv_layers
from .mobilenetv1 import mobilenetv1_conv_layers
from .resnet50 import resnet50_conv_layers
from .scr_resnet50 import scr_resnet50_conv_layers

MODELS: Dict[str, Callable[..., List[ConvSpec]]] = {
    "resnet50": resnet50_conv_layers,
    "scr-resnet50": scr_resnet50_conv_layers,
    "densenet121": densenet121_conv_layers,
    "mobilenetv1": mobilenetv1_conv_layers,
}


def get_model_layers(name: str, batch: int = 1, **kwargs) -> List[ConvSpec]:
    """Unique conv layer table of a named model (Sec. 5.1 workloads)."""
    try:
        fn = MODELS[name]
    except KeyError:
        raise ReproError(
            f"unknown model {name!r}; available: {sorted(MODELS)}"
        ) from None
    return fn(batch=batch, **kwargs)
