"""Functional executor for the simulated NEON subset.

Semantics are those of the real instructions, including the property the
paper's overflow analysis hinges on: ``SMLAL``/``MLA``/``SADDW`` do **not**
saturate — results wrap modulo the lane width.  A ``check_overflow`` mode
additionally raises :class:`~repro.errors.OverflowDetected` the moment any
lane wraps, which is how tests certify that the Sec. 3.3 chain lengths are
safe (and that one-longer chains are not).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import OverflowDetected, SimulationError
from .isa import Instr, LOAD_OPS, MemRef, STORE_OPS
from .registers import RegisterFile


def _wrap(values: np.ndarray, to_dtype: np.dtype) -> np.ndarray:
    """C-style narrowing cast (modular wrap)."""
    unsigned = {np.dtype(np.int8): np.uint8, np.dtype(np.int16): np.uint16,
                np.dtype(np.int32): np.uint32}[np.dtype(to_dtype)]
    return values.astype(np.int64).astype(unsigned).view(to_dtype)


class ArmSimulator:
    """Executes instruction streams against named byte buffers.

    Parameters
    ----------
    buffers:
        Mapping of buffer name to a 1-D ``uint8``/``int8`` array.  Loads and
        stores address ``(buffer, byte offset)``; multi-byte lanes are
        little-endian, matching AArch64.
    check_overflow:
        When true, any accumulate that wraps raises
        :class:`OverflowDetected` instead of silently wrapping.
    """

    def __init__(
        self,
        buffers: Mapping[str, np.ndarray],
        *,
        check_overflow: bool = False,
    ) -> None:
        self.regs = RegisterFile()
        self.check_overflow = check_overflow
        self._buffers: dict[str, np.ndarray] = {}
        for name, buf in buffers.items():
            self.bind_buffer(name, buf)
        self.executed = 0

    def bind_buffer(self, name: str, buf: np.ndarray) -> None:
        buf = np.asarray(buf)
        if buf.ndim != 1 or buf.dtype not in (np.uint8, np.int8):
            raise SimulationError(
                f"buffer {name!r} must be 1-D uint8/int8, got "
                f"{buf.ndim}-D {buf.dtype}"
            )
        self._buffers[name] = buf.view(np.uint8)

    def buffer(self, name: str) -> np.ndarray:
        try:
            return self._buffers[name]
        except KeyError:
            raise SimulationError(f"unbound buffer {name!r}") from None

    def _mem_slice(self, mem: MemRef, nbytes: int) -> np.ndarray:
        buf = self.buffer(mem.buffer)
        if mem.offset + nbytes > buf.size:
            raise SimulationError(
                f"access [{mem.buffer}+{mem.offset}:{mem.offset + nbytes}] "
                f"overruns buffer of {buf.size} bytes"
            )
        return buf[mem.offset : mem.offset + nbytes]

    # ---- accumulate helpers -------------------------------------------------

    def _acc(self, dst_view: np.ndarray, addend: np.ndarray, what: str) -> None:
        exact = dst_view.astype(np.int64) + addend.astype(np.int64)
        wrapped = _wrap(exact, dst_view.dtype)
        if self.check_overflow and not np.array_equal(wrapped.astype(np.int64), exact):
            raise OverflowDetected(
                f"{what}: accumulator wrapped "
                f"(exact range [{exact.min()}, {exact.max()}], "
                f"lane dtype {dst_view.dtype})"
            )
        dst_view[:] = wrapped

    # ---- the dispatch --------------------------------------------------------

    def run(self, stream: list[Instr]) -> None:
        for ins in stream:
            self.step(ins)

    def step(self, ins: Instr) -> None:  # noqa: C901 - a dispatch is a dispatch
        r = self.regs
        op = ins.op
        self.executed += 1

        if op == "LD1_16B":
            r.v_bytes(ins.dst[0])[:] = self._mem_slice(ins.mem, 16)
        elif op == "LD1_8B":
            v = r.v_bytes(ins.dst[0])
            v[:8] = self._mem_slice(ins.mem, 8)
            v[8:] = 0
        elif op == "LD4R_B":
            if len(ins.dst) != 4:
                raise SimulationError("LD4R_B needs exactly 4 destination registers")
            data = self._mem_slice(ins.mem, 4)
            for i, d in enumerate(ins.dst):
                r.v_bytes(d)[:] = data[i]
        elif op == "LD1R_B":
            r.v_bytes(ins.dst[0])[:] = self._mem_slice(ins.mem, 1)[0]
        elif op == "ST1_16B":
            self._mem_slice(ins.mem, 16)[:] = r.v_bytes(ins.src[0])
        elif op == "LDR_X":
            data = self._mem_slice(ins.mem, 8)
            r.x_set(ins.dst[0], int(data.view(np.uint64)[0]))
        elif op == "STR_X":
            self._mem_slice(ins.mem, 8).view(np.uint64)[0] = np.uint64(
                r.x_get(ins.src[0])
            )

        elif op in ("SMLAL_8H", "SMLAL2_8H"):
            n = r.v_i8(ins.src[0])
            m = r.v_i8(ins.src[1])
            half = slice(8, 16) if op.startswith("SMLAL2") else slice(0, 8)
            prod = n[half].astype(np.int64) * m[half].astype(np.int64)
            self._acc(r.v_i16(ins.dst[0]), prod, op)
        elif op in ("SMLAL_4S", "SMLAL2_4S"):
            n = r.v_i16(ins.src[0])
            m = r.v_i16(ins.src[1])
            half = slice(4, 8) if op.startswith("SMLAL2") else slice(0, 4)
            prod = n[half].astype(np.int64) * m[half].astype(np.int64)
            self._acc(r.v_i32(ins.dst[0]), prod, op)
        elif op in ("SMLAL_4S_LANE", "SMLAL2_4S_LANE"):
            if ins.lane is None or not 0 <= ins.lane < 8:
                raise SimulationError(f"{op} requires a lane in [0, 8)")
            n = r.v_i16(ins.src[0])
            scalar = int(r.v_i16(ins.src[1])[ins.lane])
            half = slice(4, 8) if op.startswith("SMLAL2") else slice(0, 4)
            prod = n[half].astype(np.int64) * scalar
            self._acc(r.v_i32(ins.dst[0]), prod, op)
        elif op in ("SDOT_4S", "SDOT_4S_LANE"):
            n = r.v_i8(ins.src[0]).astype(np.int64).reshape(4, 4)
            m8 = r.v_i8(ins.src[1]).astype(np.int64).reshape(4, 4)
            if op.endswith("LANE"):
                if ins.lane is None or not 0 <= ins.lane < 4:
                    raise SimulationError("SDOT_4S_LANE requires a lane in [0, 4)")
                m8 = np.broadcast_to(m8[ins.lane], (4, 4))
            dots = (n * m8).sum(axis=1)
            self._acc(r.v_i32(ins.dst[0]), dots, op)
        elif op == "MLA_16B":
            n = r.v_i8(ins.src[0])
            m = r.v_i8(ins.src[1])
            prod = n.astype(np.int64) * m.astype(np.int64)
            self._acc(r.v_i8(ins.dst[0]), prod, op)

        elif op in ("SADDW_8H", "SADDW2_8H"):
            m = r.v_i8(ins.src[1])
            half = slice(8, 16) if op.startswith("SADDW2") else slice(0, 8)
            base = r.v_i16(ins.src[0]).astype(np.int64)
            total = base + m[half].astype(np.int64)
            wrapped = _wrap(total, np.int16)
            if self.check_overflow and not np.array_equal(
                wrapped.astype(np.int64), total
            ):
                raise OverflowDetected(f"{op}: int16 result wrapped")
            r.v_i16(ins.dst[0])[:] = wrapped
        elif op in ("SADDW_4S", "SADDW2_4S"):
            m = r.v_i16(ins.src[1])
            half = slice(4, 8) if op.startswith("SADDW2") else slice(0, 4)
            base = r.v_i32(ins.src[0]).astype(np.int64)
            total = base + m[half].astype(np.int64)
            wrapped = _wrap(total, np.int32)
            if self.check_overflow and not np.array_equal(
                wrapped.astype(np.int64), total
            ):
                raise OverflowDetected(f"{op}: int32 result wrapped")
            r.v_i32(ins.dst[0])[:] = wrapped

        elif op in ("SSHLL_8H", "SSHLL2_8H"):
            n = r.v_i8(ins.src[0])
            half = slice(8, 16) if op.startswith("SSHLL2") else slice(0, 8)
            r.v_i16(ins.dst[0])[:] = n[half].astype(np.int16)
        elif op == "AND_16B":
            r.v_bytes(ins.dst[0])[:] = r.v_bytes(ins.src[0]) & r.v_bytes(ins.src[1])
        elif op == "CNT_16B":
            r.v_bytes(ins.dst[0])[:] = np.unpackbits(
                r.v_bytes(ins.src[0])[:, None], axis=1
            ).sum(axis=1)
        elif op == "UADALP_8H":
            n = r.v_u8(ins.src[0]).astype(np.uint32)
            pair = n[0::2] + n[1::2]
            view = r.v_u16(ins.dst[0])
            total = view.astype(np.uint32) + pair
            if self.check_overflow and np.any(total > 0xFFFF):
                raise OverflowDetected("UADALP_8H: uint16 accumulator wrapped")
            view[:] = (total & 0xFFFF).astype(np.uint16)
        elif op == "UADALP_4S":
            n = r.v_u16(ins.src[0]).astype(np.uint64)
            pair = n[0::2] + n[1::2]
            view = r.v_i32(ins.dst[0]).view(np.uint32)
            total = view.astype(np.uint64) + pair
            if self.check_overflow and np.any(total > 0xFFFF_FFFF):
                raise OverflowDetected("UADALP_4S: uint32 accumulator wrapped")
            view[:] = (total & 0xFFFF_FFFF).astype(np.uint32)
        elif op == "ADD_4S":
            a = r.v_i32(ins.src[0]).astype(np.int64)
            b = r.v_i32(ins.src[1]).astype(np.int64)
            r.v_i32(ins.dst[0])[:] = _wrap(a + b, np.int32)
        elif op == "MOVI_ZERO":
            r.v_bytes(ins.dst[0])[:] = 0

        elif op == "MOV_V_TO_X":
            if ins.lane not in (0, 1):
                raise SimulationError("MOV_V_TO_X lane must be 0 or 1")
            r.x_set(ins.dst[0], int(r.v_i64(ins.src[0])[ins.lane]))
        elif op == "MOV_X_TO_V":
            if ins.lane not in (0, 1):
                raise SimulationError("MOV_X_TO_V lane must be 0 or 1")
            r.v_i64(ins.dst[0])[ins.lane] = np.int64(
                np.uint64(r.x_get(ins.src[0])).astype(np.int64)
            )
        elif op == "MOV_X_IMM":
            r.x_set(ins.dst[0], int(ins.imm or 0))

        elif op in ("SUBS", "ADD_X"):
            cur = r.x_i64(ins.src[0]) if ins.src else 0
            delta = int(ins.imm or 0)
            r.x_set(ins.dst[0], cur - delta if op == "SUBS" else cur + delta)
        elif op == "B_NE":
            pass  # streams are fully unrolled; branches are cost-only
        else:  # pragma: no cover - ALL_OPS is the gate
            raise SimulationError(f"unimplemented opcode {op}")

    # ---- convenience ---------------------------------------------------------

    def read_i32(self, buffer: str, count: int, offset: int = 0) -> np.ndarray:
        """Read ``count`` little-endian int32 values out of a buffer."""
        raw = self._mem_slice(MemRef(buffer, offset), count * 4)
        return raw.view(np.int32).copy()
