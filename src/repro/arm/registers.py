"""Architectural register file of the simulated ARMv8 core.

32 x 128-bit vector registers and 31 x 64-bit general registers (Sec. 2.3).
Vector registers are stored as raw bytes; typed views expose the NEON lane
interpretations the instructions use.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError


class RegisterFile:
    """Byte-backed register state with typed lane views."""

    NUM_V = 32
    NUM_X = 31

    def __init__(self) -> None:
        self._v = np.zeros((self.NUM_V, 16), dtype=np.uint8)
        self._x = np.zeros(self.NUM_X, dtype=np.uint64)

    # ---- name resolution ----------------------------------------------------

    @staticmethod
    def _vidx(name: str) -> int:
        if not name.startswith("v"):
            raise SimulationError(f"{name!r} is not a vector register")
        i = int(name[1:])
        if not 0 <= i < RegisterFile.NUM_V:
            raise SimulationError(f"vector register {name!r} out of range")
        return i

    @staticmethod
    def _xidx(name: str) -> int:
        if not name.startswith("x"):
            raise SimulationError(f"{name!r} is not a general register")
        i = int(name[1:])
        if not 0 <= i < RegisterFile.NUM_X:
            raise SimulationError(f"general register {name!r} out of range")
        return i

    # ---- vector lane views (mutating these mutates the register) ------------

    def v_bytes(self, name: str) -> np.ndarray:
        return self._v[self._vidx(name)]

    def v_i8(self, name: str) -> np.ndarray:
        """16 signed-byte lanes."""
        return self._v[self._vidx(name)].view(np.int8)

    def v_i16(self, name: str) -> np.ndarray:
        """8 int16 lanes."""
        return self._v[self._vidx(name)].view(np.int16)

    def v_i32(self, name: str) -> np.ndarray:
        """4 int32 lanes."""
        return self._v[self._vidx(name)].view(np.int32)

    def v_u8(self, name: str) -> np.ndarray:
        return self._v[self._vidx(name)]

    def v_u16(self, name: str) -> np.ndarray:
        return self._v[self._vidx(name)].view(np.uint16)

    def v_i64(self, name: str) -> np.ndarray:
        """2 int64 halves (used by the MOV v<->x transfers)."""
        return self._v[self._vidx(name)].view(np.int64)

    # ---- general registers ---------------------------------------------------

    def x_get(self, name: str) -> int:
        return int(self._x[self._xidx(name)])

    def x_set(self, name: str, value: int) -> None:
        self._x[self._xidx(name)] = np.uint64(value & 0xFFFF_FFFF_FFFF_FFFF)

    def x_i64(self, name: str) -> int:
        """Signed interpretation of an x register."""
        return int(self._x[self._xidx(name)].astype(np.int64))

    # ---- whole-file helpers ---------------------------------------------------

    def reset(self) -> None:
        self._v[:] = 0
        self._x[:] = 0

    def snapshot(self) -> dict[str, np.ndarray]:
        return {"v": self._v.copy(), "x": self._x.copy()}
