"""Common micro-kernel container and execution helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ...errors import ShapeError, SimulationError
from ..isa import Instr, macs_in_stream, stream_summary
from ..pipeline import A53_COST_TABLE, CostTable, PipelineModel, PipelineResult
from ..simulator import ArmSimulator


@dataclass(frozen=True)
class MicroKernel:
    """A generated register-tile kernel.

    Attributes
    ----------
    name:
        Scheme identifier (``"smlal4"``, ``"mla2"``, ``"ncnn8"``, ...).
    stream:
        The full, unrolled instruction stream for one C tile.
    m_r, n_r:
        Register-tile size: the stream computes an ``m_r x n_r`` int32 tile.
    k:
        Reduction length the stream was generated for.
    bits:
        Operand bit width the overflow analysis assumed.
    a_bytes, b_bytes:
        Sizes the bound panels must have (incl. any slack the loads need).
    c_bytes:
        Output buffer size; C is stored column-major
        (``slot = col * m_r + row``, 4 bytes per slot).
    """

    name: str
    stream: tuple[Instr, ...]
    m_r: int
    n_r: int
    k: int
    bits: int
    a_bytes: int
    b_bytes: int
    c_bytes: int

    def summary(self) -> dict[str, int]:
        return stream_summary(list(self.stream))

    @property
    def mac_lanes(self) -> int:
        return macs_in_stream(list(self.stream))

    def cycles(self, table: CostTable = A53_COST_TABLE) -> PipelineResult:
        """Statically schedule the stream on the pipeline model."""
        return PipelineModel(table).schedule(self.stream)

    def execute(
        self,
        a_panel: np.ndarray,
        b_panel: np.ndarray,
        *,
        check_overflow: bool = False,
        extra_buffers: Mapping[str, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Run the stream functionally; returns the ``(m_r, n_r)`` int32 tile.

        ``a_panel`` / ``b_panel`` are the packed byte panels (int8 viewed as
        bytes); they must be at least ``a_bytes`` / ``b_bytes`` long.
        """
        a_panel = np.ascontiguousarray(a_panel).view(np.uint8).ravel()
        b_panel = np.ascontiguousarray(b_panel).view(np.uint8).ravel()
        if a_panel.size < self.a_bytes:
            raise ShapeError(
                f"{self.name}: A panel {a_panel.size}B < required {self.a_bytes}B"
            )
        if b_panel.size < self.b_bytes:
            raise ShapeError(
                f"{self.name}: B panel {b_panel.size}B < required {self.b_bytes}B"
            )
        c = np.zeros(self.c_bytes, dtype=np.uint8)
        buffers = {"A": a_panel, "B": b_panel, "C": c}
        if extra_buffers:
            buffers.update({k: np.asarray(v).view(np.uint8).ravel()
                            for k, v in extra_buffers.items()})
        sim = ArmSimulator(buffers, check_overflow=check_overflow)
        sim.run(list(self.stream))
        tile = c.view(np.int32)[: self.m_r * self.n_r]
        # column-major C: slot = col * m_r + row
        return tile.reshape(self.n_r, self.m_r).T.copy()
