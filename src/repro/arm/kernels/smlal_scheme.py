"""The 4~8-bit GEMM micro-kernel (Alg. 1): SMLAL + SADDW with register
allocation tailored to the scheme.

Register allocation (Sec. 3.3):

* ``v0``/``v1``        — Matrix A column buffers (software-pipelined pair),
* ``v2~v5``/``v6~v9``  — Matrix B replicated-row buffers (two groups),
* ``v10~v17``          — int16 partial accumulators (col j in v10+2j/v11+2j),
* ``v18~v31``          — 56 of the 64 int32 accumulators,
* ``x0~x3``            — the remaining 8 int32 accumulators (col 3, rows
  8~15), shuttled through ``v0``/``v1`` by the MOV dance of Alg. 1
  lines 10-13.

The tile is 16x4 (``n_a = 16`` rows from a packed A panel, ``n_b = 4``
columns from a packed B panel).  Every K step costs one ``LD1`` (16 A
bytes), one ``LD4R`` (4 B bytes replicated) and 8 ``SMLAL``/``SMLAL2``
(64 MACs).  After ``round_interval(bits)`` steps — the paper's unroll
factor, always <= the safe chain length — the int16 lanes are drained into
the int32 accumulators with 16 ``SADDW``/``SADDW2``.

Deviation noted in DESIGN.md: Alg. 1's listing clobbers the prefetched
``v0``/``v1`` in its drain, which cannot be literally correct; we restart
the load pipeline at each drained block boundary instead.
"""

from __future__ import annotations

from ...errors import ChainOverflowError, ShapeError, UnsupportedBitsError
from ..isa import Instr, MemRef
from ..ratios import SMLAL_SCHEME_BITS, round_interval, smlal_chain_length
from .base import MicroKernel

M_R = 16
N_R = 4

#: int16 accumulator register for (column j, row half h): v10+2j+h
_ACC16 = {(j, h): f"v{10 + 2 * j + h}" for j in range(N_R) for h in range(2)}


def _acc32_reg(slot_group: int) -> str | None:
    """int32 accumulator v-register covering slots 4g..4g+3, or None for
    the x-register spill region (slot groups 14, 15 = col 3 rows 8..15)."""
    if slot_group < 14:
        return f"v{18 + slot_group}"
    return None


def _emit_macs(out: list[Instr], a_reg: str, b_regs: list[str]) -> None:
    """8 MACs instructions: SMLAL/SMLAL2 of one A column against 4 B values."""
    for j in range(N_R):
        out.append(Instr("SMLAL_8H", dst=(_ACC16[(j, 0)],), src=(a_reg, b_regs[j])))
        out.append(Instr("SMLAL2_8H", dst=(_ACC16[(j, 1)],), src=(a_reg, b_regs[j])))


def _emit_drain(out: list[Instr]) -> None:
    """Drain all int16 accumulators into the int32 accumulators (Alg. 1
    lines 9-13), then clear the int16 lanes."""
    # restore the spilled col-3/rows-8..15 accumulators into v0, v1
    out.append(Instr("MOV_X_TO_V", dst=("v0",), src=("x0",), lane=0))
    out.append(Instr("MOV_X_TO_V", dst=("v0",), src=("x1",), lane=1))
    out.append(Instr("MOV_X_TO_V", dst=("v1",), src=("x2",), lane=0))
    out.append(Instr("MOV_X_TO_V", dst=("v1",), src=("x3",), lane=1))
    for j in range(N_R):
        for h in range(2):  # h=0: rows 0-7, h=1: rows 8-15
            src16 = _ACC16[(j, h)]
            base_slot = j * M_R + h * 8  # first of 8 int32 slots
            g0, g1 = base_slot // 4, base_slot // 4 + 1
            d0 = _acc32_reg(g0) or ("v0" if g0 == 14 else "v1")
            d1 = _acc32_reg(g1) or ("v0" if g1 == 14 else "v1")
            out.append(Instr("SADDW_4S", dst=(d0,), src=(d0, src16)))
            out.append(Instr("SADDW2_4S", dst=(d1,), src=(d1, src16)))
    out.append(Instr("MOV_V_TO_X", dst=("x0",), src=("v0",), lane=0))
    out.append(Instr("MOV_V_TO_X", dst=("x1",), src=("v0",), lane=1))
    out.append(Instr("MOV_V_TO_X", dst=("x2",), src=("v1",), lane=0))
    out.append(Instr("MOV_V_TO_X", dst=("x3",), src=("v1",), lane=1))
    for j in range(N_R):
        for h in range(2):
            out.append(Instr("MOVI_ZERO", dst=(_ACC16[(j, h)],)))


def generate_smlal_kernel(
    bits: int,
    k: int,
    *,
    interleave: bool = True,
    round_steps: int | None = None,
    allow_unsafe: bool = False,
) -> MicroKernel:
    """Generate the Alg. 1 stream for a 16x4 tile over reduction length ``k``.

    Parameters
    ----------
    bits:
        Operand width, 4..8.  Sets the drain interval (= unroll factor).
    k:
        Reduction length (the packed panels hold ``k`` steps).
    interleave:
        Software-pipeline the ``{LD1, LD4R}`` pair of step *s+1* ahead of
        the MACs of step *s* (the paper's prefetch interleaving).  Turning
        this off is the ablation knob for Fig. 7's analysis.
    round_steps:
        Override the drain interval.  Must be >= 1; an interval past the
        overflow-safe :func:`~repro.arm.ratios.smlal_chain_length` raises
        :class:`~repro.errors.ChainOverflowError` at construction time.
    allow_unsafe:
        Skip the chain-length validation (tests use this to build
        deliberately overflowing kernels for the overflow certification).
    """
    if bits not in SMLAL_SCHEME_BITS:
        raise UnsupportedBitsError(bits, "SMLAL scheme covers 4~8-bit")
    if k <= 0:
        raise ShapeError(f"k must be positive, got {k}")
    interval = round_steps if round_steps is not None else round_interval(bits)
    if interval < 1:
        raise ShapeError(f"round interval must be >= 1, got {interval}")
    safe = smlal_chain_length(bits)
    # the effective chain never exceeds k (the final block is shorter)
    if not allow_unsafe and min(interval, k) > safe:
        raise ChainOverflowError(bits, min(interval, k), safe, "SMLAL")

    out: list[Instr] = []
    # prologue: clear every accumulator
    for j in range(N_R):
        for h in range(2):
            out.append(Instr("MOVI_ZERO", dst=(_ACC16[(j, h)],)))
    for g in range(14):
        out.append(Instr("MOVI_ZERO", dst=(f"v{18 + g}",)))
    for i in range(4):
        out.append(Instr("MOV_X_IMM", dst=(f"x{i}",), imm=0))
    out.append(Instr("MOV_X_IMM", dst=("x9",), imm=k))  # loop counter

    a_regs = ("v0", "v1")
    b_groups = (["v2", "v3", "v4", "v5"], ["v6", "v7", "v8", "v9"])

    def emit_loads(step: int, group: int) -> None:
        out.append(Instr("LD1_16B", dst=(a_regs[group],),
                         mem=MemRef("A", step * M_R)))
        out.append(Instr("LD4R_B", dst=tuple(b_groups[group]),
                         mem=MemRef("B", step * N_R)))

    step = 0
    while step < k:
        block = min(interval, k - step)
        if interleave:
            emit_loads(step, 0)  # block prologue: fill group 0
            for s in range(block):
                group = s % 2
                if s + 1 < block:
                    emit_loads(step + s + 1, 1 - group)  # prefetch next step
                _emit_macs(out, a_regs[group], b_groups[group])
        else:
            for s in range(block):
                emit_loads(step + s, 0)
                _emit_macs(out, a_regs[0], b_groups[0])
        step += block
        _emit_drain(out)
        out.append(Instr("SUBS", dst=("x9",), src=("x9",), imm=block))
        out.append(Instr("B_NE"))

    # epilogue: merge the x-spilled accumulators and store C column-major
    for g in range(14):
        out.append(
            Instr("ST1_16B", src=(f"v{18 + g}",), mem=MemRef("C", g * 16))
        )
    out.append(Instr("MOV_X_TO_V", dst=("v0",), src=("x0",), lane=0))
    out.append(Instr("MOV_X_TO_V", dst=("v0",), src=("x1",), lane=1))
    out.append(Instr("MOV_X_TO_V", dst=("v1",), src=("x2",), lane=0))
    out.append(Instr("MOV_X_TO_V", dst=("v1",), src=("x3",), lane=1))
    out.append(Instr("ST1_16B", src=("v0",), mem=MemRef("C", 14 * 16)))
    out.append(Instr("ST1_16B", src=("v1",), mem=MemRef("C", 15 * 16)))

    return MicroKernel(
        name=f"smlal{bits}",
        stream=tuple(out),
        m_r=M_R,
        n_r=N_R,
        k=k,
        bits=bits,
        a_bytes=k * M_R,
        b_bytes=k * N_R,
        c_bytes=M_R * N_R * 4,
    )


def theoretical_chain(bits: int) -> int:
    """Expose the safe chain length for documentation/reporting."""
    return smlal_chain_length(bits)
