"""The ncnn-style 8-bit baseline kernel (Sec. 5.2, second paragraph).

ncnn "stores the 8-bit input into a 16-bit register, and uses 16-bit SMLAL
instruction to compute and accumulate the result to a 32-bit register":

* per K step, the 8 A bytes and 4 B bytes are widened with ``SSHLL``,
* by-element ``SMLAL.4S``/``SMLAL2.4S`` multiply the widened A column by
  each widened B value and accumulate *directly* into int32 lanes,
* no drains are ever needed (int32 accumulators cannot realistically
  overflow within a layer), but each instruction only covers 4 MAC lanes —
  half of the paper scheme's ``SMLAL.8H`` and a quarter of ``MLA.16B``.

Tile: 8x4.  Register allocation: ``v2``/``v4`` raw A bytes (pipelined
pair), ``v3``/``v5`` raw B bytes, ``v0``/``v6`` widened A, ``v1``/``v7``
widened B, ``v8~v15`` int32 accumulators (col j in v8+2j / v9+2j).
"""

from __future__ import annotations

from ...errors import ShapeError
from ..isa import Instr, MemRef
from .base import MicroKernel

M_R = 8
N_R = 4

#: raw-load and widened registers for the two software-pipeline groups
_GROUPS = (
    {"a_raw": "v2", "b_raw": "v3", "a_wide": "v0", "b_wide": "v1"},
    {"a_raw": "v4", "b_raw": "v5", "a_wide": "v6", "b_wide": "v7"},
)


def _acc(j: int, half: int) -> str:
    """int32 accumulator for column j, rows ``4*half .. 4*half+3``."""
    return f"v{8 + 2 * j + half}"


def generate_ncnn_kernel(k: int, *, interleave: bool = True) -> MicroKernel:
    """Generate the ncnn-like 8-bit stream for an 8x4 tile over ``k``.

    The packed B panel must carry 4 bytes of slack beyond ``k * 4`` (the
    8-byte B load of the final step reads past the last row).
    """
    if k <= 0:
        raise ShapeError(f"k must be positive, got {k}")

    out: list[Instr] = []
    for j in range(N_R):
        for h in range(2):
            out.append(Instr("MOVI_ZERO", dst=(_acc(j, h),)))
    out.append(Instr("MOV_X_IMM", dst=("x9",), imm=k))

    def emit_loads_widen(step: int, g: int) -> None:
        grp = _GROUPS[g]
        out.append(Instr("LD1_8B", dst=(grp["a_raw"],), mem=MemRef("A", step * M_R)))
        out.append(Instr("LD1_8B", dst=(grp["b_raw"],), mem=MemRef("B", step * N_R)))
        out.append(Instr("SSHLL_8H", dst=(grp["a_wide"],), src=(grp["a_raw"],)))
        out.append(Instr("SSHLL_8H", dst=(grp["b_wide"],), src=(grp["b_raw"],)))

    def emit_macs(g: int) -> None:
        grp = _GROUPS[g]
        for j in range(N_R):
            out.append(
                Instr("SMLAL_4S_LANE", dst=(_acc(j, 0),),
                      src=(grp["a_wide"], grp["b_wide"]), lane=j)
            )
            out.append(
                Instr("SMLAL2_4S_LANE", dst=(_acc(j, 1),),
                      src=(grp["a_wide"], grp["b_wide"]), lane=j)
            )

    if interleave:
        emit_loads_widen(0, 0)
        for s in range(k):
            g = s % 2
            if s + 1 < k:
                emit_loads_widen(s + 1, 1 - g)
            emit_macs(g)
    else:
        for s in range(k):
            emit_loads_widen(s, 0)
            emit_macs(0)
    out.append(Instr("SUBS", dst=("x9",), src=("x9",), imm=k))
    out.append(Instr("B_NE"))

    for j in range(N_R):
        for h in range(2):
            out.append(
                Instr("ST1_16B", src=(_acc(j, h),),
                      mem=MemRef("C", (j * M_R + 4 * h) * 4))
            )

    return MicroKernel(
        name="ncnn8",
        stream=tuple(out),
        m_r=M_R,
        n_r=N_R,
        k=k,
        bits=8,
        a_bytes=k * M_R,
        b_bytes=k * N_R + 4,  # slack for the 8-byte load of the last step
        c_bytes=M_R * N_R * 4,
    )
