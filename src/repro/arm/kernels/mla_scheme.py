"""The 2~3-bit GEMM micro-kernel: MLA + two-level SADDW.

Register allocation (Sec. 3.3, "simpler register allocation mechanism"):

* ``v0~v3``   — Matrix A (64 rows of one K column: 4 x 16 int8 lanes),
* ``v4~v7``   — Matrix B (one replicated value per step, 4-deep rotation),
* ``v8~v11``  — int8 partial accumulators (64 lanes),
* ``v12~v19`` — int16 accumulators (64 lanes),
* ``v20~v31`` — 48 of the 64 int32 accumulators,
* ``x0~x7``   — the remaining 16 int32 accumulators (rows 48~63), shuttled
  through ``v0~v3`` during the second-level drain.

The tile is 64x1.  Every K step costs 4 ``LD1`` (64 A bytes), one ``LD1R``
(1 replicated B byte) and 4 ``MLA`` (64 MACs in int8 lanes — twice the MAC
throughput of the SMLAL scheme, Sec. 3.3/3.4).  Every
``mla_chain_length(bits)`` steps (31 for 2-bit, 7 for 3-bit) the int8 lanes
drain into int16; every ``saddw_second_level_interval(bits)`` first-level
drains the int16 lanes drain into int32.
"""

from __future__ import annotations

from ...errors import ChainOverflowError, ShapeError, UnsupportedBitsError
from ..isa import Instr, MemRef
from ..ratios import (
    MLA_SCHEME_BITS,
    mla_chain_length,
    saddw_second_level_interval,
)
from .base import MicroKernel

M_R = 64
N_R = 1

_A_REGS = ("v0", "v1", "v2", "v3")
_B_REGS = ("v4", "v5", "v6", "v7")
_ACC8 = ("v8", "v9", "v10", "v11")
_ACC16 = tuple(f"v{12 + i}" for i in range(8))


def _emit_first_level_drain(out: list[Instr]) -> None:
    """int8 lanes -> int16 lanes, then clear the int8 accumulators."""
    for i, a8 in enumerate(_ACC8):  # a8 holds rows 16i .. 16i+15
        out.append(Instr("SADDW_8H", dst=(_ACC16[2 * i],), src=(_ACC16[2 * i], a8)))
        out.append(
            Instr("SADDW2_8H", dst=(_ACC16[2 * i + 1],), src=(_ACC16[2 * i + 1], a8))
        )
    for a8 in _ACC8:
        out.append(Instr("MOVI_ZERO", dst=(a8,)))


def _emit_second_level_drain(out: list[Instr]) -> None:
    """int16 lanes -> int32 accumulators (v20~v31 + x0~x7 via v0~v3)."""
    # restore the x-spilled rows 48..63 into the scratch A registers
    for t in range(4):  # scratch v0..v3 each hold 4 int32 (one slot group)
        out.append(
            Instr("MOV_X_TO_V", dst=(_A_REGS[t],), src=(f"x{2 * t}",), lane=0)
        )
        out.append(
            Instr("MOV_X_TO_V", dst=(_A_REGS[t],), src=(f"x{2 * t + 1}",), lane=1)
        )
    for s, a16 in enumerate(_ACC16):  # a16 holds rows 8s .. 8s+7
        g0, g1 = 2 * s, 2 * s + 1  # int32 slot groups (4 rows each)
        d0 = f"v{20 + g0}" if g0 < 12 else _A_REGS[g0 - 12]
        d1 = f"v{20 + g1}" if g1 < 12 else _A_REGS[g1 - 12]
        out.append(Instr("SADDW_4S", dst=(d0,), src=(d0, a16)))
        out.append(Instr("SADDW2_4S", dst=(d1,), src=(d1, a16)))
    for t in range(4):
        out.append(
            Instr("MOV_V_TO_X", dst=(f"x{2 * t}",), src=(_A_REGS[t],), lane=0)
        )
        out.append(
            Instr("MOV_V_TO_X", dst=(f"x{2 * t + 1}",), src=(_A_REGS[t],), lane=1)
        )
    for a16 in _ACC16:
        out.append(Instr("MOVI_ZERO", dst=(a16,)))


def generate_mla_kernel(
    bits: int,
    k: int,
    *,
    interleave: bool = True,
    chain_steps: int | None = None,
    allow_unsafe: bool = False,
) -> MicroKernel:
    """Generate the MLA-scheme stream for a 64x1 tile over reduction ``k``.

    ``chain_steps`` overrides the first-level drain interval; an interval
    past the overflow-safe :func:`~repro.arm.ratios.mla_chain_length`
    raises :class:`~repro.errors.ChainOverflowError` at construction time
    unless ``allow_unsafe=True`` (tests use it to demonstrate overflow
    past the published chain lengths).
    """
    if bits not in MLA_SCHEME_BITS:
        raise UnsupportedBitsError(bits, "MLA scheme covers 2~3-bit")
    if k <= 0:
        raise ShapeError(f"k must be positive, got {k}")
    chain = chain_steps if chain_steps is not None else mla_chain_length(bits)
    if chain < 1:
        raise ShapeError(f"chain interval must be >= 1, got {chain}")
    safe = mla_chain_length(bits)
    if not allow_unsafe and min(chain, k) > safe:
        raise ChainOverflowError(bits, min(chain, k), safe, "MLA")
    l2_interval = saddw_second_level_interval(bits)

    out: list[Instr] = []
    for r in (*_ACC8, *_ACC16, *(f"v{20 + g}" for g in range(12))):
        out.append(Instr("MOVI_ZERO", dst=(r,)))
    for i in range(8):
        out.append(Instr("MOV_X_IMM", dst=(f"x{i}",), imm=0))
    out.append(Instr("MOV_X_IMM", dst=("x9",), imm=k))

    def emit_a_loads(step: int) -> None:
        for q in range(4):
            out.append(
                Instr("LD1_16B", dst=(_A_REGS[q],),
                      mem=MemRef("A", step * M_R + q * 16))
            )

    def emit_b_load(step: int) -> None:
        out.append(
            Instr("LD1R_B", dst=(_B_REGS[step % 4],), mem=MemRef("B", step * N_R))
        )

    def emit_macs(step: int) -> None:
        b = _B_REGS[step % 4]
        for q in range(4):
            out.append(Instr("MLA_16B", dst=(_ACC8[q],), src=(_A_REGS[q], b)))

    step = 0
    drains_since_l2 = 0
    while step < k:
        block = min(chain, k - step)
        if interleave:
            # fill the 4-deep B rotation, then keep it 4 steps ahead: the
            # replicated byte for step s+4 loads while step s computes;
            # each A quarter for step s+1 loads right after the MLA that
            # frees its register (software pipelining without extra regs)
            for t in range(min(4, block)):
                emit_b_load(step + t)
            emit_a_loads(step)
            for s in range(block):
                cur = step + s
                b = _B_REGS[cur % 4]
                for q in range(4):
                    out.append(Instr("MLA_16B", dst=(_ACC8[q],), src=(_A_REGS[q], b)))
                    if s + 1 < block:
                        out.append(
                            Instr("LD1_16B", dst=(_A_REGS[q],),
                                  mem=MemRef("A", (cur + 1) * M_R + q * 16))
                        )
                if s + 4 < block:
                    emit_b_load(cur + 4)
        else:
            for s in range(block):
                cur = step + s
                emit_a_loads(cur)
                emit_b_load(cur)
                emit_macs(cur)
        step += block
        _emit_first_level_drain(out)
        drains_since_l2 += 1
        if drains_since_l2 >= l2_interval:
            _emit_second_level_drain(out)
            drains_since_l2 = 0
        out.append(Instr("SUBS", dst=("x9",), src=("x9",), imm=block))
        out.append(Instr("B_NE"))

    if drains_since_l2:
        _emit_second_level_drain(out)

    # epilogue: store 64 int32 results (column-major, single column)
    for g in range(12):
        out.append(Instr("ST1_16B", src=(f"v{20 + g}",), mem=MemRef("C", g * 16)))
    for t in range(4):
        out.append(Instr("MOV_X_TO_V", dst=(_A_REGS[t],), src=(f"x{2 * t}",), lane=0))
        out.append(
            Instr("MOV_X_TO_V", dst=(_A_REGS[t],), src=(f"x{2 * t + 1}",), lane=1)
        )
        out.append(
            Instr("ST1_16B", src=(_A_REGS[t],), mem=MemRef("C", (12 + t) * 16))
        )

    return MicroKernel(
        name=f"mla{bits}",
        stream=tuple(out),
        m_r=M_R,
        n_r=N_R,
        k=k,
        bits=bits,
        a_bytes=k * M_R,
        b_bytes=k * N_R,
        c_bytes=M_R * N_R * 4,
    )
