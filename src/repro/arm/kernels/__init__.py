"""ARM micro-kernel generators.

Each generator emits a complete, functionally executable instruction stream
computing one register tile of the GEMM:

* :mod:`smlal_scheme` — the paper's 4~8-bit scheme (Alg. 1): 16x4 tile,
  ``SMLAL/SMLAL2`` into int16 lanes, periodic ``SADDW`` drains into int32.
* :mod:`mla_scheme` — the paper's 2~3-bit scheme: 64x1 tile, ``MLA`` into
  int8 lanes, two-level ``SADDW`` drains.
* :mod:`ncnn_like` — the ncnn 8-bit baseline: widen to int16, by-element
  ``SMLAL`` straight into int32 accumulators (no drains).
* :mod:`popcount_scheme` — the TVM-style 2-bit bit-serial baseline:
  ``AND`` + ``CNT`` + ``UADALP`` over bit-packed planes.

All streams run on :class:`repro.arm.simulator.ArmSimulator` (bit-exact)
and :class:`repro.arm.pipeline.PipelineModel` (cycles).
"""

from .base import MicroKernel
from .smlal_scheme import generate_smlal_kernel
from .mla_scheme import generate_mla_kernel
from .ncnn_like import generate_ncnn_kernel
from .popcount_scheme import generate_popcount_kernel, popcount_pair_weights
from .sdot_scheme import generate_sdot_kernel

__all__ = [
    "MicroKernel",
    "generate_smlal_kernel",
    "generate_mla_kernel",
    "generate_ncnn_kernel",
    "generate_popcount_kernel",
    "generate_sdot_kernel",
    "popcount_pair_weights",
]
