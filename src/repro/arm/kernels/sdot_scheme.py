"""ARMv8.2 SDOT GEMM micro-kernel — the what-if beyond the paper.

Sec. 2.3 explains the paper's ARMv8.1 focus: "In the latest ARMv8.2
architecture, SDOT instruction is introduced to support dot product
calculation with 8-bit input and 32-bit output.  However, ARMv8.1 is still
the dominant architecture".  This module models that successor ISA so the
comparison bench can quantify the claim's flip side: with ``SDOT``,

* 8-bit GEMM reaches 16 MACs per instruction with *direct* int32
  accumulation — no drain rounds, no overflow analysis, no range
  adjustment;
* every bit width below 8 runs at exactly the same speed (operands are
  stored one-per-byte regardless), so the paper's 2~7-bit advantage over
  8-bit disappears on v8.2 — only winograd's range tricks remain.

Tile: 16x4, K consumed 4 steps at a time ("k-groups").  Packed layouts:

* A panel: per k-group, 16 rows x 4 consecutive K bytes, row-major within
  a 4-row quad: register ``v0+q`` lane ``i`` holds row ``4q+i``'s 4 K
  values.
* B panel: per k-group, one register: lane ``j`` holds column ``j``'s 4 K
  values; ``SDOT_4S_LANE`` broadcasts it to a row quad.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ...util import ceil_div
from ..isa import Instr, MemRef
from .base import MicroKernel

M_R = 16
N_R = 4
K_GROUP = 4

#: double-buffered operand sets: accumulators own v8~v23, so the second
#: set lives in the high registers
_A_SETS = (("v0", "v1", "v2", "v3"), ("v24", "v25", "v26", "v27"))
_B_SET = ("v4", "v28")


def _acc(q: int, j: int) -> str:
    """int32 accumulator for row quad ``q``, column ``j``: v8 + 4j + q."""
    return f"v{8 + 4 * j + q}"


def pack_a_sdot(a: np.ndarray) -> np.ndarray:
    """Pack A (m x k) into the SDOT k-grouped layout (zero-padded)."""
    if a.ndim != 2:
        raise ShapeError("pack_a_sdot expects a 2-D matrix")
    m, k = a.shape
    mp = ceil_div(m, M_R) * M_R
    kg = ceil_div(k, K_GROUP)
    buf = np.zeros((mp // M_R, kg, M_R, K_GROUP), dtype=np.int8)
    ap = np.zeros((mp, kg * K_GROUP), dtype=np.int8)
    ap[:m, :k] = a
    for p in range(mp // M_R):
        for g in range(kg):
            buf[p, g] = ap[p * M_R : (p + 1) * M_R,
                           g * K_GROUP : (g + 1) * K_GROUP]
    return buf.reshape(-1)


def pack_b_sdot(b: np.ndarray) -> np.ndarray:
    """Pack B (k x n) into the SDOT k-grouped layout (zero-padded)."""
    if b.ndim != 2:
        raise ShapeError("pack_b_sdot expects a 2-D matrix")
    k, n = b.shape
    np_ = ceil_div(n, N_R) * N_R
    kg = ceil_div(k, K_GROUP)
    bp = np.zeros((kg * K_GROUP, np_), dtype=np.int8)
    bp[:k, :n] = b
    buf = np.zeros((np_ // N_R, kg, N_R, K_GROUP), dtype=np.int8)
    for p in range(np_ // N_R):
        for g in range(kg):
            # lane j = column j's 4 consecutive K values
            buf[p, g] = bp[g * K_GROUP : (g + 1) * K_GROUP,
                           p * N_R : (p + 1) * N_R].T
    return buf.reshape(-1)


def generate_sdot_kernel(k: int, *, interleave: bool = True) -> MicroKernel:
    """Generate the ARMv8.2 stream for a 16x4 tile over reduction ``k``.

    No drains: SDOT accumulates straight into the 16 int32 accumulator
    registers (v8~v23) and stores once at the end.
    """
    if k <= 0:
        raise ShapeError(f"k must be positive, got {k}")
    kg = ceil_div(k, K_GROUP)

    out: list[Instr] = []
    for q in range(4):
        for j in range(N_R):
            out.append(Instr("MOVI_ZERO", dst=(_acc(q, j),)))
    out.append(Instr("MOV_X_IMM", dst=("x9",), imm=kg))

    def load_instrs(g: int, s: int) -> list[Instr]:
        loads = [
            Instr("LD1_16B", dst=(_A_SETS[s][q],),
                  mem=MemRef("A", g * M_R * K_GROUP + q * 16))
            for q in range(4)
        ]
        loads.append(Instr("LD1_16B", dst=(_B_SET[s],),
                           mem=MemRef("B", g * N_R * K_GROUP)))
        return loads

    if interleave:
        # double-buffered software pipeline: while group g's SDOTs execute,
        # group g+1's operands stream into the alternate register set
        out.extend(load_instrs(0, 0))
        for g in range(kg):
            s = g % 2
            pending = load_instrs(g + 1, 1 - s) if g + 1 < kg else []
            n_emitted = 0
            for j in range(N_R):
                for q in range(4):
                    out.append(Instr("SDOT_4S_LANE", dst=(_acc(q, j),),
                                     src=(_A_SETS[s][q], _B_SET[s]), lane=j))
                    if pending and n_emitted < len(pending):
                        out.append(pending[n_emitted])
                        n_emitted += 1
            out.extend(pending[n_emitted:])
            out.append(Instr("SUBS", dst=("x9",), src=("x9",), imm=1))
            out.append(Instr("B_NE"))
    else:
        for g in range(kg):
            out.extend(load_instrs(g, 0))
            for q in range(4):
                for j in range(N_R):
                    out.append(Instr("SDOT_4S_LANE", dst=(_acc(q, j),),
                                     src=(_A_SETS[0][q], _B_SET[0]), lane=j))
            out.append(Instr("SUBS", dst=("x9",), src=("x9",), imm=1))
            out.append(Instr("B_NE"))

    # store column-major: slot = j * 16 + 4q + lane
    for j in range(N_R):
        for q in range(4):
            out.append(Instr("ST1_16B", src=(_acc(q, j),),
                             mem=MemRef("C", (j * M_R + 4 * q) * 4)))

    return MicroKernel(
        name="sdot8",
        stream=tuple(out),
        m_r=M_R,
        n_r=N_R,
        k=k,
        bits=8,
        a_bytes=kg * M_R * K_GROUP,
        b_bytes=kg * N_R * K_GROUP,
        c_bytes=M_R * N_R * 4,
    )


def execute_sdot_tile(kern: MicroKernel, a: np.ndarray, b: np.ndarray,
                      **kwargs) -> np.ndarray:
    """Functionally run the SDOT stream on raw (m_r x k) / (k x n_r)
    operands through the packed layouts."""
    return kern.execute(pack_a_sdot(a), pack_b_sdot(b), **kwargs)
