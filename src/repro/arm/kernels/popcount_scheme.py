"""TVM-style bit-serial (popcount) 2-bit kernel — the Fig. 9 baseline.

Following Cowan et al. [3], operands are decomposed into bit planes and
bit-packed (one bit per K element); a binary dot product is then
``popcount(AND)``, vectorized as ``AND.16B`` + ``CNT.16B`` +
``UADALP.8H`` over 128 K bits at a time.

Tile: 2x2 outputs.  For 2-bit x 2-bit (A2W2) there are 4 plane pairs per
output, each with its own popcount accumulator, so a tile needs
``2*2*4 = 16`` accumulator registers (``v16~v31``); ``v0~v3`` hold A plane
chunks, ``v4~v7`` B plane chunks, ``v8``/``v9`` are the AND/CNT temps.

The stream accumulates raw popcounts per (output, plane pair); the final
signed combination

    acc[(pa, pw)] * sign(pa) * sign(pw) * 2**(pa+pw)

is folded host-side by :func:`execute_popcount` (an analytic epilogue
charge covers it in the cost model) — see DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError, UnsupportedBitsError
from ...util import ceil_div
from ..isa import Instr, MemRef
from ..simulator import ArmSimulator
from .base import MicroKernel

M_R = 2
N_R = 2
BITS = 2
_CHUNK_BITS = 128
_CHUNK_BYTES = 16

_A_REGS = ("v0", "v1", "v2", "v3")  # (row, plane)
_B_REGS = ("v4", "v5", "v6", "v7")  # (col, plane)
_TMP_AND = "v8"
_TMP_CNT = "v9"


def _acc_reg(row: int, col: int, pa: int, pw: int) -> str:
    """Accumulator register for output (row, col), plane pair (pa, pw)."""
    return f"v{16 + ((row * N_R + col) * BITS + pa) * BITS + pw}"


def popcount_pair_weights(bits_a: int = BITS, bits_w: int = BITS) -> dict[tuple[int, int], int]:
    """Signed weight of each plane pair in the final combination."""
    def w(p: int, b: int) -> int:
        return -(1 << p) if p == b - 1 else (1 << p)

    return {
        (pa, pw): w(pa, bits_a) * w(pw, bits_w)
        for pa in range(bits_a)
        for pw in range(bits_w)
    }


def pack_bitplane(plane: np.ndarray) -> np.ndarray:
    """Bit-pack a {0,1} vector, LSB-first within each byte, padded with 0."""
    plane = np.asarray(plane)
    if plane.size and (plane.min() < 0 or plane.max() > 1):
        raise ShapeError("bit plane must contain only 0/1")
    return np.packbits(plane.astype(np.uint8), bitorder="little")


def generate_popcount_kernel(k: int, *, bits: int = BITS) -> MicroKernel:
    """Generate the bit-serial stream for a 2x2 tile over reduction ``k``.

    Buffer layout (both planes bit-packed, chunk-padded):

    * ``A``: plane-major per row: ``row * bits * chunk_bytes_total`` ...
      i.e. ``A[(row * bits + plane) * kbytes + chunk]``,
    * ``B``: same structure per column.
    """
    if bits != BITS:
        raise UnsupportedBitsError(bits, "popcount kernel models the A2W2 case")
    if k <= 0:
        raise ShapeError(f"k must be positive, got {k}")
    chunks = ceil_div(k, _CHUNK_BITS)
    kbytes = chunks * _CHUNK_BYTES

    out: list[Instr] = []
    for row in range(M_R):
        for col in range(N_R):
            for pa in range(BITS):
                for pw in range(BITS):
                    out.append(Instr("MOVI_ZERO", dst=(_acc_reg(row, col, pa, pw),)))
    out.append(Instr("MOV_X_IMM", dst=("x9",), imm=chunks))

    for ch in range(chunks):
        base = ch * _CHUNK_BYTES
        for row in range(M_R):
            for pa in range(BITS):
                out.append(
                    Instr("LD1_16B", dst=(_A_REGS[row * BITS + pa],),
                          mem=MemRef("A", (row * BITS + pa) * kbytes + base))
                )
        for col in range(N_R):
            for pw in range(BITS):
                out.append(
                    Instr("LD1_16B", dst=(_B_REGS[col * BITS + pw],),
                          mem=MemRef("B", (col * BITS + pw) * kbytes + base))
                )
        for row in range(M_R):
            for col in range(N_R):
                for pa in range(BITS):
                    for pw in range(BITS):
                        out.append(
                            Instr("AND_16B", dst=(_TMP_AND,),
                                  src=(_A_REGS[row * BITS + pa],
                                       _B_REGS[col * BITS + pw]))
                        )
                        out.append(Instr("CNT_16B", dst=(_TMP_CNT,), src=(_TMP_AND,)))
                        out.append(
                            Instr("UADALP_8H", dst=(_acc_reg(row, col, pa, pw),),
                                  src=(_TMP_CNT,))
                        )
        out.append(Instr("SUBS", dst=("x9",), src=("x9",), imm=1))
        out.append(Instr("B_NE"))

    return MicroKernel(
        name=f"popcount{bits}",
        stream=tuple(out),
        m_r=M_R,
        n_r=N_R,
        k=k,
        bits=bits,
        a_bytes=M_R * BITS * kbytes,
        b_bytes=N_R * BITS * kbytes,
        c_bytes=M_R * N_R * 4,
    )


def execute_popcount(
    kernel: MicroKernel,
    a_rows: np.ndarray,
    b_cols: np.ndarray,
) -> np.ndarray:
    """Functionally execute the popcount stream and fold the signed planes.

    ``a_rows``: int array ``(m_r, k)`` of 2-bit A values (tile rows);
    ``b_cols``: int array ``(n_r, k)`` of 2-bit B values (tile columns).
    Returns the exact ``(m_r, n_r)`` int64 tile.
    """
    from ...conv.popcount import to_bitplanes

    if a_rows.shape != (kernel.m_r, kernel.k) or b_cols.shape != (kernel.n_r, kernel.k):
        raise ShapeError(
            f"operands {a_rows.shape}/{b_cols.shape} do not match "
            f"tile ({kernel.m_r}, {kernel.n_r}) x k={kernel.k}"
        )
    chunks = ceil_div(kernel.k, _CHUNK_BITS)
    kbytes = chunks * _CHUNK_BYTES

    def pack_operand(values: np.ndarray, count: int) -> np.ndarray:
        planes = to_bitplanes(values, BITS)  # (bits, count, k)
        buf = np.zeros(count * BITS * kbytes, dtype=np.uint8)
        for idx in range(count):
            for p in range(BITS):
                packed = pack_bitplane(planes[p, idx])
                off = (idx * BITS + p) * kbytes
                buf[off : off + packed.size] = packed
        return buf

    a_buf = pack_operand(a_rows, kernel.m_r)
    b_buf = pack_operand(b_cols, kernel.n_r)
    sim = ArmSimulator({"A": a_buf, "B": b_buf, "C": np.zeros(kernel.c_bytes, np.uint8)})
    sim.run(list(kernel.stream))

    weights = popcount_pair_weights()
    tile = np.zeros((kernel.m_r, kernel.n_r), dtype=np.int64)
    for row in range(kernel.m_r):
        for col in range(kernel.n_r):
            total = 0
            for (pa, pw), wgt in weights.items():
                lanes = sim.regs.v_u16(_acc_reg(row, col, pa, pw))
                total += wgt * int(lanes.astype(np.int64).sum())
            tile[row, col] = total
    return tile
