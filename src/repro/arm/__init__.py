"""Simulated ARMv8.1 (NEON) architecture.

Two cooperating layers reproduce what the paper hand-writes in assembly:

* :mod:`repro.arm.simulator` — a *functional* executor for the NEON subset
  the kernels use, with exact wrap-around (non-saturating) semantics, so
  the overflow analysis of Sec. 3.3 is checkable bit-for-bit.
* :mod:`repro.arm.pipeline` — an in-order dual-issue *cost* model with a
  Cortex-A53-flavored port/latency table; the same instruction streams the
  generators emit are statically scheduled to get cycle counts.

Kernel generators for the paper's instruction schemes (Alg. 1 and the
2~3-bit MLA scheme), the ncnn-like baseline and the TVM-like popcount
baseline live in :mod:`repro.arm.kernels`.
"""

from .isa import Instr, MemRef, VREG, XREG
from .registers import RegisterFile
from .simulator import ArmSimulator
from .pipeline import CostTable, A53_COST_TABLE, PipelineModel, PipelineResult
from .ratios import (
    smlal_chain_length,
    mla_chain_length,
    chain_table,
    saddw_second_level_interval,
)

__all__ = [
    "Instr",
    "MemRef",
    "VREG",
    "XREG",
    "RegisterFile",
    "ArmSimulator",
    "CostTable",
    "A53_COST_TABLE",
    "PipelineModel",
    "PipelineResult",
    "smlal_chain_length",
    "mla_chain_length",
    "chain_table",
    "saddw_second_level_interval",
]
