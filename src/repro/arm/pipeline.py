"""In-order dual-issue pipeline cost model (Cortex-A53 flavored).

The Raspberry Pi 3B's Cortex-A53 is a 2-wide in-order core with a single
load/store pipe and a single 64-bit NEON pipe.  Instruction streams from the
kernel generators are *statically scheduled* under those constraints:

* at most 2 instructions issue per cycle, strictly in program order;
* at most 1 memory op per cycle; multi-beat memory ops occupy the pipe for
  several cycles;
* NEON ops producing a 128-bit result occupy the 64-bit NEON datapath for
  2 cycles (this is exactly why ``MLA.16B`` has twice the MAC throughput of
  ``SMLAL.8H`` per the paper — same 2-cycle occupancy, 16 vs 8 lanes);
* RAW hazards stall issue until the producing instruction's latency has
  elapsed — except accumulator chains (``SMLAL``/``MLA``/``SADDW``/
  ``UADALP`` feeding the same destination), which hardware forwards with an
  effective 1-cycle latency.  Without that forwarding, long MAC chains
  would be latency-bound and the paper's schemes could not work at all.

The table values are documented estimates in the spirit of the A53
software-optimization data; what the experiments rely on is the *relative*
structure (lanes per instruction, load vs arithmetic cost, the price of
drain rounds and of v<->x moves), not any single absolute number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import SimulationError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .isa import ACCUM_OPS, Instr, LOAD_OPS, STORE_OPS


@dataclass(frozen=True)
class InstrCost:
    """Issue/latency description of one opcode."""

    mem_cycles: int = 0  #: cycles the load/store pipe is occupied
    neon_cycles: int = 0  #: cycles the NEON pipe is occupied
    latency: int = 1  #: producer -> general consumer latency
    acc_latency: int | None = None  #: producer -> accumulate-chain latency


def _table() -> dict[str, InstrCost]:
    return {
        # loads / stores -----------------------------------------------------
        "LD1_16B": InstrCost(mem_cycles=2, latency=4),
        "LD1_8B": InstrCost(mem_cycles=1, latency=4),
        # one 32-bit load + 4-way splat; far cheaper than 4 scalar loads,
        # which is the entire point of the re-designed GEMM (Fig. 1b)
        "LD4R_B": InstrCost(mem_cycles=2, latency=5),
        "LD1R_B": InstrCost(mem_cycles=1, latency=4),
        "ST1_16B": InstrCost(mem_cycles=2, latency=1),
        "LDR_X": InstrCost(mem_cycles=1, latency=3),
        "STR_X": InstrCost(mem_cycles=1, latency=1),
        # multiply-accumulate -------------------------------------------------
        # 128-bit results on a 64-bit datapath: 2-cycle occupancy
        "SMLAL_8H": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        "SMLAL2_8H": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        "SMLAL_4S": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        "SMLAL2_4S": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        "SMLAL_4S_LANE": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        "SMLAL2_4S_LANE": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        "MLA_16B": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        # ARMv8.2 extension (not on the Pi 3B's A53; modeled for the
        # what-if comparison bench): 16 MACs per instruction, int32 out
        "SDOT_4S": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        "SDOT_4S_LANE": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        # widening adds / drains ----------------------------------------------
        "SADDW_8H": InstrCost(neon_cycles=2, latency=3, acc_latency=1),
        "SADDW2_8H": InstrCost(neon_cycles=2, latency=3, acc_latency=1),
        "SADDW_4S": InstrCost(neon_cycles=2, latency=3, acc_latency=1),
        "SADDW2_4S": InstrCost(neon_cycles=2, latency=3, acc_latency=1),
        "UADALP_8H": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        "UADALP_4S": InstrCost(neon_cycles=2, latency=4, acc_latency=1),
        # other vector ---------------------------------------------------------
        "SSHLL_8H": InstrCost(neon_cycles=2, latency=3),
        "SSHLL2_8H": InstrCost(neon_cycles=2, latency=3),
        "AND_16B": InstrCost(neon_cycles=2, latency=2),
        "CNT_16B": InstrCost(neon_cycles=2, latency=3),
        "ADD_4S": InstrCost(neon_cycles=2, latency=2),
        "MOVI_ZERO": InstrCost(neon_cycles=1, latency=1),
        # v <-> x transfers are the expensive part of the Alg. 1 spill
        # dance: the A53 transfers through memory-pipe-adjacent paths with
        # multi-cycle occupancy, which is precisely what erodes the 8-bit
        # scheme (its drain fires every 2 K-steps, Sec. 5.2)
        "MOV_V_TO_X": InstrCost(neon_cycles=2, latency=5),
        "MOV_X_TO_V": InstrCost(neon_cycles=2, latency=5),
        # scalar bookkeeping -----------------------------------------------------
        "MOV_X_IMM": InstrCost(latency=1),
        "SUBS": InstrCost(latency=1),
        "ADD_X": InstrCost(latency=1),
        "B_NE": InstrCost(latency=1),
    }


@dataclass(frozen=True)
class CostTable:
    """Opcode -> cost mapping plus machine-wide issue parameters."""

    costs: dict[str, InstrCost]
    issue_width: int = 2
    clock_hz: float = 1.2e9  # Raspberry Pi 3B: 1.2 GHz Cortex-A53

    def cost(self, op: str) -> InstrCost:
        try:
            return self.costs[op]
        except KeyError:
            raise SimulationError(f"no cost entry for opcode {op!r}") from None


A53_COST_TABLE = CostTable(costs=_table())


@dataclass
class PipelineResult:
    """Outcome of statically scheduling one stream."""

    cycles: int
    instructions: int
    mem_busy: int  #: cycles the LS pipe was occupied
    neon_busy: int  #: cycles the NEON pipe was occupied
    stall_cycles: int  #: issue-pointer advances forced by hazards/structural

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def seconds(self, table: CostTable = A53_COST_TABLE) -> float:
        return self.cycles / table.clock_hz

    # -- persistence (repro.perf cache of scheduled streams) ----------------

    def to_json(self) -> dict:
        """Plain-dict form for the persistent schedule cache: scheduling a
        micro-kernel stream is deterministic, so the result can be reloaded
        across processes instead of re-scheduling identical streams."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "mem_busy": self.mem_busy,
            "neon_busy": self.neon_busy,
            "stall_cycles": self.stall_cycles,
        }

    @classmethod
    def from_json(cls, data: dict) -> "PipelineResult":
        return cls(
            cycles=int(data["cycles"]),
            instructions=int(data["instructions"]),
            mem_busy=int(data["mem_busy"]),
            neon_busy=int(data["neon_busy"]),
            stall_cycles=int(data["stall_cycles"]),
        )


class PipelineModel:
    """Greedy in-order scheduler over a cost table."""

    def __init__(self, table: CostTable = A53_COST_TABLE) -> None:
        self.table = table

    def schedule(self, stream: Iterable[Instr]) -> PipelineResult:
        table = self.table
        reg_ready: dict[str, int] = {}
        reg_ready_acc: dict[str, int] = {}
        mem_free = 0  # first cycle the LS pipe is free
        neon_free = 0
        cur_cycle = 0
        slots_used = 0
        instructions = 0
        mem_busy = 0
        neon_busy = 0
        ideal = 0

        for ins in stream:
            instructions += 1
            c = table.cost(ins.op)
            is_acc = ins.op in ACCUM_OPS

            # operand readiness (accumulator operand uses forwarded time)
            ready = 0
            for reg in ins.src:
                ready = max(ready, reg_ready.get(reg, 0))
            for reg in ins.dst:
                if is_acc:
                    ready = max(ready, reg_ready_acc.get(reg, 0))
                # non-accumulating writes don't read dst

            t = max(cur_cycle, ready)
            if c.mem_cycles:
                t = max(t, mem_free)
            if c.neon_cycles:
                t = max(t, neon_free)
            if t == cur_cycle and slots_used >= table.issue_width:
                t = cur_cycle + 1
                if c.mem_cycles:
                    t = max(t, mem_free)
                if c.neon_cycles:
                    t = max(t, neon_free)

            # issue at cycle t
            if t > cur_cycle:
                cur_cycle = t
                slots_used = 1
            else:
                slots_used += 1
            if c.mem_cycles:
                mem_free = t + c.mem_cycles
                mem_busy += c.mem_cycles
            if c.neon_cycles:
                neon_free = t + c.neon_cycles
                neon_busy += c.neon_cycles
            for reg in ins.dst:
                reg_ready[reg] = t + c.latency
                reg_ready_acc[reg] = t + (c.acc_latency if c.acc_latency else c.latency)
            ideal += 1

        total = max(cur_cycle + 1, mem_free, neon_free)
        min_possible = max(
            (instructions + table.issue_width - 1) // table.issue_width,
            mem_busy,
            neon_busy,
        )
        result = PipelineResult(
            cycles=total,
            instructions=instructions,
            mem_busy=mem_busy,
            neon_busy=neon_busy,
            stall_cycles=max(0, total - min_possible),
        )
        if obs_trace.active():
            # per-stream scheduling detail, gated: schedule() sits behind
            # the persistent memo but still runs for every novel stream
            obs_metrics.counter("arm_pipeline_streams").inc()
            obs_metrics.counter("arm_pipeline_instructions").inc(instructions)
            obs_metrics.histogram("arm_pipeline_cycles").observe(total)
            obs_metrics.histogram("arm_pipeline_stalls").observe(
                result.stall_cycles)
        return result
