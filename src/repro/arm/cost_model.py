"""Layer-level ARM cost model: machine parameters + tile-cycle estimation.

The micro-kernel cycle counts come from statically scheduling real
instruction streams (:mod:`repro.arm.pipeline`).  This module adds what
surrounds the kernel in a full convolution layer:

* im2col, packing, requantization passes (byte-proportional charges),
* the memory hierarchy: packed-B panel re-reads per row-tile pass served
  from L2 or DRAM depending on footprint, plus the layer's unique DRAM
  traffic,
* per-layer fixed overhead (layer setup, threading handoff).

Machine constants approximate a Raspberry Pi 3B (Cortex-A53 @ 1.2 GHz,
32 KiB L1D / 512 KiB L2, LPDDR2).  As stated in DESIGN.md, the experiments
depend on this model's *structure* — which costs are bit-width-independent,
which scale with tile counts — not on any absolute constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from ..errors import UnsupportedBitsError
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..perf.cache import PersistentCache, code_fingerprint, stable_hash
from ..types import ConvSpec
from .pipeline import A53_COST_TABLE, CostTable, PipelineModel, PipelineResult
from .ratios import MLA_SCHEME_BITS, SMLAL_SCHEME_BITS


@dataclass(frozen=True)
class ArmMachine:
    """Raspberry Pi 3B-flavored machine description (Tab. 1, left column)."""

    name: str = "raspberry-pi-3b"
    clock_hz: float = 1.2e9
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 512 * 1024
    #: sustained copy bandwidths, bytes per cycle (L2 streams benefit from
    #: the A53 hardware prefetcher; DRAM is LPDDR2 shared with the GPU)
    dram_bytes_per_cycle: float = 1.0
    l2_bytes_per_cycle: float = 6.0
    #: byte-proportional pass costs (load+store+loop overhead through cache)
    im2col_cycles_per_byte: float = 0.5
    pack_cycles_per_byte: float = 0.5
    transpose_pack_cycles_per_byte: float = 0.75  # column-major (n_b = 1) pack
    bitpack_cycles_per_byte: float = 2.0  # bit-plane packing (shift/or chains)
    #: per-element epilogue cost: bias + fixed-point requantize + store int8
    requant_cycles_per_elem: float = 2.0
    #: the quantization pipeline around every conv: fp32 activations are
    #: quantized on the way in and int32 results dequantized on the way out
    #: (the same stages the paper's GPU fusion experiment, Fig. 12, shows
    #: costing 15~35% of layer time); scalar-ish on the A53
    quantize_cycles_per_elem: float = 5.0
    dequantize_cycles_per_elem: float = 5.0
    #: winograd transform costs per transformed element (strided gathers +
    #: adds + scattered stores into 16 per-position GEMM operands)
    wino_input_tf_cycles_per_elem: float = 2.5
    wino_output_tf_cycles_per_elem: float = 2.5
    #: fixed per-layer overhead (setup, function dispatch), cycles
    layer_overhead_cycles: float = 20_000.0

    def ms(self, cycles: float) -> float:
        return cycles / self.clock_hz * 1e3


PI3B = ArmMachine()


# ---------------------------------------------------------------------------
# Tile-cycle estimation with linear extrapolation over K
# ---------------------------------------------------------------------------

_EXACT_K_LIMIT = 512  # below this, schedule the real stream for the exact K


def _generate(scheme: str, bits: int, k: int, interleave: bool, round_steps: int | None):
    from .kernels import (
        generate_mla_kernel,
        generate_ncnn_kernel,
        generate_popcount_kernel,
        generate_smlal_kernel,
    )

    if scheme == "smlal":
        return generate_smlal_kernel(
            bits, k, interleave=interleave, round_steps=round_steps
        )
    if scheme == "mla":
        return generate_mla_kernel(
            bits, k, interleave=interleave, chain_steps=round_steps
        )
    if scheme == "ncnn":
        return generate_ncnn_kernel(k, interleave=interleave)
    if scheme == "sdot":
        from .kernels.sdot_scheme import generate_sdot_kernel

        return generate_sdot_kernel(k, interleave=interleave)
    if scheme == "popcount":
        return generate_popcount_kernel(k)
    raise UnsupportedBitsError(bits, f"unknown scheme {scheme!r}")


#: persistent memo of scheduled micro-kernel streams: the static schedule
#: of one (scheme, bits, k, interleave, round_steps) stream is recomputed
#: by every process that prices a layer, yet it is a pure function of the
#: generators + pipeline model — so schedule once, store, and scale.
_SCHEDULE_STORE = PersistentCache("arm-schedule")

_FINGERPRINT: str | None = None


def _code_version() -> str:
    global _FINGERPRINT
    if _FINGERPRINT is None:
        from . import assembler, isa, pipeline, registers
        from . import kernels as _kernels
        from .kernels import base, mla_scheme, ncnn_like, popcount_scheme, smlal_scheme
        from .kernels import sdot_scheme

        _FINGERPRINT = code_fingerprint([
            pipeline, isa, registers, assembler, _kernels,
            base, mla_scheme, ncnn_like, popcount_scheme, smlal_scheme,
            sdot_scheme,
        ])
    return _FINGERPRINT


def schedule_store() -> PersistentCache:
    """The persistent schedule cache (bench/stats introspection)."""
    return _SCHEDULE_STORE


@lru_cache(maxsize=None)
def _schedule_result(
    scheme: str, bits: int, k: int, interleave: bool, round_steps: int | None
) -> PipelineResult:
    digest = stable_hash({
        "scheme": scheme, "bits": bits, "k": k, "interleave": interleave,
        "round_steps": round_steps, "code": _code_version(),
    })
    data = _SCHEDULE_STORE.get(digest)
    if data is not None:
        try:
            result = PipelineResult.from_json(data)
            obs_metrics.counter("arm_schedules", outcome="store_hit").inc()
            return result
        except (KeyError, TypeError, ValueError) as exc:
            # stale/corrupt entry: reschedule below
            obs_log.debug(
                "arm_schedule_cache_stale",
                logger="repro.arm.cost_model",
                digest=digest[:16], error=type(exc).__name__,
            )
    with obs_trace.span(
        "arm.schedule", scheme=scheme, bits=bits, k=k, interleave=interleave
    ):
        kern = _generate(scheme, bits, k, interleave, round_steps)
        result = PipelineModel(A53_COST_TABLE).schedule(kern.stream)
    obs_metrics.counter("arm_schedules", outcome="computed").inc()
    _SCHEDULE_STORE.put(digest, result.to_json())
    return result


def _schedule_cycles(
    scheme: str, bits: int, k: int, interleave: bool, round_steps: int | None
) -> int:
    return _schedule_result(scheme, bits, k, interleave, round_steps).cycles


def clear_schedule_cache(*, persistent: bool = False) -> None:
    """Drop memoized schedules (tests/bench; mirrors
    :func:`repro.gpu.autotune.clear_cache`)."""
    _schedule_result.cache_clear()
    _linear_fit.cache_clear()
    if persistent:
        _SCHEDULE_STORE.clear()


@lru_cache(maxsize=None)
def _linear_fit(
    scheme: str, bits: int, interleave: bool, round_steps: int | None
) -> tuple[float, float]:
    """Fit cycles ~= a + b*k from two scheduled reference streams."""
    k1, k2 = _EXACT_K_LIMIT // 2, _EXACT_K_LIMIT
    c1 = _schedule_cycles(scheme, bits, k1, interleave, round_steps)
    c2 = _schedule_cycles(scheme, bits, k2, interleave, round_steps)
    b = (c2 - c1) / (k2 - k1)
    a = c1 - b * k1
    return a, b


def tile_cycles(
    scheme: str,
    bits: int,
    k: int,
    *,
    interleave: bool = True,
    round_steps: int | None = None,
) -> float:
    """Cycles for one register-tile kernel invocation over reduction ``k``.

    Exact static scheduling for small ``k``; linear extrapolation from two
    scheduled streams beyond (kernel cycles are affine in ``k`` up to drain
    granularity, which the fit's sampling respects).  ``round_steps``
    overrides the drain interval (the winograd path uses the shorter chains
    its transformed operand ranges force, Sec. 3.4).
    """
    if k <= 0:
        raise UnsupportedBitsError(bits, f"k must be positive, got {k}")
    if k <= _EXACT_K_LIMIT:
        return float(_schedule_cycles(scheme, bits, k, interleave, round_steps))
    a, b = _linear_fit(scheme, bits, interleave, round_steps)
    return a + b * k


def tile_cycles_batch(
    scheme: str,
    bits: int,
    ks: "np.ndarray | Sequence[int]",
    *,
    interleave: bool = True,
    round_steps: int | None = None,
) -> np.ndarray:
    """:func:`tile_cycles` over a whole batch of reduction lengths.

    Element ``i`` is bit-identical to ``tile_cycles(scheme, bits, ks[i])``:
    the linear-fit/extrapolation region is one vectorized ``a + b*k``
    expression (same float64 operations per element), and the exact region
    schedules each *distinct* small ``k`` once — so pricing a network's
    layers in one call pays for each unique schedule a single time instead
    of once per layer.
    """
    ks = np.asarray(ks, dtype=np.int64)
    if ks.size and int(ks.min()) <= 0:
        raise UnsupportedBitsError(
            bits, f"k must be positive, got {int(ks.min())}"
        )
    out = np.empty(ks.shape, dtype=np.float64)
    exact = ks <= _EXACT_K_LIMIT
    if exact.any():
        cycles = {
            int(k): float(_schedule_cycles(
                scheme, bits, int(k), interleave, round_steps))
            for k in np.unique(ks[exact])
        }
        out[exact] = [cycles[int(k)] for k in ks[exact]]
    fit = ~exact
    if fit.any():
        a, b = _linear_fit(scheme, bits, interleave, round_steps)
        out[fit] = a + b * ks[fit]
    return out


def scheme_for_bits(bits: int) -> str:
    """The paper's scheme selection (Fig. 3): MLA below 4-bit, else SMLAL."""
    if bits in MLA_SCHEME_BITS:
        return "mla"
    if bits in SMLAL_SCHEME_BITS:
        return "smlal"
    raise UnsupportedBitsError(bits, "ARM path covers 2~8-bit")


def kernel_geometry(scheme: str) -> tuple[int, int]:
    """(m_r, n_r) register-tile shape of a scheme."""
    return {
        "smlal": (16, 4),
        "mla": (64, 1),
        "ncnn": (8, 4),
        "sdot": (16, 4),
        "popcount": (2, 2),
    }[scheme]


def is_pointwise_unit_stride(spec: ConvSpec) -> bool:
    """1x1 stride-1 unpadded convolutions skip im2col entirely — the input
    already *is* the GEMM B matrix."""
    return spec.kernel == (1, 1) and spec.stride == (1, 1) and spec.padding == (0, 0)
