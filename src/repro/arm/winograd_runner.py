"""Winograd F(2x2, 3x3) convolution on the simulated ARM CPU (Sec. 3.4).

The transform domain turns one 3x3/s1 convolution into 16 independent
GEMMs of shape ``(Cout) x (Cin) x (nTiles)`` — one per position of the 4x4
transformed tile — cutting multiplies by 2.25x, at the price of

* input/output transform passes,
* *shorter SMLAL chains*: the transformed operand ranges grow 4x (input)
  and 9/4x (weight), so the safe accumulation chain shrinks sharply with
  bit width (e.g. 56 / 14 / 3 steps for 4/5/6-bit), which is exactly why
  the paper limits winograd to 4~6-bit and why its advantage fades at
  6-bit (Fig. 8).

The ncnn baseline's own int8 winograd path is modeled with the same
structure, using the ncnn kernel (int16-widened operands, no chain limit,
2-byte transformed data).
"""

from __future__ import annotations

import numpy as np

from ..conv.winograd import (
    AT,
    winograd_transform_input,
    winograd_transform_weight,
    _extract_tiles,
)
from ..errors import ShapeError, UnsupportedBitsError
from ..quant.ranges import qrange
from ..types import ConvSpec, GemmShape, Layout
from ..util import ceil_div, round_up
from .conv_runner import ArmConvPerf, _gemm_mem_cycles, _quant_pass_cycles as _quant_pass
from .cost_model import PI3B, ArmMachine, kernel_geometry, tile_cycles
from .ratios import UNROLL_FACTORS

_INT16_MAX = (1 << 15) - 1

#: bit widths the paper applies winograd to (Sec. 3.4)
WINOGRAD_BITS = (4, 5, 6)


def winograd_chain_length(bits: int) -> int:
    """Safe SMLAL chain with *transformed* operand ranges (paper mode).

    Transformed input magnitude: ``4 * 2**(bits-1)``; transformed weight
    magnitude: ``ceil(9/4 * 2**(bits-1))`` (stored rounded in int8).
    """
    if bits not in WINOGRAD_BITS:
        raise UnsupportedBitsError(bits, "winograd kernels cover 4~6-bit")
    half = qrange(bits).max_abs  # 2**(bits-1)
    in_t = 4 * half
    w_t = -(-9 * half // 4)  # ceil(9/4 * half)
    n = _INT16_MAX // (in_t * w_t)
    if n < 1:
        raise UnsupportedBitsError(bits, "transformed range leaves no safe chain")
    return n


def exact_scaled_chain_length(bits: int) -> int:
    """Safe chain in the *exact* integer mode (weights scaled by 4).

    Scaled transformed weight magnitude is ``9 * 2**(bits-1)`` — int8 only
    for 4-bit, which is why the functional instruction-level winograd test
    runs at 4-bit (DESIGN.md deviation note).
    """
    half = qrange(bits).max_abs
    in_t = 4 * half
    w_t = 9 * half
    if w_t > 127 or in_t > 128:
        raise UnsupportedBitsError(bits, "scaled operands exceed int8 storage")
    return _INT16_MAX // (in_t * w_t)


def _tile_counts(spec: ConvSpec) -> int:
    return ceil_div(spec.out_height, 2) * ceil_div(spec.out_width, 2)


def time_winograd_conv(
    spec: ConvSpec,
    bits: int,
    *,
    scheme: str = "smlal",
    machine: ArmMachine = PI3B,
) -> ArmConvPerf:
    """Cycle estimate of the winograd path.

    ``scheme="smlal"`` is our 4~6-bit kernel with the shortened chain;
    ``scheme="ncnn"`` is the baseline's int8 winograd (widened int16 data,
    no drains).
    """
    if not spec.is_winograd_eligible():
        raise ShapeError(f"{spec.name} is not 3x3/s1; winograd inapplicable")
    n_tiles = _tile_counts(spec)
    gemm = GemmShape(m=spec.out_channels, k=spec.in_channels, n=n_tiles)
    m_r, n_r = kernel_geometry("smlal" if scheme == "smlal" else "ncnn")

    if scheme == "smlal":
        chain = winograd_chain_length(bits)
        round_steps = min(chain, UNROLL_FACTORS.get(bits, 32))
        per_tile = tile_cycles("smlal", bits, gemm.k, round_steps=round_steps)
        operand_bytes = 1.0
    elif scheme == "ncnn":
        per_tile = tile_cycles("ncnn", 8, gemm.k)
        operand_bytes = 2.0  # ncnn keeps transformed data in int16
    else:
        raise UnsupportedBitsError(bits, f"unknown winograd scheme {scheme!r}")

    tiles = ceil_div(gemm.m, m_r) * ceil_div(gemm.n, n_r)
    kernel = spec.batch * 16 * tiles * per_tile

    v_elems = 16 * spec.in_channels * n_tiles
    y_elems = 16 * spec.out_channels * n_tiles
    tf_c = spec.batch * (
        v_elems * machine.wino_input_tf_cycles_per_elem
        + y_elems * machine.wino_output_tf_cycles_per_elem
    )

    pack_bytes = 16 * gemm.k * round_up(gemm.n, n_r) * operand_bytes
    pack_c = spec.batch * pack_bytes * machine.pack_cycles_per_byte

    requant_c = spec.batch * spec.out_channels * spec.out_spatial * (
        machine.requant_cycles_per_elem
    )

    mem_c = spec.batch * 16 * _gemm_mem_cycles(
        gemm,
        m_r,
        n_r,
        machine,
        extra_dram_bytes=spec.input_elems / spec.batch / 16,
        operand_bytes_per_elem=operand_bytes,
    )

    return ArmConvPerf(
        spec_name=spec.name,
        scheme=f"winograd-{scheme}",
        bits=bits,
        kernel_cycles=kernel,
        im2col_cycles=tf_c,  # the transform pass plays im2col's role
        pack_cycles=pack_c,
        requant_cycles=requant_c,
        mem_cycles=mem_c,
        overhead_cycles=machine.layer_overhead_cycles,
        quant_cycles=_quant_pass(spec, machine),
    )


# ---------------------------------------------------------------------------
# Functional instruction-level execution (exact mode, 4-bit)
# ---------------------------------------------------------------------------


def execute_winograd_arm(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
    bits: int = 4,
    *,
    check_overflow: bool = True,
) -> np.ndarray:
    """Run winograd through real SMLAL kernel streams (exact integer mode).

    Host code performs the linear transforms (they are the "transform
    engine"; the paper's contribution is the GEMM kernel); the 16
    transform-domain GEMMs execute instruction-by-instruction on the
    functional simulator.  Exact only while the scaled transformed weight
    fits int8, i.e. 4-bit operands (see DESIGN.md).
    """
    from ..conv.padding import pack_gemm_operands
    from .kernels import generate_smlal_kernel

    if bits != 4:
        raise UnsupportedBitsError(
            bits, "instruction-level exact winograd requires 4-bit operands"
        )
    if not spec.is_winograd_eligible():
        raise ShapeError(f"{spec.name} is not 3x3/s1; winograd inapplicable")
    x = np.asarray(x)
    if x.shape != spec.input_shape(Layout.NCHW):
        raise ShapeError(f"{spec.name}: bad input shape {x.shape}")

    u4 = winograd_transform_weight(w, scaled=True)  # (O, I, 4, 4), |.| <= 72
    tiles, th, tw = _extract_tiles(spec, x)
    v = winograd_transform_input(tiles)  # (n, I, th, tw, 4, 4), |.| <= 128?
    if np.abs(u4).max() > 127 or np.abs(v).max() > 127:
        raise UnsupportedBitsError(bits, "transformed operands exceed int8")

    chain = exact_scaled_chain_length(bits)
    kern = generate_smlal_kernel(
        bits, spec.in_channels, round_steps=min(chain, 32)
    )
    n_tiles = th * tw
    m_out = np.zeros(
        (spec.batch, spec.out_channels, n_tiles, 4, 4), dtype=np.int64
    )
    for img in range(spec.batch):
        for uu in range(4):
            for vv in range(4):
                a = u4[:, :, uu, vv].astype(np.int8)  # (O, I)
                b = (
                    v[img, :, :, :, uu, vv]
                    .reshape(spec.in_channels, n_tiles)
                    .astype(np.int8)
                )
                packed = pack_gemm_operands(a, b, kern.m_r, kern.n_r)
                c = np.zeros((packed.m_padded, packed.n_padded), dtype=np.int64)
                for pi in range(packed.m_panels):
                    ap = packed.a_panel(pi).reshape(-1)
                    for pj in range(packed.n_panels):
                        bp = packed.b_panel(pj).reshape(-1)
                        c[
                            pi * kern.m_r : (pi + 1) * kern.m_r,
                            pj * kern.n_r : (pj + 1) * kern.n_r,
                        ] = kern.execute(ap, bp, check_overflow=check_overflow)
                m_out[img, :, :, uu, vv] = c[: spec.out_channels, :n_tiles]

    y4 = np.einsum("pu,notuv,qv->notpq", AT, m_out, AT, optimize=True)
    if np.any(y4 % 4):
        raise ShapeError("internal error: scaled winograd result not divisible by 4")
    y = y4 // 4
    out_full = y.reshape(spec.batch, spec.out_channels, th, tw, 2, 2)
    out_full = out_full.transpose(0, 1, 2, 4, 3, 5).reshape(
        spec.batch, spec.out_channels, th * 2, tw * 2
    )
    return np.ascontiguousarray(
        out_full[:, :, : spec.out_height, : spec.out_width]
    )
