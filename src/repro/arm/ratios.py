"""Overflow-safe accumulation chain lengths (Sec. 3.3).

For two ``b``-bit signed operands the paper executes

    floor( (2**15 - 1) / max|product| )

``SMLAL`` instructions before draining the int16 accumulator with
``SADDW`` (and the analogue with int8 accumulators for ``MLA``).  The
worst-case product uses the *scheme* range of
:func:`repro.quant.ranges.scheme_qrange` — full two's-complement for
2~6-bit, adjusted symmetric for 7~8-bit — which reproduces the published
ratio table exactly:

=====  ==========================  ============
bits   SMLAL : SADDW (16-bit acc)  MLA : SADDW (8-bit acc)
=====  ==========================  ============
2      —                           31 : 1
3      —                           7 : 1
4      511 : 1                     —
5      127 : 1                     —
6      31 : 1                      —
7      8 : 1                       —
8      2 : 1                       —
=====  ==========================  ============
"""

from __future__ import annotations

from ..errors import UnsupportedBitsError
from ..quant.ranges import max_abs_product

_INT16_MAX = (1 << 15) - 1
_INT8_MAX = (1 << 7) - 1

#: bit widths served by each scheme (Sec. 3.3 / Fig. 3)
SMLAL_SCHEME_BITS = (4, 5, 6, 7, 8)
MLA_SCHEME_BITS = (2, 3)

#: K-loop unrolling factors the paper reports for the SMLAL scheme
UNROLL_FACTORS = {4: 32, 5: 24, 6: 16, 7: 8, 8: 2}


def smlal_chain_length(bits: int, *, adjusted: bool | None = None) -> int:
    """Safe number of SMLAL products chained in an int16 accumulator lane."""
    if bits not in SMLAL_SCHEME_BITS:
        raise UnsupportedBitsError(bits, "SMLAL scheme covers 4~8-bit")
    n = _INT16_MAX // max_abs_product(bits, adjusted)
    if n < 1:
        raise UnsupportedBitsError(bits, "no safe SMLAL chain at this range")
    return n


def mla_chain_length(bits: int, *, adjusted: bool | None = None) -> int:
    """Safe number of MLA products chained in an int8 accumulator lane."""
    if bits not in MLA_SCHEME_BITS:
        raise UnsupportedBitsError(bits, "MLA scheme covers 2~3-bit")
    n = _INT8_MAX // max_abs_product(bits, adjusted)
    if n < 1:
        raise UnsupportedBitsError(bits, "no safe MLA chain at this range")
    return n


def chain_length(bits: int) -> int:
    """Chain length under whichever scheme serves ``bits`` (Fig. 3)."""
    if bits in MLA_SCHEME_BITS:
        return mla_chain_length(bits)
    return smlal_chain_length(bits)


def saddw_second_level_interval(bits: int) -> int:
    """MLA scheme only: safe number of *first-level drains* an int16 lane
    absorbs before it must be widened to int32 (the second SADDW level).

    Each first-level drain adds at most ``chain * max|product|`` to an int16
    lane, so the int16 lane survives ``floor(INT16_MAX / that)`` drains.
    """
    if bits not in MLA_SCHEME_BITS:
        raise UnsupportedBitsError(bits, "second-level drain is an MLA-scheme concept")
    per_drain = mla_chain_length(bits) * max_abs_product(bits, None)
    return _INT16_MAX // per_drain


def round_interval(bits: int) -> int:
    """How many K-steps the generated kernels run between drain rounds.

    SMLAL scheme: the paper's unroll factor (always <= the chain length, as
    a test asserts).  MLA scheme: the chain length itself.
    """
    if bits in MLA_SCHEME_BITS:
        return mla_chain_length(bits)
    return min(UNROLL_FACTORS[bits], smlal_chain_length(bits))


def chain_table() -> dict[int, int]:
    """The published table, as data: {bits: chain_length}."""
    return {b: chain_length(b) for b in (*MLA_SCHEME_BITS, *SMLAL_SCHEME_BITS)}
