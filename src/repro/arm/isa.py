"""Instruction definitions for the simulated NEON subset.

Only the instructions the paper's kernels actually use are modeled; each is
implemented twice — functionally (:mod:`repro.arm.simulator`) and in the
cost table (:mod:`repro.arm.pipeline`).  An :class:`Instr` is a plain
record; kernel generators build lists of them ("streams").

Opcode summary (arrangement suffixes follow A64 assembly):

========================  ====================================================
``LD1_16B / LD1_8B``      load 16 / 8 bytes into a vector register
``LD4R_B``                load 4 bytes, byte *i* replicated across all 16
                          lanes of the *i*-th destination register (the
                          load-replicate of Fig. 1b / Alg. 1)
``LD1R_B``                load 1 byte replicated across 16 lanes
``ST1_16B``               store 16 bytes
``SMLAL_8H/SMLAL2_8H``    signed 8-bit multiply, accumulate into int16 lanes
``SMLAL_4S/SMLAL2_4S``    signed 16-bit multiply, accumulate into int32 lanes
``SMLAL_4S_LANE`` (+2)    by-element form (ncnn's scheme)
``MLA_16B``               8-bit multiply-accumulate into int8 lanes
``SADDW_8H/SADDW2_8H``    widen-add int8 lanes into int16 lanes
``SADDW_4S/SADDW2_4S``    widen-add int16 lanes into int32 lanes
``SSHLL_8H/SSHLL2_8H``    sign-extend int8 lanes to int16 (shift 0)
``SDOT_4S(_LANE)``        ARMv8.2 4-way int8 dot product into int32 lanes
                          (the instruction whose *absence* on ARMv8.1
                          motivates the paper's schemes, Sec. 2.3)
``AND_16B/CNT_16B``       bitwise and / per-byte popcount (bit-serial path)
``UADALP_8H``             unsigned pairwise add-accumulate bytes -> int16
``UADALP_4S``             unsigned pairwise add-accumulate int16 -> int32
``ADD_4S``                int32 lane add
``MOVI_ZERO``             zero a vector register
``MOV_V_TO_X``            move 64-bit half of a vector register to an x reg
``MOV_X_TO_V``            move an x reg into a 64-bit half of a vector reg
``MOV_X_IMM``             load immediate into an x reg
``LDR_X / STR_X``         64-bit scalar load / store
``SUBS / B_NE / ADD_X``   scalar loop bookkeeping
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import SimulationError

#: architectural register names
VREG = tuple(f"v{i}" for i in range(32))
XREG = tuple(f"x{i}" for i in range(31))

_VALID_REGS = frozenset(VREG) | frozenset(XREG)

#: opcodes grouped by implementation class (used by simulator + cost table)
LOAD_OPS = frozenset({"LD1_16B", "LD1_8B", "LD4R_B", "LD1R_B", "LDR_X"})
STORE_OPS = frozenset({"ST1_16B", "STR_X"})
MAC_OPS = frozenset(
    {
        "SMLAL_8H",
        "SMLAL2_8H",
        "SMLAL_4S",
        "SMLAL2_4S",
        "SMLAL_4S_LANE",
        "SMLAL2_4S_LANE",
        "MLA_16B",
        "SDOT_4S",
        "SDOT_4S_LANE",
    }
)
ACCUM_OPS = MAC_OPS | {"SADDW_8H", "SADDW2_8H", "SADDW_4S", "SADDW2_4S", "UADALP_8H", "UADALP_4S"}
VECTOR_OPS = ACCUM_OPS | frozenset(
    {"SSHLL_8H", "SSHLL2_8H", "AND_16B", "CNT_16B", "ADD_4S", "MOVI_ZERO"}
)
SCALAR_OPS = frozenset({"SUBS", "B_NE", "ADD_X", "MOV_X_IMM"})
MOVE_OPS = frozenset({"MOV_V_TO_X", "MOV_X_TO_V"})

ALL_OPS = LOAD_OPS | STORE_OPS | VECTOR_OPS | SCALAR_OPS | MOVE_OPS


@dataclass(frozen=True)
class MemRef:
    """Byte address: a named buffer plus a byte offset.

    The simulator resolves buffer names at execution time, so one generated
    stream can be re-bound to different panels / tiles.
    """

    buffer: str
    offset: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise SimulationError(f"negative memory offset {self.offset}")


@dataclass(frozen=True)
class Instr:
    """One machine instruction of the modeled subset."""

    op: str
    dst: Tuple[str, ...] = ()
    src: Tuple[str, ...] = ()
    mem: MemRef | None = None
    lane: int | None = None
    imm: int | None = None

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise SimulationError(f"unknown opcode {self.op!r}")
        for r in self.dst + self.src:
            if r not in _VALID_REGS:
                raise SimulationError(f"unknown register {r!r} in {self.op}")
        if self.op in (LOAD_OPS | STORE_OPS) and self.mem is None:
            raise SimulationError(f"{self.op} requires a memory operand")

    @property
    def reads(self) -> Tuple[str, ...]:
        """Registers whose values this instruction consumes.

        Accumulating ops read their destination too — that read is what the
        pipeline model treats with accumulator forwarding.
        """
        if self.op in ACCUM_OPS:
            return self.src + self.dst
        if self.op in STORE_OPS:
            return self.src
        return self.src

    @property
    def writes(self) -> Tuple[str, ...]:
        return self.dst

    def render(self) -> str:
        """Assembly-ish text (for debugging and kernel listings)."""
        parts = [self.op]
        if self.dst:
            parts.append("{" + ", ".join(self.dst) + "}")
        if self.src:
            parts.append("{" + ", ".join(self.src) + "}")
        if self.lane is not None:
            parts.append(f"[{self.lane}]")
        if self.mem is not None:
            parts.append(f"[{self.mem.buffer}+{self.mem.offset}]")
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        return " ".join(parts)


def stream_summary(stream: list[Instr]) -> dict[str, int]:
    """Histogram of opcodes in a stream (used by tests and reports)."""
    out: dict[str, int] = {}
    for ins in stream:
        out[ins.op] = out.get(ins.op, 0) + 1
    return out


def macs_in_stream(stream: list[Instr]) -> int:
    """Multiply-accumulate *lane* count of a stream.

    SMLAL_8H does 8 MACs, MLA_16B 16, the 4S forms 4.  Bit-serial CNT-based
    reduction is not counted here (its MACs are architectural, not lanes).
    """
    lanes = {
        "SDOT_4S": 16,
        "SDOT_4S_LANE": 16,
        "SMLAL_8H": 8,
        "SMLAL2_8H": 8,
        "SMLAL_4S": 4,
        "SMLAL2_4S": 4,
        "SMLAL_4S_LANE": 4,
        "SMLAL2_4S_LANE": 4,
        "MLA_16B": 16,
    }
    return sum(lanes.get(ins.op, 0) for ins in stream)
