"""Multi-core scaling model for the ARM layer costs.

The paper evaluates single-threaded kernels (batch 1 on an edge device);
the Pi 3B has four A53 cores, so a library release needs a defensible
answer to "what does -j4 buy?".  The model splits an
:class:`~repro.arm.conv_runner.ArmConvPerf` into

* *parallel* work (kernel tiles, im2col, packing, requantize, quantize) —
  scales with threads at a per-thread efficiency (work imbalance across
  tile remainders, barrier waits), and
* *shared* work (the DRAM/L2 traffic term and the per-layer overhead,
  which grows with thread coordination) — the classic reason low-bit
  kernels saturate earlier than their arithmetic suggests: the memory
  system is one resource.
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import ReproError
from .conv_runner import ArmConvPerf
from .cost_model import PI3B, ArmMachine

#: physical core count of the Raspberry Pi 3B
MAX_THREADS = 4


def scale_to_threads(
    perf: ArmConvPerf,
    threads: int,
    *,
    machine: ArmMachine = PI3B,
    parallel_efficiency: float = 0.92,
    sync_overhead_per_thread: float = 0.10,
) -> ArmConvPerf:
    """Re-price a layer for ``threads`` cores.

    ``parallel_efficiency`` is the per-added-thread retention of the
    compute-bound components; the memory term does not scale (shared
    DRAM), and the fixed overhead grows with fork/join coordination.
    """
    if not 1 <= threads <= MAX_THREADS:
        raise ReproError(f"threads must be in [1, {MAX_THREADS}], got {threads}")
    if threads == 1:
        return perf
    speedup = threads * parallel_efficiency ** (threads - 1)
    coord = 1.0 + sync_overhead_per_thread * (threads - 1)
    return replace(
        perf,
        kernel_cycles=perf.kernel_cycles / speedup,
        im2col_cycles=perf.im2col_cycles / speedup,
        pack_cycles=perf.pack_cycles / speedup,
        requant_cycles=perf.requant_cycles / speedup,
        quant_cycles=perf.quant_cycles / speedup,
        mem_cycles=perf.mem_cycles,  # one memory system
        overhead_cycles=perf.overhead_cycles * coord,
    )


def thread_scaling_curve(
    perf: ArmConvPerf, *, machine: ArmMachine = PI3B
) -> dict[int, float]:
    """Speedup over single-thread for 1..4 cores."""
    base = perf.total_cycles
    return {
        t: base / scale_to_threads(perf, t, machine=machine).total_cycles
        for t in range(1, MAX_THREADS + 1)
    }
