"""Full convolution layers on the simulated ARM CPU.

Two entry points:

* :func:`execute_arm_conv` — *functional*: run the actual generated
  instruction streams tile by tile through the functional simulator and
  fold the tiles into the output tensor.  Bit-exact against
  :func:`repro.conv.ref.conv2d_ref`; used on small shapes by tests.
* :func:`time_arm_conv` / :func:`ncnn_conv_cycles` /
  :func:`tvm_popcount_cycles` — *performance*: compose statically
  scheduled kernel cycles with the layer-level cost model into a
  cycle/mS estimate with a full breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..conv.im2col import im2col, output_from_gemm, weight_matrix
from ..conv.padding import pack_gemm_operands
from ..errors import ShapeError, UnsupportedBitsError
from ..obs import metrics as obs_metrics
from ..types import ConvSpec, GemmShape, Layout
from ..util import ceil_div, round_up
from .cost_model import (
    PI3B,
    ArmMachine,
    is_pointwise_unit_stride,
    kernel_geometry,
    scheme_for_bits,
    tile_cycles,
    tile_cycles_batch,
)


# ---------------------------------------------------------------------------
# Performance path
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArmConvPerf:
    """Cycle breakdown for one convolution layer on the ARM path."""

    spec_name: str
    scheme: str
    bits: int
    kernel_cycles: float
    im2col_cycles: float
    pack_cycles: float
    requant_cycles: float
    mem_cycles: float
    overhead_cycles: float
    quant_cycles: float = 0.0  #: fp32->int8 quantize + int32->fp32 dequantize

    @property
    def total_cycles(self) -> float:
        return (
            self.kernel_cycles
            + self.im2col_cycles
            + self.pack_cycles
            + self.requant_cycles
            + self.mem_cycles
            + self.overhead_cycles
            + self.quant_cycles
        )

    def milliseconds(self, machine: ArmMachine = PI3B) -> float:
        return machine.ms(self.total_cycles)


#: load bandwidth the kernel LD costs already assume (L1 hits): one
#: LD1_16B per 2 cycles
_L1_BYTES_PER_CYCLE = 8.0


def _stream_level_bw(footprint: float, machine: ArmMachine) -> float:
    """Bandwidth serving a streamed operand, by its reuse footprint."""
    if footprint <= machine.l1_bytes * 0.75:  # leave L1 room for the other operand
        return _L1_BYTES_PER_CYCLE
    if footprint <= machine.l2_bytes:
        return machine.l2_bytes_per_cycle
    return machine.dram_bytes_per_cycle


def _gemm_mem_cycles(
    gemm: GemmShape,
    m_r: int,
    n_r: int,
    machine: ArmMachine,
    *,
    extra_dram_bytes: float = 0.0,
    operand_bytes_per_elem: float = 1.0,
) -> float:
    """Cache/DRAM cycles the kernel's L1-hit load costs do not cover.

    Both packed operands are *streamed* through the register tile: each of
    the ``ceil(M/m_r) * ceil(N/n_r)`` tiles reads ``K*m_r`` A bytes and
    ``K*n_r`` B bytes.  An operand whose reuse footprint exceeds a cache
    level is re-fetched from the level below at that level's bandwidth; the
    penalty is the bandwidth *shortfall* versus the L1 rate the pipeline
    model already charges.  This is what makes the 64x1 MLA tile pay for
    re-streaming its 64-row A panel per output column (K*64 bytes rarely
    fit L1), and the small-m_r ncnn tile pay for B panel re-reads.
    """
    m_tiles = ceil_div(gemm.m, m_r)
    n_tiles = ceil_div(gemm.n, n_r)
    tiles = m_tiles * n_tiles

    # A: footprint = one packed A panel (reused across the n sweep)
    a_panel = gemm.k * m_r * operand_bytes_per_elem
    a_streamed = tiles * a_panel
    a_bw = _stream_level_bw(a_panel, machine)

    # B: footprint = the whole packed B (reused across the m sweep)
    b_panel_total = gemm.k * round_up(gemm.n, n_r) * operand_bytes_per_elem
    b_streamed = m_tiles * b_panel_total
    b_bw = _stream_level_bw(b_panel_total, machine)

    def shortfall(bytes_: float, bw: float) -> float:
        return bytes_ * max(0.0, 1.0 / bw - 1.0 / _L1_BYTES_PER_CYCLE)

    unique = (
        gemm.m * gemm.k * operand_bytes_per_elem  # packed A (weights), cold
        + b_panel_total  # packed B, cold
        + gemm.m * gemm.n * 4  # int32 C write-back
        + extra_dram_bytes
    )
    return (
        shortfall(a_streamed, a_bw)
        + shortfall(b_streamed, b_bw)
        + unique / machine.dram_bytes_per_cycle
    )


def _quant_pass_cycles(spec: ConvSpec, machine: ArmMachine) -> float:
    """The quantize/dequantize element passes around every conv layer."""
    return (
        spec.input_elems * machine.quantize_cycles_per_elem
        + spec.output_elems * machine.dequantize_cycles_per_elem
    )


def gemm_kernel_cycles(
    gemm: GemmShape,
    scheme: str,
    bits: int,
    *,
    interleave: bool = True,
) -> float:
    """Register-tile kernel cycles for a full (padded) GEMM."""
    m_r, n_r = kernel_geometry(scheme)
    tiles = ceil_div(gemm.m, m_r) * ceil_div(gemm.n, n_r)
    return tiles * tile_cycles(scheme, bits, gemm.k, interleave=interleave)


def gemm_kernel_cycles_batch(
    gemms: "list[GemmShape]",
    scheme: str,
    bits: int,
    *,
    interleave: bool = True,
) -> np.ndarray:
    """:func:`gemm_kernel_cycles` over a batch of GEMMs in one shot.

    Element ``i`` is bit-identical to the scalar call on ``gemms[i]``;
    the reduction lengths go through
    :func:`~repro.arm.cost_model.tile_cycles_batch`, so a network's worth
    of layers schedules each distinct micro-kernel stream once.
    """
    m_r, n_r = kernel_geometry(scheme)
    ms = np.array([g.m for g in gemms], dtype=np.int64)
    ns = np.array([g.n for g in gemms], dtype=np.int64)
    ks = np.array([g.k for g in gemms], dtype=np.int64)
    tiles = -((-ms) // m_r) * -((-ns) // n_r)
    return tiles * tile_cycles_batch(scheme, bits, ks, interleave=interleave)


def time_arm_conv(
    spec: ConvSpec,
    bits: int,
    *,
    scheme: str | None = None,
    machine: ArmMachine = PI3B,
    interleave: bool = True,
) -> ArmConvPerf:
    """Cycle estimate for our GEMM-based low-bit convolution (Sec. 3).

    ``scheme=None`` applies the paper's selection: MLA for 2~3-bit, SMLAL
    for 4~8-bit.
    """
    scheme = scheme or scheme_for_bits(bits)
    if scheme not in ("smlal", "mla", "ncnn", "sdot"):
        raise UnsupportedBitsError(bits, f"unsupported GEMM scheme {scheme!r}")
    m_r, n_r = kernel_geometry(scheme)
    groups = spec.groups
    # grouped convolution runs one independent GEMM per group; for
    # depthwise (one output channel per group) the register tile is nearly
    # all padding, which this accounting makes visible (models.mobilenetv1)
    gemm = GemmShape(
        m=spec.out_channels // groups, k=spec.gemm_k, n=spec.gemm_n
    )

    kernel = (spec.batch * groups
              * gemm_kernel_cycles(gemm, scheme, bits, interleave=interleave))

    im2col_bytes = (
        0 if is_pointwise_unit_stride(spec) else groups * gemm.k * gemm.n
    )
    im2col_c = spec.batch * im2col_bytes * machine.im2col_cycles_per_byte

    pack_rate = (
        machine.transpose_pack_cycles_per_byte
        if n_r == 1
        else machine.pack_cycles_per_byte
    )
    pack_bytes = groups * gemm.k * round_up(gemm.n, n_r)
    pack_c = spec.batch * pack_bytes * pack_rate

    requant_c = (spec.batch * spec.out_channels * spec.gemm_n
                 * machine.requant_cycles_per_elem)

    mem_c = spec.batch * groups * _gemm_mem_cycles(
        gemm,
        m_r,
        n_r,
        machine,
        extra_dram_bytes=(spec.input_elems / spec.batch  # raw activation read
                          + (im2col_bytes if im2col_bytes else 0)) / groups,
    )

    perf = ArmConvPerf(
        spec_name=spec.name,
        scheme=scheme,
        bits=bits,
        kernel_cycles=kernel,
        im2col_cycles=im2col_c,
        pack_cycles=pack_c,
        requant_cycles=requant_c,
        mem_cycles=mem_c,
        overhead_cycles=machine.layer_overhead_cycles,
        quant_cycles=_quant_pass_cycles(spec, machine),
    )
    # per-layer cycle entry from the ARM cost model (profile surface)
    obs_metrics.gauge(
        "arm_layer_cycles", layer=spec.name, bits=bits, scheme=scheme
    ).set(perf.total_cycles)
    return perf


def ncnn_conv_cycles(
    spec: ConvSpec,
    *,
    machine: ArmMachine = PI3B,
    allow_winograd: bool = False,
) -> ArmConvPerf:
    """The ncnn 8-bit baseline.

    Default is its explicit-GEMM int8 path — the comparison the paper's
    Fig. 7/8 baseline behaves like (our GEMM kernels beat it on most
    layers, which rules out a winograd baseline on 3x3 layers).  Pass
    ``allow_winograd=True`` to model an ncnn that dispatches 3x3/s1 layers
    to its int8 winograd when faster (available as an ablation)."""
    gemm_perf = time_arm_conv(spec, 8, scheme="ncnn", machine=machine)
    if allow_winograd and spec.is_winograd_eligible():
        from .winograd_runner import time_winograd_conv

        wino = time_winograd_conv(spec, 8, scheme="ncnn", machine=machine)
        if wino.total_cycles < gemm_perf.total_cycles:
            return wino
    return gemm_perf


def tvm_popcount_cycles(
    spec: ConvSpec,
    *,
    machine: ArmMachine = PI3B,
    bits: int = 2,
) -> ArmConvPerf:
    """The TVM bit-serial (popcount) A2W2 baseline of Fig. 9.

    Bit-packs both operands (planes cost ``bitpack_cycles_per_byte`` per
    *packed* byte), then runs the 2x2 popcount tile kernel; the plane-fold
    epilogue is charged analytically per tile (see popcount_scheme docs).
    """
    if bits != 2:
        raise UnsupportedBitsError(bits, "popcount baseline models A2W2")
    gemm = GemmShape.from_conv(spec)
    m_r, n_r = kernel_geometry("popcount")
    tiles = ceil_div(gemm.m, m_r) * ceil_div(gemm.n, n_r)
    kernel = spec.batch * tiles * tile_cycles("popcount", bits, gemm.k)
    fold_epilogue = spec.batch * tiles * 40.0  # 16 acc regs folded per tile

    packed_bytes = bits * (gemm.m * gemm.k + gemm.k * gemm.n) / 8
    pack_c = spec.batch * packed_bytes * machine.bitpack_cycles_per_byte

    im2col_bytes = 0 if is_pointwise_unit_stride(spec) else gemm.k * gemm.n
    im2col_c = spec.batch * im2col_bytes * machine.im2col_cycles_per_byte

    requant_c = spec.batch * gemm.m * gemm.n * machine.requant_cycles_per_elem
    mem_c = spec.batch * _gemm_mem_cycles(
        gemm,
        m_r,
        n_r,
        machine,
        extra_dram_bytes=spec.input_elems / spec.batch,
        operand_bytes_per_elem=bits / 8,  # bit-packed operand streams
    )
    return ArmConvPerf(
        spec_name=spec.name,
        scheme="popcount",
        bits=bits,
        kernel_cycles=kernel + fold_epilogue,
        im2col_cycles=im2col_c,
        pack_cycles=pack_c,
        requant_cycles=requant_c,
        mem_cycles=mem_c,
        overhead_cycles=machine.layer_overhead_cycles,
        quant_cycles=_quant_pass_cycles(spec, machine),
    )


# ---------------------------------------------------------------------------
# Functional path (small shapes; tests bind it against conv2d_ref)
# ---------------------------------------------------------------------------


def execute_arm_conv(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
    bits: int,
    *,
    scheme: str | None = None,
    check_overflow: bool = True,
    interleave: bool = True,
) -> np.ndarray:
    """Run the layer through real generated instruction streams.

    im2col -> pad/pack (Fig. 2) -> per-tile micro-kernel execution on the
    functional simulator -> tile assembly.  Returns int64 NCHW output.
    """
    from .kernels import generate_mla_kernel, generate_ncnn_kernel, generate_smlal_kernel

    scheme = scheme or scheme_for_bits(bits)
    m_r, n_r = kernel_geometry(scheme)
    gemm = GemmShape.from_conv(spec)

    if scheme == "smlal":
        kern = generate_smlal_kernel(bits, gemm.k, interleave=interleave)
    elif scheme == "mla":
        kern = generate_mla_kernel(bits, gemm.k, interleave=interleave)
    elif scheme == "ncnn":
        kern = generate_ncnn_kernel(gemm.k, interleave=interleave)
    else:
        raise UnsupportedBitsError(bits, f"unsupported scheme {scheme!r}")

    a = weight_matrix(spec, w)
    cols = im2col(spec, x)
    outs = []
    for img in range(spec.batch):
        packed = pack_gemm_operands(a, cols[img], m_r, n_r)
        c = np.zeros((packed.m_padded, packed.n_padded), dtype=np.int64)
        for pi in range(packed.m_panels):
            a_panel = packed.a_panel(pi)
            for pj in range(packed.n_panels):
                b_panel = packed.b_panel(pj).reshape(-1)
                if scheme == "ncnn":
                    b_panel = np.concatenate(
                        [b_panel, np.zeros(4, dtype=b_panel.dtype)]
                    )
                tile = kern.execute(
                    a_panel.reshape(-1), b_panel, check_overflow=check_overflow
                )
                c[
                    pi * m_r : (pi + 1) * m_r, pj * n_r : (pj + 1) * n_r
                ] = tile
        outs.append(c[: gemm.m, : gemm.n])
    stacked = np.stack(outs, axis=0)
    return output_from_gemm(spec, stacked, layout=Layout.NCHW)
