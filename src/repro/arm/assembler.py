"""Textual assembler/disassembler for the simulated NEON subset.

Kernel generators emit :class:`~repro.arm.isa.Instr` streams; this module
round-trips them through the textual form ``Instr.render`` produces, so
kernels can be stored, diffed and reviewed as assembly-like listings —
the artifact the paper's authors actually wrote by hand.

Grammar (one instruction per line; ``;`` starts a comment)::

    OPCODE [{dst, ...}] [{src, ...}] [[lane]] [[buffer+offset]] [#imm]

Example::

    LD4R_B {v2, v3, v4, v5} [B+0]
    SMLAL_8H {v10} {v0, v2}
    SADDW_4S {v18} {v18, v10}
    SUBS {x9} {x9} #32
"""

from __future__ import annotations

import re

from ..errors import SimulationError
from .isa import ALL_OPS, Instr, MemRef, STORE_OPS

_LINE_RE = re.compile(
    r"^\s*(?P<op>[A-Z0-9_]+)"
    r"(?:\s+\{(?P<dst>[^}]*)\})?"
    r"(?:\s+\{(?P<src>[^}]*)\})?"
    r"(?:\s+\[(?P<bracket1>[^\]]*)\])?"
    r"(?:\s+\[(?P<bracket2>[^\]]*)\])?"
    r"(?:\s+#(?P<imm>-?\d+))?"
    r"\s*$"
)


def _split_regs(group: str | None) -> tuple[str, ...]:
    if not group:
        return ()
    return tuple(r.strip() for r in group.split(",") if r.strip())


def _parse_bracket(text: str) -> tuple[int | None, MemRef | None]:
    """A bracket is either a lane index or ``buffer+offset``."""
    text = text.strip()
    if re.fullmatch(r"\d+", text):
        return int(text), None
    m = re.fullmatch(r"(?P<buf>\w+)\+(?P<off>\d+)", text)
    if m:
        return None, MemRef(m.group("buf"), int(m.group("off")))
    raise SimulationError(f"unparseable bracket operand [{text}]")


def parse_line(line: str) -> Instr | None:
    """Parse one listing line; returns None for blanks/comments."""
    line = line.split(";", 1)[0].rstrip()
    if not line.strip():
        return None
    m = _LINE_RE.match(line)
    if not m:
        raise SimulationError(f"unparseable instruction: {line!r}")
    op = m.group("op")
    if op not in ALL_OPS:
        raise SimulationError(f"unknown opcode in listing: {op!r}")
    lane = None
    mem = None
    for key in ("bracket1", "bracket2"):
        if m.group(key) is not None:
            l, mr = _parse_bracket(m.group(key))
            if l is not None:
                lane = l
            if mr is not None:
                mem = mr
    imm = int(m.group("imm")) if m.group("imm") is not None else None
    dst = _split_regs(m.group("dst"))
    src = _split_regs(m.group("src"))
    if op in STORE_OPS and dst and not src:
        # stores have no destination register: their single group is the source
        dst, src = (), dst
    return Instr(op=op, dst=dst, src=src, mem=mem, lane=lane, imm=imm)


def assemble(text: str) -> list[Instr]:
    """Parse a whole listing into an instruction stream."""
    out: list[Instr] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            ins = parse_line(line)
        except SimulationError as e:
            raise SimulationError(f"line {lineno}: {e}") from None
        if ins is not None:
            out.append(ins)
    return out


def disassemble(stream: list[Instr] | tuple[Instr, ...]) -> str:
    """Render a stream as a listing ``assemble`` can read back."""
    return "\n".join(ins.render() for ins in stream)


def roundtrip(stream: list[Instr] | tuple[Instr, ...]) -> list[Instr]:
    """disassemble -> assemble (tests pin this to the identity)."""
    return assemble(disassemble(stream))
