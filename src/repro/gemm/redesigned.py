"""Re-designed GEMM (Fig. 1b): rank-1 updates through register buffers.

Per step ``k``:

* Buffer A (one SIMD register) <- column ``k`` of Matrix A,
* Buffer B (``n_b`` registers)  <- row ``k`` of Matrix B, each element
  replicated across a register (one LD4R covers 4 elements),
* Buffer C (``n_a x n_b`` accumulators) += elementwise ``v_a * v_b_i``.

One A load + one LD4R feed ``n_b`` MAC instructions, which is where the
4x CAL/LD gain of Eq. 3/4 comes from.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .traditional import AccessCounter


def gemm_redesigned(
    a: np.ndarray,
    b: np.ndarray,
    *,
    n_a: int = 16,
    n_b: int = 4,
    counter: AccessCounter | None = None,
) -> np.ndarray:
    """C = A @ B via the Fig. 1b buffer scheme (rank-1 accumulation).

    Operates directly on unpacked matrices; the packed-buffer variant used
    by the ARM kernels lives in :func:`repro.conv.gemm_conv.gemm_packed`.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"bad GEMM shapes: A {a.shape}, B {b.shape}")
    m, k = a.shape
    _, n = b.shape
    c = np.zeros((m, n), dtype=np.int64)
    a64 = a.astype(np.int64)
    b64 = b.astype(np.int64)

    for i0 in range(0, m, n_a):
        i1 = min(i0 + n_a, m)
        for j0 in range(0, n, n_b):
            j1 = min(j0 + n_b, n)
            acc = np.zeros((i1 - i0, j1 - j0), dtype=np.int64)
            for kk in range(k):
                v_a = a64[i0:i1, kk]  # Buffer A: one column chunk
                v_b = b64[kk, j0:j1]  # Buffer B: replicated row elements
                if counter is not None:
                    counter.load(i1 - i0)  # one LD1 per column chunk
                    # one LD4R covers up to 4 replicated elements
                    counter.load_replicated(j1 - j0)
                    counter.mac((i1 - i0) * (j1 - j0))
                acc += v_a[:, None] * v_b[None, :]  # Buffer C accumulate
            c[i0:i1, j0:j1] = acc
    if counter is not None:
        counter.publish("redesigned")
    return c
