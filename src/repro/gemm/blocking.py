"""Cache blocking plan for the ARM GEMM path.

The micro-kernel computes an ``n_a x n_b`` tile of C over the full K range;
above it, the layer GEMM is blocked so the packed B panel in flight stays
within L1/L2 reach (Sec. 3.1: "using the registers efficiently can reduce
the number of cache accesses").  Blocking does not change results (the
functional layer is exact regardless); it feeds the cost model's cache-miss
charges and the Fig. 13 working-set accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError
from ..types import GemmShape
from ..util import ceil_div, round_up


@dataclass(frozen=True)
class BlockingPlan:
    """Tile structure of one layer GEMM on the ARM path."""

    shape: GemmShape
    n_a: int  #: micro-kernel rows (register tile M), 16 in Alg. 1
    n_b: int  #: micro-kernel cols (register tile N), 4 in Alg. 1
    kc: int  #: K cache-block length

    def __post_init__(self) -> None:
        if self.n_a <= 0 or self.n_b <= 0 or self.kc <= 0:
            raise ShapeError("blocking parameters must be positive")

    @property
    def m_padded(self) -> int:
        return round_up(self.shape.m, self.n_a)

    @property
    def n_padded(self) -> int:
        return round_up(self.shape.n, self.n_b)

    @property
    def m_tiles(self) -> int:
        return self.m_padded // self.n_a

    @property
    def n_tiles(self) -> int:
        return self.n_padded // self.n_b

    @property
    def k_blocks(self) -> int:
        return ceil_div(self.shape.k, self.kc)

    @property
    def micro_tiles(self) -> int:
        return self.m_tiles * self.n_tiles

    @property
    def padded_macs(self) -> int:
        """MACs actually executed, padding included."""
        return self.m_padded * self.n_padded * self.shape.k

    @property
    def pad_waste(self) -> float:
        """Fraction of executed MACs that are padding (>= 0)."""
        return self.padded_macs / self.shape.macs - 1.0


def plan_blocking(
    shape: GemmShape,
    *,
    n_a: int = 16,
    n_b: int = 4,
    l1_bytes: int = 32 * 1024,
) -> BlockingPlan:
    """Choose a K block so one A panel + one B panel fit in half of L1.

    Cortex-A53 has a 32 KiB L1D; keeping the streaming panels within half
    of it leaves room for the C tile and im2col traffic.
    """
    budget = l1_bytes // 2
    per_k = n_a + n_b  # bytes per K step held in the two panels (int8)
    kc = max(1, min(shape.k, budget // per_k))
    return BlockingPlan(shape=shape, n_a=n_a, n_b=n_b, kc=kc)
