"""Instruction-count model of traditional vs re-designed GEMM (Eq. 1-4).

Paper notation:

* ``theta1`` — elements one SIMD instruction operates on,
* ``theta2`` — elements one load-replicate instruction covers (4 for LD4R),
* ``beta1`` — load instructions per (A, B) SIMD-register pair read,
* ``beta2`` — multiply-accumulate instructions per SIMD-register pair,
* ``delta`` — trailing reduce-sum instructions (constant, << K).

Eq. 1/2 (traditional):   LD = beta1*M*N*K/theta1
                         CAL ~= beta2*M*N*K/theta1
Eq. 3/4 (re-designed):   LD = beta1*M*N*K/(theta2*theta1)
                         CAL = beta2*M*N*K/theta1

so CAL/LD improves by exactly ``theta2`` (= 4 with LD4R).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError
from ..types import GemmShape


@dataclass(frozen=True)
class GemmInstrCounts:
    """Load / arithmetic instruction counts for one GEMM formulation."""

    loads: int
    arithmetic: int

    @property
    def cal_per_ld(self) -> float:
        if self.loads == 0:
            raise ShapeError("no load instructions — degenerate GEMM")
        return self.arithmetic / self.loads


def _validate(theta1: int, theta2: int, beta1: int, beta2: int) -> None:
    if theta1 <= 0 or theta2 <= 0 or beta1 <= 0 or beta2 <= 0:
        raise ShapeError("theta/beta parameters must be positive")


def traditional_counts(
    shape: GemmShape,
    *,
    theta1: int = 16,
    beta1: int = 2,
    beta2: int = 1,
    delta: int = 4,
) -> GemmInstrCounts:
    """Eq. 1 and Eq. 2. ``delta`` models the trailing reduce-sum term."""
    _validate(theta1, 1, beta1, beta2)
    work = shape.macs
    loads = beta1 * work // theta1
    cal = beta2 * work // theta1 + beta2 * (shape.m * shape.n // theta1) * delta
    return GemmInstrCounts(loads=loads, arithmetic=cal)


def redesigned_counts(
    shape: GemmShape,
    *,
    theta1: int = 16,
    theta2: int = 4,
    beta1: int = 2,
    beta2: int = 1,
) -> GemmInstrCounts:
    """Eq. 3 and Eq. 4. ``theta2`` is the LD4R replication width (4)."""
    _validate(theta1, theta2, beta1, beta2)
    work = shape.macs
    loads = beta1 * work // (theta2 * theta1)
    cal = beta2 * theta2 * work // (theta2 * theta1)
    return GemmInstrCounts(loads=loads, arithmetic=cal)


def cal_ld_improvement(shape: GemmShape, **kwargs) -> float:
    """Ratio of CAL/LD between re-designed and traditional GEMM (~theta2)."""
    theta2 = kwargs.pop("theta2", 4)
    trad = traditional_counts(shape, **kwargs)
    redo = redesigned_counts(shape, theta2=theta2, **kwargs)
    return redo.cal_per_ld / trad.cal_per_ld
