"""GEMM re-design substrate (Sec. 3.2, Fig. 1, Eq. 1-4).

Two functional GEMM walkers — the traditional loop order and the paper's
re-designed buffer scheme — plus the analytic instruction-count model that
yields the paper's "CAL/LD is about 4x" conclusion.
"""

from .analysis import (
    GemmInstrCounts,
    traditional_counts,
    redesigned_counts,
    cal_ld_improvement,
)
from .traditional import gemm_traditional
from .redesigned import gemm_redesigned
from .blocking import BlockingPlan, plan_blocking

__all__ = [
    "GemmInstrCounts",
    "traditional_counts",
    "redesigned_counts",
    "cal_ld_improvement",
    "gemm_traditional",
    "gemm_redesigned",
    "BlockingPlan",
    "plan_blocking",
]
