"""Traditional GEMM (Fig. 1a): row-of-A dot column-of-B per output element.

The functional walker mirrors the data access pattern Fig. 1a describes —
for each output C[i, j], stream the i-th row of A and j-th column of B —
so its load/arithmetic *event counts* can be measured and compared against
the Eq. 1/2 analytic model in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError
from ..obs import metrics as obs_metrics


@dataclass
class AccessCounter:
    """Counts SIMD-granularity load and MAC events of a GEMM walk.

    All mutation goes through the three event methods — callers never poke
    the tallies directly — so every GEMM walker charges events through one
    auditable API and :meth:`publish` can route totals into the
    :mod:`repro.obs.metrics` registry.
    """

    simd_width: int = 16
    loads: int = 0
    macs_instr: int = 0

    def load(self, n_elems: int) -> None:
        """One contiguous SIMD load per ``simd_width`` elements (LD1)."""
        self.loads += -(-n_elems // self.simd_width)

    def load_replicated(self, n_elems: int, *, lanes: int = 4) -> None:
        """Replicating loads: one LD4R-style instruction covers ``lanes``
        broadcast elements regardless of SIMD width (Fig. 1b Buffer B)."""
        self.loads += -(-n_elems // lanes)

    def mac(self, n_elems: int) -> None:
        self.macs_instr += -(-n_elems // self.simd_width)

    @property
    def total_instr(self) -> int:
        return self.loads + self.macs_instr

    def publish(self, kind: str) -> None:
        """Add this walk's totals to the process metrics registry under
        ``gemm_loads{kind=...}`` / ``gemm_macs{kind=...}``."""
        obs_metrics.counter("gemm_loads", kind=kind).inc(self.loads)
        obs_metrics.counter("gemm_macs", kind=kind).inc(self.macs_instr)


def gemm_traditional(
    a: np.ndarray,
    b: np.ndarray,
    *,
    counter: AccessCounter | None = None,
) -> np.ndarray:
    """C = A @ B with per-output-element access pattern of Fig. 1a.

    Vectorized along K (a SIMD register's worth of the dot product at a
    time) so realistic sizes remain testable, while the access-event
    counting stays faithful: per (i, j) output, every K-chunk of A's row and
    B's column is loaded once.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"bad GEMM shapes: A {a.shape}, B {b.shape}")
    m, k = a.shape
    _, n = b.shape
    c = np.zeros((m, n), dtype=np.int64)
    a64 = a.astype(np.int64)
    bt64 = np.ascontiguousarray(b.T).astype(np.int64)
    for i in range(m):
        row = a64[i]
        for j in range(n):
            col = bt64[j]
            if counter is not None:
                counter.load(k)  # A row chunk loads
                counter.load(k)  # B column chunk loads
                counter.mac(k)
            c[i, j] = np.dot(row, col)
    if counter is not None:
        counter.publish("traditional")
    return c
