"""Quantization-fidelity analysis: the Sec. 5.1 "no accuracy loss" claim.

The paper argues correctness on two levels: (1) low-bit linear
quantization costs little model accuracy (cited training work), and
(2) the kernels themselves introduce *zero* additional error over 32-bit
integer math ("our optimized low-bit convolution kernels guarantee the
same results as 32-bit computation").

Claim (2) is enforced bit-exactly throughout the test suite.  This module
quantifies claim (1) mechanically: push data through a quantized network
and measure the signal-to-quantization-noise ratio against the
full-precision float network, as a function of bit width.  SQNR must grow
~6 dB per extra bit (the classic uniform-quantizer law), which both
characterizes the quantizer and doubles as a sanity check that no kernel
adds hidden error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..runtime.network import Network, execute_network
from ..types import ConvSpec, Layout


def float_reference_network(
    net: Network, x: np.ndarray, weights: dict[str, np.ndarray]
) -> np.ndarray:
    """The full-precision counterpart: float conv + ReLU per stage."""
    cur = np.asarray(x, dtype=np.float64)
    for stage in net.stages:
        spec = stage.spec
        w = np.asarray(weights[spec.name], dtype=np.float64)
        cur = _float_conv(spec, cur, w)
        has_relu = any(op.kind == "relu" for op in stage.graph) or any(
            op.attrs.get("epilogue") == "requant_relu"
            for op in stage.graph.convs()
        )
        if has_relu:
            cur = np.maximum(cur, 0.0)
    return cur


def _float_conv(spec: ConvSpec, x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Plain float NCHW convolution (same loop structure as conv2d_ref)."""
    n, cin, h, wd = x.shape
    cout, _, kh, kw = w.shape
    sh, sw = spec.stride
    ph, pw = spec.padding
    oh, ow = spec.out_height, spec.out_width
    xp = np.zeros((n, cin, h + 2 * ph, wd + 2 * pw))
    xp[:, :, ph : ph + h, pw : pw + wd] = x
    out = np.zeros((n, cout, oh, ow))
    for i in range(kh):
        for j in range(kw):
            win = xp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
            out += np.einsum("nchw,oc->nohw", win, w[:, :, i, j], optimize=True)
    return out


@dataclass(frozen=True)
class SqnrReport:
    """Output fidelity of the quantized network vs the float reference."""

    bits: int
    sqnr_db: float
    max_abs_err: float
    ref_rms: float


def output_sqnr(
    net: Network,
    x: np.ndarray,
    weights: dict[str, np.ndarray],
) -> SqnrReport:
    """Signal-to-quantization-noise ratio of one network's output."""
    bits = net.stages[0].graph.convs()[0].attrs["bits"]
    q_out = execute_network(net, x, weights)
    f_out = float_reference_network(net, x, weights)
    err = q_out - f_out
    ref_rms = float(np.sqrt(np.mean(f_out**2)))
    err_rms = float(np.sqrt(np.mean(err**2)))
    if ref_rms == 0:
        raise ReproError("degenerate reference output (all zeros)")
    sqnr = float("inf") if err_rms == 0 else 20 * np.log10(ref_rms / err_rms)
    return SqnrReport(
        bits=bits,
        sqnr_db=sqnr,
        max_abs_err=float(np.max(np.abs(err))),
        ref_rms=ref_rms,
    )


def sqnr_sweep(
    build,  # Callable[[int], Network]
    x: np.ndarray,
    weights: dict[str, np.ndarray],
    bits_list: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8),
) -> list[SqnrReport]:
    """SQNR at each bit width for the same architecture and weights."""
    return [output_sqnr(build(bits), x, weights) for bits in bits_list]
