"""Plain-text report formatting shared by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import ReproError
from ..util import geomean


@dataclass(frozen=True)
class Series:
    """One named series over a shared label axis (one bar group per label)."""

    name: str
    values: tuple[float, ...]

    def geomean(self) -> float:
        return geomean(self.values)


def format_table(
    labels: Sequence[str],
    series: Sequence[Series],
    *,
    value_fmt: str = "{:.2f}",
    label_header: str = "layer",
) -> str:
    """Fixed-width text table: one row per label, one column per series."""
    for s in series:
        if len(s.values) != len(labels):
            raise ReproError(
                f"series {s.name!r} has {len(s.values)} values for "
                f"{len(labels)} labels"
            )
    headers = [label_header] + [s.name for s in series]
    rows = [
        [labels[i]] + [value_fmt.format(s.values[i]) for s in series]
        for i in range(len(labels))
    ]
    rows.append(
        ["geomean"] + [value_fmt.format(s.geomean()) for s in series]
    )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows))
        for c in range(len(headers))
    ]
    def fmt_row(cells: list[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines += [fmt_row(r) for r in rows]
    return "\n".join(lines)


def ascii_bar(value: float, scale: float = 10.0, max_width: int = 60) -> str:
    """One proportional bar (for quick visual scans of speedup columns)."""
    n = max(0, min(max_width, int(round(value * scale))))
    return "#" * n


def ascii_chart(
    labels: Sequence[str],
    series: Sequence[Series],
    *,
    scale: float = 10.0,
) -> str:
    """Grouped horizontal bar chart in plain text."""
    name_w = max((len(s.name) for s in series), default=0)
    label_w = max((len(l) for l in labels), default=0)
    lines = []
    for i, label in enumerate(labels):
        for s in series:
            lines.append(
                f"{label.rjust(label_w)}  {s.name.ljust(name_w)} "
                f"{s.values[i]:6.2f} {ascii_bar(s.values[i], scale)}"
            )
        lines.append("")
    return "\n".join(lines)
