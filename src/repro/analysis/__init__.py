"""Analysis utilities: exact space-overhead accounting and report formatting."""

from .space import SpaceOverhead, space_overhead, model_space_report
from .report import Series, format_table, ascii_bar, ascii_chart
from .accuracy import SqnrReport, output_sqnr, sqnr_sweep, float_reference_network

__all__ = [
    "SpaceOverhead",
    "space_overhead",
    "model_space_report",
    "Series",
    "format_table",
    "ascii_bar",
    "ascii_chart",
    "SqnrReport",
    "output_sqnr",
    "sqnr_sweep",
    "float_reference_network",
]
