"""Space-overhead accounting for the ARM path (Sec. 5.4 / Fig. 13).

Baseline: the activation + weight footprint of a layer (int8, one byte per
element).  On top of that the explicit-GEMM path materializes

* the **im2col matrix** (``K x N`` bytes; identity for 1x1/s1 layers, ~9x
  the activation for 3x3) — "determined by convolution kernel size,
  stride, and input size";
* the **padded + packed buffers** (Fig. 2) whose only growth over the
  im2col matrix is the zero padding to panel multiples — "determined by
  the size of matrix generated through im2col and layer weight".

All numbers here are exact arithmetic on the shapes, not estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arm.cost_model import is_pointwise_unit_stride
from ..types import ConvSpec, GemmShape
from ..util import round_up


@dataclass(frozen=True)
class SpaceOverhead:
    """Footprints (bytes) and the Fig. 13 ratios for one layer."""

    spec_name: str
    activation_bytes: int
    weight_bytes: int
    im2col_bytes: int
    packed_a_bytes: int
    packed_b_bytes: int

    @property
    def baseline_bytes(self) -> int:
        return self.activation_bytes + self.weight_bytes

    @property
    def im2col_total(self) -> int:
        """Footprint after im2col: the activation stays live while the
        column matrix exists, so both count (this is what makes the
        paper's minimum 1.02x rather than 1.0x)."""
        return self.activation_bytes + self.im2col_bytes + self.weight_bytes

    @property
    def unpacked_matrix_bytes(self) -> int:
        """The GEMM operands before padding/packing (im2col + weight
        matrix) — the denominator of the pad/pack bar ('determined by the
        size of matrix generated through im2col and layer weight')."""
        return self.im2col_bytes + self.weight_bytes

    @property
    def packed_matrix_bytes(self) -> int:
        return self.packed_a_bytes + self.packed_b_bytes

    @property
    def im2col_ratio(self) -> float:
        """Fig. 13's im2col bar: post-im2col footprint over baseline."""
        return self.im2col_total / self.baseline_bytes

    @property
    def pack_ratio(self) -> float:
        """Fig. 13's pad+pack bar: padded/packed operands over unpacked."""
        return self.packed_matrix_bytes / self.unpacked_matrix_bytes

    @property
    def total_ratio(self) -> float:
        """Combined overhead over baseline (Fig. 13's total range)."""
        total = self.activation_bytes + self.packed_matrix_bytes
        return total / self.baseline_bytes


def space_overhead(spec: ConvSpec, *, n_a: int = 16, n_b: int = 4) -> SpaceOverhead:
    """Exact Fig. 13 accounting for one layer (batch 1 per the paper)."""
    gemm = GemmShape.from_conv(spec)
    activation = spec.input_elems // spec.batch
    weight = spec.weight_elems
    im2col = activation if is_pointwise_unit_stride(spec) else gemm.k * gemm.n
    packed_a = round_up(gemm.m, n_a) * gemm.k
    packed_b = gemm.k * round_up(gemm.n, n_b)
    return SpaceOverhead(
        spec_name=spec.name,
        activation_bytes=activation,
        weight_bytes=weight,
        im2col_bytes=im2col,
        packed_a_bytes=packed_a,
        packed_b_bytes=packed_b,
    )


def model_space_report(layers: list[ConvSpec], **kwargs) -> list[SpaceOverhead]:
    return [space_overhead(spec, **kwargs) for spec in layers]
