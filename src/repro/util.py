"""Small shared helpers used across the package.

Nothing here is domain specific; keep it that way.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

#: set (to any non-empty value) to disable vectorized whole-population
#: pricing and fall back to the scalar per-candidate paths everywhere
NO_VECTOR_ENV = "REPRO_NO_VECTOR"


def vector_enabled() -> bool:
    """Whether batched (structure-of-arrays) pricing paths may be used.

    Same env convention as ``REPRO_NO_CACHE``: any non-empty value
    disables.  The scalar paths are the equivalence oracle, so flipping
    this never changes results — only speed.
    """
    return not os.environ.get(NO_VECTOR_ENV, "").strip()


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires positive divisor, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div requires non-negative dividend, got {a}")
    return -(-a // b)


def round_up(a: int, multiple: int) -> int:
    """Round ``a`` up to the nearest multiple of ``multiple``."""
    return ceil_div(a, multiple) * multiple


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def chunks(seq: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield successive ``size``-length chunks of ``seq`` (last may be short)."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for i in range(0, len(seq), size):
        yield seq[i : i + size]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the conventional aggregate for speedup ratios."""
    vals = np.asarray(list(values), dtype=np.float64)
    if vals.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(vals <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(vals))))


def default_rng(seed: int | None = 0) -> np.random.Generator:
    """Deterministic-by-default RNG; pass ``seed=None`` for entropy seeding."""
    return np.random.default_rng(seed)


def wrap_to_int8(x: np.ndarray) -> np.ndarray:
    """Reduce an integer array modulo 2**8 into signed int8 (hardware wrap)."""
    return x.astype(np.int64).astype(np.uint8).view(np.int8) if x.dtype != np.int8 else x


def wrap_signed(x: np.ndarray, bits: int) -> np.ndarray:
    """Wrap arbitrary integers into ``bits``-wide two's-complement values.

    This reproduces the silent modular behaviour of non-saturating hardware
    accumulate instructions (NEON ``MLA``/``SMLAL`` do *not* saturate).
    Returns int64 values in ``[-2**(bits-1), 2**(bits-1) - 1]``.
    """
    if bits < 1 or bits > 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    x = np.asarray(x, dtype=np.int64)
    mask = (np.int64(1) << bits) - np.int64(1) if bits < 64 else np.int64(-1)
    lo = x & mask
    sign = np.int64(1) << (bits - 1)
    return np.where(lo & sign, lo - (np.int64(1) << bits) if bits < 64 else lo, lo)
