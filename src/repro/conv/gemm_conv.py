"""Explicit-GEMM convolution (the ARM path's algorithm, Sec. 2.2 / 3.2).

Functional layer only: exact int64 accumulation through the padded/packed
operands — the same data movement the ARM kernels perform, minus the
instruction-level detail (which lives in :mod:`repro.arm`).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..types import ConvSpec, Layout
from .im2col import im2col, output_from_gemm, weight_matrix
from .padding import pack_gemm_operands, unpack_c


def gemm_packed(a: np.ndarray, b: np.ndarray, n_a: int = 16, n_b: int = 4) -> np.ndarray:
    """GEMM through the Fig. 2 padded/packed buffers, panel by panel.

    Walks the exact panel structure the micro-kernel walks: for each
    (A-panel, B-panel) pair, accumulate over K with the packed contiguous
    slices. Vectorized within a panel pair.
    """
    packed = pack_gemm_operands(a, b, n_a, n_b)
    c = np.zeros((packed.m_padded, packed.n_padded), dtype=np.int64)
    for pi in range(packed.m_panels):
        a_panel = packed.a_panel(pi).astype(np.int64)  # (K, n_a)
        for pj in range(packed.n_panels):
            b_panel = packed.b_panel(pj).astype(np.int64)  # (K, n_b)
            # outer-product accumulation over K: (n_a, n_b) tile
            tile = np.einsum("ka,kb->ab", a_panel, b_panel, optimize=True)
            c[pi * n_a : (pi + 1) * n_a, pj * n_b : (pj + 1) * n_b] = tile
    return unpack_c(c, packed.m, packed.n)


def conv2d_gemm(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
    *,
    layout: Layout = Layout.NCHW,
    bias: np.ndarray | None = None,
    n_a: int = 16,
    n_b: int = 4,
) -> np.ndarray:
    """Explicit-GEMM convolution: im2col -> pad/pack -> panel GEMM.

    Grouped convolutions (incl. depthwise) run one independent GEMM per
    group — exactly what a GEMM-based runtime must do, and why depthwise
    layers suit it poorly (see repro.models.mobilenetv1).
    """
    if layout is not Layout.NCHW:
        raise ShapeError("explicit-GEMM path is the ARM (NCHW) algorithm")
    if spec.groups > 1:
        from dataclasses import replace as _replace

        g = spec.groups
        cin_g, cout_g = spec.in_channels // g, spec.out_channels // g
        sub = _replace(spec, in_channels=cin_g, out_channels=cout_g, groups=1)
        outs = []
        for gi in range(g):
            xg = np.ascontiguousarray(x[:, gi * cin_g : (gi + 1) * cin_g])
            wg = np.ascontiguousarray(w[gi * cout_g : (gi + 1) * cout_g])
            bg = None if bias is None else np.asarray(bias)[
                gi * cout_g : (gi + 1) * cout_g]
            outs.append(conv2d_gemm(sub, xg, wg, bias=bg, n_a=n_a, n_b=n_b))
        return np.concatenate(outs, axis=1)
    a = weight_matrix(spec, w)
    cols = im2col(spec, x)  # (batch, K, N)
    outs = []
    for img in range(spec.batch):
        outs.append(gemm_packed(a, cols[img], n_a=n_a, n_b=n_b))
    c = np.stack(outs, axis=0)
    if bias is not None:
        bias = np.asarray(bias, dtype=np.int64)
        if bias.shape != (spec.out_channels,):
            raise ShapeError(f"bias shape {bias.shape} != ({spec.out_channels},)")
        c = c + bias[None, :, None]
    return output_from_gemm(spec, c, layout=Layout.NCHW)
