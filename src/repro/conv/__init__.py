"""Convolution algorithms (functional layer, bit-exact integer arithmetic).

Every algorithm here computes the *same* int32 result as the golden direct
convolution (:func:`repro.conv.ref.conv2d_ref`); the architecture backends
in :mod:`repro.arm` and :mod:`repro.gpu` reuse these as their functional
semantics while adding performance models on top.
"""

from .ref import conv2d_ref
from .im2col import im2col, im2col_nhwc, weight_matrix, output_from_gemm
from .gemm_conv import conv2d_gemm
from .winograd import (
    conv2d_winograd,
    winograd_transform_weight,
    winograd_transform_input,
    winograd_range_report,
    WinogradRangeReport,
)
from .popcount import conv2d_bitserial, to_bitplanes, from_bitplanes
from .fft import conv2d_fft, fft_exactness_margin
from .padding import pad_matrix, pack_a, pack_b, PackedGemm, pack_gemm_operands
from .registry import ALGORITHMS, get_algorithm, conv2d

__all__ = [
    "conv2d_ref",
    "im2col",
    "im2col_nhwc",
    "weight_matrix",
    "output_from_gemm",
    "conv2d_gemm",
    "conv2d_winograd",
    "winograd_transform_weight",
    "winograd_transform_input",
    "winograd_range_report",
    "WinogradRangeReport",
    "conv2d_bitserial",
    "conv2d_fft",
    "fft_exactness_margin",
    "to_bitplanes",
    "from_bitplanes",
    "pad_matrix",
    "pack_a",
    "pack_b",
    "PackedGemm",
    "pack_gemm_operands",
    "ALGORITHMS",
    "get_algorithm",
    "conv2d",
]
