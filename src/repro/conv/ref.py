"""Golden reference: direct convolution by definition (Sec. 2.2).

Deliberately simple and trusted; every other algorithm is validated against
it.  Vectorized over channels so tests on realistic shapes stay fast, but
the spatial loops follow the textbook definition verbatim.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..types import ConvSpec, Layout


def conv2d_float(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
) -> np.ndarray:
    """Float NCHW convolution — the full-precision reference the accuracy
    analysis and calibration compare the quantized pipeline against."""
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if x.shape != spec.input_shape(Layout.NCHW):
        raise ShapeError(f"{spec.name}: input {x.shape}")
    if w.shape != spec.weight_shape(Layout.NCHW):
        raise ShapeError(f"{spec.name}: weight {w.shape}")
    n, cin, h, wd = x.shape
    cout, _, kh, kw = w.shape
    sh, sw = spec.stride
    ph, pw = spec.padding
    oh, ow = spec.out_height, spec.out_width
    xp = np.zeros((n, cin, h + 2 * ph, wd + 2 * pw))
    xp[:, :, ph : ph + h, pw : pw + wd] = x
    out = np.zeros((n, cout, oh, ow))
    for i in range(kh):
        for j in range(kw):
            win = xp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
            out += np.einsum("nchw,oc->nohw", win, w[:, :, i, j], optimize=True)
    return out


def conv2d_ref(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
    *,
    layout: Layout = Layout.NCHW,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Direct convolution with exact int32/int64 accumulation.

    Parameters
    ----------
    spec:
        Layer geometry; ``x`` and ``w`` must match it.
    x:
        Integer input activations, ``spec.input_shape(layout)``.
    w:
        Integer weights, ``spec.weight_shape(Layout.NCHW)`` — weights are
        always OIHW here; backends reorder internally.
    layout:
        Activation layout (NCHW on ARM, NHWC on GPU, per the paper).
    bias:
        Optional int32 per-output-channel bias of length ``out_channels``.

    Returns
    -------
    int64 array of ``spec.output_shape(layout)``.
    """
    x = np.asarray(x)
    w = np.asarray(w)
    if not np.issubdtype(x.dtype, np.integer) or not np.issubdtype(w.dtype, np.integer):
        raise ShapeError("conv2d_ref operates on integer (quantized) tensors")
    if x.shape != spec.input_shape(layout):
        raise ShapeError(
            f"{spec.name}: input shape {x.shape} != expected {spec.input_shape(layout)}"
        )
    if w.shape != spec.weight_shape(Layout.NCHW):
        raise ShapeError(
            f"{spec.name}: weight shape {w.shape} != expected "
            f"{spec.weight_shape(Layout.NCHW)}"
        )

    if layout is Layout.NHWC:
        x = np.transpose(x, (0, 3, 1, 2))  # to NCHW internally

    n, cin, h, wd = x.shape
    cout, cin_g, kh, kw = w.shape
    sh, sw = spec.stride
    ph, pw = spec.padding
    oh, ow = spec.out_height, spec.out_width
    groups = spec.groups

    xp = np.zeros((n, cin, h + 2 * ph, wd + 2 * pw), dtype=np.int64)
    xp[:, :, ph : ph + h, pw : pw + wd] = x

    out = np.zeros((n, cout, oh, ow), dtype=np.int64)
    w64 = w.astype(np.int64)
    cout_g = cout // groups
    for g in range(groups):
        xg = xp[:, g * cin_g : (g + 1) * cin_g]
        wg = w64[g * cout_g : (g + 1) * cout_g]
        for i in range(kh):
            for j in range(kw):
                # window of shape (n, cin_g, oh, ow) for tap (i, j)
                win = xg[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
                # (n, oh, ow, cin_g) . (cout_g, cin_g) accumulation
                out[:, g * cout_g : (g + 1) * cout_g] += np.einsum(
                    "nchw,oc->nohw", win, wg[:, :, i, j], optimize=True
                )
    if bias is not None:
        bias = np.asarray(bias, dtype=np.int64)
        if bias.shape != (cout,):
            raise ShapeError(f"bias shape {bias.shape} != ({cout},)")
        out += bias[None, :, None, None]

    if layout is Layout.NHWC:
        out = np.transpose(out, (0, 2, 3, 1))
    return out
