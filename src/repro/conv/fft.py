"""FFT-based convolution (Sec. 2.2's third algorithm family).

"The FFT-based convolution algorithm uses FFT, IFFT, and GEMM operations
to speedup convolution calculations, which achieves better performance
with large kernels, and has been used in cuDNN."  The paper does not adopt
it for low-bit work (frequency-domain data is irreducibly floating-point),
but it belongs in the algorithm substrate: this implementation computes
the cross-correlation in the frequency domain and rounds back to integers,
with an explicit bound on when that rounding is exact.

Exactness: the result of the integer convolution is an integer ``y``; the
FFT path computes ``y + eps`` with ``|eps| <~ machine_eps * K * max|x| *
max|w| * log-ish factors``.  ``fft_exactness_margin`` estimates the bound;
while it stays below 0.5 the rounded result is bit-exact — tests certify
this on the supported range and the function refuses clearly beyond it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..types import ConvSpec, Layout


def fft_exactness_margin(spec: ConvSpec, max_abs_x: int, max_abs_w: int) -> float:
    """Crude upper estimate of the FFT path's absolute rounding error.

    ``eps ~= machine_eps * sqrt(K * log2(P)) * K * max|x| * max|w|`` with
    K the reduction length and P the padded FFT plane size; the constant
    is pessimistic on purpose (the test suite checks the *decision* this
    margin drives, not the estimate's tightness).
    """
    k = spec.gemm_k
    plane = (spec.height + spec.kernel[0]) * (spec.width + spec.kernel[1])
    eps = np.finfo(np.float64).eps
    return float(eps * k * max_abs_x * max_abs_w * np.sqrt(np.log2(plane) + 1) * 8)


def conv2d_fft(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
    *,
    layout: Layout = Layout.NCHW,
    bias: np.ndarray | None = None,
    check_exact: bool = True,
) -> np.ndarray:
    """Cross-correlation through the frequency domain, rounded to integers.

    Raises :class:`ShapeError` when ``check_exact`` and the operand ranges
    leave no exactness margin (the caller should use a spatial algorithm).
    """
    if layout is not Layout.NCHW:
        raise ShapeError("FFT path implemented for NCHW")
    x = np.asarray(x)
    w = np.asarray(w)
    if not np.issubdtype(x.dtype, np.integer) or not np.issubdtype(w.dtype, np.integer):
        raise ShapeError("conv2d_fft operates on integer (quantized) tensors")
    if x.shape != spec.input_shape(Layout.NCHW):
        raise ShapeError(f"{spec.name}: input {x.shape}")
    if w.shape != spec.weight_shape(Layout.NCHW):
        raise ShapeError(f"{spec.name}: weight {w.shape}")
    if spec.groups != 1:
        raise ShapeError("FFT path supports groups=1")
    if check_exact:
        mx = int(np.max(np.abs(x))) if x.size else 0
        mw = int(np.max(np.abs(w))) if w.size else 0
        if fft_exactness_margin(spec, max(mx, 1), max(mw, 1)) >= 0.5:
            raise ShapeError(
                f"{spec.name}: operand ranges too large for exact FFT rounding"
            )

    n, cin, h, wd = x.shape
    cout, _, kh, kw = w.shape
    ph, pw = spec.padding
    sh, sw = spec.stride
    oh, ow = spec.out_height, spec.out_width

    # full cross-correlation plane via zero-padded FFTs
    fh, fw = h + 2 * ph + kh - 1, wd + 2 * pw + kw - 1
    xp = np.zeros((n, cin, h + 2 * ph, wd + 2 * pw))
    xp[:, :, ph : ph + h, pw : pw + wd] = x
    xf = np.fft.rfftn(xp, s=(fh, fw), axes=(2, 3))
    # cross-correlation = convolution with the flipped kernel
    wf = np.fft.rfftn(w[:, :, ::-1, ::-1].astype(np.float64),
                      s=(fh, fw), axes=(2, 3))
    # frequency-domain channel reduction: the 'GEMM' stage of the algorithm
    yf = np.einsum("nifw,oifw->nofw", xf, wf, optimize=True)
    full = np.fft.irfftn(yf, s=(fh, fw), axes=(2, 3))
    # 'valid' region starts at (kh-1, kw-1) in full-correlation coordinates
    valid = full[:, :, kh - 1 : kh - 1 + sh * oh : sh,
                 kw - 1 : kw - 1 + sw * ow : sw]
    out = np.rint(valid).astype(np.int64)
    if bias is not None:
        bias = np.asarray(bias, dtype=np.int64)
        if bias.shape != (cout,):
            raise ShapeError(f"bias shape {bias.shape} != ({cout},)")
        out = out + bias[None, :, None, None]
    return out
