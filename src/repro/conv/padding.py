"""Data padding and packing optimization (Sec. 3.2, Fig. 2).

The ARM micro-kernel consumes ``n_a`` consecutive elements of a column of
Matrix A and ``n_b`` consecutive elements of a row of Matrix B per step.
When M is not a multiple of ``n_a`` (or N of ``n_b``), the matrices are
zero-padded, then *packed* so the kernel's accesses are unit-stride:

* Buffer A holds A in **column-major panels**: for each panel of ``n_a``
  rows, the K columns are laid out consecutively, each column a contiguous
  run of ``n_a`` elements.
* Buffer B holds B in **row-major panels**: for each panel of ``n_b``
  columns, the K rows are laid out consecutively, each row a contiguous run
  of ``n_b`` elements.

``PackedGemm`` also reports the exact byte counts, which feed the Fig. 13
space-overhead analysis and the ARM cost model's packing charge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..util import ceil_div, round_up


def pad_matrix(m: np.ndarray, row_multiple: int, col_multiple: int) -> np.ndarray:
    """Zero-pad a 2-D matrix so both dims are multiples of the given sizes."""
    if m.ndim != 2:
        raise ShapeError(f"pad_matrix expects a 2-D matrix, got ndim={m.ndim}")
    rows, cols = m.shape
    pr, pc = round_up(rows, row_multiple), round_up(cols, col_multiple)
    if (pr, pc) == (rows, cols):
        return m
    out = np.zeros((pr, pc), dtype=m.dtype)
    out[:rows, :cols] = m
    return out


def pack_a(a: np.ndarray, n_a: int) -> np.ndarray:
    """Pack Matrix A (M x K) into column-major panels of ``n_a`` rows.

    Result shape: ``(M/n_a panels, K, n_a)`` flattened to 1-D — each
    ``[panel, k]`` slice is the contiguous run of ``n_a`` column elements
    the kernel's single ``LD1`` fetches.
    """
    ap = pad_matrix(a, n_a, 1)
    mp, k = ap.shape
    panels = mp // n_a
    # (panels, n_a, K) -> (panels, K, n_a): column-major within each panel
    packed = ap.reshape(panels, n_a, k).transpose(0, 2, 1)
    return np.ascontiguousarray(packed).reshape(-1)


def pack_b(b: np.ndarray, n_b: int) -> np.ndarray:
    """Pack Matrix B (K x N) into row-major panels of ``n_b`` columns.

    Result shape: ``(N/n_b panels, K, n_b)`` flattened — each ``[panel, k]``
    slice is the contiguous run of ``n_b`` row elements one ``LD4R``
    broadcasts from.
    """
    bp = pad_matrix(b, 1, n_b)
    k, npad = bp.shape
    panels = npad // n_b
    packed = bp.reshape(k, panels, n_b).transpose(1, 0, 2)
    return np.ascontiguousarray(packed).reshape(-1)


@dataclass(frozen=True)
class PackedGemm:
    """Padded-and-packed operands plus exact footprint accounting."""

    a_packed: np.ndarray
    b_packed: np.ndarray
    m: int
    k: int
    n: int
    n_a: int
    n_b: int

    @property
    def m_padded(self) -> int:
        return round_up(self.m, self.n_a)

    @property
    def n_padded(self) -> int:
        return round_up(self.n, self.n_b)

    @property
    def m_panels(self) -> int:
        return self.m_padded // self.n_a

    @property
    def n_panels(self) -> int:
        return self.n_padded // self.n_b

    @property
    def raw_bytes(self) -> int:
        """Unpadded operand footprint (1 byte/element, int8 storage)."""
        return self.m * self.k + self.k * self.n

    @property
    def packed_bytes(self) -> int:
        """Padded+packed footprint — the numerator of Fig. 13's pack bar."""
        return self.m_padded * self.k + self.k * self.n_padded

    @property
    def pack_overhead(self) -> float:
        """packed / raw footprint ratio (>= 1.0)."""
        return self.packed_bytes / self.raw_bytes

    def a_panel(self, panel: int) -> np.ndarray:
        """Panel of A as a (K, n_a) contiguous block."""
        sz = self.k * self.n_a
        return self.a_packed[panel * sz : (panel + 1) * sz].reshape(self.k, self.n_a)

    def b_panel(self, panel: int) -> np.ndarray:
        """Panel of B as a (K, n_b) contiguous block."""
        sz = self.k * self.n_b
        return self.b_packed[panel * sz : (panel + 1) * sz].reshape(self.k, self.n_b)


def pack_gemm_operands(a: np.ndarray, b: np.ndarray, n_a: int, n_b: int) -> PackedGemm:
    """Pad and pack a GEMM's operands per Fig. 2."""
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError("pack_gemm_operands expects 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"GEMM K mismatch: A is {a.shape}, B is {b.shape}")
    if n_a <= 0 or n_b <= 0:
        raise ShapeError(f"panel sizes must be positive, got n_a={n_a}, n_b={n_b}")
    m, k = a.shape
    _, n = b.shape
    return PackedGemm(
        a_packed=pack_a(a, n_a),
        b_packed=pack_b(b, n_b),
        m=m,
        k=k,
        n=n,
        n_a=n_a,
        n_b=n_b,
    )


def unpack_c(c_padded: np.ndarray, m: int, n: int) -> np.ndarray:
    """Strip the rows/cols introduced by padding from the GEMM result."""
    if c_padded.shape[0] < m or c_padded.shape[1] < n:
        raise ShapeError(
            f"padded result {c_padded.shape} smaller than logical ({m}, {n})"
        )
    return np.ascontiguousarray(c_padded[:m, :n])
