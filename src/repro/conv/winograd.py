"""Integer Winograd F(2x2, 3x3) convolution (Sec. 3.4).

Transforms (Lavin & Gray):

    Y = A^T [ (G g G^T) (.) (B^T d B) ] A

with::

    B^T = [[1, 0, -1,  0],        G = [[1,   0,   0 ],     A^T = [[1, 1,  1,  0],
           [0, 1,  1,  0],             [1/2, 1/2, 1/2],           [0, 1, -1, -1]]
           [0,-1,  1,  0],             [1/2,-1/2, 1/2],
           [0, 1,  0, -1]]             [0,   0,   1 ]]

Integer exactness
-----------------
``G`` has halves, so ``G g G^T`` is generally a multiple of 1/4.  We compute
``U4 = (2G) g (2G)^T = 4 * G g G^T`` — always integer — multiply in int64,
and divide the *final* output transform by 4.  Since the true convolution
result is an integer and all transforms are linear, ``A^T [U4 (.) V] A`` is
exactly ``4 *`` the true result, so the division is exact.  This is the
``mode="exact"`` path and it is bit-identical to direct convolution.

``mode="paper"`` reproduces what an int8-operand kernel must do: store the
transformed weight ``round(G g G^T)`` (range grows 9/4x, Sec. 3.4) and the
transformed input ``B^T d B`` (range grows 4x) in int8 and multiply those.
Rounding ``G g G^T`` to integers loses the fractional quarters, so this
mode is *approximate* for weights whose transform is non-integer; the range
report below reproduces the paper's bit-width eligibility rule.

Range analysis (Sec. 3.4)
-------------------------
The worst-case growth factors are the products of the transform matrices'
max row L1 norms: ``B^T`` rows have L1 <= 2 (applied twice -> 4x input
growth) and ``G`` rows have L1 <= 3/2 (applied twice -> 9/4x weight
growth).  Keeping both transformed operands within int8 bounds limits the
scheme to <= 6-bit operands, and F(4x4, 3x3) is rejected outright — its
``B^T`` rows reach L1 = 13/2, a ~42x input growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..errors import ShapeError, UnsupportedBitsError
from ..quant.ranges import qrange
from ..types import ConvSpec, Layout
from ..util import ceil_div

# Transform matrices. G is kept in exact fractions; G2 = 2*G is integer.
BT = np.array(
    [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]], dtype=np.int64
)
G2 = np.array([[2, 0, 0], [1, 1, 1], [1, -1, 1], [0, 0, 2]], dtype=np.int64)
AT = np.array([[1, 1, 1, 0], [0, 1, -1, -1]], dtype=np.int64)

G_FRACTIONS = [
    [Fraction(1), Fraction(0), Fraction(0)],
    [Fraction(1, 2), Fraction(1, 2), Fraction(1, 2)],
    [Fraction(1, 2), Fraction(-1, 2), Fraction(1, 2)],
    [Fraction(0), Fraction(0), Fraction(1)],
]

#: max row L1 norms of the transforms (drive the range growth factors)
_BT_L1 = int(np.max(np.sum(np.abs(BT), axis=1)))  # == 2
_G_L1 = Fraction(3, 2)
#: F(4x4, 3x3) input-transform max row L1 (for the rejection argument)
_BT_L1_F4 = Fraction(13, 2)


def winograd_transform_weight(w: np.ndarray, *, scaled: bool = True) -> np.ndarray:
    """Per-filter weight transform.

    ``w`` is OIHW with 3x3 taps. With ``scaled=True`` returns the integer
    ``U4 = (2G) g (2G)^T`` (4x the mathematical transform); with
    ``scaled=False`` returns ``round(G g G^T)`` — the paper's int8-storable
    operand (lossy when the exact transform is fractional).
    """
    w = np.asarray(w)
    if w.ndim != 4 or w.shape[2:] != (3, 3):
        raise ShapeError(f"winograd weights must be OIHW 3x3, got {w.shape}")
    u4 = np.einsum("ur,oirs,vs->oiuv", G2, w.astype(np.int64), G2, optimize=True)
    if scaled:
        return u4
    # round-half-away-from-zero of u4/4
    return np.where(u4 >= 0, (u4 + 2) // 4, -((-u4 + 2) // 4))


def winograd_transform_input(tiles: np.ndarray) -> np.ndarray:
    """Input transform ``V = B^T d B`` over trailing (4, 4) dims (exact)."""
    tiles = np.asarray(tiles, dtype=np.int64)
    if tiles.shape[-2:] != (4, 4):
        raise ShapeError(f"input tiles must end in (4, 4), got {tiles.shape}")
    return np.einsum("ur,...rs,vs->...uv", BT, tiles, BT, optimize=True)


def _extract_tiles(spec: ConvSpec, x: np.ndarray) -> tuple[np.ndarray, int, int]:
    """Pad input and slice overlapping 4x4 tiles at stride 2.

    Returns ``(tiles[n, c, th, tw, 4, 4], tiles_h, tiles_w)``.
    """
    n, c, h, w = x.shape
    ph, pw = spec.padding
    oh, ow = spec.out_height, spec.out_width
    th, tw = ceil_div(oh, 2), ceil_div(ow, 2)
    # tile (i, j) covers input rows 2i .. 2i+3 of the padded image
    need_h, need_w = 2 * th + 2, 2 * tw + 2
    xp = np.zeros((n, c, max(need_h, h + 2 * ph), max(need_w, w + 2 * pw)), dtype=np.int64)
    xp[:, :, ph : ph + h, pw : pw + w] = x
    s0, s1, s2, s3 = xp.strides
    view = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, th, tw, 4, 4),
        strides=(s0, s1, s2 * 2, s3 * 2, s2, s3),
        writeable=False,
    )
    return np.ascontiguousarray(view), th, tw


def conv2d_winograd(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
    *,
    layout: Layout = Layout.NCHW,
    bias: np.ndarray | None = None,
    mode: str = "exact",
) -> np.ndarray:
    """F(2x2, 3x3) Winograd convolution.

    ``mode="exact"`` is bit-identical to :func:`repro.conv.ref.conv2d_ref`;
    ``mode="paper"`` uses the rounded int8-range transformed weight.
    """
    if layout is not Layout.NCHW:
        raise ShapeError("winograd path is the ARM (NCHW) algorithm")
    if not spec.is_winograd_eligible():
        raise ShapeError(f"{spec.name} is not 3x3/s1; winograd inapplicable")
    if mode not in ("exact", "paper"):
        raise ValueError(f"unknown winograd mode {mode!r}")
    x = np.asarray(x)
    if x.shape != spec.input_shape(Layout.NCHW):
        raise ShapeError(
            f"{spec.name}: input {x.shape} != {spec.input_shape(Layout.NCHW)}"
        )

    tiles, th, tw = _extract_tiles(spec, x)
    v = winograd_transform_input(tiles)  # (n, c, th, tw, 4, 4)
    if mode == "exact":
        u = winograd_transform_weight(w, scaled=True)  # 4x scale
        denom = 4
    else:
        u = winograd_transform_weight(w, scaled=False)
        denom = 1
    # element-wise multiply in the transform domain, reduce over Cin:
    # the per-(u, v) position product is exactly the Cin x nTiles GEMM the
    # ARM kernel runs 16 of.
    m = np.einsum("oiuv,nixyuv->noxyuv", u, v, optimize=True)
    y = np.einsum("pu,noxyuv,qv->noxypq", AT, m, AT, optimize=True)
    # y: (n, o, th, tw, 2, 2)
    if mode == "exact":
        if np.any(y % denom):
            raise ShapeError("internal error: scaled winograd result not divisible by 4")
        y = y // denom
    out_full = y.transpose(0, 1, 2, 4, 3, 5).reshape(
        spec.batch, spec.out_channels, th * 2, tw * 2
    )
    out = out_full[:, :, : spec.out_height, : spec.out_width]
    if bias is not None:
        bias = np.asarray(bias, dtype=np.int64)
        if bias.shape != (spec.out_channels,):
            raise ShapeError(f"bias shape {bias.shape} != ({spec.out_channels},)")
        out = out + bias[None, :, None, None]
    return np.ascontiguousarray(out)


# ---------------------------------------------------------------------------
# Range analysis (Sec. 3.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WinogradRangeReport:
    """Numeric-range growth of F(2x2, 3x3) at a given operand bit width."""

    bits: int
    input_growth: int  #: 4 (B^T applied twice)
    weight_growth: Fraction  #: 9/4 (G applied twice)
    input_max_abs: int
    transformed_input_max_abs: int
    transformed_weight_max_abs: Fraction
    fits_int8: bool  #: both transformed operands storable in int8

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ok = "OK" if self.fits_int8 else "exceeds int8"
        return (
            f"{self.bits}-bit: input x{self.input_growth} -> "
            f"{self.transformed_input_max_abs}, weight x{self.weight_growth} -> "
            f"{float(self.transformed_weight_max_abs):.1f} ({ok})"
        )


def winograd_range_report(bits: int) -> WinogradRangeReport:
    """Reproduce the paper's eligibility analysis for ``bits``-wide operands.

    Uses the full two's-complement magnitude ``2**(bits-1)``; both
    transformed operands must stay within the int8 magnitude 127 (the
    SMLAL-scheme operand width) for the winograd kernel to apply, which
    yields exactly the paper's 4~6-bit window (together with the lower
    bound: below 4-bit the MLA GEMM scheme is faster, Sec. 3.4).
    """
    if bits < 2 or bits > 8:
        raise UnsupportedBitsError(bits, "winograd range analysis covers 2..8")
    max_abs = qrange(bits).max_abs  # 2**(bits-1)
    input_growth = _BT_L1 * _BT_L1  # 4
    weight_growth = _G_L1 * _G_L1  # 9/4
    t_in = input_growth * max_abs
    t_w = weight_growth * max_abs
    return WinogradRangeReport(
        bits=bits,
        input_growth=input_growth,
        weight_growth=weight_growth,
        input_max_abs=max_abs,
        transformed_input_max_abs=t_in,
        transformed_weight_max_abs=t_w,
        fits_int8=(t_in <= 128) and (t_w <= 127),
    )


def winograd_eligible_bits() -> list[int]:
    """Bit widths where the paper applies winograd: 4, 5, 6."""
    out = []
    for b in range(4, 9):  # lower bound 4: MLA GEMM wins below (Sec. 3.4)
        if winograd_range_report(b).fits_int8:
            out.append(b)
    return out


def f4_input_growth() -> Fraction:
    """Input-range growth of F(4x4, 3x3) — the paper rejects it (Sec. 3.4)."""
    return _BT_L1_F4 * _BT_L1_F4
