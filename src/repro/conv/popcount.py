"""Bit-serial (popcount) convolution — the TVM baseline of Fig. 9.

Cowan et al. (CGO'20, the paper's [3]) generate low-bit ARM kernels that
decompose operands into *bit planes* and reduce with ``AND`` + ``CNT``
(population count).  For signed two's-complement values

    x = -2**(b-1) * plane_{b-1} + sum_{p < b-1} 2**p * plane_p

so a b_a-bit by b_w-bit convolution becomes ``b_a * b_w`` binary
convolutions, each computable as popcount(AND) over {0,1} planes, combined
with signed power-of-two weights:

    conv(x, w) = sum_{p,q} s_p s_q 2**(p+q) binconv(xplane_p, wplane_q)

This module provides the exact functional algorithm; the ARM instruction
stream and its cost live in :mod:`repro.arm.kernels.popcount_scheme`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, UnsupportedBitsError
from ..types import ConvSpec, Layout
from .im2col import im2col, output_from_gemm, weight_matrix


def to_bitplanes(x: np.ndarray, bits: int) -> np.ndarray:
    """Two's-complement bit planes, leading axis = plane index (LSB first).

    Returns uint8 array of shape ``(bits, *x.shape)`` with {0,1} entries.
    """
    if bits < 1 or bits > 8:
        raise UnsupportedBitsError(bits, "bit planes supported for 1..8 bits")
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.integer):
        raise ShapeError("to_bitplanes expects integer data")
    half = 1 << (bits - 1)
    if x.size and (x.min() < -half or x.max() >= half):
        raise ShapeError(f"values outside {bits}-bit two's-complement range")
    u = (x.astype(np.int64) & ((1 << bits) - 1)).astype(np.uint8)
    planes = np.empty((bits,) + x.shape, dtype=np.uint8)
    for p in range(bits):
        planes[p] = (u >> p) & 1
    return planes


def from_bitplanes(planes: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of :func:`to_bitplanes` (int64 result)."""
    if planes.shape[0] != bits:
        raise ShapeError(f"expected {bits} planes, got {planes.shape[0]}")
    out = np.zeros(planes.shape[1:], dtype=np.int64)
    for p in range(bits):
        weight = -(1 << p) if p == bits - 1 else (1 << p)
        out += weight * planes[p].astype(np.int64)
    return out


def plane_weight(p: int, bits: int) -> int:
    """Signed contribution of plane ``p`` in a ``bits``-wide value."""
    return -(1 << p) if p == bits - 1 else (1 << p)


def conv2d_bitserial(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
    *,
    layout: Layout = Layout.NCHW,
    bits_a: int = 2,
    bits_w: int = 2,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Bit-serial convolution, exact for signed ``bits_a``/``bits_w`` data.

    Functionally: im2col once, then one binary GEMM per plane pair where
    the binary dot product is popcount(AND) — expressed as a {0,1} matmul,
    which is the same arithmetic the CNT instruction performs 16 bytes at
    a time.
    """
    if layout is not Layout.NCHW:
        raise ShapeError("bit-serial path is the ARM (NCHW) algorithm")
    a = weight_matrix(spec, w)
    cols = im2col(spec, x)  # (batch, K, N)
    a_planes = to_bitplanes(a, bits_w)  # (bits_w, M, K)
    outs = []
    for img in range(spec.batch):
        b_planes = to_bitplanes(cols[img], bits_a)  # (bits_a, K, N)
        acc = np.zeros((spec.gemm_m, spec.gemm_n), dtype=np.int64)
        for q in range(bits_w):
            aq = a_planes[q].astype(np.int64)
            for p in range(bits_a):
                bp = b_planes[p].astype(np.int64)
                # popcount(AND) along K == {0,1} matrix product
                binconv = aq @ bp
                acc += plane_weight(p, bits_a) * plane_weight(q, bits_w) * binconv
        outs.append(acc)
    c = np.stack(outs, axis=0)
    if bias is not None:
        bias = np.asarray(bias, dtype=np.int64)
        if bias.shape != (spec.out_channels,):
            raise ShapeError(f"bias shape {bias.shape} != ({spec.out_channels},)")
        c = c + bias[None, :, None]
    return output_from_gemm(spec, c, layout=Layout.NCHW)
