"""im2col / matrix views for GEMM-based convolution (Sec. 2.2).

The explicit-GEMM convolution (ARM path) lowers

    out[n, co, y, x] = sum_{ci,i,j} w[co, ci, i, j] * in[n, ci, y*s+i-p, x*s+j-p]

to ``C[M, N] = A[M, K] @ B[K, N]`` with

    A = weight matrix            (M = Cout,        K = Cin*kh*kw)
    B = im2col(input) per image  (K = Cin*kh*kw,   N = OH*OW)

K-axis ordering is ``(ci, i, j)`` — channel-major, matching NCHW weights —
so :func:`weight_matrix` is a plain reshape.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..types import ConvSpec, Layout


def _padded(spec: ConvSpec, x_nchw: np.ndarray) -> np.ndarray:
    n, c, h, w = x_nchw.shape
    ph, pw = spec.padding
    if ph == 0 and pw == 0:
        return x_nchw
    xp = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=x_nchw.dtype)
    xp[:, :, ph : ph + h, pw : pw + w] = x_nchw
    return xp


def im2col(spec: ConvSpec, x: np.ndarray) -> np.ndarray:
    """NCHW im2col: returns ``(batch, K, N)`` with K = Cin*kh*kw, N = OH*OW.

    Implemented with stride tricks + one gather so large layers stay fast;
    the result is a fresh contiguous array (the kernels assume packed data).
    """
    if x.shape != spec.input_shape(Layout.NCHW):
        raise ShapeError(
            f"{spec.name}: input {x.shape} != {spec.input_shape(Layout.NCHW)}"
        )
    if spec.groups != 1:
        raise ShapeError("im2col here supports groups=1 (all paper workloads)")
    xp = _padded(spec, x)
    n, c, hp, wp = xp.shape
    kh, kw = spec.kernel
    sh, sw = spec.stride
    oh, ow = spec.out_height, spec.out_width

    s0, s1, s2, s3 = xp.strides
    view = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, kh, kw, oh, ow),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw),
        writeable=False,
    )
    return np.ascontiguousarray(view.reshape(n, c * kh * kw, oh * ow))


def im2col_nhwc(spec: ConvSpec, x: np.ndarray) -> np.ndarray:
    """NHWC im2col: returns ``(batch*OH*OW, kh*kw*Cin)``.

    This is the *row-major GEMM-B-transposed* view the GPU implicit-GEMM
    kernel gathers on the fly (it never materializes this matrix in global
    memory; the functional model builds it to define the exact semantics).
    K-axis ordering is ``(i, j, ci)`` to match NHWC weights.
    """
    if x.shape != spec.input_shape(Layout.NHWC):
        raise ShapeError(
            f"{spec.name}: input {x.shape} != {spec.input_shape(Layout.NHWC)}"
        )
    x_nchw = np.transpose(x, (0, 3, 1, 2))
    xp = _padded(spec, x_nchw)
    n, c, hp, wp = xp.shape
    kh, kw = spec.kernel
    sh, sw = spec.stride
    oh, ow = spec.out_height, spec.out_width
    s0, s1, s2, s3 = xp.strides
    view = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, oh, ow, kh, kw, c),
        strides=(s0, s2 * sh, s3 * sw, s2, s3, s1),
        writeable=False,
    )
    return np.ascontiguousarray(view.reshape(n * oh * ow, kh * kw * c))


def weight_matrix(spec: ConvSpec, w: np.ndarray, layout: Layout = Layout.NCHW) -> np.ndarray:
    """Weights as GEMM A matrix ``(M=Cout, K)``; K ordering matches im2col."""
    if w.shape != spec.weight_shape(Layout.NCHW):
        raise ShapeError(
            f"{spec.name}: weight {w.shape} != {spec.weight_shape(Layout.NCHW)}"
        )
    if layout is Layout.NCHW:
        return np.ascontiguousarray(w.reshape(spec.out_channels, -1))
    # NHWC kernels reduce over (i, j, ci)
    return np.ascontiguousarray(
        np.transpose(w, (0, 2, 3, 1)).reshape(spec.out_channels, -1)
    )


def output_from_gemm(spec: ConvSpec, c: np.ndarray, layout: Layout = Layout.NCHW) -> np.ndarray:
    """Fold a GEMM result back into the activation tensor.

    NCHW: ``c`` is ``(batch, M, N)``; NHWC: ``c`` is ``(batch*OH*OW, M)``.
    """
    oh, ow = spec.out_height, spec.out_width
    if layout is Layout.NCHW:
        expect = (spec.batch, spec.out_channels, oh * ow)
        if c.shape != expect:
            raise ShapeError(f"{spec.name}: gemm result {c.shape} != {expect}")
        return c.reshape(spec.batch, spec.out_channels, oh, ow)
    expect = (spec.batch * oh * ow, spec.out_channels)
    if c.shape != expect:
        raise ShapeError(f"{spec.name}: gemm result {c.shape} != {expect}")
    return c.reshape(spec.batch, oh, ow, spec.out_channels)
