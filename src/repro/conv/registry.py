"""Algorithm registry: one dispatch point for every functional conv.

Downstream code (runtime executor, tests, examples) selects algorithms by
name; registering here is all a new algorithm needs to become reachable
from the public :func:`conv2d` entry point.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..errors import ReproError
from ..types import ConvSpec, Layout
from .fft import conv2d_fft
from .gemm_conv import conv2d_gemm
from .popcount import conv2d_bitserial
from .ref import conv2d_ref
from .winograd import conv2d_winograd

ConvFn = Callable[..., np.ndarray]

ALGORITHMS: Dict[str, ConvFn] = {
    "direct": conv2d_ref,
    "gemm": conv2d_gemm,
    "winograd": conv2d_winograd,
    "bitserial": conv2d_bitserial,
    "fft": conv2d_fft,
}


def get_algorithm(name: str) -> ConvFn:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise ReproError(
            f"unknown convolution algorithm {name!r}; "
            f"available: {sorted(ALGORITHMS)}"
        ) from None


def conv2d(
    spec: ConvSpec,
    x: np.ndarray,
    w: np.ndarray,
    *,
    algorithm: str = "direct",
    layout: Layout = Layout.NCHW,
    **kwargs,
) -> np.ndarray:
    """Run a convolution through a named algorithm.

    All algorithms produce bit-identical int64 results (the ``winograd``
    algorithm in its default ``mode="exact"``).
    """
    fn = get_algorithm(algorithm)
    return fn(spec, x, w, layout=layout, **kwargs)
