"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors elsewhere.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class QuantizationError(ReproError):
    """Invalid quantization parameters or out-of-range quantized data."""


class UnsupportedBitsError(QuantizationError):
    """A bit width outside the range supported by an algorithm or kernel."""

    def __init__(self, bits: int, context: str = "") -> None:
        msg = f"unsupported bit width: {bits}"
        if context:
            msg += f" ({context})"
        super().__init__(msg)
        self.bits = bits


class LayoutError(ReproError):
    """Tensor layout mismatch (e.g. NCHW data passed to an NHWC kernel)."""


class ShapeError(ReproError):
    """Inconsistent tensor / convolution shapes."""


class SimulationError(ReproError):
    """Illegal state inside one of the architecture simulators."""


class RegisterAllocationError(SimulationError):
    """A kernel generator ran out of architectural registers."""


class OverflowDetected(SimulationError):
    """The functional simulator detected an accumulator overflow.

    Raised only by checked execution modes; the default execution mode
    reproduces hardware wrap-around semantics silently, exactly like the
    real instructions do.
    """


class TilingError(ReproError):
    """An illegal GPU tiling configuration (partition does not cover the
    problem, exceeds shared memory / register budget, etc.)."""


class AutotuneError(ReproError):
    """The autotuner could not find any legal configuration."""
