"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors elsewhere.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class QuantizationError(ReproError):
    """Invalid quantization parameters or out-of-range quantized data."""


class UnsupportedBitsError(QuantizationError):
    """A bit width outside the range supported by an algorithm or kernel."""

    def __init__(self, bits: int, context: str = "") -> None:
        msg = f"unsupported bit width: {bits}"
        if context:
            msg += f" ({context})"
        super().__init__(msg)
        self.bits = bits


class LayoutError(ReproError):
    """Tensor layout mismatch (e.g. NCHW data passed to an NHWC kernel)."""


class ShapeError(ReproError):
    """Inconsistent tensor / convolution shapes."""


class SimulationError(ReproError):
    """Illegal state inside one of the architecture simulators."""


class RegisterAllocationError(SimulationError):
    """A kernel generator ran out of architectural registers."""


class ChainOverflowError(SimulationError):
    """An accumulation-chain configuration that can overflow (Sec. 3.3).

    Raised at *kernel-construction* time when a requested drain interval
    exceeds the paper's overflow-safe chain length for the bit width
    (SMLAL/int16: 511/127/31/8/2 for 4~8-bit; MLA/int8: 31/7 for
    2~3-bit), so an unsafe kernel is rejected before it ever runs.
    Tests that deliberately build overflowing chains pass
    ``allow_unsafe=True`` to the generator instead.
    """

    def __init__(self, bits: int, requested: int, limit: int,
                 scheme: str) -> None:
        super().__init__(
            f"{scheme} chain of {requested} steps at {bits}-bit exceeds the "
            f"overflow-safe limit of {limit} (Sec. 3.3); pass "
            f"allow_unsafe=True to build it anyway"
        )
        self.bits = bits
        self.requested = requested
        self.limit = limit
        self.scheme = scheme


class OverflowDetected(SimulationError):
    """The functional simulator detected an accumulator overflow.

    Raised only by checked execution modes; the default execution mode
    reproduces hardware wrap-around semantics silently, exactly like the
    real instructions do.
    """


class TilingError(ReproError):
    """An illegal GPU tiling configuration (partition does not cover the
    problem, exceeds shared memory / register budget, etc.)."""


class AutotuneError(ReproError):
    """The autotuner could not find any legal configuration."""
