"""Per-layer roofline analytics derived from the backend cost models.

Turns the recorder into an analyzer (Williams et al., "Roofline: An
Insightful Visual Performance Model", CACM 2009): every layer a backend
can price also gets

* **arithmetic intensity** — cost-model MACs per byte of main-memory
  traffic, from the backend's :meth:`~repro.backends.base.Backend
  .conv_traffic` hook (im2col/packing streams on ARM, tile re-reads on
  GPU);
* **%-of-peak throughput** — achieved MACs/s (``spec.macs`` over the
  priced seconds) against the layer's roof ``min(peak_compute,
  bandwidth * intensity)`` from :meth:`~repro.backends.base.Backend
  .peak_ops_per_sec` / :meth:`~repro.backends.base.Backend
  .peak_bandwidth_bytes_per_sec`;
* **CAL/LD ratio** — the Fig. 1 instruction-mix claim as a live metric:
  traditional vs re-designed GEMM arithmetic-per-load from
  :mod:`repro.gemm.analysis` (the improvement is ~theta2 = 4x with LD4R);
* **accumulation-chain overhead** — the Sec. 3.3 cost of overflow
  safety: SADDW widening occupancy over total kernel occupancy, per bit
  width, measured on the actually generated instruction streams.

Every quantity is registered as an ``obs.metrics`` gauge so profile runs
and bench reports carry it; the text/ASCII rendering lives here too, the
self-contained HTML dashboard in :mod:`repro.obs.htmlreport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..types import ConvSpec, GemmShape
from . import metrics as obs_metrics
from . import trace as obs_trace

#: bit widths the roofline sweeps per backend (the figure ranges)
DEFAULT_BITS = {"arm": (2, 4, 8), "gpu": (4, 8), "ref": (8,)}

#: reduction depth the chain-overhead streams are generated at; deep
#: enough that prologue/epilogue noise is <1% of the stream
_CHAIN_K = 256


# ---------------------------------------------------------------------------
# Roofline points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RooflinePoint:
    """One (layer, bits) point in a backend's roofline plane."""

    backend: str
    layer: str
    bits: int
    macs: int
    bytes_moved: float
    achieved_ops: float  #: MACs/s the cost model says the layer sustains
    peak_compute_ops: float  #: MACs/s compute roof at this bit width
    peak_bandwidth: float  #: bytes/s memory roof

    @property
    def intensity(self) -> float:
        """Arithmetic intensity, MACs per main-memory byte."""
        return self.macs / self.bytes_moved if self.bytes_moved else math.inf

    @property
    def roof_ops(self) -> float:
        """The attainable MACs/s at this intensity (the roofline)."""
        return min(self.peak_compute_ops, self.peak_bandwidth * self.intensity)

    @property
    def pct_of_roof(self) -> float:
        return self.achieved_ops / self.roof_ops if self.roof_ops else 0.0

    @property
    def pct_of_peak(self) -> float:
        """Fraction of the flat compute roof (ignores the memory slope)."""
        return (self.achieved_ops / self.peak_compute_ops
                if self.peak_compute_ops else 0.0)

    @property
    def bound(self) -> str:
        """Which roof caps this layer at its intensity."""
        return ("compute"
                if self.peak_bandwidth * self.intensity >= self.peak_compute_ops
                else "memory")

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "layer": self.layer,
            "bits": self.bits,
            "macs": self.macs,
            "bytes": round(self.bytes_moved, 1),
            "intensity": round(self.intensity, 4),
            "achieved_ops": self.achieved_ops,
            "peak_compute_ops": self.peak_compute_ops,
            "peak_bandwidth": self.peak_bandwidth,
            "roof_ops": self.roof_ops,
            "pct_of_roof": round(self.pct_of_roof, 4),
            "bound": self.bound,
        }


def layer_roofline(backend, spec: ConvSpec, bits: int) -> RooflinePoint:
    """Roofline point for one layer on one backend, gauges included."""
    price = backend.price_conv(spec, bits)
    traffic = backend.conv_traffic(spec, bits)
    point = RooflinePoint(
        backend=backend.name,
        layer=spec.name,
        bits=bits,
        macs=spec.macs,
        bytes_moved=float(traffic["total"]),
        achieved_ops=spec.macs / price.seconds if price.seconds else 0.0,
        peak_compute_ops=backend.peak_ops_per_sec(bits),
        peak_bandwidth=backend.peak_bandwidth_bytes_per_sec(),
    )
    obs_metrics.gauge(
        "roofline_intensity", backend=backend.name, layer=spec.name, bits=bits
    ).set(point.intensity)
    obs_metrics.gauge(
        "roofline_pct_of_roof", backend=backend.name, layer=spec.name, bits=bits
    ).set(point.pct_of_roof)
    return point


def model_roofline(
    model: str,
    backend_name: str,
    *,
    bits: Sequence[int] | None = None,
    batch: int = 1,
) -> list[RooflinePoint]:
    """Roofline points for every unique conv layer of ``model``."""
    from ..backends import get_backend
    from ..models import get_model_layers

    backend = get_backend(backend_name)
    bit_list = tuple(bits) if bits else DEFAULT_BITS.get(backend.name, (8,))
    layers = get_model_layers(model, batch=batch)
    backend.prewarm([(s, b, None) for b in bit_list for s in layers])
    with obs_trace.span(
        "roofline.model", backend=backend.name, model=model, batch=batch
    ):
        return [
            layer_roofline(backend, spec, b)
            for b in bit_list
            for spec in layers
        ]


# ---------------------------------------------------------------------------
# CAL/LD ratio (Fig. 1, live)
# ---------------------------------------------------------------------------


def cal_ld_point(shape: GemmShape, *, layer: str = "") -> dict:
    """Traditional vs re-designed CAL/LD for one GEMM problem."""
    from ..gemm.analysis import redesigned_counts, traditional_counts

    trad = traditional_counts(shape)
    redo = redesigned_counts(shape)
    improvement = redo.cal_per_ld / trad.cal_per_ld
    if layer:
        obs_metrics.gauge(
            "gemm_cal_ld", formulation="traditional", layer=layer
        ).set(trad.cal_per_ld)
        obs_metrics.gauge(
            "gemm_cal_ld", formulation="redesigned", layer=layer
        ).set(redo.cal_per_ld)
        obs_metrics.gauge("gemm_cal_ld_improvement", layer=layer).set(improvement)
    return {
        "layer": layer,
        "m": shape.m, "k": shape.k, "n": shape.n,
        "traditional": trad.cal_per_ld,
        "redesigned": redo.cal_per_ld,
        "improvement": improvement,
    }


def model_cal_ld(model: str, *, batch: int = 1) -> list[dict]:
    """The Fig. 1 claim over a model's layers: improvement ~4x per layer."""
    from ..models import get_model_layers

    return [
        cal_ld_point(GemmShape.from_conv(spec), layer=spec.name)
        for spec in get_model_layers(model, batch=batch)
    ]


# ---------------------------------------------------------------------------
# Accumulation-chain overhead (Sec. 3.3, live)
# ---------------------------------------------------------------------------


def chain_overhead(bits: int) -> dict:
    """SADDW widening share of the generated kernel's issue occupancy.

    Generates the scheme's real instruction stream at ``K=_CHAIN_K`` and
    weighs each opcode by its pipe occupancy from the A53 cost table (the
    scalar bookkeeping ops count one issue slot each).  The fraction is
    the price of overflow safety: short chains (8-bit: 2:1) drain often
    and pay heavily, long chains (4-bit: 511:1) almost never do.
    """
    from ..arm.cost_model import _generate, scheme_for_bits
    from ..arm.pipeline import A53_COST_TABLE
    from ..arm.ratios import chain_length, round_interval

    scheme = scheme_for_bits(bits)
    kern = _generate(scheme, bits, _CHAIN_K, True, None)
    widen_cycles = total_cycles = 0
    for op, count in kern.summary().items():
        cost = A53_COST_TABLE.cost(op)
        busy = count * max(1, cost.neon_cycles + cost.mem_cycles)
        total_cycles += busy
        if op.startswith("SADDW"):
            widen_cycles += busy
    fraction = widen_cycles / total_cycles if total_cycles else 0.0
    obs_metrics.gauge(
        "chain_overhead_fraction", bits=bits, scheme=scheme
    ).set(fraction)
    return {
        "bits": bits,
        "scheme": scheme,
        "chain": chain_length(bits),
        "round_interval": round_interval(bits),
        "widen_cycles": widen_cycles,
        "busy_cycles": total_cycles,
        "fraction": fraction,
    }


def chain_overhead_table(bit_widths: Sequence[int] = (2, 3, 4, 5, 6, 7, 8)) -> list[dict]:
    with obs_trace.span("roofline.chain_overhead"):
        return [chain_overhead(b) for b in bit_widths]


# ---------------------------------------------------------------------------
# Text rendering (the `repro profile` / `repro report` surface)
# ---------------------------------------------------------------------------


def _fmt_ops(ops: float) -> str:
    for unit, scale in (("T", 1e12), ("G", 1e9), ("M", 1e6), ("K", 1e3)):
        if ops >= scale:
            return f"{ops / scale:.2f} {unit}MAC/s"
    return f"{ops:.1f} MAC/s"


def roofline_table(points: Sequence[RooflinePoint], limit: int = 0) -> list[str]:
    """Fixed-width per-layer table, lowest %-of-roof (most headroom) last."""
    if not points:
        return ["  (no roofline points)"]
    rows = sorted(points, key=lambda p: -p.pct_of_roof)
    if limit:
        rows = rows[:limit]
    lines = [
        f"  {'layer':<22} {'bits':>4} {'ops/byte':>9} {'achieved':>14} "
        f"{'roof':>14} {'%roof':>6}  bound"
    ]
    for p in rows:
        lines.append(
            f"  {p.layer:<22} {p.bits:>4} {p.intensity:>9.2f} "
            f"{_fmt_ops(p.achieved_ops):>14} {_fmt_ops(p.roof_ops):>14} "
            f"{p.pct_of_roof:>6.1%}  {p.bound}"
        )
    if limit and len(points) > limit:
        lines.append(f"  ... {len(points) - limit} more points")
    return lines


def ascii_roofline(
    points: Sequence[RooflinePoint], *, width: int = 68, height: int = 16
) -> list[str]:
    """Log-log scatter of the roofline plane with the roof drawn in.

    X is arithmetic intensity (MACs/byte), Y is MACs/s; the roof uses the
    first point's peaks (one plot per backend).  Points are plotted as the
    last digit of their bit width.
    """
    pts = [p for p in points if p.intensity > 0 and p.achieved_ops > 0]
    if not pts:
        return ["  (no roofline points)"]
    peak = max(p.peak_compute_ops for p in pts)
    bw = max(p.peak_bandwidth for p in pts)
    x_lo = min(min(p.intensity for p in pts), peak / bw) / 2
    x_hi = max(max(p.intensity for p in pts), peak / bw) * 2
    y_hi = peak * 2
    y_lo = min(p.achieved_ops for p in pts) / 2
    lx_lo, lx_hi = math.log10(x_lo), math.log10(x_hi)
    ly_lo, ly_hi = math.log10(y_lo), math.log10(y_hi)

    def col(x: float) -> int:
        return round((math.log10(x) - lx_lo) / (lx_hi - lx_lo) * (width - 1))

    def row(y: float) -> int:
        frac = (math.log10(y) - ly_lo) / (ly_hi - ly_lo)
        return (height - 1) - round(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    # the roof: y = min(peak, bw * x) across every column
    for c in range(width):
        x = 10 ** (lx_lo + (lx_hi - lx_lo) * c / (width - 1))
        y = min(peak, bw * x)
        r = row(y)
        if 0 <= r < height:
            grid[r][c] = "-" if y >= peak else "/"
    for p in pts:
        r, c = row(p.achieved_ops), col(p.intensity)
        if 0 <= r < height and 0 <= c < width:
            grid[r][c] = str(p.bits % 10)
    lines = [f"  MACs/s (peak {_fmt_ops(peak)})"]
    lines += ["  |" + "".join(r) for r in grid]
    lines.append("  +" + "-" * width)
    lines.append(f"   MACs/byte, log-log [{x_lo:.3g} .. {x_hi:.3g}]  "
                 f"(digits = bit width)")
    return lines


def cal_ld_lines(table: Sequence[dict], limit: int = 6) -> list[str]:
    lines = [f"  {'layer':<22} {'trad CAL/LD':>12} {'redesigned':>12} "
             f"{'improvement':>12}"]
    for row in table[:limit]:
        label = row["layer"] or "x".join(
            str(row.get(d)) for d in ("m", "k", "n"))
        lines.append(
            f"  {label:<22} "
            f"{row['traditional']:>12.3f} {row['redesigned']:>12.3f} "
            f"{row['improvement']:>11.2f}x"
        )
    if len(table) > limit:
        lines.append(f"  ... {len(table) - limit} more layers")
    return lines


def chain_overhead_lines(table: Sequence[dict]) -> list[str]:
    lines = [f"  {'bits':>4} {'scheme':>7} {'chain':>6} {'widen/busy':>14} "
             f"{'overhead':>9}"]
    for row in table:
        lines.append(
            f"  {row['bits']:>4} {row['scheme']:>7} {row['chain']:>6} "
            f"{row['widen_cycles']:>6}/{row['busy_cycles']:<7} "
            f"{row['fraction']:>9.2%}"
        )
    return lines
