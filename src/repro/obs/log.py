"""Env-gated structured logging for the library's degradation paths.

The library's resilience rules ("the cache is an optimization, never a
failure source"; stale persisted entries recompute) are correct but were
previously *silent*.  Every such path now emits a structured event::

    from repro.obs import log

    log.warning("cache_corrupt", namespace=ns, path=str(path),
                error="ValueError")

Events are ``event_name key=value ...`` lines routed through the standard
:mod:`logging` tree under the ``"repro"`` logger:

* records always propagate, so tests (``caplog``) and host applications
  can observe them regardless of environment;
* a stderr handler is attached only when ``REPRO_LOG`` is set
  (``debug`` | ``info`` | ``warning`` | ``error``), which also sets the
  logger threshold — ``REPRO_LOG=debug`` surfaces cache-stale/fallback
  chatter that is normally suppressed.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Any

#: environment variable selecting the stderr log level
LOG_ENV = "REPRO_LOG"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}

_ROOT_NAME = "repro"
_configured = False
_stderr_handler: logging.Handler | None = None


def _configure() -> None:
    global _configured, _stderr_handler
    if _configured:
        return
    _configured = True
    root = logging.getLogger(_ROOT_NAME)
    # never the "no handlers could be found" warning, never double prints
    root.addHandler(logging.NullHandler())
    env = os.environ.get(LOG_ENV, "").strip().lower()
    if env:
        level = _LEVELS.get(env, logging.INFO)
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s %(message)s"
        ))
        root.addHandler(handler)
        root.setLevel(level)
        _stderr_handler = handler
    else:
        # records still reach propagated handlers (tests, host apps)
        root.setLevel(logging.WARNING)


def reconfigure() -> None:
    """Re-read ``REPRO_LOG`` (tests flip the env var mid-process)."""
    global _configured, _stderr_handler
    root = logging.getLogger(_ROOT_NAME)
    if _stderr_handler is not None:
        root.removeHandler(_stderr_handler)
        _stderr_handler = None
    _configured = False
    _configure()


def get_logger(name: str = _ROOT_NAME) -> logging.Logger:
    """A logger under the configured ``repro`` tree."""
    _configure()
    if name != _ROOT_NAME and not name.startswith(_ROOT_NAME + "."):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def _render(event: str, fields: dict[str, Any]) -> str:
    if not fields:
        return event
    parts = " ".join(f"{k}={fields[k]}" for k in fields)
    return f"{event} {parts}"


def _emit(level: int, event: str, logger: str | None, fields: dict) -> None:
    log = get_logger(logger or _ROOT_NAME)
    if log.isEnabledFor(level):
        log.log(level, _render(event, fields))


def debug(event: str, *, logger: str | None = None, **fields: Any) -> None:
    _emit(logging.DEBUG, event, logger, fields)


def info(event: str, *, logger: str | None = None, **fields: Any) -> None:
    _emit(logging.INFO, event, logger, fields)


def warning(event: str, *, logger: str | None = None, **fields: Any) -> None:
    _emit(logging.WARNING, event, logger, fields)


def error(event: str, *, logger: str | None = None, **fields: Any) -> None:
    _emit(logging.ERROR, event, logger, fields)
