"""Deterministic-interval wall-clock stack sampler.

A daemon thread walks ``sys._current_frames()`` on a fixed tick grid and
folds what it sees into *collapsed stacks* — the ``root;child;leaf N``
text format flamegraph tooling consumes, rendered natively as an SVG
panel by :func:`repro.obs.htmlreport.flamegraph_svg`.

Why wall-clock sampling, next to the span tracer the repo already has?
Spans only cover instrumented call sites; the sampler attributes *all*
time — the numpy inner loops, the pickle stalls in process pools, the
lock convoy nobody thought to wrap in a span — with zero code changes
and bounded overhead (one frame walk per tick, no sys.settrace).

Determinism caveats (see DESIGN §5.12): the *tick grid* is deterministic
— tick ``k`` fires at ``t0 + k*interval`` and ticks the thread missed
(because a walk overran or the OS descheduled it) are *counted*, never
silently skipped, so two runs of the same workload disagree only in
which frames they catch, not in how many ticks elapsed.  The frames
themselves are inherently racy: a sample is a statistical claim, not a
trace.  CPython's GIL means the walk observes a consistent snapshot of
each thread's stack, but threads blocked in C extensions show the call
site of the extension, not its interior.

Usage::

    from repro.obs import sampler

    with sampler.sampling(interval_s=0.005) as s:
        hot_workload()
    print(sampler.collapsed_text(s.collapsed()))
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
import time
from typing import Iterator

#: default tick interval: 5 ms ≈ 200 Hz, coarse enough that a tick's
#: frame walk (tens of µs) never dominates
DEFAULT_INTERVAL_S = 0.005

#: frames deeper than this are truncated with a ``...`` marker so one
#: runaway recursion cannot bloat every collapsed key
MAX_DEPTH = 64


def _frame_label(frame) -> str:
    code = frame.f_code
    fname = os.path.basename(code.co_filename)
    qual = getattr(code, "co_qualname", code.co_name)
    return f"{fname}:{qual}"


def _collapse(frame) -> str:
    """Fold one thread's frame chain into ``outer;...;leaf``."""
    parts: list[str] = []
    while frame is not None and len(parts) < MAX_DEPTH:
        parts.append(_frame_label(frame))
        frame = frame.f_back
    if frame is not None:
        parts.append("...")
    parts.reverse()
    return ";".join(parts)


class StackSampler:
    """Samples every live thread's stack on a deterministic tick grid."""

    def __init__(self, *, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: ticks actually sampled
        self.sample_count = 0
        #: grid ticks that elapsed un-sampled (walk overran / descheduled)
        self.missed_ticks = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "StackSampler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        return self

    # -- the sampling loop --------------------------------------------------

    def _run(self) -> None:
        me = threading.get_ident()
        t0 = time.perf_counter()
        tick = 0
        while not self._stop.is_set():
            self._sample_once(me)
            tick += 1
            # deterministic grid: next tick is t0 + tick*interval; if the
            # walk overran whole intervals, account for the skipped ticks
            # instead of drifting the grid
            now = time.perf_counter()
            behind = int((now - t0) / self.interval_s) + 1
            if behind > tick:
                self.missed_ticks += behind - tick
                tick = behind
            deadline = t0 + tick * self.interval_s
            delay = deadline - now
            if delay > 0 and self._stop.wait(delay):
                break

    def _sample_once(self, skip_ident: int) -> None:
        frames = sys._current_frames()
        with self._lock:
            self.sample_count += 1
            for ident, frame in frames.items():
                if ident == skip_ident:
                    continue
                key = _collapse(frame)
                if key:
                    self._counts[key] = self._counts.get(key, 0) + 1

    # -- results ------------------------------------------------------------

    def collapsed(self) -> dict[str, int]:
        """Collapsed-stack counts (``outer;...;leaf`` → samples)."""
        with self._lock:
            return dict(self._counts)

    def summary(self, *, top: int | None = None) -> dict:
        """JSON-ready stats block for BENCH payloads and the HTML report.

        ``top`` caps the exported stacks to the heaviest N (full counts
        stay available via :meth:`collapsed`); the cap is reported so a
        truncated export never masquerades as complete.
        """
        counts = self.collapsed()
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if top is not None:
            ordered = ordered[:top]
        return {
            "interval_ms": self.interval_s * 1e3,
            "samples": self.sample_count,
            "missed_ticks": self.missed_ticks,
            "distinct_stacks": len(counts),
            "stacks_exported": len(ordered),
            "stacks": dict(ordered),
        }


@contextlib.contextmanager
def sampling(
    *, interval_s: float = DEFAULT_INTERVAL_S,
) -> Iterator[StackSampler]:
    """Run a :class:`StackSampler` for the block and stop it on exit."""
    s = StackSampler(interval_s=interval_s).start()
    try:
        yield s
    finally:
        s.stop()


# ---------------------------------------------------------------------------
# Collapsed-stack text (the flamegraph interchange format)
# ---------------------------------------------------------------------------


def collapsed_text(counts: dict[str, int]) -> str:
    """``stack count`` lines, heaviest first (ties break lexically)."""
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return "".join(f"{stack} {n}\n" for stack, n in ordered)


def write_collapsed(
    counts: dict[str, int], path: "str | os.PathLike",
) -> "pathlib.Path":
    """Write ``counts`` as a collapsed-stack text file — the interchange
    format ``repro diff`` and external flamegraph tooling consume
    (``--stacks`` on bench/profile routes here)."""
    import pathlib

    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(collapsed_text(counts), encoding="utf-8")
    return p


def parse_collapsed(text: str) -> dict[str, int]:
    """Inverse of :func:`collapsed_text` (tests round-trip through it)."""
    counts: dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, n = line.rpartition(" ")
        if not stack:
            raise ValueError(f"malformed collapsed line {line!r}")
        counts[stack] = counts.get(stack, 0) + int(n)
    return counts
