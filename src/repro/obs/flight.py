"""Always-on flight recorder: trace contexts + a bounded event ring.

The tracer in :mod:`repro.obs.trace` only records while a tracer is
explicitly installed — great for deliberate profiling sessions, useless
for the question "what just happened?".  This module adds the production
side of the story:

* **Trace contexts.**  :class:`TraceContext` is the ``(trace_id,
  span_id, parent_id)`` triple carried in a thread-local.  Every real
  span (see :func:`repro.obs.trace.span`) derives a child context on
  entry and restores its parent on exit, so span records — whichever
  sink they land in — know their position in the request tree.
  :class:`repro.perf.parallel.ParallelRunner` re-activates the caller's
  context inside worker threads/processes, so a parallel autotune sweep
  produces one coherent parent-child tree instead of per-thread islands.

* **The flight recorder.**  A process-wide, bounded ring buffer
  (:class:`FlightRecorder`, default :data:`DEFAULT_CAPACITY` events,
  ``REPRO_FLIGHT_CAPACITY`` overrides) that receives *every* span and
  instant event while enabled — no tracer installation required.  When
  something goes wrong, ``python -m repro flight --dump t.json`` exports
  the last N seconds as a Chrome ``trace_event`` file after the fact.
  Old events fall off the back; the recorder never grows unbounded and
  never blocks the hot path for more than one lock-guarded append.

  Enabled by default; ``REPRO_FLIGHT=0`` (or :func:`disable`) turns it
  off, restoring the strict no-op instrumentation path.  The disabled
  *and* the enabled-but-idle cost are both bounded by tests
  (``tests/test_obs_flight.py``).

* **Clocks.**  All timestamps come from one module-level monotonic base
  (:func:`monotonic_us`, shared by :class:`repro.obs.trace.Tracer`), so
  events recorded by different threads of one process merge in a
  consistent order.  Wall-clock enters only as the trace *epoch*
  (:func:`wall_epoch_us`), recorded once at import and exported as
  metadata — the anchor for aligning dumps from different processes.

Structured instant events (fault injections from
:mod:`repro.resilience.faults`, autotune sweep completions) ride in the
same ring, so a chaos run's injected faults are replayable next to the
spans they perturbed.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import pathlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

#: environment variable disabling the recorder ("0" | "off" | "false" | "no")
FLIGHT_ENV = "REPRO_FLIGHT"
#: environment variable overriding the ring capacity (events)
CAPACITY_ENV = "REPRO_FLIGHT_CAPACITY"
#: default ring capacity; at the library's coarse span rate this holds
#: minutes of history in ~a few MB
DEFAULT_CAPACITY = 65536

# ---------------------------------------------------------------------------
# Clocks: one monotonic base per process, wall-clock only as the epoch
# ---------------------------------------------------------------------------

_EPOCH_PERF = time.perf_counter()
_EPOCH_WALL_US = time.time() * 1e6


def monotonic_us() -> float:
    """Microseconds since the module epoch — monotonic, shared by every
    thread of the process, comparable across tracers and the recorder."""
    return (time.perf_counter() - _EPOCH_PERF) * 1e6


def wall_epoch_us() -> float:
    """Wall-clock microseconds (Unix epoch) at the monotonic base.

    ``wall_epoch_us() + monotonic_us()`` approximates absolute wall time;
    it is exported as trace metadata so dumps from different processes
    (each with its own monotonic base) can be aligned offline.
    """
    return _EPOCH_WALL_US


# ---------------------------------------------------------------------------
# Trace context
# ---------------------------------------------------------------------------

_ID_COUNTER = itertools.count(1)
#: per-process id prefix: pid + startup wall clock, so ids from workers
#: of a process pool never collide with the parent's
_ID_PREFIX = f"{os.getpid() & 0xFFFF:04x}{int(_EPOCH_WALL_US) & 0xFFFFFF:06x}"


def _next_id() -> str:
    return f"{_ID_PREFIX}{next(_ID_COUNTER):08x}"


@dataclass(frozen=True)
class TraceContext:
    """Position of the current operation in a trace tree.

    Immutable and picklable: :class:`~repro.perf.parallel.ParallelRunner`
    ships it into process-pool workers verbatim.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def child(self) -> "TraceContext":
        """A fresh child context: same trace, new span, parent = self."""
        return TraceContext(self.trace_id, _next_id(), self.span_id)


def new_trace() -> TraceContext:
    """A root context starting a brand-new trace."""
    return TraceContext(_next_id(), _next_id(), None)


def derive(parent: "TraceContext | None") -> TraceContext:
    """A child of ``parent``, or a fresh root when there is no parent."""
    return parent.child() if parent is not None else new_trace()


_TLS = threading.local()


def current_context() -> "TraceContext | None":
    """The context active on this thread (None outside any span)."""
    return getattr(_TLS, "ctx", None)


def _set_context(ctx: "TraceContext | None") -> None:
    """Install ``ctx`` on this thread (the span fast path; no nesting
    bookkeeping — callers restore the previous value themselves)."""
    _TLS.ctx = ctx


@contextlib.contextmanager
def context(ctx: "TraceContext | None") -> Iterator["TraceContext | None"]:
    """Activate ``ctx`` for the block (the worker-side propagation hook).

    ``context(None)`` is a no-op: propagating "no context" costs nothing
    and changes nothing, so callers never need to branch.
    """
    if ctx is None:
        yield None
        return
    prev = current_context()
    _set_context(ctx)
    try:
        yield ctx
    finally:
        _set_context(prev)


# ---------------------------------------------------------------------------
# Events and the ring buffer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlightEvent:
    """One recorded span ("span") or marker ("instant").

    ``ts_us`` is module-monotonic (see :func:`monotonic_us`); exports
    re-anchor on the wall epoch.
    """

    kind: str
    name: str
    cat: str
    ts_us: float
    dur_us: float
    tid: int
    trace_id: str
    span_id: str
    parent_id: str | None = None
    args: dict[str, Any] = field(default_factory=dict)


class FlightRecorder:
    """Bounded, thread-safe ring of :class:`FlightEvent` records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._events: deque[FlightEvent] = deque(maxlen=capacity)
        self._thread_names: dict[int, str] = {}
        self._total = 0

    # -- recording ----------------------------------------------------------

    def record(self, event: FlightEvent) -> None:
        tid = event.tid
        tname = threading.current_thread().name
        with self._lock:
            self._events.append(event)
            self._total += 1
            self._thread_names.setdefault(tid, tname)

    # -- introspection ------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._events.maxlen or 0

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (>= ``len`` once the ring has wrapped)."""
        with self._lock:
            return self._total

    @property
    def dropped(self) -> int:
        """Events evicted off the back of the ring so far."""
        with self._lock:
            return self._total - len(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self, *, last_s: float | None = None) -> list[FlightEvent]:
        """A snapshot of the ring, oldest first.

        ``last_s`` keeps only events that *ended* within the trailing
        window (the ``--last`` CLI flag).
        """
        with self._lock:
            out = list(self._events)
        if last_s is not None:
            cutoff = monotonic_us() - last_s * 1e6
            out = [e for e in out if e.ts_us + e.dur_us >= cutoff]
        return out

    def resize(self, capacity: int) -> None:
        """Change the ring capacity, keeping the newest events."""
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        with self._lock:
            self._events = deque(self._events, maxlen=capacity)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._thread_names.clear()
            self._total = 0

    # -- export -------------------------------------------------------------

    def chrome_trace(
        self, *, last_s: float | None = None, process_name: str = "repro flight"
    ) -> dict:
        """The Chrome ``trace_event`` object format (Perfetto-loadable).

        ``ts`` is relative to the oldest exported event; the wall-clock
        anchor of that origin rides in ``otherData.trace_epoch_wall_us``
        so dumps from different processes can be merged offline.  Spans
        become ``"X"`` events, instants ``"i"`` events; trace ids travel
        in ``args`` (the same ``span_id``/``parent_id`` keys
        :func:`repro.obs.diff.spans_from_chrome` aligns trees by, so two
        ``flight --dump`` files diff directly).
        """
        events = self.events(last_s=last_s)
        with self._lock:
            thread_names = dict(self._thread_names)
        pid = os.getpid()
        t0 = min((e.ts_us for e in events), default=0.0)
        out: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        }]
        for tid, tname in sorted(thread_names.items()):
            out.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname},
            })
        for e in events:
            args = {k: _jsonable(v) for k, v in e.args.items()}
            args["trace_id"] = e.trace_id
            args["span_id"] = e.span_id
            if e.parent_id is not None:
                args["parent_id"] = e.parent_id
            ev: dict[str, Any] = {
                "name": e.name, "cat": e.cat,
                "ts": round(e.ts_us - t0, 3),
                "pid": pid, "tid": e.tid, "args": args,
            }
            if e.kind == "span":
                ev["ph"] = "X"
                ev["dur"] = round(e.dur_us, 3)
            else:
                ev["ph"] = "i"
                ev["s"] = "t"  # thread-scoped instant
            out.append(ev)
        return {
            "traceEvents": out,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_epoch_wall_us": round(wall_epoch_us() + t0, 3),
                "events_recorded": self.total_recorded,
                "events_dropped": self.dropped,
            },
        }

    def write(
        self, path: str | os.PathLike, *,
        last_s: float | None = None, process_name: str = "repro flight",
    ) -> pathlib.Path:
        """Serialize :meth:`chrome_trace` to ``path``; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = self.chrome_trace(last_s=last_s, process_name=process_name)
        path.write_text(
            json.dumps(doc, separators=(",", ":")) + "\n", encoding="utf-8")
        return path


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Trace-tree validation (tests + the CI telemetry gate)
# ---------------------------------------------------------------------------


def span_events(events: Iterable[FlightEvent]) -> list[FlightEvent]:
    return [e for e in events if e.kind == "span"]


def unresolved_parents(events: Iterable[FlightEvent]) -> list[FlightEvent]:
    """Events whose ``parent_id`` does not resolve to a recorded span.

    Spans land in the ring at *exit*, so children precede their parents
    in buffer order — resolution is order-insensitive.  On a healthy,
    un-wrapped buffer covering a whole operation this returns ``[]``;
    eviction of old parents is the one legitimate source of orphans.
    """
    events = list(events)
    known = {(e.trace_id, e.span_id) for e in span_events(events)}
    return [
        e for e in events
        if e.parent_id is not None and (e.trace_id, e.parent_id) not in known
    ]


def trace_ids(events: Iterable[FlightEvent]) -> set[str]:
    return {e.trace_id for e in events}


# ---------------------------------------------------------------------------
# The process recorder and the enablement switch
# ---------------------------------------------------------------------------


def _env_capacity() -> int:
    raw = os.environ.get(CAPACITY_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_CAPACITY


_RECORDER = FlightRecorder(_env_capacity())
_ENABLED = os.environ.get(FLIGHT_ENV, "").strip().lower() not in (
    "0", "off", "false", "no")


def recorder() -> FlightRecorder:
    return _RECORDER


def enabled() -> bool:
    """True while the flight recorder accepts events (one global read —
    this is the hot-path gate)."""
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


@contextlib.contextmanager
def suspended() -> Iterator[None]:
    """Disable the recorder for the block (tests, overhead baselines)."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = prev


@contextlib.contextmanager
def capture(capacity: int | None = None) -> Iterator[FlightRecorder]:
    """Enable the recorder on a cleared ring for the block (test helper).

    Restores the previous enablement and drops the block's events from
    consideration by yielding the recorder itself for inspection.
    """
    global _ENABLED
    prev = _ENABLED
    if capacity is not None:
        _RECORDER.resize(capacity)
    _RECORDER.clear()
    _ENABLED = True
    try:
        yield _RECORDER
    finally:
        _ENABLED = prev


# ---------------------------------------------------------------------------
# Recording hooks (what the trace layer and instrumented sites call)
# ---------------------------------------------------------------------------


def record_span(
    name: str, cat: str, args: dict, start_us: float, end_us: float,
    ctx: TraceContext, *, tid: int | None = None,
) -> None:
    """Record one completed span (no-op while disabled)."""
    if not _ENABLED:
        return
    _RECORDER.record(FlightEvent(
        kind="span", name=name, cat=cat,
        ts_us=start_us, dur_us=max(0.0, end_us - start_us),
        tid=tid if tid is not None else threading.get_ident(),
        trace_id=ctx.trace_id, span_id=ctx.span_id, parent_id=ctx.parent_id,
        args=args,
    ))


def instant(name: str, *, cat: str = "repro", **args: Any) -> None:
    """Record a structured marker event under the current context.

    The marker gets its own span id (child of the active span, or a
    fresh root), so instants are addressable in the tree — a histogram
    exemplar or a log line can point at one fault injection.  No-op
    while disabled.
    """
    if not _ENABLED:
        return
    ctx = derive(current_context())
    _RECORDER.record(FlightEvent(
        kind="instant", name=name, cat=cat,
        ts_us=monotonic_us(), dur_us=0.0,
        tid=threading.get_ident(),
        trace_id=ctx.trace_id, span_id=ctx.span_id, parent_id=ctx.parent_id,
        args=args,
    ))
