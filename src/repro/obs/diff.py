"""Differential profiling: attribute *where* two runs diverge.

``python -m repro regress`` can say *that* wall clock drifted; this
module answers *where*.  It takes two runs — Chrome trace JSONs from the
:class:`~repro.obs.trace.Tracer` or flight recorder, collapsed-stack
samples from :mod:`repro.obs.sampler`, metrics snapshots, ``BENCH_*.json``
reports, or two ledger entries selected by run id / git sha /
fingerprint — and produces a ranked attribution report:

* **per-span deltas with tree alignment** — spans are keyed by their
  *name path* (the chain of span names from the trace root, via the
  ``trace_id``/``span_id``/``parent_id`` linkage every span carries), so
  ``autotune.search`` under ``bench.cold`` never aliases the same span
  under ``bench.warm``; each aligned node reports count and self/total
  time on both sides;
* **per-phase wall-clock deltas** — ranked by ``|log(b/a)|`` so a 2x
  shift on a 30 ms phase outranks 30% noise on a 300 ms one; phases
  shorter than :data:`PHASE_FLOOR_S` on both sides are demoted below
  every floored phase (their ratios are pure timer noise);
* **counter / gauge / histogram deltas** — histogram deltas include
  per-bucket shifts when both sides expose
  :meth:`~repro.obs.metrics.Histogram.bucket_counts`;
* **changepoint detection** — each phase's wall-clock series over the
  ledger is split at the point of maximum between-segment variance
  reduction, so a ``regress`` failure points at the *first offending
  entry* (run id + git sha) and the culprit phase, not just the newest;
* **a red/blue differential flamegraph** — two collapsed-stack sets
  merged into one icicle layout, sample counts normalized to the second
  run's total, each frame colored by its share shift (red grew, blue
  shrank).

Determinism: every ranking breaks ties lexically, floats are rounded at
the report boundary, and :meth:`DiffReport.to_json` serializes with
sorted keys — the same inputs always produce byte-identical output (the
``regress --attribute`` embedding contract, pinned by tests).
"""

from __future__ import annotations

import json
import math
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from . import metrics as obs_metrics
from . import sampler as obs_sampler

#: bump when the diff-report JSON layout changes
SCHEMA_VERSION = 1

#: phases where both sides are shorter than this are ranked below every
#: longer phase: at sub-5 ms scale the log-ratio measures timer noise,
#: not behavior
PHASE_FLOOR_S = 0.005

#: changepoints scoring below this fraction of total variance explained
#: are suppressed (a flat-but-noisy series "splits" anywhere)
CHANGEPOINT_MIN_SCORE = 0.5

#: series shorter than this cannot support a changepoint verdict
CHANGEPOINT_MIN_RUNS = 4


def _round6(v: float) -> float:
    return round(float(v), 6)


# ---------------------------------------------------------------------------
# Span extraction and tree-aligned aggregation
# ---------------------------------------------------------------------------


def spans_from_chrome(doc: dict) -> list[dict]:
    """Extract span dicts from a Chrome ``trace_event`` document.

    Accepts both :meth:`repro.obs.trace.Tracer.chrome_trace` and
    :meth:`repro.obs.flight.FlightRecorder.chrome_trace` output: ``"X"``
    events become ``{name, dur_us, span_id, parent_id}``; metadata and
    instant events are skipped.  Trace ids ride in each event's ``args``.
    """
    out: list[dict] = []
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args") or {}
        out.append({
            "name": str(ev.get("name", "?")),
            "dur_us": float(ev.get("dur", 0.0)),
            "span_id": args.get("span_id"),
            "parent_id": args.get("parent_id"),
        })
    return out


def spans_from_records(records: Iterable[Any]) -> list[dict]:
    """Adapt :meth:`repro.obs.trace.Tracer.spans` output (SpanRecord
    objects) to the span-dict shape :func:`aggregate_spans` consumes."""
    return [{
        "name": r.name,
        "dur_us": r.dur_us,
        "span_id": r.span_id or None,
        "parent_id": r.parent_id,
    } for r in records]


def aggregate_spans(spans: Sequence[dict]) -> dict[str, dict]:
    """Fold spans into ``{name_path: {count, total_us, self_us}}``.

    The *name path* is the ``;``-joined chain of span names from the
    trace root (resolved through ``parent_id``; an unresolvable parent —
    evicted from the flight ring, or a trace without ids — starts a
    fresh root).  Self time is the span's duration minus its children's,
    clamped at zero: clock jitter can make a child nominally outlast its
    parent, and a negative self time would poison every ranking above it.
    """
    by_id: dict[Any, dict] = {}
    child_total: dict[Any, float] = {}
    for s in spans:
        sid = s.get("span_id")
        if sid is not None:
            by_id[sid] = s
    for s in spans:
        pid = s.get("parent_id")
        if pid is not None and pid in by_id:
            child_total[pid] = child_total.get(pid, 0.0) + s["dur_us"]

    paths: dict[Any, str] = {}

    def path_of(s: dict) -> str:
        sid = s.get("span_id")
        if sid is not None and sid in paths:
            return paths[sid]
        chain = [s["name"]]
        seen = {sid} if sid is not None else set()
        cur = s
        while True:
            pid = cur.get("parent_id")
            if pid is None or pid not in by_id or pid in seen:
                break
            seen.add(pid)
            cur = by_id[pid]
            chain.append(cur["name"])
        p = ";".join(reversed(chain))
        if sid is not None:
            paths[sid] = p
        return p

    agg: dict[str, dict] = {}
    for s in spans:
        p = path_of(s)
        node = agg.setdefault(p, {"count": 0, "total_us": 0.0, "self_us": 0.0})
        node["count"] += 1
        node["total_us"] += s["dur_us"]
        sid = s.get("span_id")
        node["self_us"] += max(0.0, s["dur_us"] - child_total.get(sid, 0.0))
    return agg


@dataclass(frozen=True)
class SpanDelta:
    """One tree-aligned span node compared across the two runs."""

    path: str
    count_a: int
    count_b: int
    total_us_a: float
    total_us_b: float
    self_us_a: float
    self_us_b: float

    @property
    def name(self) -> str:
        return self.path.rsplit(";", 1)[-1]

    @property
    def d_self_us(self) -> float:
        return self.self_us_b - self.self_us_a

    @property
    def d_total_us(self) -> float:
        return self.total_us_b - self.total_us_a

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "count_a": self.count_a, "count_b": self.count_b,
            "total_us_a": _round6(self.total_us_a),
            "total_us_b": _round6(self.total_us_b),
            "self_us_a": _round6(self.self_us_a),
            "self_us_b": _round6(self.self_us_b),
            "d_self_us": _round6(self.d_self_us),
            "d_total_us": _round6(self.d_total_us),
        }


def diff_spans(spans_a: Sequence[dict], spans_b: Sequence[dict]) -> list[SpanDelta]:
    """Aligned span deltas over the union of name paths, largest absolute
    self-time shift first (ties break lexically by path)."""
    agg_a = aggregate_spans(spans_a)
    agg_b = aggregate_spans(spans_b)
    empty = {"count": 0, "total_us": 0.0, "self_us": 0.0}
    out = []
    for path in set(agg_a) | set(agg_b):
        a = agg_a.get(path, empty)
        b = agg_b.get(path, empty)
        out.append(SpanDelta(
            path=path,
            count_a=a["count"], count_b=b["count"],
            total_us_a=a["total_us"], total_us_b=b["total_us"],
            self_us_a=a["self_us"], self_us_b=b["self_us"],
        ))
    return sorted(out, key=lambda d: (-abs(d.d_self_us), d.path))


# ---------------------------------------------------------------------------
# Phase deltas (wall-clock seconds per bench phase)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseDelta:
    """One wall-clock phase compared across the two runs.

    ``score`` is ``|log(b/a)|`` — scale-free, so a genuine 2x shift on a
    small phase outranks proportionally small noise on a large one — and
    0.0 for floored phases (see :data:`PHASE_FLOOR_S`) and phases
    missing on either side.
    """

    phase: str
    seconds_a: float | None
    seconds_b: float | None
    floored: bool = False

    @property
    def delta(self) -> float | None:
        if self.seconds_a is None or self.seconds_b is None:
            return None
        return self.seconds_b - self.seconds_a

    @property
    def ratio(self) -> float | None:
        if not self.seconds_a or self.seconds_b is None:
            return None
        return self.seconds_b / self.seconds_a

    @property
    def score(self) -> float:
        if self.floored or not self.seconds_a or not self.seconds_b:
            return 0.0
        return abs(math.log(self.seconds_b / self.seconds_a))

    def as_dict(self) -> dict:
        return {
            "phase": self.phase,
            "seconds_a": _round6(self.seconds_a) if self.seconds_a is not None else None,
            "seconds_b": _round6(self.seconds_b) if self.seconds_b is not None else None,
            "delta": _round6(self.delta) if self.delta is not None else None,
            "ratio": _round6(self.ratio) if self.ratio is not None else None,
            "score": _round6(self.score),
            "floored": self.floored,
        }


def diff_phases(
    phases_a: dict[str, float], phases_b: dict[str, float],
    *, floor_s: float = PHASE_FLOOR_S,
) -> list[PhaseDelta]:
    """Ranked wall-clock phase deltas over the union of phase names.

    Phases below ``floor_s`` on *both* sides rank below every other
    phase regardless of ratio; within each group the order is score
    descending, ties lexical.
    """
    out = []
    for phase in set(phases_a) | set(phases_b):
        a = phases_a.get(phase)
        b = phases_b.get(phase)
        floored = (
            (a is None or a < floor_s) and (b is None or b < floor_s))
        out.append(PhaseDelta(
            phase=phase, seconds_a=a, seconds_b=b, floored=floored))
    return sorted(out, key=lambda d: (d.floored, -d.score, d.phase))


# ---------------------------------------------------------------------------
# Metrics deltas (counters / gauges / histograms)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    key: str
    kind: str  #: "counter" | "gauge"
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    def as_dict(self) -> dict:
        return {"key": self.key, "kind": self.kind,
                "a": _round6(self.a), "b": _round6(self.b),
                "delta": _round6(self.delta)}


@dataclass(frozen=True)
class HistogramDelta:
    """Count/sum/mean shift of one histogram series, plus per-bucket
    deltas when both sides expose bucket counts."""

    key: str
    count_a: int
    count_b: int
    sum_a: float
    sum_b: float
    mean_a: float
    mean_b: float
    #: ``(bucket_index, count_b - count_a)`` for buckets that moved;
    #: indices follow :data:`repro.obs.metrics.BUCKET_BOUNDS` (+Inf last)
    bucket_deltas: tuple[tuple[int, int], ...] | None = None

    def as_dict(self) -> dict:
        out = {
            "key": self.key,
            "count_a": self.count_a, "count_b": self.count_b,
            "sum_a": _round6(self.sum_a), "sum_b": _round6(self.sum_b),
            "mean_a": _round6(self.mean_a), "mean_b": _round6(self.mean_b),
            "d_mean": _round6(self.mean_b - self.mean_a),
        }
        if self.bucket_deltas is not None:
            out["bucket_deltas"] = [list(bd) for bd in self.bucket_deltas]
        return out


def histogram_delta(
    key: str,
    a: "obs_metrics.Histogram | dict",
    b: "obs_metrics.Histogram | dict",
) -> HistogramDelta:
    """Delta of two histograms — live :class:`~repro.obs.metrics.Histogram`
    objects (bucket deltas via :meth:`~repro.obs.metrics.Histogram.bucket_counts`)
    or snapshot dicts (aggregates only)."""

    def stats(h):
        if isinstance(h, obs_metrics.Histogram):
            return h.count, h.sum, h.mean, h.bucket_counts()
        return (int(h.get("count", 0)), float(h.get("sum", 0.0)),
                float(h.get("mean", 0.0)), h.get("buckets"))

    count_a, sum_a, mean_a, buckets_a = stats(a)
    count_b, sum_b, mean_b, buckets_b = stats(b)
    bucket_deltas = None
    if buckets_a is not None and buckets_b is not None:
        n = max(len(buckets_a), len(buckets_b))
        pad_a = list(buckets_a) + [0] * (n - len(buckets_a))
        pad_b = list(buckets_b) + [0] * (n - len(buckets_b))
        bucket_deltas = tuple(
            (i, pad_b[i] - pad_a[i]) for i in range(n)
            if pad_b[i] != pad_a[i])
    return HistogramDelta(
        key=key, count_a=count_a, count_b=count_b,
        sum_a=sum_a, sum_b=sum_b, mean_a=mean_a, mean_b=mean_b,
        bucket_deltas=bucket_deltas,
    )


def diff_metrics(snap_a: dict, snap_b: dict) -> tuple[
        list[MetricDelta], list[MetricDelta], list[HistogramDelta]]:
    """Counter, gauge and histogram deltas between two registry
    snapshots; unchanged series are dropped, rankings are by absolute
    delta (counters/gauges) or absolute count shift (histograms)."""
    counters = []
    for key in set(snap_a.get("counters", {})) | set(snap_b.get("counters", {})):
        a = float(snap_a.get("counters", {}).get(key, 0))
        b = float(snap_b.get("counters", {}).get(key, 0))
        if a != b:
            counters.append(MetricDelta(key, "counter", a, b))
    gauges = []
    for key in set(snap_a.get("gauges", {})) | set(snap_b.get("gauges", {})):
        a = float(snap_a.get("gauges", {}).get(key, 0.0))
        b = float(snap_b.get("gauges", {}).get(key, 0.0))
        if a != b:
            gauges.append(MetricDelta(key, "gauge", a, b))
    hists = []
    empty: dict = {}
    for key in set(snap_a.get("histograms", {})) | set(snap_b.get("histograms", {})):
        ha = snap_a.get("histograms", {}).get(key, empty)
        hb = snap_b.get("histograms", {}).get(key, empty)
        if ha != hb:
            hists.append(histogram_delta(key, ha, hb))
    key_fn = lambda d: (-abs(d.delta), d.key)  # noqa: E731
    return (sorted(counters, key=key_fn), sorted(gauges, key=key_fn),
            sorted(hists, key=lambda d: (-abs(d.count_b - d.count_a), d.key)))


# ---------------------------------------------------------------------------
# Changepoint detection over the ledger's wall-clock series
# ---------------------------------------------------------------------------


def changepoint(series: Sequence[float]) -> tuple[int, float] | None:
    """The best two-segment split of ``series``: ``(index, score)``.

    ``index`` is the first point of the *after* segment; ``score`` is
    the fraction of total variance the split explains (1.0 = a perfect
    step, 0.0 = flat).  Deterministic: ties resolve to the earliest
    split.  Returns ``None`` for series shorter than
    :data:`CHANGEPOINT_MIN_RUNS` or with zero variance.
    """
    n = len(series)
    if n < CHANGEPOINT_MIN_RUNS:
        return None
    xs = [float(v) for v in series]
    mean = sum(xs) / n
    sse_total = sum((v - mean) ** 2 for v in xs)
    # flatness check is *relative*: a constant series like [0.1]*6 keeps
    # femto-scale rounding residue that a split would "explain" perfectly
    if sse_total <= n * (abs(mean) * 1e-9) ** 2 + 1e-24:
        return None

    def sse(seg: Sequence[float]) -> float:
        m = sum(seg) / len(seg)
        return sum((v - m) ** 2 for v in seg)

    best_k, best_score = None, -1.0
    for k in range(1, n):
        score = 1.0 - (sse(xs[:k]) + sse(xs[k:])) / sse_total
        if score > best_score + 1e-12:
            best_k, best_score = k, score
    assert best_k is not None
    return best_k, best_score


@dataclass(frozen=True)
class Changepoint:
    """One detected step in a phase's ledger wall-clock series."""

    phase: str
    index: int  #: ledger-series index of the first changed run
    run_id: str
    git_sha: str | None
    before_mean: float
    after_mean: float
    score: float

    @property
    def shift(self) -> float:
        return (self.after_mean / self.before_mean
                if self.before_mean else float("inf"))

    def as_dict(self) -> dict:
        return {
            "phase": self.phase, "index": self.index,
            "run_id": self.run_id, "git_sha": self.git_sha,
            "before_mean": _round6(self.before_mean),
            "after_mean": _round6(self.after_mean),
            "shift": _round6(self.shift) if self.before_mean else None,
            "score": _round6(self.score),
        }


def ledger_changepoints(
    entries: Sequence[dict], *,
    min_score: float = CHANGEPOINT_MIN_SCORE,
) -> list[Changepoint]:
    """Changepoints per wall-clock phase over ``entries`` (oldest first).

    Callers pass a *comparable* slice (same config/fingerprint — the
    regress window logic); each phase series is split independently and
    low-score splits are suppressed.  Ranked by score descending, ties
    lexical by phase.
    """
    phases = sorted({k for e in entries for k in e.get("wall_seconds", {})})
    out = []
    for phase in phases:
        indexed = [(i, float(e["wall_seconds"][phase]))
                   for i, e in enumerate(entries)
                   if phase in e.get("wall_seconds", {})]
        cp = changepoint([v for _, v in indexed])
        if cp is None:
            continue
        k, score = cp
        if score < min_score:
            continue
        values = [v for _, v in indexed]
        first = entries[indexed[k][0]]
        out.append(Changepoint(
            phase=phase, index=indexed[k][0],
            run_id=first.get("run_id", "?"),
            git_sha=first.get("git_sha"),
            before_mean=sum(values[:k]) / k,
            after_mean=sum(values[k:]) / (len(values) - k),
            score=score,
        ))
    return sorted(out, key=lambda c: (-c.score, c.phase))


# ---------------------------------------------------------------------------
# Collapsed-stack diff + the red/blue differential flamegraph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FrameDelta:
    """Per-frame *self* (leaf-position) sample-share shift."""

    frame: str
    self_a: int  #: raw self samples in run A
    self_b: int
    share_a: float  #: self samples / total samples of the run
    share_b: float

    @property
    def d_share(self) -> float:
        return self.share_b - self.share_a

    def as_dict(self) -> dict:
        return {
            "frame": self.frame,
            "self_a": self.self_a, "self_b": self.self_b,
            "share_a": _round6(self.share_a), "share_b": _round6(self.share_b),
            "d_share": _round6(self.d_share),
        }


def diff_frames(
    counts_a: dict[str, int], counts_b: dict[str, int],
) -> list[FrameDelta]:
    """Leaf-frame sample-share deltas between two collapsed-stack sets.

    Shares (not raw counts) are compared because the two runs rarely
    cover the same wall time; ranked by absolute share shift, ties
    lexical.  Frames whose share is unchanged are dropped.
    """

    def self_counts(counts: dict[str, int]) -> dict[str, int]:
        out: dict[str, int] = {}
        for stack, n in counts.items():
            leaf = stack.rsplit(";", 1)[-1]
            out[leaf] = out.get(leaf, 0) + n
        return out

    total_a = sum(counts_a.values()) or 1
    total_b = sum(counts_b.values()) or 1
    self_a = self_counts(counts_a)
    self_b = self_counts(counts_b)
    out = []
    for frame in set(self_a) | set(self_b):
        a = self_a.get(frame, 0)
        b = self_b.get(frame, 0)
        share_a, share_b = a / total_a, b / total_b
        if share_a != share_b:
            out.append(FrameDelta(frame, a, b, share_a, share_b))
    return sorted(out, key=lambda d: (-abs(d.d_share), d.frame))


def _heat_color(r: float) -> str:
    """Map a relative shift ``r`` in [-1, 1] to blue (shrank) → neutral
    → red (grew).  Linear RGB interpolation, deterministic."""
    r = max(-1.0, min(1.0, r))
    neutral = (0x9a, 0x99, 0x94)
    hot = (0xd9, 0x30, 0x25)  # red: grew in run B
    cold = (0x2a, 0x78, 0xd6)  # blue: shrank in run B
    target = hot if r >= 0 else cold
    t = abs(r)
    rgb = tuple(round(n + (c - n) * t) for n, c in zip(neutral, target))
    return "#{:02x}{:02x}{:02x}".format(*rgb)


def differential_flamegraph_svg(
    counts_a: dict[str, int], counts_b: dict[str, int], *,
    width: int = 860, row_h: int = 18, max_depth: int = 40,
    label_a: str = "A", label_b: str = "B",
) -> str:
    """A red/blue differential flamegraph of two collapsed-stack sets.

    Icicle layout (root on top, alphabetical child order — deterministic
    for a given input).  Run A's counts are normalized to run B's total
    so the two runs compare by *share*; each frame's width is its
    combined (normalized A + B) weight, its color the relative shift
    ``(b - a~) / (a~ + b)`` — red grew in B, blue shrank, gray unchanged.
    Pure string building, no scripts; tooltips carry both sides' numbers.
    """
    total_a = sum(counts_a.values())
    total_b = sum(counts_b.values())
    if total_a + total_b <= 0:
        return "<p class='sub'>(no samples on either side)</p>"
    # normalize A onto B's total so shares, not durations, are compared
    scale_a = (total_b / total_a) if total_a and total_b else 1.0

    root: dict = {"a": 0.0, "b": 0.0, "children": {}}
    for counts, side, scale in ((counts_a, "a", scale_a), (counts_b, "b", 1.0)):
        for stack, n in sorted(counts.items()):
            node = root
            node[side] += n * scale
            for part in stack.split(";"):
                child = node["children"].setdefault(
                    part, {"a": 0.0, "b": 0.0, "children": {}})
                child[side] += n * scale
                node = child

    grand = root["a"] + root["b"]
    pps = width / grand  # pixels per (normalized) sample
    boxes: list[tuple[int, float, float, str, float, float]] = []

    def layout(name: str, node: dict, depth: int, x0: float) -> None:
        boxes.append((depth, x0, (node["a"] + node["b"]) * pps,
                      name, node["a"], node["b"]))
        if depth >= max_depth:
            return
        x = x0
        for child_name in sorted(node["children"]):
            child = node["children"][child_name]
            layout(child_name, child, depth + 1, x)
            x += (child["a"] + child["b"]) * pps

    layout("all", root, 0, 0.0)
    depth_max = max(d for d, *_ in boxes)
    height = (depth_max + 1) * row_h + 22
    parts = [
        f"<svg viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='differential flamegraph'>",
        f"<text x='4' y='{height - 8}'>blue: shrank vs "
        f"{_esc(label_a)} &#183; red: grew in {_esc(label_b)} "
        f"(A normalized: {total_a} &#8594; {total_b} samples)</text>",
    ]
    for depth, x0, w, name, a, b in boxes:
        if w < 0.4:
            continue
        rel = (b - a) / (a + b) if (a + b) else 0.0
        yy = depth * row_h
        tip = (f"{name} — {label_a}: {a / max(scale_a, 1e-12):.0f} samples"
               f" ({a / grand * 2:.1%} norm), {label_b}: {b:.0f} samples"
               f" ({b / grand * 2:.1%}); shift {rel:+.1%}")
        parts.append(
            f"<rect x='{x0:.1f}' y='{yy}' width='{max(w, 0.6):.1f}' "
            f"height='{row_h - 2}' rx='2' fill='{_heat_color(rel)}' "
            f"stroke='light-dark(#fcfcfb,#1a1a19)' stroke-width='0.5'>"
            f"<title>{_esc(tip)}</title></rect>")
        if w >= 60:
            label = name if len(name) <= int(w / 7) else (
                name[: max(1, int(w / 7) - 1)] + "…")
            parts.append(
                f"<text x='{x0 + 4:.1f}' y='{yy + row_h - 6}' "
                f"fill='#ffffff'>{_esc(label)}</text>")
    parts.append("</svg>")
    return "".join(parts)


def _esc(s: object) -> str:
    import html

    return html.escape(str(s))


# ---------------------------------------------------------------------------
# Sides: one run's comparable material, wherever it came from
# ---------------------------------------------------------------------------


@dataclass
class Side:
    """Everything diffable extracted from one input (file or ledger)."""

    label: str
    kind: str  #: "trace" | "bench" | "metrics" | "collapsed" | "ledger"
    spans: list[dict] | None = None
    stacks: dict[str, int] | None = None
    phases: dict[str, float] | None = None
    metrics: dict | None = None
    entry: dict | None = None  #: the ledger entry, when kind == "ledger"


def _bench_phases(doc: dict) -> dict[str, float]:
    """Wall-clock phases of a ``BENCH_*.json`` report, named like the
    ledger's ``wall_seconds`` keys so the two sources align."""
    out: dict[str, float] = {}
    gpu = doc.get("gpu_autotune") or {}
    for phase in ("serial", "cold", "warm"):
        sec = (gpu.get(phase) or {}).get("seconds")
        if isinstance(sec, (int, float)):
            out[f"gpu_{phase}"] = float(sec)
    arm = doc.get("arm_schedule") or {}
    for phase in ("cold", "warm"):
        sec = (arm.get(phase) or {}).get("seconds")
        if isinstance(sec, (int, float)):
            out[f"arm_{phase}"] = float(sec)
    return out


def side_from_ledger_entry(entry: dict) -> Side:
    return Side(
        label=entry.get("run_id", "?"), kind="ledger",
        phases={k: float(v) for k, v in entry.get("wall_seconds", {}).items()},
        metrics=entry.get("metrics") or None,
        entry=entry,
    )


def load_side(
    spec: str, *, history_dir: str | os.PathLike | None = None,
) -> Side:
    """Auto-detect and load one diff input.

    An existing file is sniffed by content: a Chrome trace (has
    ``traceEvents``), a ``BENCH_*.json`` report (has ``gpu_autotune`` /
    ``arm_schedule``), a metrics snapshot (has ``counters``), a single
    ledger-entry JSON (has ``wall_seconds``), or collapsed-stack text.
    Anything else is a ledger selector — ``-1`` (newest), ``-2``, or a
    run-id / git-sha / fingerprint prefix — resolved against
    ``history_dir`` via :meth:`repro.obs.history.BenchLedger.select`.
    """
    path = pathlib.Path(spec)
    if path.is_file():
        text = path.read_text(encoding="utf-8")
        try:
            doc = json.loads(text)
        except ValueError:
            return Side(label=path.name, kind="collapsed",
                        stacks=obs_sampler.parse_collapsed(text))
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: JSON top level must be an object")
        if "traceEvents" in doc:
            return Side(label=path.name, kind="trace",
                        spans=spans_from_chrome(doc))
        if "gpu_autotune" in doc or "arm_schedule" in doc:
            side = Side(label=path.name, kind="bench",
                        phases=_bench_phases(doc),
                        metrics=doc.get("metrics") or None)
            sampler_block = doc.get("sampler") or {}
            if sampler_block.get("stacks"):
                side.stacks = {k: int(v)
                               for k, v in sampler_block["stacks"].items()}
            return side
        if "wall_seconds" in doc:
            side = side_from_ledger_entry(doc)
            side.label = path.name
            return side
        if "counters" in doc or "histograms" in doc:
            return Side(label=path.name, kind="metrics", metrics=doc)
        raise ValueError(f"{path}: unrecognized JSON document "
                         f"(keys: {', '.join(sorted(doc)[:8])})")
    from .history import BenchLedger

    return side_from_ledger_entry(BenchLedger(history_dir).select(spec))


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------


@dataclass
class DiffReport:
    """Ranked attribution of where run B diverged from run A."""

    label_a: str
    label_b: str
    kind_a: str = "?"
    kind_b: str = "?"
    spans: list[SpanDelta] = field(default_factory=list)
    phases: list[PhaseDelta] = field(default_factory=list)
    counters: list[MetricDelta] = field(default_factory=list)
    gauges: list[MetricDelta] = field(default_factory=list)
    histograms: list[HistogramDelta] = field(default_factory=list)
    frames: list[FrameDelta] = field(default_factory=list)
    changepoints: list[Changepoint] = field(default_factory=list)
    stacks_a: dict[str, int] | None = None
    stacks_b: dict[str, int] | None = None

    @property
    def empty(self) -> bool:
        """True when no section found anything to attribute."""
        return not (self.spans or self.phases or self.counters
                    or self.gauges or self.histograms or self.frames
                    or self.changepoints)

    def top_phase(self) -> PhaseDelta | None:
        """The highest-ranked (non-floored) phase delta, if any."""
        for d in self.phases:
            if not d.floored and d.score > 0.0:
                return d
        return None

    def as_dict(self, *, top: int | None = None) -> dict:
        """Plain-JSON view; ``top`` caps every ranked section (the cap is
        recorded so a truncated report never masquerades as complete)."""

        def cap(rows):
            return rows[:top] if top is not None else rows

        return {
            "schema": SCHEMA_VERSION,
            "a": {"label": self.label_a, "kind": self.kind_a},
            "b": {"label": self.label_b, "kind": self.kind_b},
            "top": top,
            "phases": [d.as_dict() for d in cap(self.phases)],
            "spans": [d.as_dict() for d in cap(self.spans)],
            "counters": [d.as_dict() for d in cap(self.counters)],
            "gauges": [d.as_dict() for d in cap(self.gauges)],
            "histograms": [d.as_dict() for d in cap(self.histograms)],
            "frames": [d.as_dict() for d in cap(self.frames)],
            "changepoints": [c.as_dict() for c in self.changepoints],
        }

    def to_json(self, *, top: int | None = None) -> str:
        """Byte-stable serialization: sorted keys, compact separators,
        floats rounded at the section boundary — fixed inputs always
        produce identical bytes (the CI embedding contract)."""
        return json.dumps(self.as_dict(top=top), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def table(self, *, top: int = 10) -> list[str]:
        """The human-facing text rendering (ranked, capped per section)."""
        lines: list[str] = []
        if self.phases:
            lines.append(f"  {'phase':<22} {'A (s)':>10} {'B (s)':>10} "
                         f"{'delta':>10} {'ratio':>7}")
            for d in self.phases[:top]:
                fmt = lambda v: f"{v:.4f}" if v is not None else "—"  # noqa: E731
                ratio = f"{d.ratio:.2f}x" if d.ratio is not None else "—"
                note = " (floored)" if d.floored else ""
                lines.append(f"  {d.phase:<22} {fmt(d.seconds_a):>10} "
                             f"{fmt(d.seconds_b):>10} {fmt(d.delta):>10} "
                             f"{ratio:>7}{note}")
        if self.changepoints:
            lines.append("  changepoints (ledger series):")
            for c in self.changepoints[:top]:
                sha = (c.git_sha or "nogit")[:10]
                lines.append(
                    f"    {c.phase}: {c.before_mean:.4f}s -> "
                    f"{c.after_mean:.4f}s ({c.shift:.2f}x) first at "
                    f"{c.run_id} [{sha}] (score {c.score:.2f})")
        if self.spans:
            lines.append(f"  {'span (self-time delta)':<44} {'count':>11} "
                         f"{'self A ms':>10} {'self B ms':>10} {'delta':>9}")
            for d in self.spans[:top]:
                label = d.path if len(d.path) <= 44 else "…" + d.path[-43:]
                lines.append(
                    f"  {label:<44} {f'{d.count_a}->{d.count_b}':>11} "
                    f"{d.self_us_a / 1e3:>10.3f} {d.self_us_b / 1e3:>10.3f} "
                    f"{d.d_self_us / 1e3:>+9.3f}")
        if self.frames:
            lines.append(f"  {'frame (self-share delta)':<52} "
                         f"{'A':>7} {'B':>7} {'shift':>8}")
            for d in self.frames[:top]:
                label = d.frame if len(d.frame) <= 52 else "…" + d.frame[-51:]
                lines.append(f"  {label:<52} {d.share_a:>6.1%} "
                             f"{d.share_b:>6.1%} {d.d_share:>+8.1%}")
        if self.counters:
            lines.append("  counters:")
            for d in self.counters[:top]:
                lines.append(f"    {d.key:<56} {d.a:g} -> {d.b:g} "
                             f"({d.delta:+g})")
        if self.histograms:
            lines.append("  histograms:")
            for d in self.histograms[:top]:
                lines.append(
                    f"    {d.key:<56} n {d.count_a}->{d.count_b} "
                    f"mean {d.mean_a:.4g}->{d.mean_b:.4g}")
        if not lines:
            lines.append("  (nothing to attribute: the sides are identical "
                         "in every comparable section)")
        return lines


def diff_sides(a: Side, b: Side) -> DiffReport:
    """Compare every section both sides carry (others stay empty)."""
    report = DiffReport(
        label_a=a.label, label_b=b.label, kind_a=a.kind, kind_b=b.kind)
    if a.spans is not None and b.spans is not None:
        report.spans = diff_spans(a.spans, b.spans)
    if a.phases is not None and b.phases is not None:
        report.phases = diff_phases(a.phases, b.phases)
    if a.metrics is not None and b.metrics is not None:
        report.counters, report.gauges, report.histograms = diff_metrics(
            a.metrics, b.metrics)
    if a.stacks is not None and b.stacks is not None:
        report.frames = diff_frames(a.stacks, b.stacks)
        report.stacks_a, report.stacks_b = a.stacks, b.stacks
    obs_metrics.counter("diff_reports",
                        outcome="empty" if report.empty else "ranked").inc()
    return report


def attach_ledger_changepoints(
    report: DiffReport, entries: Sequence[dict], candidate: dict,
) -> DiffReport:
    """Add changepoint rows computed over the comparable ledger slice.

    ``entries`` is the whole ledger (oldest first); the comparable slice
    shares the candidate's config key and fingerprint — the same filter
    the regression checker applies to its wall-clock window.
    """
    from .regress import _config_key

    comparable = [
        e for e in entries
        if _config_key(e) == _config_key(candidate)
        and e.get("fingerprint") == candidate.get("fingerprint")
    ]
    report.changepoints = ledger_changepoints(comparable)
    return report


# ---------------------------------------------------------------------------
# regress --attribute: the bridge from a verdict to an explanation
# ---------------------------------------------------------------------------


def attribute_entries(
    baseline: dict, candidate: dict, *,
    ledger_entries: Sequence[dict] = (),
) -> DiffReport:
    """The deterministic attribution for a regress failure: per-phase
    deltas + metrics deltas between the two ledger entries, plus
    changepoints over the comparable ledger series.  Pure function of
    its inputs — ``to_json`` output is byte-stable."""
    report = diff_sides(
        side_from_ledger_entry(baseline), side_from_ledger_entry(candidate))
    if ledger_entries:
        attach_ledger_changepoints(report, ledger_entries, candidate)
    return report


def collect_fresh_profile(
    model: str = "resnet50", batch: int = 1, *,
    sample_interval_s: float = 0.002, layers_cap: int = 3,
) -> tuple[list[dict], dict[str, int]]:
    """A fresh (trace spans, collapsed stacks) pair of the smoke-scale
    autotune sweep under the current code — the ``regress --attribute``
    evidence for *where the candidate's time goes now*.

    Runs the first ``layers_cap`` layers through the autotuner under a
    private tracer + sampler; the in-process memo is cleared first so
    the sweep does real work.  Wall-clock content is inherently
    nondeterministic — callers must keep it out of byte-stable sections.
    """
    from ..gpu.autotune import autotune_conv, clear_cache
    from ..models import get_model_layers
    from . import trace as obs_trace

    clear_cache()
    specs = get_model_layers(model, batch=batch)[:layers_cap]
    with obs_trace.capture() as tracer, \
            obs_sampler.sampling(interval_s=sample_interval_s) as sampler:
        with obs_trace.span("attribute.collect", model=model, batch=batch):
            for spec in specs:
                autotune_conv(spec, bits=4)
    return spans_from_records(tracer.spans()), sampler.collapsed()
