"""Span-based tracer with a Chrome ``trace_event`` JSON exporter.

Usage::

    from repro.obs import trace

    with trace.capture() as tracer:          # install a tracer
        with trace.span("autotune", bits=4): # record spans anywhere below
            ...
    tracer.write("out.json")                 # load in Perfetto

Design rules:

* **Cheap by default.**  ``span()`` reads two module globals; with no
  tracer installed and the :mod:`repro.obs.flight` recorder disabled it
  returns a shared stateless null context manager.  With only the
  (default-on) flight recorder active, a span costs one context
  derivation, two clock reads and a ring append — both regimes are
  bounded by tests (``tests/test_obs_trace.py``,
  ``tests/test_obs_flight.py``).
* **Thread-safe and nestable.**  Spans record their OS thread id, so the
  :class:`~repro.perf.parallel.ParallelRunner` workers appear as separate
  tracks in Perfetto; recording appends under a lock.  Every real span
  also derives a :class:`~repro.obs.flight.TraceContext` on entry, so
  records carry explicit ``trace_id``/``span_id``/``parent_id`` linkage
  on top of the visual time-containment nesting.
* **Timestamps share one monotonic base.**  All spans are stamped from
  :func:`repro.obs.flight.monotonic_us` — a single per-process
  ``perf_counter`` epoch — so spans recorded by different workers (or
  different tracers) merge in a consistent order.  Wall-clock enters
  only as the trace epoch, exported as ``otherData`` metadata.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from . import flight as _flight

monotonic_us = _flight.monotonic_us


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (times in microseconds since tracer start)."""

    name: str
    cat: str
    start_us: float
    dur_us: float
    tid: int
    args: dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str | None = None


class _Span:
    """Live span context manager: derives a trace context on entry and
    records to the bound tracer (if any) and the flight recorder."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start", "_ctx", "_prev")

    def __init__(self, tracer: "Tracer | None", name: str, cat: str,
                 args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0
        self._ctx: _flight.TraceContext | None = None
        self._prev: _flight.TraceContext | None = None

    def __enter__(self) -> "_Span":
        self._prev = _flight.current_context()
        self._ctx = _flight.derive(self._prev)
        _flight._set_context(self._ctx)
        self._start = monotonic_us()
        return self

    def __exit__(self, *exc) -> None:
        end = monotonic_us()
        _flight._set_context(self._prev)
        ctx = self._ctx
        assert ctx is not None  # __enter__ ran
        if self._tracer is not None:
            self._tracer._record(
                self._name, self._cat, self._args, self._start, end, ctx)
        _flight.record_span(
            self._name, self._cat, self._args, self._start, end, ctx)


class _NullSpan:
    """Shared no-op stand-in returned while all recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; thread-safe; exports Chrome ``trace_event`` JSON.

    Timestamps are stored relative to tracer creation but derive from the
    module-wide monotonic base, so two tracers (or a tracer and the
    flight recorder) order events identically.  ``epoch_wall_us`` pins
    the tracer start to the wall clock for offline cross-process merges.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[SpanRecord] = []
        self._thread_names: dict[int, str] = {}
        self._t0_us = monotonic_us()
        #: wall-clock (Unix epoch) microseconds at tracer creation
        self.epoch_wall_us = _flight.wall_epoch_us() + self._t0_us

    # -- recording ----------------------------------------------------------

    def _now_us(self) -> float:
        return monotonic_us() - self._t0_us

    def span(self, name: str, *, cat: str = "repro", **args: Any) -> _Span:
        return _Span(self, name, cat, args)

    def _record(
        self, name: str, cat: str, args: dict,
        start_us: float, end_us: float,
        ctx: "_flight.TraceContext | None" = None,
    ) -> None:
        """Append one span; absolute (module-monotonic) microsecond times
        are re-based onto the tracer's start."""
        rec = SpanRecord(
            name=name,
            cat=cat,
            start_us=start_us - self._t0_us,
            dur_us=max(0.0, end_us - start_us),
            tid=threading.get_ident(),
            args=args,
            trace_id=ctx.trace_id if ctx else "",
            span_id=ctx.span_id if ctx else "",
            parent_id=ctx.parent_id if ctx else None,
        )
        tname = threading.current_thread().name
        with self._lock:
            self._events.append(rec)
            self._thread_names.setdefault(rec.tid, tname)

    def instant(self, name: str, *, cat: str = "repro", **args: Any) -> None:
        """Record a zero-duration marker event."""
        now = monotonic_us()
        self._record(name, cat, args, now, now,
                     _flight.derive(_flight.current_context()))

    # -- introspection ------------------------------------------------------

    def spans(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- export -------------------------------------------------------------

    def chrome_trace(self, *, process_name: str = "repro") -> dict:
        """The Chrome ``trace_event`` object format (Perfetto-loadable).

        Spans become ``"X"`` (complete) events with microsecond ``ts`` /
        ``dur``; process and thread names ride along as ``"M"`` metadata
        events so worker tracks are labeled.  Trace-context ids travel in
        each event's ``args`` — :func:`repro.obs.diff.spans_from_chrome`
        reads exactly these keys to rebuild the span tree for
        differential profiling — and the wall-clock anchor of ``ts == 0``
        is ``otherData.trace_epoch_wall_us``.
        """
        pid = os.getpid()
        events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        }]
        spans = self.spans()
        with self._lock:
            thread_names = dict(self._thread_names)
        for tid, tname in sorted(thread_names.items()):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname},
            })
        for rec in spans:
            args = {k: _jsonable(v) for k, v in rec.args.items()}
            if rec.trace_id:
                args["trace_id"] = rec.trace_id
                args["span_id"] = rec.span_id
                if rec.parent_id is not None:
                    args["parent_id"] = rec.parent_id
            events.append({
                "name": rec.name,
                "cat": rec.cat,
                "ph": "X",
                "ts": round(rec.start_us, 3),
                "dur": round(rec.dur_us, 3),
                "pid": pid,
                "tid": rec.tid,
                "args": args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_epoch_wall_us": round(self.epoch_wall_us, 3),
            },
        }

    def write(self, path: str | os.PathLike, **kwargs: Any) -> pathlib.Path:
        """Serialize :meth:`chrome_trace` to ``path``; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.chrome_trace(**kwargs), separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        return path


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Module-level switchboard (the hot-path API)
# ---------------------------------------------------------------------------

_TRACER: Tracer | None = None
_INSTALL_LOCK = threading.Lock()


def active() -> bool:
    """True while a tracer is installed (detailed instrumentation gate).

    Deliberately *not* influenced by the flight recorder: per-item
    detail (bound-gap histograms, per-candidate timings) stays gated on
    an explicit tracer so the always-on recorder keeps its coarse,
    bounded event rate.
    """
    return _TRACER is not None


def current() -> Tracer | None:
    return _TRACER


def install(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process tracer."""
    global _TRACER
    with _INSTALL_LOCK:
        _TRACER = tracer if tracer is not None else Tracer()
        return _TRACER


def uninstall() -> Tracer | None:
    """Remove and return the installed tracer (None if none was)."""
    global _TRACER
    with _INSTALL_LOCK:
        tracer, _TRACER = _TRACER, None
        return tracer


@contextlib.contextmanager
def capture(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer for the ``with`` body, restoring the previous one.

    The yielded tracer keeps its spans after exit, ready for
    :meth:`Tracer.write`.
    """
    global _TRACER
    with _INSTALL_LOCK:
        prev = _TRACER
        _TRACER = tracer if tracer is not None else Tracer()
        installed = _TRACER
    try:
        yield installed
    finally:
        with _INSTALL_LOCK:
            _TRACER = prev


def span(name: str, *, cat: str = "repro", **args: Any):
    """A span recorded by the installed tracer and/or the flight
    recorder, or a shared no-op when both are off."""
    tracer = _TRACER
    if tracer is None and not _flight.enabled():
        return _NULL_SPAN
    return _Span(tracer, name, cat, args)


def instant(name: str, *, cat: str = "repro", **args: Any) -> None:
    """A zero-duration marker (no-op while all recording is disabled)."""
    tracer = _TRACER
    flight_on = _flight.enabled()
    if tracer is None and not flight_on:
        return
    ctx = _flight.derive(_flight.current_context())
    now = monotonic_us()
    if tracer is not None:
        tracer._record(name, cat, args, now, now, ctx)
    if flight_on:
        _flight.recorder().record(_flight.FlightEvent(
            kind="instant", name=name, cat=cat, ts_us=now, dur_us=0.0,
            tid=threading.get_ident(),
            trace_id=ctx.trace_id, span_id=ctx.span_id,
            parent_id=ctx.parent_id, args=args,
        ))


# re-exported for instrumented sites that only import trace
__all__ = [
    "SpanRecord", "Tracer", "active", "capture", "current", "install",
    "instant", "monotonic_us", "span", "uninstall",
]

# keep `time` imported for backwards compatibility of monkeypatching tests
_ = time
