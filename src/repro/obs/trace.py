"""Span-based tracer with a Chrome ``trace_event`` JSON exporter.

Usage::

    from repro.obs import trace

    with trace.capture() as tracer:          # install a tracer
        with trace.span("autotune", bits=4): # record spans anywhere below
            ...
    tracer.write("out.json")                 # load in Perfetto

Design rules:

* **No-op by default.**  ``span()`` reads one module global; with no
  tracer installed it returns a shared stateless null context manager, so
  instrumented hot paths cost a function call and a branch.  The overhead
  budget is enforced by a test (``tests/test_obs_trace.py``).
* **Thread-safe and nestable.**  Spans record their OS thread id, so the
  :class:`~repro.perf.parallel.ParallelRunner` workers appear as separate
  tracks in Perfetto; recording appends under a lock.  Nesting needs no
  bookkeeping: Chrome "X" (complete) events nest visually by time
  containment per track.
* **Timestamps are relative.**  Microseconds since the tracer was
  created, from ``time.perf_counter`` — monotonic and comparable across
  threads of one process.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (times in microseconds since tracer start)."""

    name: str
    cat: str
    start_us: float
    dur_us: float
    tid: int
    args: dict[str, Any] = field(default_factory=dict)


class _Span:
    """Live span context manager bound to one tracer."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._tracer._now_us()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._record(
            self._name, self._cat, self._args, self._start, self._tracer._now_us()
        )


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; thread-safe; exports Chrome ``trace_event`` JSON."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[SpanRecord] = []
        self._thread_names: dict[int, str] = {}
        self._t0 = time.perf_counter()

    # -- recording ----------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def span(self, name: str, *, cat: str = "repro", **args: Any) -> _Span:
        return _Span(self, name, cat, args)

    def _record(
        self, name: str, cat: str, args: dict, start_us: float, end_us: float
    ) -> None:
        rec = SpanRecord(
            name=name,
            cat=cat,
            start_us=start_us,
            dur_us=max(0.0, end_us - start_us),
            tid=threading.get_ident(),
            args=args,
        )
        tname = threading.current_thread().name
        with self._lock:
            self._events.append(rec)
            self._thread_names.setdefault(rec.tid, tname)

    def instant(self, name: str, *, cat: str = "repro", **args: Any) -> None:
        """Record a zero-duration marker event."""
        now = self._now_us()
        self._record(name, cat, args, now, now)

    # -- introspection ------------------------------------------------------

    def spans(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- export -------------------------------------------------------------

    def chrome_trace(self, *, process_name: str = "repro") -> dict:
        """The Chrome ``trace_event`` object format (Perfetto-loadable).

        Spans become ``"X"`` (complete) events with microsecond ``ts`` /
        ``dur``; process and thread names ride along as ``"M"`` metadata
        events so worker tracks are labeled.
        """
        pid = os.getpid()
        events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        }]
        spans = self.spans()
        with self._lock:
            thread_names = dict(self._thread_names)
        for tid, tname in sorted(thread_names.items()):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname},
            })
        for rec in spans:
            events.append({
                "name": rec.name,
                "cat": rec.cat,
                "ph": "X",
                "ts": round(rec.start_us, 3),
                "dur": round(rec.dur_us, 3),
                "pid": pid,
                "tid": rec.tid,
                "args": {k: _jsonable(v) for k, v in rec.args.items()},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | os.PathLike, **kwargs: Any) -> pathlib.Path:
        """Serialize :meth:`chrome_trace` to ``path``; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.chrome_trace(**kwargs), separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        return path


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Module-level switchboard (the hot-path API)
# ---------------------------------------------------------------------------

_TRACER: Tracer | None = None
_INSTALL_LOCK = threading.Lock()


def active() -> bool:
    """True while a tracer is installed (detailed instrumentation gate)."""
    return _TRACER is not None


def current() -> Tracer | None:
    return _TRACER


def install(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process tracer."""
    global _TRACER
    with _INSTALL_LOCK:
        _TRACER = tracer if tracer is not None else Tracer()
        return _TRACER


def uninstall() -> Tracer | None:
    """Remove and return the installed tracer (None if none was)."""
    global _TRACER
    with _INSTALL_LOCK:
        tracer, _TRACER = _TRACER, None
        return tracer


@contextlib.contextmanager
def capture(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer for the ``with`` body, restoring the previous one.

    The yielded tracer keeps its spans after exit, ready for
    :meth:`Tracer.write`.
    """
    global _TRACER
    with _INSTALL_LOCK:
        prev = _TRACER
        _TRACER = tracer if tracer is not None else Tracer()
        installed = _TRACER
    try:
        yield installed
    finally:
        with _INSTALL_LOCK:
            _TRACER = prev


def span(name: str, *, cat: str = "repro", **args: Any):
    """A span under the installed tracer, or a shared no-op without one."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, **args)


def instant(name: str, *, cat: str = "repro", **args: Any) -> None:
    """A zero-duration marker (no-op while tracing is disabled)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(name, cat=cat, **args)
