"""Process-wide metrics registry: labeled counters, gauges, histograms.

The registry is deliberately tiny — no exposition server, no time series,
just monotonically updated values snapshotted into plain JSON by the
profile/bench reporting surfaces::

    from repro.obs import metrics

    metrics.counter("cache_lookups", namespace="gpu-autotune",
                    outcome="hit").inc()
    metrics.gauge("gpu_layer_cycles", layer="conv3", bits=4).set(1.2e5)
    metrics.histogram("autotune_bound_gap_cycles").observe(gap)

Labels are canonicalized into the metric key (sorted ``k=v`` pairs), so
call-site keyword order never splits a series.  All operations are
thread-safe; individual updates take one lock each, cheap enough for the
coarse (per-sweep / per-layer) events the library records unconditionally.
Per-item detail in genuinely hot loops is gated on
:func:`repro.obs.trace.active` at the call site instead.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Any

from . import flight as _flight

#: bump when the snapshot layout changes
SCHEMA_VERSION = 1

#: label *names* must be bare identifiers — they come from ``**labels``
#: keywords, so anything else indicates a programming error, not data
_LABEL_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: characters with structural meaning inside a series key; each is
#: backslash-escaped in label values so two distinct label sets can
#: never collide into one key (e.g. ``a="x,b=y"`` vs ``a="x", b="y"``)
_KEY_SPECIALS = ("\\", ",", "{", "}", "=")


def escape_label_value(value: Any) -> str:
    """Backslash-escape the structural key characters in ``value``.

    Values without ``\\ , { } =`` come back unchanged, so established
    series keys (plain bit widths, layer names, outcomes) keep their
    exact historical spelling.
    """
    text = str(value)
    for ch in _KEY_SPECIALS:
        text = text.replace(ch, "\\" + ch)
    return text


def unescape_label_value(value: str) -> str:
    """Exact inverse of :func:`escape_label_value`."""
    out: list[str] = []
    it = iter(value)
    for ch in it:
        if ch == "\\":
            out.append(next(it, "\\"))
        else:
            out.append(ch)
    return "".join(out)


def metric_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical ``name{k=v,...}`` series key (labels sorted by name).

    Label values are escaped via :func:`escape_label_value`; label names
    must be identifiers (they arrive as ``**labels`` keywords) and metric
    names must not themselves contain key syntax.
    """
    if "{" in name or "}" in name:
        raise ValueError(f"metric name may not contain braces: {name!r}")
    if not labels:
        return name
    for k in labels:
        if not _LABEL_NAME_RE.match(k):
            raise ValueError(f"label name must be an identifier: {k!r}")
    inner = ",".join(
        f"{k}={escape_label_value(labels[k])}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _split_unescaped(text: str, sep: str) -> list[str]:
    """Split on ``sep`` occurrences not preceded by a backslash escape."""
    parts: list[str] = []
    buf: list[str] = []
    escaped = False
    for ch in text:
        if escaped:
            buf.append(ch)
            escaped = False
        elif ch == "\\":
            buf.append(ch)
            escaped = True
        elif ch == sep:
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    parts.append("".join(buf))
    return parts


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`metric_key`: ``"n{a=1,b=2}"`` → ``("n", {...})``.

    The exposition and display layers use this instead of naive string
    splitting, so escaped label values survive the round trip.
    """
    if not key.endswith("}"):
        if "{" in key:
            raise ValueError(f"malformed series key: {key!r}")
        return key, {}
    brace = key.index("{")
    name, body = key[:brace], key[brace + 1:-1]
    labels: dict[str, str] = {}
    for pair in _split_unescaped(body, ","):
        k, eq, v = pair.partition("=")
        if not eq or not _LABEL_NAME_RE.match(k):
            raise ValueError(f"malformed label pair {pair!r} in {key!r}")
        labels[k] = unescape_label_value(v)
    return name, labels


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """Last-written value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


#: retained-sample ceiling per histogram; beyond it the sample set is
#: decimated 2x (keep every other) and only every ``stride``-th observation
#: is retained — a deterministic uniform subsample, never reservoir noise
SAMPLE_CAP = 4096

#: fixed log-decade bucket upper bounds for the exposition format — wide
#: enough for microseconds-to-hours latencies *and* cycle counts in the
#: trillions; the implicit final bucket is +Inf
BUCKET_BOUNDS: tuple[float, ...] = tuple(10.0 ** e for e in range(-9, 13))


class Histogram:
    """Streaming summary (count/sum/min/max) of observed values.

    Besides the running aggregates, a bounded, deterministically decimated
    sample set is retained so :meth:`percentile` can answer quantile
    queries — exact until :data:`SAMPLE_CAP` observations, a uniform
    1-in-``stride`` subsample beyond.  The regression checker leans on
    this for its noise-aware wall-clock medians.

    For the OpenMetrics exposition (:mod:`repro.obs.export`) every
    observation is also counted into fixed log-decade buckets
    (:data:`BUCKET_BOUNDS` plus +Inf), and — while the flight recorder is
    enabled and a trace context is active — the latest observation per
    bucket is kept as an *exemplar* ``(value, trace_id, span_id)``, so a
    slow bucket links straight to the span that produced it.
    """

    __slots__ = ("_lock", "count", "sum", "min", "max", "_samples", "_stride",
                 "_bucket_counts", "_exemplars")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._stride = 1
        self._bucket_counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self._exemplars: dict[int, tuple[float, str, str]] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        bucket = bisect.bisect_left(BUCKET_BOUNDS, value)
        exemplar: tuple[float, str, str] | None = None
        if _flight.enabled():
            ctx = _flight.current_context()
            if ctx is not None:
                exemplar = (value, ctx.trace_id, ctx.span_id)
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._bucket_counts[bucket] += 1
            if exemplar is not None:
                self._exemplars[bucket] = exemplar
            if (self.count - 1) % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= SAMPLE_CAP:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts; bucket ``i`` holds
        observations in ``(BUCKET_BOUNDS[i-1], BUCKET_BOUNDS[i]]``, the
        last entry everything above the top bound (+Inf)."""
        with self._lock:
            return list(self._bucket_counts)

    def exemplars(self) -> dict[int, tuple[float, str, str]]:
        """Latest ``(value, trace_id, span_id)`` per bucket index."""
        with self._lock:
            return dict(self._exemplars)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the observed values.

        Linear interpolation between order statistics of the retained
        sample set; raises :class:`ValueError` on an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            raise ValueError("percentile of an empty histogram")
        if len(samples) == 1:
            return samples[0]
        pos = (q / 100.0) * (len(samples) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    @classmethod
    def merge(cls, histograms: "list[Histogram] | tuple[Histogram, ...]") -> "Histogram":
        """Combine histograms into a fresh one (sum of the windows).

        Aggregates add exactly; the merged sample set concatenates the
        inputs' retained samples and re-decimates past :data:`SAMPLE_CAP`.
        """
        out = cls()
        merged: list[float] = []
        for h in histograms:
            with h._lock:
                out.count += h.count
                out.sum += h.sum
                if h.min is not None:
                    out.min = h.min if out.min is None else min(out.min, h.min)
                if h.max is not None:
                    out.max = h.max if out.max is None else max(out.max, h.max)
                merged.extend(h._samples)
                out._stride = max(out._stride, h._stride)
                for i, n in enumerate(h._bucket_counts):
                    out._bucket_counts[i] += n
                out._exemplars.update(h._exemplars)
        while len(merged) >= SAMPLE_CAP:
            merged = merged[::2]
            out._stride *= 2
        out._samples = merged
        return out

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """One namespace of metrics, keyed by canonical series name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, table: dict, cls: type, name: str, labels: dict):
        key = metric_key(name, labels)
        metric = table.get(key)
        if metric is None:
            with self._lock:
                metric = table.setdefault(key, cls())
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def series(self) -> tuple[dict[str, Counter], dict[str, Gauge], dict[str, Histogram]]:
        """Point-in-time shallow copies of the live series tables.

        The exposition layer (:mod:`repro.obs.export`) needs the metric
        *objects* — bucket counts and exemplars are not part of the JSON
        snapshot — so this hands out the tables without exposing the
        registry's internals for mutation.
        """
        with self._lock:
            return dict(self._counters), dict(self._gauges), dict(self._histograms)

    def snapshot(self) -> dict:
        """Point-in-time plain-JSON view of every series."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "schema": SCHEMA_VERSION,
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.as_dict() for k, h in sorted(histograms.items())},
        }

    def reset(self) -> None:
        """Drop every series (a fresh measurement window)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ---------------------------------------------------------------------------
# The process default registry (what the library instrumentation uses)
# ---------------------------------------------------------------------------

_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _DEFAULT


def counter(name: str, **labels: Any) -> Counter:
    return _DEFAULT.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return _DEFAULT.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    return _DEFAULT.histogram(name, **labels)


def snapshot() -> dict:
    return _DEFAULT.snapshot()


def reset() -> None:
    _DEFAULT.reset()
