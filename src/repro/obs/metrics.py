"""Process-wide metrics registry: labeled counters, gauges, histograms.

The registry is deliberately tiny — no exposition server, no time series,
just monotonically updated values snapshotted into plain JSON by the
profile/bench reporting surfaces::

    from repro.obs import metrics

    metrics.counter("cache_lookups", namespace="gpu-autotune",
                    outcome="hit").inc()
    metrics.gauge("gpu_layer_cycles", layer="conv3", bits=4).set(1.2e5)
    metrics.histogram("autotune_bound_gap_cycles").observe(gap)

Labels are canonicalized into the metric key (sorted ``k=v`` pairs), so
call-site keyword order never splits a series.  All operations are
thread-safe; individual updates take one lock each, cheap enough for the
coarse (per-sweep / per-layer) events the library records unconditionally.
Per-item detail in genuinely hot loops is gated on
:func:`repro.obs.trace.active` at the call site instead.
"""

from __future__ import annotations

import threading
from typing import Any

#: bump when the snapshot layout changes
SCHEMA_VERSION = 1


def metric_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical ``name{k=v,...}`` series key (labels sorted by name)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """Last-written value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


#: retained-sample ceiling per histogram; beyond it the sample set is
#: decimated 2x (keep every other) and only every ``stride``-th observation
#: is retained — a deterministic uniform subsample, never reservoir noise
SAMPLE_CAP = 4096


class Histogram:
    """Streaming summary (count/sum/min/max) of observed values.

    Besides the running aggregates, a bounded, deterministically decimated
    sample set is retained so :meth:`percentile` can answer quantile
    queries — exact until :data:`SAMPLE_CAP` observations, a uniform
    1-in-``stride`` subsample beyond.  The regression checker leans on
    this for its noise-aware wall-clock medians.
    """

    __slots__ = ("_lock", "count", "sum", "min", "max", "_samples", "_stride")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if (self.count - 1) % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= SAMPLE_CAP:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the observed values.

        Linear interpolation between order statistics of the retained
        sample set; raises :class:`ValueError` on an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            raise ValueError("percentile of an empty histogram")
        if len(samples) == 1:
            return samples[0]
        pos = (q / 100.0) * (len(samples) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac

    @classmethod
    def merge(cls, histograms: "list[Histogram] | tuple[Histogram, ...]") -> "Histogram":
        """Combine histograms into a fresh one (sum of the windows).

        Aggregates add exactly; the merged sample set concatenates the
        inputs' retained samples and re-decimates past :data:`SAMPLE_CAP`.
        """
        out = cls()
        merged: list[float] = []
        for h in histograms:
            with h._lock:
                out.count += h.count
                out.sum += h.sum
                if h.min is not None:
                    out.min = h.min if out.min is None else min(out.min, h.min)
                if h.max is not None:
                    out.max = h.max if out.max is None else max(out.max, h.max)
                merged.extend(h._samples)
                out._stride = max(out._stride, h._stride)
        while len(merged) >= SAMPLE_CAP:
            merged = merged[::2]
            out._stride *= 2
        out._samples = merged
        return out

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """One namespace of metrics, keyed by canonical series name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, table: dict, cls: type, name: str, labels: dict):
        key = metric_key(name, labels)
        metric = table.get(key)
        if metric is None:
            with self._lock:
                metric = table.setdefault(key, cls())
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(self._histograms, Histogram, name, labels)

    def snapshot(self) -> dict:
        """Point-in-time plain-JSON view of every series."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "schema": SCHEMA_VERSION,
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.as_dict() for k, h in sorted(histograms.items())},
        }

    def reset(self) -> None:
        """Drop every series (a fresh measurement window)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ---------------------------------------------------------------------------
# The process default registry (what the library instrumentation uses)
# ---------------------------------------------------------------------------

_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _DEFAULT


def counter(name: str, **labels: Any) -> Counter:
    return _DEFAULT.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return _DEFAULT.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    return _DEFAULT.histogram(name, **labels)


def snapshot() -> dict:
    return _DEFAULT.snapshot()


def reset() -> None:
    _DEFAULT.reset()
