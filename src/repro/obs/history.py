"""Append-only JSONL ledger of bench runs (the BENCH trajectory).

``python -m repro bench --save`` appends one schema-v3 entry per run to
``$REPRO_BENCH_DIR/ledger.jsonl`` (default ``benchmarks/history/``):

* provenance — UTC timestamp, git sha, and a machine fingerprint
  (platform + CPU count + the :func:`repro.perf.cache.code_fingerprint`
  of the pricing code) so cross-machine entries are never compared as
  if they were one series;
* the deterministic payload — per-figure model *cycles* and series
  (bit-identical run to run by construction, the regression checker's
  hard signal);
* the noisy payload — per-phase wall-clock seconds (compared against a
  median-of-N threshold, never bit-wise);
* the full ``repro.obs`` metrics snapshot of the run.

The ledger is plain JSONL on purpose: append is one fsynced ``O_APPEND``
write (:func:`repro.resilience.atomic.atomic_append_line`, fault site
``history.append``), history survives any crash mid-run, and corrupt
lines are counted and skipped — mirroring :mod:`repro.perf.cache`'s
never-silent degradation.  On every open the ledger runs startup
recovery (:func:`repro.resilience.atomic.recover_jsonl`): a torn tail
left by a ``kill -9`` mid-append is moved into ``.quarantine/`` and
truncated away, so readers — and the next appender — only ever see
complete records.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
from typing import Any

from ..resilience import atomic as res_atomic
from . import log as obs_log
from . import metrics as obs_metrics

#: bump when the ledger entry layout changes.  v3 aligns with the
#: BENCH_*.json schema: v2 added the metrics block, v3 adds provenance
#: (git sha + machine fingerprint) and the deterministic cycles block.
LEDGER_SCHEMA = 3

BENCH_DIR_ENV = "REPRO_BENCH_DIR"
DEFAULT_HISTORY_DIR = pathlib.Path("benchmarks") / "history"
LEDGER_NAME = "ledger.jsonl"


def history_dir(root: str | os.PathLike | None = None) -> pathlib.Path:
    """Resolve the ledger directory (arg > ``REPRO_BENCH_DIR`` > default)."""
    if root is not None:
        return pathlib.Path(root)
    env = os.environ.get(BENCH_DIR_ENV, "").strip()
    return pathlib.Path(env) if env else DEFAULT_HISTORY_DIR


def git_sha() -> str | None:
    """The checked-out commit, or None outside a usable git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def machine_fingerprint() -> str:
    """Short digest identifying (machine, pricing code) pairs.

    Wall-clock numbers are only comparable within one fingerprint; the
    deterministic cycle blocks additionally fold in the pricing code via
    :func:`repro.perf.cache.code_fingerprint`, so a cost-model edit shows
    up as a fingerprint change rather than a phantom regression.
    """
    import platform

    from ..arm import cost_model, pipeline
    from ..backends import arm as be_arm
    from ..backends import gpu as be_gpu
    from ..gpu import autotune, pipelinemodel, tiling, vecmodel
    from ..perf.cache import code_fingerprint, stable_hash

    return stable_hash({
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "code": code_fingerprint([
            cost_model, pipeline, pipelinemodel, vecmodel, autotune, tiling,
            be_arm, be_gpu,
        ]),
    })[:16]


class BenchLedger:
    """One ``ledger.jsonl`` file of bench-run entries."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = history_dir(root)

    @property
    def path(self) -> pathlib.Path:
        return self.root / LEDGER_NAME

    def recover(self) -> int:
        """Startup recovery: quarantine + truncate a torn tail, if any.
        Returns the torn byte count (0 for a clean or absent ledger)."""
        return res_atomic.recover_jsonl(self.path)

    def append(self, entry: dict) -> pathlib.Path:
        """Append one entry as a single fsynced ``O_APPEND`` line.

        Runs recovery first so a new record is never glued onto a torn
        tail from a crashed predecessor.  Raises ``OSError`` (or an
        injected fault) on failure — callers for whom history is
        optional catch and degrade.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.recover()
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        res_atomic.atomic_append_line(
            self.path, line,
            site="history.append", key=str(entry.get("run_id", "")),
        )
        obs_metrics.counter("ledger_entries", outcome="appended").inc()
        return self.path

    def entries(self) -> list[dict]:
        """Every parseable entry, oldest first; a torn tail is recovered
        (quarantined + truncated) first, and corrupt interior lines are
        counted (``ledger_entries{outcome=corrupt}``), warned about, and
        skipped."""
        if not self.path.is_file():
            return []
        self.recover()
        out: list[dict] = []
        for i, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines()
        ):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict):
                    raise ValueError("entry is not an object")
            except ValueError as exc:
                obs_metrics.counter("ledger_entries", outcome="corrupt").inc()
                obs_log.warning(
                    "ledger_corrupt_line", logger="repro.obs.history",
                    path=str(self.path), line=i + 1,
                    error=type(exc).__name__,
                )
                continue
            out.append(entry)
        return out

    def latest(self, n: int = 1) -> list[dict]:
        """The newest ``n`` entries, newest first."""
        return list(reversed(self.entries()[-n:]))

    def select(self, spec: str) -> dict:
        """One entry by selector: a negative index (``"-1"`` = newest,
        ``"-2"`` the one before) or a run-id / git-sha / machine-
        fingerprint prefix (newest match wins — ``repro diff`` and
        ``regress --baseline`` both resolve sides this way).  Raises
        ``ValueError`` when nothing matches, naming what was tried."""
        entries = self.entries()
        if not entries:
            raise ValueError(
                f"ledger selector {spec!r}: the ledger at {self.path} is "
                f"empty (run `repro bench --save` first)")
        try:
            idx = int(spec)
        except ValueError:
            idx = None
        if idx is not None and idx < 0:
            if -idx > len(entries):
                raise ValueError(
                    f"ledger selector {spec!r}: only {len(entries)} entries")
            return entries[idx]
        for entry in reversed(entries):
            if (entry.get("run_id", "").startswith(spec)
                    or (entry.get("git_sha") or "").startswith(spec)
                    or (entry.get("fingerprint") or "").startswith(spec)):
                return entry
        raise ValueError(
            f"ledger selector {spec!r} matches no run_id/git_sha/"
            f"fingerprint among {len(entries)} entries")

    def __len__(self) -> int:
        return len(self.entries())


def build_entry(
    *,
    kind: str,
    model: str,
    batch: int,
    jobs: int,
    backends: list[str],
    timestamp: str,
    model_cycles: dict[str, Any],
    figures: dict[str, dict[str, list[float]]],
    wall_seconds: dict[str, float],
    metrics_snapshot: dict,
    throughput: dict[str, float] | None = None,
) -> dict:
    """Assemble one schema-v3 ledger entry from a finished bench run.

    ``throughput`` carries per-phase candidate-pricing rates
    (candidates/sec) — optional and additive, so entries written before
    the key existed still compare cleanly.
    """
    sha = git_sha()
    entry = {
        "schema": LEDGER_SCHEMA,
        "run_id": f"{timestamp}-{(sha or 'nogit')[:12]}",
        "timestamp": timestamp,
        "git_sha": sha,
        "fingerprint": machine_fingerprint(),
        "kind": kind,
        "model": model,
        "batch": batch,
        "jobs": jobs,
        "backends": list(backends),
        "model_cycles": model_cycles,
        "figures": figures,
        "wall_seconds": {k: round(v, 6) for k, v in wall_seconds.items()},
        "metrics": metrics_snapshot,
    }
    if throughput:
        entry["throughput"] = {
            k: round(v, 1) for k, v in throughput.items() if v
        }
    return entry
