"""Self-contained HTML dashboard: ``python -m repro report --html``.

One file, no external assets or scripts: inline CSS (light + dark via
``prefers-color-scheme``) and inline SVG charts —

* a roofline scatter per backend (log-log: MACs/byte vs MACs/s, the
  compute/memory roofs drawn in, points keyed by bit width);
* the Sec. 3.3 accumulation-chain overhead bars per bit width;
* the Fig. 1 CAL/LD table (traditional vs re-designed GEMM, ~4x);
* the bench-history ledger tail with per-phase wall-clock sparklines;
* an **attribution card** (when the ledger holds two comparable runs):
  the :mod:`repro.obs.diff` ranked phase deltas and changepoints between
  the newest pair, plus — with ``--diff-collapsed A B`` — the red/blue
  differential flamegraph of two collapsed-stack exports.

Every chart carries a ``<details>`` data table (the accessibility/table
view), native ``<title>`` tooltips on marks, and a colorblind-validated
3-slot palette (blue/orange/aqua in both modes).
"""

from __future__ import annotations

import html
import math
import os
import pathlib
from typing import Sequence

from . import trace as obs_trace
from .roofline import (
    RooflinePoint,
    chain_overhead_table,
    model_cal_ld,
    model_roofline,
)

#: categorical slots (light, dark), validated all-pairs in both modes
_SLOTS = (("#2a78d6", "#3987e5"), ("#eb6834", "#d95926"),
          ("#1baf7a", "#199e70"))

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px; background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: #52514e; margin: 0 0 16px; }
.card {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 16px; margin-bottom: 16px;
}
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile { flex: 1 1 160px; }
.tile .v { font-size: 26px; font-weight: 600; }
.tile .k { color: #52514e; font-size: 12px; }
svg text { font: 11px system-ui, sans-serif; fill: #898781; }
svg .lbl { fill: #52514e; }
table { border-collapse: collapse; font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 2px 10px; border-bottom: 1px solid #e1e0d9; }
th:first-child, td:first-child { text-align: left; }
th { color: #52514e; font-weight: 600; }
details summary { cursor: pointer; color: #52514e; margin-top: 8px; }
.legend { display: flex; gap: 16px; margin: 4px 0 8px; color: #52514e; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
@media (prefers-color-scheme: dark) {
  body { background: #0d0d0d; color: #ffffff; }
  .card { background: #1a1a19; border-color: rgba(255,255,255,0.10); }
  .sub, .tile .k, th, details summary, .legend { color: #c3c2b7; }
  th, td { border-bottom-color: #2c2c2a; }
  svg .lbl { fill: #c3c2b7; }
}
"""


def _esc(s: object) -> str:
    return html.escape(str(s))


def _fmt_si(v: float) -> str:
    for unit, scale in (("T", 1e12), ("G", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(v) >= scale:
            return f"{v / scale:.3g}{unit}"
    return f"{v:.3g}"


def _slot(i: int) -> str:
    light, dark = _SLOTS[i % len(_SLOTS)]
    return (f"light-dark({light}, {dark})")


# ---------------------------------------------------------------------------
# SVG builders
# ---------------------------------------------------------------------------


def _roofline_svg(points: Sequence[RooflinePoint], bit_list: Sequence[int],
                  width: int = 560, height: int = 300) -> str:
    pts = [p for p in points if p.intensity > 0 and p.achieved_ops > 0]
    if not pts:
        return "<p class='sub'>(no points)</p>"
    peak = max(p.peak_compute_ops for p in pts)
    bw = max(p.peak_bandwidth for p in pts)
    ridge = peak / bw
    x_lo = 10 ** math.floor(math.log10(min(min(p.intensity for p in pts), ridge)))
    x_hi = 10 ** math.ceil(math.log10(max(max(p.intensity for p in pts), ridge)))
    y_lo = 10 ** math.floor(math.log10(min(p.achieved_ops for p in pts)))
    y_hi = 10 ** math.ceil(math.log10(peak))
    m = {"l": 56, "r": 16, "t": 12, "b": 34}
    pw, ph = width - m["l"] - m["r"], height - m["t"] - m["b"]

    def x(v: float) -> float:
        return m["l"] + (math.log10(v) - math.log10(x_lo)) / (
            math.log10(x_hi) - math.log10(x_lo)) * pw

    def y(v: float) -> float:
        return m["t"] + ph - (math.log10(v) - math.log10(y_lo)) / (
            math.log10(y_hi) - math.log10(y_lo)) * ph

    parts = [f"<svg viewBox='0 0 {width} {height}' role='img' "
             f"aria-label='roofline scatter'>"]
    # decade gridlines + tick labels
    grid = "stroke='light-dark(#e1e0d9,#2c2c2a)' stroke-width='1'"
    dec = 10 ** math.floor(math.log10(x_lo))
    while dec <= x_hi:
        if dec >= x_lo:
            parts.append(f"<line x1='{x(dec):.1f}' y1='{m['t']}' "
                         f"x2='{x(dec):.1f}' y2='{m['t'] + ph}' {grid}/>")
            parts.append(f"<text x='{x(dec):.1f}' y='{height - 16}' "
                         f"text-anchor='middle'>{_fmt_si(dec)}</text>")
        dec *= 10
    dec = y_lo
    while dec <= y_hi:
        parts.append(f"<line x1='{m['l']}' y1='{y(dec):.1f}' "
                     f"x2='{m['l'] + pw}' y2='{y(dec):.1f}' {grid}/>")
        parts.append(f"<text x='{m['l'] - 6}' y='{y(dec) + 4:.1f}' "
                     f"text-anchor='end'>{_fmt_si(dec)}</text>")
        dec *= 10
    # the roofs: memory slope up to the ridge, flat compute roof after
    roof = "stroke='light-dark(#898781,#898781)' stroke-width='2' fill='none'"
    parts.append(
        f"<polyline {roof} points='"
        f"{x(x_lo):.1f},{y(min(peak, bw * x_lo)):.1f} "
        f"{x(ridge):.1f},{y(peak):.1f} {x(x_hi):.1f},{y(peak):.1f}'/>")
    parts.append(f"<text class='lbl' x='{x(x_hi) - 4:.1f}' "
                 f"y='{y(peak) - 6:.1f}' text-anchor='end'>"
                 f"peak {_fmt_si(peak)} MAC/s</text>")
    # points, colored by bit width (slot order = bit_list order)
    for p in pts:
        color = _slot(list(bit_list).index(p.bits) if p.bits in bit_list else 0)
        tip = (f"{p.layer} ({p.bits}-bit): {p.intensity:.2f} MACs/byte, "
               f"{_fmt_si(p.achieved_ops)} MAC/s, {p.pct_of_roof:.0%} of roof "
               f"({p.bound}-bound)")
        parts.append(
            f"<circle cx='{x(p.intensity):.1f}' cy='{y(p.achieved_ops):.1f}' "
            f"r='4' fill='{color}' stroke='light-dark(#fcfcfb,#1a1a19)' "
            f"stroke-width='2'><title>{_esc(tip)}</title></circle>")
    parts.append(f"<text x='{m['l'] + pw / 2:.0f}' y='{height - 2}' "
                 f"text-anchor='middle'>arithmetic intensity (MACs/byte, log)"
                 f"</text>")
    parts.append("</svg>")
    legend = "".join(
        f"<span><span class='sw' style='background:{_slot(i)}'></span>"
        f"{b}-bit</span>" for i, b in enumerate(bit_list))
    return f"<div class='legend'>{legend}</div>" + "".join(parts)


def _chain_svg(table: Sequence[dict], width: int = 560) -> str:
    bar_h, gap, left = 22, 8, 110
    height = len(table) * (bar_h + gap) + 16
    vmax = max(row["fraction"] for row in table) or 1.0
    pw = width - left - 70
    parts = [f"<svg viewBox='0 0 {width} {height}' role='img' "
             f"aria-label='chain overhead bars'>"]
    parts.append(f"<line x1='{left}' y1='4' x2='{left}' y2='{height - 4}' "
                 f"stroke='light-dark(#c3c2b7,#383835)' stroke-width='1'/>")
    for i, row in enumerate(table):
        yy = 8 + i * (bar_h + gap)
        w = max(2.0, row["fraction"] / vmax * pw)
        tip = (f"{row['bits']}-bit {row['scheme'].upper()}: chain "
               f"{row['chain']}:1, widening {row['fraction']:.1%} of kernel "
               f"occupancy")
        parts.append(f"<text class='lbl' x='{left - 8}' y='{yy + 15}' "
                     f"text-anchor='end'>{row['bits']}-bit "
                     f"{row['scheme'].upper()}</text>")
        parts.append(
            f"<rect x='{left + 1}' y='{yy}' width='{w:.1f}' "
            f"height='{bar_h}' rx='4' fill='{_slot(0)}'>"
            f"<title>{_esc(tip)}</title></rect>")
        parts.append(f"<text class='lbl' x='{left + w + 7:.1f}' "
                     f"y='{yy + 15}'>{row['fraction']:.1%} "
                     f"(chain {row['chain']}:1)</text>")
    parts.append("</svg>")
    return "".join(parts)


def flamegraph_svg(
    counts: dict[str, int], *, width: int = 860, row_h: int = 18,
    max_depth: int = 40,
) -> str:
    """An icicle-layout flamegraph of collapsed stacks (inline SVG).

    ``counts`` is :meth:`repro.obs.sampler.StackSampler.collapsed` output
    (``"outer;...;leaf" -> samples``).  Root at the top, one row per
    frame depth, box width proportional to sample share; every box
    carries a native ``<title>`` tooltip with the frame, sample count and
    percentage.  Pure string building — no scripts, matching the rest of
    the dashboard.
    """
    total = sum(counts.values())
    if total <= 0:
        return "<p class='sub'>(no samples)</p>"

    # fold the stacks into a trie; child order is alphabetical so the
    # layout is deterministic for a given sample set
    root: dict = {"name": "all", "value": 0, "children": {}}
    for stack, n in sorted(counts.items()):
        node = root
        node["value"] += n
        for part in stack.split(";"):
            child = node["children"].setdefault(
                part, {"name": part, "value": 0, "children": {}})
            child["value"] += n
            node = child

    pps = width / total  # pixels per sample
    boxes: list[tuple[int, float, float, str, int]] = []

    def layout(node: dict, depth: int, x0: float) -> None:
        boxes.append((depth, x0, node["value"] * pps, node["name"],
                      node["value"]))
        if depth >= max_depth:
            return
        x = x0
        for name in sorted(node["children"]):
            child = node["children"][name]
            layout(child, depth + 1, x)
            x += child["value"] * pps

    layout(root, 0, 0.0)
    depth_max = max(d for d, *_ in boxes)
    height = (depth_max + 1) * row_h + 4
    parts = [f"<svg viewBox='0 0 {width} {height}' role='img' "
             f"aria-label='flamegraph of sampled stacks'>"]
    for depth, x0, w, name, value in boxes:
        if w < 0.4:  # invisible at any zoom the dashboard offers
            continue
        yy = depth * row_h
        tip = f"{name} — {value} samples ({value / total:.1%})"
        parts.append(
            f"<rect x='{x0:.1f}' y='{yy}' width='{max(w, 0.6):.1f}' "
            f"height='{row_h - 2}' rx='2' fill='{_slot(depth)}' "
            f"stroke='light-dark(#fcfcfb,#1a1a19)' stroke-width='0.5'>"
            f"<title>{_esc(tip)}</title></rect>")
        if w >= 60:
            label = name if len(name) <= int(w / 7) else (
                name[: max(1, int(w / 7) - 1)] + "…")
            parts.append(
                f"<text x='{x0 + 4:.1f}' y='{yy + row_h - 6}' "
                f"fill='#ffffff'>{_esc(label)}</text>")
    parts.append("</svg>")
    return "".join(parts)


def _sparkline(values: Sequence[float], width: int = 140,
               height: int = 30) -> str:
    if len(values) < 2:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = (width - 8) / (len(values) - 1)
    pts = " ".join(
        f"{4 + i * step:.1f},{height - 5 - (v - lo) / span * (height - 10):.1f}"
        for i, v in enumerate(values))
    return (f"<svg viewBox='0 0 {width} {height}' width='{width}' "
            f"height='{height}' role='img' aria-label='wall-clock trend'>"
            f"<polyline points='{pts}' fill='none' stroke='{_slot(0)}' "
            f"stroke-width='2'/></svg>")


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows)
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _roofline_rows(points: Sequence[RooflinePoint]) -> str:
    return _table(
        ("layer", "bits", "MACs/byte", "achieved MAC/s", "roof MAC/s",
         "% of roof", "bound"),
        [(p.layer, p.bits, f"{p.intensity:.2f}", _fmt_si(p.achieved_ops),
          _fmt_si(p.roof_ops), f"{p.pct_of_roof:.1%}", p.bound)
         for p in sorted(points, key=lambda p: -p.pct_of_roof)],
    )


def _attribution_sections(
    all_entries: Sequence[dict],
    diff_sample: "tuple[dict[str, int], dict[str, int]] | None",
) -> list[str]:
    """The attribution card: :mod:`repro.obs.diff` between the newest
    ledger entry and the newest earlier comparable one (same config +
    fingerprint), plus the differential flamegraph when a collapsed-stack
    pair was supplied.  Omitted entirely when the ledger can't support a
    comparison and no pair was given."""
    from . import diff as obs_diff
    from .regress import _config_key

    sections: list[str] = []
    pair = None
    if len(all_entries) >= 2:
        cand = all_entries[-1]
        for prev in reversed(all_entries[:-1]):
            if (_config_key(prev) == _config_key(cand)
                    and prev.get("fingerprint") == cand.get("fingerprint")):
                pair = (prev, cand)
                break
    if pair is not None:
        base, cand = pair
        report = obs_diff.attribute_entries(
            base, cand, ledger_entries=list(all_entries))
        top = report.top_phase()
        headline = (
            f"top delta: <b>{_esc(top.phase)}</b> "
            f"{top.seconds_a:.3f}s &rarr; {top.seconds_b:.3f}s "
            f"({top.ratio:.2f}&times;)" if top is not None
            else "no phase shifted beyond the noise floor")
        sections += [
            "<h2>Attribution — newest comparable ledger pair</h2>",
            "<div class='card'>",
            f"<p class='sub'>{_esc(base.get('run_id', '?'))} &rarr; "
            f"{_esc(cand.get('run_id', '?'))} — {headline}. Ranked by "
            f"|log ratio| with a {obs_diff.PHASE_FLOOR_S * 1e3:g} ms "
            f"noise floor (DESIGN.md §5.13).</p>",
            _table(("phase", "A (s)", "B (s)", "delta (s)", "ratio", "rank"),
                   [(d.phase,
                     f"{d.seconds_a:.4f}" if d.seconds_a is not None else "—",
                     f"{d.seconds_b:.4f}" if d.seconds_b is not None else "—",
                     f"{d.delta:+.4f}" if d.delta is not None else "—",
                     f"{d.ratio:.2f}×" if d.ratio is not None else "—",
                     "floored" if d.floored else f"{d.score:.2f}")
                    for d in report.phases]),
        ]
        if report.changepoints:
            sections += [
                "<p class='sub'>changepoints over the comparable ledger "
                "series:</p>",
                _table(("phase", "first changed run", "sha", "before (s)",
                        "after (s)", "shift", "score"),
                       [(c.phase, c.run_id, (c.git_sha or "")[:10],
                         f"{c.before_mean:.4f}", f"{c.after_mean:.4f}",
                         f"{c.shift:.2f}×", f"{c.score:.2f}")
                        for c in report.changepoints]),
            ]
        if report.counters:
            sections += [
                "<details><summary>counter deltas</summary>",
                _table(("counter", "A", "B", "delta"),
                       [(d.key, f"{d.a:g}", f"{d.b:g}", f"{d.delta:+g}")
                        for d in report.counters[:20]]),
                "</details>",
            ]
        sections.append("</div>")
    if diff_sample is not None:
        counts_a, counts_b = diff_sample
        sections += [
            "<h2>Differential flamegraph</h2>",
            "<div class='card'>",
            "<p class='sub'>red: grew in run B, blue: shrank — sample "
            "shares (A normalized to B's total; see DESIGN.md §5.13).</p>",
            obs_diff.differential_flamegraph_svg(counts_a, counts_b),
            "</div>",
        ]
    return sections


# ---------------------------------------------------------------------------
# The dashboard
# ---------------------------------------------------------------------------


def _serve_sections(summary: dict) -> list[str]:
    """The serving card: SLO/goodput tiles, counts, breaker timeline."""
    cfg = summary.get("config", {})
    counts = summary.get("counts", {})
    shed = counts.get("shed", {})
    lat = summary.get("latency_us", {})
    brk = summary.get("breaker", {})
    sections = [
        "<h2>Serving &amp; overload robustness</h2>",
        "<div class='card'>",
        f"<p class='sub'>{_esc(str(cfg.get('model', '?')))} "
        f"int{cfg.get('bits', '?')} on {_esc(str(cfg.get('backend', '?')))} "
        f"(fallback {_esc(str(cfg.get('fallback', '?')))}) — "
        f"{cfg.get('qps', '?')} qps × {cfg.get('requests', '?')} requests, "
        f"shape {_esc(str(cfg.get('shape', '?')))}, "
        f"SLO {cfg.get('slo_ms', '?')} ms (virtual clock).</p>",
        "<div class='tiles'>",
        f"<div class='tile'><div class='v'>"
        f"{summary.get('slo_attainment', 0):.2%}</div>"
        f"<div class='k'>SLO attainment over admitted</div></div>",
        f"<div class='tile'><div class='v'>"
        f"{summary.get('goodput', 0):.2%}</div>"
        f"<div class='k'>goodput (SLO-met / offered)</div></div>",
        f"<div class='tile'><div class='v'>"
        f"{lat.get('p99', 0) / 1e3:.1f} ms</div>"
        f"<div class='k'>p99 latency (p999 "
        f"{lat.get('p999', 0) / 1e3:.1f} ms)</div></div>",
        f"<div class='tile'><div class='v'>{brk.get('opens', 0)}"
        f"/{brk.get('closes', 0)}</div>"
        f"<div class='k'>breaker opens/closes "
        f"({brk.get('probe_failures', 0)} failed probes)</div></div>",
        "</div>",
        _table(
            ("offered", "admitted", "shed (deadline)", "shed (queue full)",
             "completed", "queue expiries", "SLO met", "SLO missed",
             "batches", "brownout", "probes"),
            [(counts.get("offered", 0), counts.get("admitted", 0),
              shed.get("deadline", 0), shed.get("queue_full", 0),
              counts.get("completed", 0), counts.get("expired", 0),
              counts.get("slo_met", 0), counts.get("slo_missed", 0),
              counts.get("batches", 0), counts.get("brownout_batches", 0),
              counts.get("probe_batches", 0))]),
    ]
    transitions = brk.get("transitions") or []
    if transitions:
        sections += [
            "<details><summary>breaker timeline</summary>",
            _table(("t (s, virtual)", "state"),
                   [(f"{t:.3f}", _esc(str(state)))
                    for t, state in transitions]),
            "</details>",
        ]
    injected = summary.get("faults_injected") or {}
    if injected:
        sections.append(
            "<p class='sub'>chaos: "
            + ", ".join(f"{_esc(site)} ×{n}"
                        for site, n in sorted(injected.items()))
            + "</p>")
    sections.append("</div>")
    return sections


def render_report(
    *,
    model: str = "resnet50",
    backends: Sequence[str] = ("arm", "gpu"),
    batch: int = 1,
    history_dir: str | os.PathLike | None = None,
    sample: "dict[str, int] | None" = None,
    diff_sample: "tuple[dict[str, int], dict[str, int]] | None" = None,
    serve_summary: "dict | None" = None,
) -> str:
    """Build the dashboard HTML string (prices layers on each backend).

    ``sample`` — collapsed-stack counts from
    :meth:`repro.obs.sampler.StackSampler.collapsed` (or a parsed
    collapsed file) — adds a flamegraph panel of the sampled wall-clock
    profile.  ``diff_sample`` — an (A, B) pair of collapsed-stack count
    dicts (``--diff-collapsed A B``) — adds the red/blue differential
    flamegraph.  An attribution card between the two newest comparable
    ledger runs is added automatically whenever the ledger allows it.
    ``serve_summary`` — a parsed ``python -m repro serve --out`` summary
    dict — adds the serving/overload-robustness card.
    """
    from .history import BenchLedger

    with obs_trace.span("report.html", model=model):
        per_backend = {}
        for name in backends:
            points = model_roofline(model, name, batch=batch)
            bit_list = tuple(dict.fromkeys(p.bits for p in points))
            per_backend[name] = (points, bit_list)
        cal_ld = model_cal_ld(model, batch=batch)
        chains = chain_overhead_table()
        all_entries = BenchLedger(history_dir).entries()
        entries = list(reversed(all_entries[-10:]))

    geomean = math.exp(
        sum(math.log(r["improvement"]) for r in cal_ld) / len(cal_ld))
    best = max((p for pts, _ in per_backend.values() for p in pts),
               key=lambda p: p.pct_of_roof)
    sections = [
        "<div class='card tiles'>",
        f"<div class='tile'><div class='v'>{geomean:.2f}&times;</div>"
        f"<div class='k'>CAL/LD improvement, re-designed vs traditional GEMM "
        f"(geomean over {len(cal_ld)} layers; Fig. 1 claims &asymp;4&times;)"
        f"</div></div>",
        f"<div class='tile'><div class='v'>{best.pct_of_roof:.0%}</div>"
        f"<div class='k'>best %-of-roof: {_esc(best.layer)} "
        f"{best.bits}-bit on {_esc(best.backend)}</div></div>",
        f"<div class='tile'><div class='v'>{len(entries)}</div>"
        f"<div class='k'>bench runs in the ledger tail</div></div>",
        "</div>",
    ]

    for name, (points, bit_list) in per_backend.items():
        sections += [
            f"<h2>Roofline — {_esc(name)} backend ({_esc(model)}, "
            f"batch {batch})</h2>",
            "<div class='card'>",
            _roofline_svg(points, bit_list),
            "<details><summary>data table</summary>",
            _roofline_rows(points), "</details></div>",
        ]

    sections += [
        "<h2>Accumulation-chain overhead (Sec. 3.3)</h2>",
        "<div class='card'>",
        "<p class='sub'>SADDW widening share of kernel issue occupancy — "
        "the price of overflow safety per bit width.</p>",
        _chain_svg(chains),
        "<details><summary>data table</summary>",
        _table(("bits", "scheme", "chain : drain", "widen cycles",
                "busy cycles", "overhead"),
               [(r["bits"], r["scheme"], f"{r['chain']} : 1",
                 r["widen_cycles"], r["busy_cycles"], f"{r['fraction']:.2%}")
                for r in chains]),
        "</details></div>",
        "<h2>CAL/LD ratio per layer (Fig. 1)</h2>",
        "<div class='card'>",
        _table(("layer", "GEMM (M×K×N)", "traditional", "re-designed",
                "improvement"),
               [(r["layer"], f"{r['m']}×{r['k']}×{r['n']}",
                 f"{r['traditional']:.3f}", f"{r['redesigned']:.3f}",
                 f"{r['improvement']:.2f}×") for r in cal_ld]),
        "</div>",
    ]

    if sample:
        total = sum(sample.values())
        top = sorted(sample.items(), key=lambda kv: (-kv[1], kv[0]))[:12]
        sections += [
            "<h2>Sampled wall-clock profile</h2>",
            "<div class='card'>",
            f"<p class='sub'>{total} samples over {len(sample)} distinct "
            f"stacks (deterministic-interval sampler; see DESIGN.md "
            f"§5.12 for caveats).</p>",
            flamegraph_svg(sample),
            "<details><summary>hottest stacks</summary>",
            _table(("samples", "share", "stack (leaf last)"),
                   [(n, f"{n / total:.1%}",
                     stack if len(stack) <= 120 else "…" + stack[-119:])
                    for stack, n in top]),
            "</details></div>",
        ]

    if serve_summary:
        sections += _serve_sections(serve_summary)

    sections += _attribution_sections(all_entries, diff_sample)

    sections.append("<h2>Bench history (newest first)</h2><div class='card'>")
    if entries:
        wall_keys = sorted({k for e in entries
                            for k in e.get("wall_seconds", {})})
        rows = []
        for e in entries:
            wall = e.get("wall_seconds", {})
            rows.append(
                [e.get("run_id", "?"), (e.get("git_sha") or "")[:10],
                 e.get("kind", "?")]
                + [f"{wall[k]:.3f}" if k in wall else "—" for k in wall_keys])
        sections.append(_table(
            ["run", "sha", "kind"] + [f"{k} (s)" for k in wall_keys], rows))
        for k in wall_keys:
            series = [e["wall_seconds"][k] for e in reversed(entries)
                      if k in e.get("wall_seconds", {})]
            spark = _sparkline(series)
            if spark:
                sections.append(
                    f"<p class='sub'>{_esc(k)} trend {spark}</p>")
        # candidate-pricing throughput trends (entries predating the
        # ``throughput`` key simply contribute no points)
        tput_keys = sorted({k for e in entries
                            for k in e.get("throughput", {})})
        for k in tput_keys:
            series = [e["throughput"][k] for e in reversed(entries)
                      if k in e.get("throughput", {})]
            spark = _sparkline(series)
            if spark:
                sections.append(
                    f"<p class='sub'>{_esc(k)} candidates/s trend {spark}</p>")
    else:
        sections.append("<p class='sub'>ledger is empty — run "
                        "<code>python -m repro bench --save</code></p>")
    sections.append("</div>")

    body = "\n".join(sections)
    return (
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>repro report — {_esc(model)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>Roofline &amp; regression report</h1>"
        f"<p class='sub'>{_esc(model)}, batch {batch} — backends: "
        f"{_esc(', '.join(backends))}. Cost-model metrics; see DESIGN.md "
        f"§5.9 for the formulas.</p>"
        f"{body}</body></html>"
    )


def write_report(path: str | os.PathLike, **kwargs) -> pathlib.Path:
    """Render and write the dashboard; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(**kwargs), encoding="utf-8")
    return path
