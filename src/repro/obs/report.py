"""``python -m repro profile`` — run one artifact under full observability.

Runs a figure (``fig7``..``fig17``, ``tab1``) or a whole model
(``resnet50`` | ``scr-resnet50`` | ``densenet121``, priced end-to-end on
every registered backend — or one, with ``--backend``) inside a fresh
tracer + metrics window, then reports:

* a text summary — wall time, span totals by name, cache hit/miss rates,
  autotune evaluated/pruned tallies, the hottest per-layer cycle entries;
* ``--trace out.json`` — the Chrome ``trace_event`` file (open in
  ``chrome://tracing`` or https://ui.perfetto.dev);
* ``--metrics out.json`` — the full metrics snapshot.

The metrics window is process-global, so the command resets the registry
up front: the emitted numbers describe this run only.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from collections import defaultdict
from typing import Callable

from . import metrics as obs_metrics
from . import trace as obs_trace

MODELS = ("resnet50", "scr-resnet50", "densenet121")


def resolve_target(
    target: str, model: str, batch: int, backend: str | None = None
) -> Callable[[], object]:
    """A zero-argument callable reproducing ``target`` (or raise KeyError).

    Shared by ``profile`` and the telemetry CLI commands (``flight``,
    ``metrics-export``) that need to run a workload before exporting.
    """
    if target in MODELS:
        def run_model():
            from ..backends import available_backends
            from ..models import get_model_layers
            from ..runtime.network import estimate_model_cycles

            names = (backend,) if backend else available_backends()
            layers = get_model_layers(target, batch=batch)
            return {
                name: estimate_model_cycles(layers, 8, name)
                for name in names
            }

        return run_model
    if target == "tab1":
        from ..figures import tab1_configurations

        return tab1_configurations
    from ..figures import figure_registry

    registry = figure_registry()
    if target not in registry:
        raise KeyError(target)
    fn = registry[target]
    return lambda: fn(model=model, batch=batch)


#: backwards-compatible private alias (pre-telemetry callers)
_resolve_target = resolve_target


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------


def _span_summary(tracer: obs_trace.Tracer, limit: int = 12) -> list[str]:
    groups: dict[str, list[float]] = defaultdict(list)
    for rec in tracer.spans():
        groups[rec.name].append(rec.dur_us)
    if not groups:
        return ["  (no spans recorded)"]
    rows = sorted(
        ((sum(durs), len(durs), max(durs), name)
         for name, durs in groups.items()),
        reverse=True,
    )
    lines = [f"  {'span':<28} {'count':>6} {'total ms':>10} {'max ms':>9}"]
    for total, count, peak, name in rows[:limit]:
        lines.append(
            f"  {name:<28} {count:>6} {total / 1e3:>10.3f} {peak / 1e3:>9.3f}"
        )
    if len(rows) > limit:
        lines.append(f"  ... {len(rows) - limit} more span names")
    return lines


def _counter_summary(counters: dict[str, float]) -> list[str]:
    if not counters:
        return ["  (no counters recorded)"]
    return [f"  {key:<52} {value}" for key, value in counters.items()]


def _histogram_summary(histograms: dict[str, dict]) -> list[str]:
    lines = []
    for key, h in histograms.items():
        lines.append(
            f"  {key:<40} n={h['count']} mean={h['mean']:.4g} "
            f"min={h['min']:.4g} max={h['max']:.4g}"
        )
    return lines or ["  (no histograms recorded)"]


def _gauge_summary(gauges: dict[str, float], limit: int = 10) -> list[str]:
    """Per-layer cycle gauges grouped by metric name, largest first."""
    by_name: dict[str, list[tuple[float, str]]] = defaultdict(list)
    for key, value in gauges.items():
        name = key.split("{", 1)[0]
        by_name[name].append((value, key))
    lines = []
    for name in sorted(by_name):
        entries = sorted(by_name[name], reverse=True)
        lines.append(f"  {name}: {len(entries)} series")
        for value, key in entries[:limit]:
            label = key[len(name):].strip("{}")
            lines.append(f"    {label:<46} {value:.6g}")
        if len(entries) > limit:
            lines.append(f"    ... {len(entries) - limit} more")
    return lines or ["  (no gauges recorded)"]


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_profile(
    target: str,
    *,
    model: str = "resnet50",
    batch: int = 1,
    backend: str | None = None,
    trace_path: str | os.PathLike | None = None,
    metrics_path: str | os.PathLike | None = None,
    sample_interval_ms: float | None = None,
    flamegraph_path: str | os.PathLike | None = None,
    stacks_path: str | os.PathLike | None = None,
    echo: Callable[[str], None] = print,
) -> int:
    """Profile one artifact; returns a process exit code.

    ``backend`` restricts model targets to one registered backend
    (default: price on every registered backend); figure targets carry
    their backend by construction and ignore it.  ``sample_interval_ms``
    (``--profile-sample``) additionally runs the wall-clock stack
    sampler over the run and reports the hottest collapsed stacks;
    ``flamegraph_path`` writes them as a standalone SVG flamegraph and
    ``stacks_path`` as collapsed-stack text — two ``--stacks`` exports
    are exactly what ``repro diff A.txt B.txt --flamegraph`` consumes.
    """
    if backend is not None:
        from ..backends import get_backend
        from ..errors import ReproError

        try:
            get_backend(backend)
        except ReproError as exc:
            echo(str(exc))
            return 2
    try:
        runner = _resolve_target(target, model, batch, backend)
    except KeyError:
        echo(f"unknown profile target {target!r}; use fig7..fig17, tab1, "
             f"or one of {', '.join(MODELS)}")
        return 2

    sampler = None
    if sample_interval_ms is not None:
        from . import sampler as obs_sampler

        sampler = obs_sampler.StackSampler(
            interval_s=sample_interval_ms / 1e3)
    obs_metrics.reset()
    t0 = time.perf_counter()
    try:
        if sampler is not None:
            sampler.start()
        with obs_trace.capture() as tracer:
            with obs_trace.span("profile", target=target, model=model,
                                batch=batch):
                result = runner()
    except BaseException:
        # a failing figure must not leak this run's half-filled metrics
        # window into later callers/tests (capture() already restores the
        # tracer on its own finally path)
        obs_metrics.reset()
        raise
    finally:
        if sampler is not None:
            sampler.stop()
    seconds = time.perf_counter() - t0

    roofline_lines: list[str] = []
    if target in MODELS:
        from . import roofline as obs_roofline

        from ..errors import ReproError

        names = (backend,) if backend else tuple(result)
        for name in names:
            try:
                points = obs_roofline.model_roofline(
                    target, name, batch=batch)
            except ReproError:  # a backend without roofline hooks
                continue
            roofline_lines.append(f"roofline [{name}]:")
            roofline_lines += obs_roofline.roofline_table(points, limit=8)
            roofline_lines += obs_roofline.ascii_roofline(points)
    snap = obs_metrics.snapshot()

    echo(f"== profile {target} (model {model}, batch {batch}) ==")
    echo(f"wall time: {seconds:.3f} s   spans: {len(tracer)}")
    echo("spans by total time:")
    for line in _span_summary(tracer):
        echo(line)
    echo("counters:")
    for line in _counter_summary(snap["counters"]):
        echo(line)
    echo("histograms:")
    for line in _histogram_summary(snap["histograms"]):
        echo(line)
    echo("per-layer cycles (gauges):")
    for line in _gauge_summary(snap["gauges"]):
        echo(line)
    for line in roofline_lines:
        echo(line)
    if sampler is not None:
        counts = sampler.collapsed()
        echo(f"sampler: {sampler.sample_count} samples @ "
             f"{sample_interval_ms:g} ms "
             f"({sampler.missed_ticks} missed ticks, "
             f"{len(counts)} stacks)")
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for stack, n in ordered[:8]:
            leaf = stack.rsplit(";", 2)[-2:]
            echo(f"  {n:>5}  {';'.join(leaf)}")

    if trace_path is not None:
        path = tracer.write(trace_path, process_name=f"repro profile {target}")
        echo(f"wrote trace    {path}  (open in chrome://tracing or Perfetto)")
    if metrics_path is not None:
        payload = {
            "target": target,
            "model": model,
            "batch": batch,
            "wall_seconds": round(seconds, 6),
            **snap,
        }
        path = pathlib.Path(metrics_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # sort_keys keeps the file byte-stable and diffable across runs
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        echo(f"wrote metrics  {path}")
    if sampler is not None and flamegraph_path is not None:
        from . import htmlreport as obs_htmlreport

        fpath = pathlib.Path(flamegraph_path)
        fpath.parent.mkdir(parents=True, exist_ok=True)
        fpath.write_text(
            obs_htmlreport.flamegraph_svg(sampler.collapsed()),
            encoding="utf-8")
        echo(f"wrote flamegraph {fpath}")
    if sampler is not None and stacks_path is not None:
        from . import sampler as obs_sampler

        spath = obs_sampler.write_collapsed(sampler.collapsed(), stacks_path)
        echo(f"wrote collapsed stacks {spath}")
    return 0
