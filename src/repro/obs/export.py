"""OpenMetrics text exposition of the metrics registry, plus a live view.

Three consumers share this module:

* ``python -m repro metrics-export`` renders the process registry in the
  OpenMetrics text format (the Prometheus exposition superset): counters
  as ``name_total``, gauges verbatim, histograms as cumulative
  ``_bucket{le=...}`` series with ``_sum``/``_count`` — and, where the
  flight recorder supplied one, an *exemplar* per bucket linking the
  latest observation to its ``trace_id``/``span_id`` span.
* ``--serve PORT`` wraps the same renderer in a tiny threading HTTP
  server exposing ``/metrics`` for an actual Prometheus scrape.
* ``python -m repro top`` refreshes a terminal dashboard of key gauges
  and counter *rates* computed between consecutive snapshots.

The module also ships :func:`parse_exposition` / :func:`validate`, a
deliberately strict parser for the subset this renderer emits.  CI runs
every export through it: family blocks must be typed before sampled,
counter samples must carry the ``_total`` suffix, histogram buckets must
be cumulative and non-decreasing with a ``+Inf`` bucket equal to
``_count``, and the document must end in ``# EOF``.  A renderer bug
becomes a red build, not a silently garbled scrape.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, TextIO

from . import metrics as obs_metrics

#: exposition content type (what ``--serve`` answers with)
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _format_value(value: float | int) -> str:
    if isinstance(value, bool):  # bool is an int; nobody wants "True"
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Label-value escaping per the exposition spec."""
    return (value.replace("\\", "\\\\")
                 .replace("\"", "\\\"")
                 .replace("\n", "\\n"))


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _exemplar_text(exemplar: tuple[float, str, str] | None) -> str:
    if exemplar is None:
        return ""
    value, trace_id, span_id = exemplar
    return (f' # {{trace_id="{_escape_label(trace_id)}"'
            f',span_id="{_escape_label(span_id)}"}} {_format_value(value)}')


def _group_by_family(table: dict[str, Any]) -> dict[str, list[tuple[dict, Any]]]:
    """Group series keys by metric family name, decoding key labels."""
    families: dict[str, list[tuple[dict, Any]]] = {}
    for key in sorted(table):
        name, labels = obs_metrics.parse_metric_key(key)
        families.setdefault(name, []).append((labels, table[key]))
    return families


def render(registry: "obs_metrics.MetricsRegistry | None" = None) -> str:
    """The whole registry in OpenMetrics text format (ends in ``# EOF``)."""
    reg = registry if registry is not None else obs_metrics.registry()
    counters, gauges, histograms = reg.series()
    lines: list[str] = []

    for name, series in _group_by_family(counters).items():
        lines.append(f"# TYPE {name} counter")
        lines.append(f"# HELP {name} repro counter {name}")
        for labels, c in series:
            lines.append(
                f"{name}_total{_labels_text(labels)} {_format_value(c.value)}")

    for name, series in _group_by_family(gauges).items():
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"# HELP {name} repro gauge {name}")
        for labels, g in series:
            lines.append(
                f"{name}{_labels_text(labels)} {_format_value(g.value)}")

    for name, series in _group_by_family(histograms).items():
        lines.append(f"# TYPE {name} histogram")
        lines.append(f"# HELP {name} repro histogram {name}")
        for labels, h in series:
            counts = h.bucket_counts()
            exemplars = h.exemplars()
            cumulative = 0
            for i, bucket_count in enumerate(counts):
                cumulative += bucket_count
                le = ("+Inf" if i == len(obs_metrics.BUCKET_BOUNDS)
                      else _format_value(obs_metrics.BUCKET_BOUNDS[i]))
                bucket_labels = dict(labels)
                bucket_labels["le"] = le
                lines.append(
                    f"{name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                    f"{_exemplar_text(exemplars.get(i))}")
            lines.append(
                f"{name}_sum{_labels_text(labels)} {_format_value(h.sum)}")
            lines.append(
                f"{name}_count{_labels_text(labels)} {h.count}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Strict parsing / validation (the CI gate)
# ---------------------------------------------------------------------------


@dataclass
class Sample:
    """One parsed sample line."""

    name: str
    labels: dict[str, str]
    value: float
    exemplar: "dict[str, Any] | None" = None


@dataclass
class Family:
    """One parsed metric family (``# TYPE`` block)."""

    name: str
    type: str
    samples: list[Sample] = field(default_factory=list)


def _parse_labels(body: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.index("=", i)
        key = body[i:eq]
        if not key or body[eq + 1] != '"':
            raise ValueError(f"malformed label block {body!r}")
        j = eq + 2
        out: list[str] = []
        while True:
            if j >= n:
                raise ValueError(f"unterminated label value in {body!r}")
            ch = body[j]
            if ch == "\\":
                nxt = body[j + 1] if j + 1 < n else ""
                decoded = {"\\": "\\", '"': '"', "n": "\n"}.get(nxt)
                if decoded is None:
                    raise ValueError(f"bad escape \\{nxt} in {body!r}")
                out.append(decoded)
                j += 2
            elif ch == '"':
                j += 1
                break
            else:
                out.append(ch)
                j += 1
        labels[key] = "".join(out)
        if j < n:
            if body[j] != ",":
                raise ValueError(f"expected ',' in label block {body!r}")
            j += 1
        i = j
    return labels


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _split_name_labels(sample: str) -> tuple[str, dict[str, str], str]:
    """``name{labels} value`` → (name, labels, value-text)."""
    if "{" in sample:
        brace = sample.index("{")
        close = sample.rindex("}")
        name = sample[:brace]
        labels = _parse_labels(sample[brace + 1:close])
        rest = sample[close + 1:].strip()
    else:
        name, _, rest = sample.partition(" ")
        labels = {}
        rest = rest.strip()
    if not name or not rest:
        raise ValueError(f"malformed sample line {sample!r}")
    return name, labels, rest


def parse_exposition(text: str) -> dict[str, Family]:
    """Parse (strictly) the subset of OpenMetrics :func:`render` emits.

    Raises :class:`ValueError` with a line-numbered message on the first
    structural violation.  Returns families keyed by metric name.
    """
    families: dict[str, Family] = {}
    current: Family | None = None
    lines = text.split("\n")
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a trailing newline")
    saw_eof = False
    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, mtype = rest.partition(" ")
            if mtype not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: unknown type {mtype!r}")
            if name in families:
                raise ValueError(f"line {lineno}: duplicate family {name!r}")
            current = Family(name=name, type=mtype)
            families[name] = current
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            if current is None or name != current.name:
                raise ValueError(
                    f"line {lineno}: HELP outside its TYPE block")
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unexpected comment {line!r}")

        # sample line, possibly with an exemplar suffix
        exemplar = None
        body = line
        if " # " in line:
            body, _, ex = line.partition(" # ")
            if not ex.startswith("{"):
                raise ValueError(f"line {lineno}: malformed exemplar {ex!r}")
            close = ex.rindex("}")
            ex_labels = _parse_labels(ex[1:close])
            ex_value = _parse_number(ex[close + 1:].strip())
            exemplar = {"labels": ex_labels, "value": ex_value}
        name, labels, value_text = _split_name_labels(body)
        value = _parse_number(value_text)
        if current is None:
            raise ValueError(f"line {lineno}: sample before any # TYPE")
        base = current.name
        if current.type == "counter":
            if name != f"{base}_total":
                raise ValueError(
                    f"line {lineno}: counter sample must be {base}_total")
            if value < 0:
                raise ValueError(f"line {lineno}: negative counter")
        elif current.type == "gauge":
            if name != base:
                raise ValueError(
                    f"line {lineno}: gauge sample {name!r} outside {base!r}")
        else:  # histogram
            if name not in (f"{base}_bucket", f"{base}_sum", f"{base}_count"):
                raise ValueError(
                    f"line {lineno}: {name!r} not a histogram sample of {base!r}")
            if name == f"{base}_bucket" and "le" not in labels:
                raise ValueError(f"line {lineno}: bucket without le label")
            if exemplar is not None and name != f"{base}_bucket":
                raise ValueError(
                    f"line {lineno}: exemplar outside a bucket sample")
        current.samples.append(
            Sample(name=name, labels=labels, value=value, exemplar=exemplar))
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    _check_histograms(families)
    return families


def _series_key(labels: dict[str, str], *, drop: Iterable[str] = ()) -> tuple:
    return tuple(sorted((k, v) for k, v in labels.items() if k not in drop))


def _check_histograms(families: dict[str, Family]) -> None:
    for fam in families.values():
        if fam.type != "histogram":
            continue
        buckets: dict[tuple, list[tuple[float, float]]] = {}
        sums: dict[tuple, float] = {}
        counts: dict[tuple, float] = {}
        for s in fam.samples:
            if s.name.endswith("_bucket"):
                key = _series_key(s.labels, drop=("le",))
                buckets.setdefault(key, []).append(
                    (_parse_number(s.labels["le"]), s.value))
            elif s.name.endswith("_sum"):
                sums[_series_key(s.labels)] = s.value
            else:
                counts[_series_key(s.labels)] = s.value
        for key, series in buckets.items():
            les = [le for le, _ in series]
            if les != sorted(les):
                raise ValueError(f"{fam.name}: bucket le values not sorted")
            values = [v for _, v in series]
            if any(b < a for a, b in zip(values, values[1:])):
                raise ValueError(f"{fam.name}: bucket counts not cumulative")
            if not les or not math.isinf(les[-1]):
                raise ValueError(f"{fam.name}: missing +Inf bucket")
            if key not in counts or key not in sums:
                raise ValueError(f"{fam.name}: missing _sum/_count series")
            if values[-1] != counts[key]:
                raise ValueError(
                    f"{fam.name}: +Inf bucket {values[-1]} != count {counts[key]}")


def validate(text: str) -> dict[str, Family]:
    """Alias of :func:`parse_exposition` — the round-trip CI gate."""
    return parse_exposition(text)


def exemplar_count(families: dict[str, Family]) -> int:
    """How many bucket samples carry an exemplar (CI acceptance bar)."""
    return sum(
        1 for fam in families.values() for s in fam.samples
        if s.exemplar is not None)


# ---------------------------------------------------------------------------
# --serve: a scrape endpoint over the same renderer
# ---------------------------------------------------------------------------


def serve(port: int, *, registry: "obs_metrics.MetricsRegistry | None" = None,
          ready: "threading.Event | None" = None) -> None:
    """Serve ``/metrics`` until interrupted (Ctrl-C returns cleanly)."""
    server = make_server(port, registry=registry)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def make_server(port: int,
                *, registry: "obs_metrics.MetricsRegistry | None" = None):
    """A ``ThreadingHTTPServer`` answering ``/metrics`` with :func:`render`.

    Split from :func:`serve` so tests can drive the server from a thread
    and shut it down deterministically.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
            if self.path.split("?")[0] not in ("/metrics", "/"):
                self.send_error(404, "try /metrics")
                return
            payload = render(registry).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, *args: Any) -> None:  # quiet by default
            pass

    return ThreadingHTTPServer(("127.0.0.1", port), Handler)


# ---------------------------------------------------------------------------
# `repro top`: a live terminal view of gauges and counter rates
# ---------------------------------------------------------------------------


def render_top(
    snap: dict, prev: "dict | None", dt_s: float, *, width: int = 72,
) -> str:
    """One frame of the live view: gauges, counter rates, histogram p50/p99.

    Pure text in, text out — the CLI adds the screen clearing; tests call
    this directly with canned snapshots.
    """
    lines: list[str] = []
    title = "repro top"
    lines.append(f"{title} — {len(snap['counters'])} counters, "
                 f"{len(snap['gauges'])} gauges, "
                 f"{len(snap['histograms'])} histograms")
    lines.append("-" * width)

    if snap["gauges"]:
        lines.append("gauges:")
        for key, value in sorted(snap["gauges"].items()):
            lines.append(f"  {key:<48} {value:>14.6g}")

    if snap["counters"]:
        lines.append("counters (value, rate/s):")
        prev_counters = (prev or {}).get("counters", {})
        for key, value in sorted(snap["counters"].items()):
            rate = 0.0
            if prev is not None and dt_s > 0:
                rate = (value - prev_counters.get(key, 0)) / dt_s
            lines.append(f"  {key:<48} {value:>10} {rate:>10.2f}/s")

    if snap["histograms"]:
        lines.append("histograms (count, mean, max):")
        for key, h in sorted(snap["histograms"].items()):
            lines.append(
                f"  {key:<48} {h['count']:>8} {h['mean']:>12.6g} "
                f"{h['max'] if h['max'] is not None else float('nan'):>12.6g}")
    return "\n".join(lines) + "\n"


def run_top(
    *, interval_s: float = 1.0, iterations: int | None = None,
    stream: "TextIO | None" = None,
    snapshot_fn: "Callable[[], dict] | None" = None,
    clear: bool = True,
    stop_when: "Callable[[], bool] | None" = None,
) -> int:
    """Drive the live view: snapshot, render, sleep, repeat.

    ``iterations=None`` runs until Ctrl-C (or until ``stop_when()``
    returns true — the CLI uses it to exit once a ``--run`` workload
    finishes, after one final frame).  Returns the frame count (so the
    CLI exit path and tests can assert progress).
    """
    import sys

    out = stream if stream is not None else sys.stdout
    snap_fn = snapshot_fn if snapshot_fn is not None else obs_metrics.snapshot
    prev: dict | None = None
    prev_t = time.monotonic()
    frames = 0
    stop_next = False
    try:
        while iterations is None or frames < iterations:
            snap = snap_fn()
            now = time.monotonic()
            frame = render_top(snap, prev, now - prev_t)
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(frame)
            out.flush()
            prev, prev_t = snap, now
            frames += 1
            if stop_next or (iterations is not None and frames >= iterations):
                break
            # render one last frame after the workload ends so the final
            # numbers are on screen
            stop_next = stop_when is not None and stop_when()
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames
