"""Observability layer: tracing, metrics and structured logging.

Everything the paper claims rests on measurement — instruction mixes
(Fig. 1/3), profile runs (Sec. 4.5), per-layer speedups (Fig. 7-9) — so
the reproduction carries its own instrumentation:

* :mod:`repro.obs.trace` — a span-based tracer (``trace.span("autotune",
  bits=4)`` context managers, nestable, thread-safe) exporting Chrome
  ``trace_event`` JSON viewable in ``chrome://tracing`` / Perfetto.
  Without a tracer installed (``trace.capture()``, ``python -m repro
  profile``) spans are not collected per-run, but they still land in the
  flight recorder below; with *both* off, ``span()`` returns a shared
  null context manager and hot paths pay two global reads;
* :mod:`repro.obs.flight` — the always-on bounded ring-buffer **flight
  recorder** (``REPRO_FLIGHT=0`` to disable): every span and structured
  instant event from any thread or worker lands in one process-wide ring
  carrying ``TraceContext`` ids, so ``python -m repro flight --dump``
  can export the last N seconds as a parent-linked Chrome trace *after*
  something interesting happened;
* :mod:`repro.obs.sampler` — a deterministic-interval wall-clock stack
  sampler (``bench/profile --profile-sample``) producing collapsed
  stacks and flamegraph SVGs for the time spans don't cover;
* :mod:`repro.obs.export` — OpenMetrics/Prometheus text exposition of
  the metrics registry with span-id exemplars (``python -m repro
  metrics-export [--serve PORT]``) plus the ``python -m repro top``
  live terminal view, validated by a strict in-repo parser;
* :mod:`repro.obs.metrics` — a process-wide registry of labeled counters,
  gauges and histograms.  Coarse, always-on events (cache hits/misses,
  autotune candidates evaluated/pruned, per-layer cycle gauges) cost one
  dict update each; per-candidate detail (bound gaps, worker timings) is
  gated on :func:`trace.active` so the disabled path stays free;
* :mod:`repro.obs.log` — an env-gated structured logger
  (``REPRO_LOG=debug|info|warning``) that turns the library's silent
  degradation paths (corrupt cache entries, stale persisted results,
  executor fallbacks) into key=value events on stderr.  Without the env
  var set, records still propagate to :mod:`logging` (so tests and host
  applications can capture them) but nothing is printed.

Derived analytics build on those primitives:

* :mod:`repro.obs.roofline` — per-layer arithmetic intensity and
  %-of-roof from the backend cost models, the Fig. 1 CAL/LD ratio and
  the Sec. 3.3 accumulation-chain overhead as live gauges;
* :mod:`repro.obs.history` — the append-only JSONL ledger ``bench
  --save`` writes (schema v3: git sha, machine fingerprint, per-figure
  cycles, wall clock, metrics);
* :mod:`repro.obs.regress` — ``python -m repro regress``, the CI
  perf-regression sentinel over that ledger (cycles bit-identical, wall
  clock within a noise-aware median threshold; ``--attribute`` explains
  failures via the diff engine below);
* :mod:`repro.obs.diff` — differential profiling (``python -m repro
  diff A B``): ranked attribution between two runs — tree-aligned span
  deltas, wall-clock phase deltas, counter/histogram deltas, ledger
  changepoint detection, and the red/blue differential flamegraph;
* :mod:`repro.obs.htmlreport` — the self-contained ``python -m repro
  report --html`` dashboard (roofline scatter, chain-overhead bars,
  ledger trends, attribution card; no external assets).

The text reporting surface is ``python -m repro profile <figure|model>``
(:mod:`repro.obs.report`), which runs one artifact under a fresh tracer +
metrics window and emits a text summary plus ``--trace``/``--metrics``
JSON files.
"""

from __future__ import annotations

from . import export, flight, log, metrics, sampler, trace
from .trace import Tracer, active, capture, span

__all__ = [
    "trace",
    "metrics",
    "log",
    "flight",
    "sampler",
    "export",
    "Tracer",
    "active",
    "capture",
    "span",
]
