"""Perf-regression verdicts over the bench ledger: ``repro regress``.

Compares the newest ledger entry (the *candidate*) against a baseline
entry (default: the newest earlier run with the same model/batch/kind,
preferring the same machine fingerprint) on two signals:

* **deterministic** — per-figure model cycles and figure series must be
  *bit-identical*: the cost models are pure functions of code + spec, so
  any drift is a real behavior change, never noise;
* **wall-clock** — inherently noisy, so each phase's seconds are checked
  against a noise-aware threshold: the median of up to N prior runs
  (same fingerprint), widened by the larger of a flat tolerance and the
  observed inter-quartile spread of those runs
  (:meth:`repro.obs.metrics.Histogram.percentile` does the medians).

Exit codes (the single source of truth, also surfaced in ``--json``
output and README): **0** clean, **1** regression (any cycle mismatch;
wall overruns unless ``check_wall`` is off), **2** unusable ledger
(fewer than two comparable runs, or a config mismatch).

With ``--attribute`` a failing run doesn't stop at the verdict: the
:mod:`repro.obs.diff` engine attributes the drift — ranked per-phase
deltas, metrics deltas and ledger changepoints between baseline and
candidate (deterministic, byte-stable given the same ledger), plus an
optional freshly collected trace+sample hot-spot table showing where
the candidate's time goes *now* (``--no-collect`` skips it; CI does,
for reproducible artifacts).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Sequence

from . import metrics as obs_metrics
from .history import BenchLedger

#: prior runs folded into the wall-clock median window
DEFAULT_WALL_WINDOW = 5
#: flat wall-clock tolerance (fraction over the baseline median)
DEFAULT_WALL_TOLERANCE = 0.5


@dataclass(frozen=True)
class Verdict:
    """One comparison row of the regression table."""

    key: str
    kind: str  #: "cycles" | "series" | "wall" | "provenance"
    ok: bool
    detail: str
    #: a failed verdict that counts toward the exit code (wall overruns
    #: can be demoted to advisory with check_wall=False)
    regression: bool = False

    def as_dict(self) -> dict:
        return {"key": self.key, "kind": self.kind, "ok": self.ok,
                "regression": self.regression, "detail": self.detail}


@dataclass
class RegressReport:
    baseline_id: str
    candidate_id: str
    verdicts: list[Verdict]

    @property
    def regressed(self) -> bool:
        return any(v.regression for v in self.verdicts)

    def table(self) -> list[str]:
        lines = [f"  {'check':<42} {'verdict':<6} detail"]
        for v in self.verdicts:
            status = "OK" if v.ok else ("FAIL" if v.regression else "WARN")
            lines.append(f"  {v.key:<42} {status:<6} {v.detail}")
        return lines

    def as_dict(self) -> dict:
        return {
            "baseline": self.baseline_id,
            "candidate": self.candidate_id,
            "regressed": self.regressed,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


def _first_diff(a: dict, b: dict) -> str:
    """Human-sized description of the first difference between two dicts."""
    for key in sorted(set(a) | set(b)):
        if key not in a:
            return f"{key!r} only in candidate"
        if key not in b:
            return f"{key!r} only in baseline"
        if a[key] != b[key]:
            return f"{key!r}: {a[key]!r} -> {b[key]!r}"
    return "(identical)"


def _exact_verdict(key: str, kind: str, base: dict, cand: dict) -> Verdict:
    if base == cand:
        return Verdict(key, kind, ok=True,
                       detail=f"bit-identical ({len(cand)} keys)")
    return Verdict(key, kind, ok=False, regression=True,
                   detail=f"MISMATCH at {_first_diff(base, cand)}")


def _wall_verdicts(
    baseline: dict,
    candidate: dict,
    window: Sequence[dict],
    *,
    tolerance: float,
    check_wall: bool,
) -> list[Verdict]:
    out: list[Verdict] = []
    base_wall = baseline.get("wall_seconds", {})
    cand_wall = candidate.get("wall_seconds", {})
    for key in sorted(base_wall):
        if key not in cand_wall:
            continue
        hist = obs_metrics.Histogram()
        for entry in window:
            sample = entry.get("wall_seconds", {}).get(key)
            if isinstance(sample, (int, float)) and sample > 0:
                hist.observe(float(sample))
        if hist.count == 0:
            hist.observe(float(base_wall[key]))
        median = hist.percentile(50.0)
        spread = ((hist.percentile(75.0) - hist.percentile(25.0)) / median
                  if median else 0.0)
        threshold = median * (1.0 + max(tolerance, spread))
        value = float(cand_wall[key])
        delta = (value - median) / median if median else 0.0
        ok = value <= threshold
        obs_metrics.gauge("regress_wall_delta", phase=key).set(delta)
        out.append(Verdict(
            key=f"wall {key}",
            kind="wall",
            ok=ok,
            regression=(not ok) and check_wall,
            detail=(f"{value:.3f}s vs median {median:.3f}s "
                    f"of {hist.count} run(s) ({delta:+.1%}, "
                    f"threshold +{max(tolerance, spread):.0%})"),
        ))
    return out


def _config_key(entry: dict) -> tuple:
    return (entry.get("kind"), entry.get("model"), entry.get("batch"),
            tuple(entry.get("backends", ())))


def _pick_baseline(entries: list[dict], candidate: dict,
                   selector: str | None) -> dict | None:
    """Resolve the baseline entry among everything older than candidate."""
    if selector is not None:
        for entry in reversed(entries):
            if (entry.get("run_id", "").startswith(selector)
                    or (entry.get("git_sha") or "").startswith(selector)):
                return entry
        return None
    comparable = [e for e in entries if _config_key(e) == _config_key(candidate)]
    same_fp = [e for e in comparable
               if e.get("fingerprint") == candidate.get("fingerprint")]
    pool = same_fp or comparable
    return pool[-1] if pool else None


def compare_entries(
    baseline: dict,
    candidate: dict,
    *,
    window: Sequence[dict] = (),
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    check_wall: bool = True,
) -> RegressReport:
    """Build the verdict table for one baseline/candidate pair."""
    verdicts: list[Verdict] = []
    if baseline.get("fingerprint") != candidate.get("fingerprint"):
        verdicts.append(Verdict(
            "machine fingerprint", "provenance", ok=False, regression=False,
            detail=(f"{baseline.get('fingerprint')} -> "
                    f"{candidate.get('fingerprint')} (code or machine "
                    f"changed; cycle mismatches may be intentional)"),
        ))
    verdicts.append(_exact_verdict(
        "model cycles", "cycles",
        baseline.get("model_cycles", {}), candidate.get("model_cycles", {}),
    ))
    base_figs = baseline.get("figures", {})
    cand_figs = candidate.get("figures", {})
    for fig in sorted(set(base_figs) | set(cand_figs)):
        verdicts.append(_exact_verdict(
            f"figure {fig}", "series",
            base_figs.get(fig, {}), cand_figs.get(fig, {}),
        ))
    verdicts.extend(_wall_verdicts(
        baseline, candidate, window,
        tolerance=wall_tolerance, check_wall=check_wall,
    ))
    report = RegressReport(
        baseline_id=baseline.get("run_id", "?"),
        candidate_id=candidate.get("run_id", "?"),
        verdicts=verdicts,
    )
    obs_metrics.counter(
        "regress_runs", outcome="regressed" if report.regressed else "clean"
    ).inc()
    return report


def _json_doc(exit_code: int, *, error: str | None = None,
              report: RegressReport | None = None,
              attribution: dict | None = None,
              fresh: dict | None = None) -> str:
    """The ``--json`` document: verdicts + exit-code semantics in one
    machine-readable object (sorted keys, compact, byte-stable for a
    fixed ledger)."""
    doc: dict = {
        "schema": 1,
        "exit_code": exit_code,
        "exit_codes": {"0": "clean", "1": "regression",
                       "2": "unusable ledger"},
    }
    if error is not None:
        doc["error"] = error
    if report is not None:
        doc.update(report.as_dict())
    if attribution is not None:
        doc["attribution"] = attribution
    if fresh is not None:
        doc["fresh_profile"] = fresh
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _fresh_profile_section(*, model: str, batch: int, top: int) -> tuple[dict, list[str]]:
    """Collect a fresh trace+sample pair and reduce it to hot-spot tables
    (top self-time span paths, top leaf frames).  Wall-clock content —
    nondeterministic by nature, never part of the byte-stable sections."""
    from . import diff as obs_diff

    spans, stacks = obs_diff.collect_fresh_profile(model, batch)
    agg = obs_diff.aggregate_spans(spans)
    top_spans = sorted(agg.items(),
                       key=lambda kv: (-kv[1]["self_us"], kv[0]))[:top]
    total = sum(stacks.values()) or 1
    leaf: dict[str, int] = {}
    for stack, n in stacks.items():
        frame = stack.rsplit(";", 1)[-1]
        leaf[frame] = leaf.get(frame, 0) + n
    top_frames = sorted(leaf.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    doc = {
        "spans": [{"path": p, "count": v["count"],
                   "self_us": round(v["self_us"], 1)} for p, v in top_spans],
        "frames": [{"frame": f, "samples": n, "share": round(n / total, 4)}
                   for f, n in top_frames],
        "samples": sum(stacks.values()),
    }
    lines = ["  fresh candidate profile (hot spots now):"]
    for p, v in top_spans[:5]:
        label = p if len(p) <= 60 else "…" + p[-59:]
        lines.append(f"    {label:<60} {v['self_us'] / 1e3:>9.3f} ms self "
                     f"(x{v['count']})")
    for f, n in top_frames[:5]:
        label = f if len(f) <= 60 else "…" + f[-59:]
        lines.append(f"    {label:<60} {n / total:>8.1%} of "
                     f"{doc['samples']} samples")
    return doc, lines


def run_regress(
    *,
    history_dir: str | os.PathLike | None = None,
    baseline: str | None = None,
    wall_window: int = DEFAULT_WALL_WINDOW,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    check_wall: bool = True,
    json_out: bool = False,
    attribute: bool = False,
    attribute_top: int = 10,
    collect: bool = True,
    echo: Callable[[str], None] = print,
) -> int:
    """Compare the ledger's newest run against a baseline; returns the
    process exit code (0 clean / 1 regression / 2 unusable ledger).

    ``json_out`` replaces the text table with one machine-readable JSON
    object (always emitted, even on exit 2).  ``attribute`` runs the
    :mod:`repro.obs.diff` attribution when the verdict fails —
    deterministic ledger-derived sections always, plus a freshly
    collected candidate hot-spot profile unless ``collect`` is False.
    """
    ledger = BenchLedger(history_dir)
    entries = ledger.entries()
    if len(entries) < 2:
        msg = (f"regress: need at least 2 ledger entries in {ledger.path}, "
               f"found {len(entries)} (run `repro bench --save` twice)")
        echo(_json_doc(2, error=msg) if json_out else msg)
        return 2
    candidate = entries[-1]
    older = entries[:-1]
    base = _pick_baseline(older, candidate, baseline)
    if base is None:
        msg = (f"regress: no comparable baseline for candidate "
               f"{candidate.get('run_id', '?')} "
               f"(selector {baseline!r})" if baseline else
               f"regress: no baseline matches the candidate's config")
        echo(_json_doc(2, error=msg) if json_out else msg)
        return 2
    window = [e for e in older
              if _config_key(e) == _config_key(candidate)
              and e.get("fingerprint") == candidate.get("fingerprint")
              ][-wall_window:]
    report = compare_entries(
        base, candidate, window=window,
        wall_tolerance=wall_tolerance, check_wall=check_wall,
    )
    exit_code = 1 if report.regressed else 0

    attrib_report = None
    attribution = None
    fresh_doc = None
    fresh_lines: list[str] = []
    if attribute and report.regressed:
        from . import diff as obs_diff

        attrib_report = obs_diff.attribute_entries(
            base, candidate, ledger_entries=entries)
        attribution = attrib_report.as_dict(top=attribute_top)
        if collect:
            try:
                fresh_doc, fresh_lines = _fresh_profile_section(
                    model=candidate.get("model", "resnet50"),
                    batch=int(candidate.get("batch", 1)),
                    top=attribute_top,
                )
            except Exception as exc:  # attribution must never mask the verdict
                fresh_lines = [f"  (fresh profile collection failed: "
                               f"{type(exc).__name__}: {exc})"]

    if json_out:
        echo(_json_doc(exit_code, report=report,
                       attribution=attribution, fresh=fresh_doc))
        return exit_code

    echo(f"== regress: candidate {report.candidate_id} "
         f"vs baseline {report.baseline_id} ==")
    for line in report.table():
        echo(line)
    if attrib_report is not None:
        echo(f"== attribution: {report.baseline_id} -> "
             f"{report.candidate_id} (top {attribute_top}) ==")
        for line in attrib_report.table(top=attribute_top):
            echo(line)
        for line in fresh_lines:
            echo(line)
    if report.regressed:
        echo("regress: REGRESSION detected")
        return 1
    echo("regress: clean")
    return 0
