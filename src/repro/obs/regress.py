"""Perf-regression verdicts over the bench ledger: ``repro regress``.

Compares the newest ledger entry (the *candidate*) against a baseline
entry (default: the newest earlier run with the same model/batch/kind,
preferring the same machine fingerprint) on two signals:

* **deterministic** — per-figure model cycles and figure series must be
  *bit-identical*: the cost models are pure functions of code + spec, so
  any drift is a real behavior change, never noise;
* **wall-clock** — inherently noisy, so each phase's seconds are checked
  against a noise-aware threshold: the median of up to N prior runs
  (same fingerprint), widened by the larger of a flat tolerance and the
  observed inter-quartile spread of those runs
  (:meth:`repro.obs.metrics.Histogram.percentile` does the medians).

Exit codes: 0 clean, 1 regression (any cycle mismatch; wall overruns
unless ``check_wall`` is off), 2 unusable ledger (fewer than two
comparable runs, or a config mismatch).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

from . import metrics as obs_metrics
from .history import BenchLedger

#: prior runs folded into the wall-clock median window
DEFAULT_WALL_WINDOW = 5
#: flat wall-clock tolerance (fraction over the baseline median)
DEFAULT_WALL_TOLERANCE = 0.5


@dataclass(frozen=True)
class Verdict:
    """One comparison row of the regression table."""

    key: str
    kind: str  #: "cycles" | "series" | "wall" | "provenance"
    ok: bool
    detail: str
    #: a failed verdict that counts toward the exit code (wall overruns
    #: can be demoted to advisory with check_wall=False)
    regression: bool = False


@dataclass
class RegressReport:
    baseline_id: str
    candidate_id: str
    verdicts: list[Verdict]

    @property
    def regressed(self) -> bool:
        return any(v.regression for v in self.verdicts)

    def table(self) -> list[str]:
        lines = [f"  {'check':<42} {'verdict':<6} detail"]
        for v in self.verdicts:
            status = "OK" if v.ok else ("FAIL" if v.regression else "WARN")
            lines.append(f"  {v.key:<42} {status:<6} {v.detail}")
        return lines


def _first_diff(a: dict, b: dict) -> str:
    """Human-sized description of the first difference between two dicts."""
    for key in sorted(set(a) | set(b)):
        if key not in a:
            return f"{key!r} only in candidate"
        if key not in b:
            return f"{key!r} only in baseline"
        if a[key] != b[key]:
            return f"{key!r}: {a[key]!r} -> {b[key]!r}"
    return "(identical)"


def _exact_verdict(key: str, kind: str, base: dict, cand: dict) -> Verdict:
    if base == cand:
        return Verdict(key, kind, ok=True,
                       detail=f"bit-identical ({len(cand)} keys)")
    return Verdict(key, kind, ok=False, regression=True,
                   detail=f"MISMATCH at {_first_diff(base, cand)}")


def _wall_verdicts(
    baseline: dict,
    candidate: dict,
    window: Sequence[dict],
    *,
    tolerance: float,
    check_wall: bool,
) -> list[Verdict]:
    out: list[Verdict] = []
    base_wall = baseline.get("wall_seconds", {})
    cand_wall = candidate.get("wall_seconds", {})
    for key in sorted(base_wall):
        if key not in cand_wall:
            continue
        hist = obs_metrics.Histogram()
        for entry in window:
            sample = entry.get("wall_seconds", {}).get(key)
            if isinstance(sample, (int, float)) and sample > 0:
                hist.observe(float(sample))
        if hist.count == 0:
            hist.observe(float(base_wall[key]))
        median = hist.percentile(50.0)
        spread = ((hist.percentile(75.0) - hist.percentile(25.0)) / median
                  if median else 0.0)
        threshold = median * (1.0 + max(tolerance, spread))
        value = float(cand_wall[key])
        delta = (value - median) / median if median else 0.0
        ok = value <= threshold
        obs_metrics.gauge("regress_wall_delta", phase=key).set(delta)
        out.append(Verdict(
            key=f"wall {key}",
            kind="wall",
            ok=ok,
            regression=(not ok) and check_wall,
            detail=(f"{value:.3f}s vs median {median:.3f}s "
                    f"of {hist.count} run(s) ({delta:+.1%}, "
                    f"threshold +{max(tolerance, spread):.0%})"),
        ))
    return out


def _config_key(entry: dict) -> tuple:
    return (entry.get("kind"), entry.get("model"), entry.get("batch"),
            tuple(entry.get("backends", ())))


def _pick_baseline(entries: list[dict], candidate: dict,
                   selector: str | None) -> dict | None:
    """Resolve the baseline entry among everything older than candidate."""
    if selector is not None:
        for entry in reversed(entries):
            if (entry.get("run_id", "").startswith(selector)
                    or (entry.get("git_sha") or "").startswith(selector)):
                return entry
        return None
    comparable = [e for e in entries if _config_key(e) == _config_key(candidate)]
    same_fp = [e for e in comparable
               if e.get("fingerprint") == candidate.get("fingerprint")]
    pool = same_fp or comparable
    return pool[-1] if pool else None


def compare_entries(
    baseline: dict,
    candidate: dict,
    *,
    window: Sequence[dict] = (),
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    check_wall: bool = True,
) -> RegressReport:
    """Build the verdict table for one baseline/candidate pair."""
    verdicts: list[Verdict] = []
    if baseline.get("fingerprint") != candidate.get("fingerprint"):
        verdicts.append(Verdict(
            "machine fingerprint", "provenance", ok=False, regression=False,
            detail=(f"{baseline.get('fingerprint')} -> "
                    f"{candidate.get('fingerprint')} (code or machine "
                    f"changed; cycle mismatches may be intentional)"),
        ))
    verdicts.append(_exact_verdict(
        "model cycles", "cycles",
        baseline.get("model_cycles", {}), candidate.get("model_cycles", {}),
    ))
    base_figs = baseline.get("figures", {})
    cand_figs = candidate.get("figures", {})
    for fig in sorted(set(base_figs) | set(cand_figs)):
        verdicts.append(_exact_verdict(
            f"figure {fig}", "series",
            base_figs.get(fig, {}), cand_figs.get(fig, {}),
        ))
    verdicts.extend(_wall_verdicts(
        baseline, candidate, window,
        tolerance=wall_tolerance, check_wall=check_wall,
    ))
    report = RegressReport(
        baseline_id=baseline.get("run_id", "?"),
        candidate_id=candidate.get("run_id", "?"),
        verdicts=verdicts,
    )
    obs_metrics.counter(
        "regress_runs", outcome="regressed" if report.regressed else "clean"
    ).inc()
    return report


def run_regress(
    *,
    history_dir: str | os.PathLike | None = None,
    baseline: str | None = None,
    wall_window: int = DEFAULT_WALL_WINDOW,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    check_wall: bool = True,
    echo: Callable[[str], None] = print,
) -> int:
    """Compare the ledger's newest run against a baseline; returns the
    process exit code (0 clean / 1 regression / 2 unusable ledger)."""
    ledger = BenchLedger(history_dir)
    entries = ledger.entries()
    if len(entries) < 2:
        echo(f"regress: need at least 2 ledger entries in {ledger.path}, "
             f"found {len(entries)} (run `repro bench --save` twice)")
        return 2
    candidate = entries[-1]
    older = entries[:-1]
    base = _pick_baseline(older, candidate, baseline)
    if base is None:
        echo(f"regress: no comparable baseline for candidate "
             f"{candidate.get('run_id', '?')} "
             f"(selector {baseline!r})" if baseline else
             f"regress: no baseline matches the candidate's config")
        return 2
    window = [e for e in older
              if _config_key(e) == _config_key(candidate)
              and e.get("fingerprint") == candidate.get("fingerprint")
              ][-wall_window:]
    report = compare_entries(
        base, candidate, window=window,
        wall_tolerance=wall_tolerance, check_wall=check_wall,
    )
    echo(f"== regress: candidate {report.candidate_id} "
         f"vs baseline {report.baseline_id} ==")
    for line in report.table():
        echo(line)
    if report.regressed:
        echo("regress: REGRESSION detected")
        return 1
    echo("regress: clean")
    return 0
