"""Core value types shared by every subsystem.

The central object is :class:`ConvSpec` — a complete static description of a
convolution layer (shapes, stride, padding, batch). Both architecture
backends, the analytic models and the workload tables all speak ConvSpec.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Tuple

from .errors import ShapeError


class Layout(enum.Enum):
    """Activation tensor memory layout.

    The paper uses NCHW on ARM CPU and NHWC on NVIDIA GPU (Sec. 5.1).
    """

    NCHW = "NCHW"
    NHWC = "NHWC"


def _pair(v: int | Tuple[int, int]) -> Tuple[int, int]:
    if isinstance(v, tuple):
        if len(v) != 2:
            raise ShapeError(f"expected 2-tuple, got {v!r}")
        return (int(v[0]), int(v[1]))
    return (int(v), int(v))


@dataclass(frozen=True)
class ConvSpec:
    """Static description of a 2-D convolution layer.

    Attributes
    ----------
    name:
        Human-readable layer name (e.g. ``"conv14"``).
    in_channels, out_channels:
        Channel counts.
    height, width:
        *Input* spatial size (pre-padding).
    kernel:
        ``(kh, kw)`` filter size.
    stride, padding:
        ``(sh, sw)`` and ``(ph, pw)``; padding is symmetric.
    batch:
        Mini-batch size.
    groups:
        Grouped convolution factor (1 for all paper workloads).
    """

    name: str
    in_channels: int
    out_channels: int
    height: int
    width: int
    kernel: Tuple[int, int] = (3, 3)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    batch: int = 1
    groups: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", _pair(self.kernel))
        object.__setattr__(self, "stride", _pair(self.stride))
        object.__setattr__(self, "padding", _pair(self.padding))
        for attr in ("in_channels", "out_channels", "height", "width", "batch", "groups"):
            v = getattr(self, attr)
            if not isinstance(v, int) or v <= 0:
                raise ShapeError(f"{attr} must be a positive int, got {v!r}")
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        if kh <= 0 or kw <= 0 or sh <= 0 or sw <= 0 or ph < 0 or pw < 0:
            raise ShapeError(f"invalid kernel/stride/padding in {self.name}")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ShapeError(
                f"{self.name}: channels ({self.in_channels}->{self.out_channels}) "
                f"not divisible by groups={self.groups}"
            )
        if self.out_height <= 0 or self.out_width <= 0:
            raise ShapeError(f"{self.name}: non-positive output spatial size")

    # ---- derived geometry -------------------------------------------------

    @property
    def out_height(self) -> int:
        kh, _ = self.kernel
        sh, _ = self.stride
        ph, _ = self.padding
        return (self.height + 2 * ph - kh) // sh + 1

    @property
    def out_width(self) -> int:
        _, kw = self.kernel
        _, sw = self.stride
        _, pw = self.padding
        return (self.width + 2 * pw - kw) // sw + 1

    @property
    def out_spatial(self) -> int:
        return self.out_height * self.out_width

    # ---- GEMM view (explicit-GEMM convolution, Sec. 2.2) ------------------

    @property
    def gemm_m(self) -> int:
        """Rows of the GEMM: output channels."""
        return self.out_channels

    @property
    def gemm_k(self) -> int:
        """Reduction dimension: in_channels/groups * kh * kw."""
        kh, kw = self.kernel
        return (self.in_channels // self.groups) * kh * kw

    @property
    def gemm_n(self) -> int:
        """Columns of the GEMM: output pixels (per image)."""
        return self.out_spatial

    # ---- work / footprint accounting --------------------------------------

    @property
    def macs(self) -> int:
        """Multiply-accumulate count for the full layer (all batch images).

        ``gemm_m`` spans all output channels and ``gemm_k`` is already the
        per-group reduction, so no extra group factor appears.
        """
        return self.batch * self.gemm_m * self.gemm_n * self.gemm_k

    @property
    def input_elems(self) -> int:
        return self.batch * self.in_channels * self.height * self.width

    @property
    def output_elems(self) -> int:
        return self.batch * self.out_channels * self.out_spatial

    @property
    def weight_elems(self) -> int:
        kh, kw = self.kernel
        return self.out_channels * (self.in_channels // self.groups) * kh * kw

    def input_shape(self, layout: Layout = Layout.NCHW) -> Tuple[int, int, int, int]:
        if layout is Layout.NCHW:
            return (self.batch, self.in_channels, self.height, self.width)
        return (self.batch, self.height, self.width, self.in_channels)

    def output_shape(self, layout: Layout = Layout.NCHW) -> Tuple[int, int, int, int]:
        if layout is Layout.NCHW:
            return (self.batch, self.out_channels, self.out_height, self.out_width)
        return (self.batch, self.out_height, self.out_width, self.out_channels)

    def weight_shape(self, layout: Layout = Layout.NCHW) -> Tuple[int, int, int, int]:
        kh, kw = self.kernel
        cin_g = self.in_channels // self.groups
        if layout is Layout.NCHW:
            return (self.out_channels, cin_g, kh, kw)
        return (self.out_channels, kh, kw, cin_g)

    def with_batch(self, batch: int) -> "ConvSpec":
        return replace(self, batch=batch)

    def is_winograd_eligible(self) -> bool:
        """F(2x2, 3x3) winograd applies to 3x3 stride-1 convolutions."""
        return self.kernel == (3, 3) and self.stride == (1, 1) and self.groups == 1

    def describe(self) -> str:
        kh, kw = self.kernel
        sh, sw = self.stride
        return (
            f"{self.name}: {self.in_channels}->{self.out_channels} "
            f"{kh}x{kw}/s{sh} @ {self.height}x{self.width} (batch {self.batch})"
        )


@dataclass(frozen=True)
class GemmShape:
    """Plain (M, K, N) GEMM problem: C[M,N] += A[M,K] @ B[K,N]."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        for attr in ("m", "k", "n"):
            v = getattr(self, attr)
            if not isinstance(v, int) or v <= 0:
                raise ShapeError(f"GemmShape.{attr} must be a positive int, got {v!r}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    @classmethod
    def from_conv(cls, spec: ConvSpec) -> "GemmShape":
        """GEMM problem of the explicit-GEMM convolution for one image."""
        return cls(m=spec.gemm_m, k=spec.gemm_k, n=spec.gemm_n)
