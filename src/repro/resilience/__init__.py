"""Resilience layer: deterministic fault injection, hardened execution,
crash-safe persistence.

The paper's results come from long auto-search sweeps (Sec. 4 / Alg. 2)
and overflow-limited accumulation chains (Sec. 3.3) — precisely the
places a production serving stack fails ungracefully: one bad candidate,
one torn cache write, one out-of-range chain configuration used to abort
the whole run.  This package makes every such path survivable and makes
the failures themselves *reproducible*:

:mod:`repro.resilience.faults`
    A deterministic, env/config-driven fault-injection framework.
    ``inject("autotune.profile", key=digest)`` hooks are wired into named
    sites across the cache, the parallel runner, the bench harness, the
    GPU autotuner, the bench-history ledger and the runtime executor;
    a seeded :class:`FaultPlan` (``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``)
    decides — purely from ``(seed, site, key)`` — whether a call raises,
    delays, corrupts bytes or returns garbage, so chaos runs replay
    bit-identically regardless of thread scheduling.

:mod:`repro.resilience.policy`
    A hardened execution policy: bounded retry with exponential backoff
    (``REPRO_RETRY`` / ``REPRO_BACKOFF_S``), per-call wall-clock timeout
    (``REPRO_TIMEOUT_S``), and a :class:`Quarantine` for inputs that keep
    failing — search sweeps skip quarantined candidates and continue over
    the survivors instead of dying.

:mod:`repro.resilience.atomic`
    Crash-safe persistence: write-temp/fsync/rename for whole files,
    single-``write`` fsynced appends for JSONL, and startup recovery that
    quarantines torn or corrupt files into a ``.quarantine/`` sibling
    instead of raising.

:mod:`repro.resilience.chaos`
    The ``python -m repro chaos`` smoke runner: reprices/autotunes under
    a canned fault plan and asserts the invariants (same winners as the
    fault-free run, no partial files, stable exit codes).
"""

from .atomic import (
    atomic_append_line,
    atomic_write_json,
    atomic_write_text,
    quarantine_file,
    recover_jsonl,
)
from .faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    fault_plan,
    inject,
    install_plan,
    maybe_corrupt,
    maybe_garbage,
)
from .breaker import CircuitBreaker
from .policy import (
    CallTimeout,
    DeadlineExceeded,
    ExecPolicy,
    PermanentFailure,
    Quarantine,
    call_with_policy,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "fault_plan",
    "inject",
    "install_plan",
    "maybe_corrupt",
    "maybe_garbage",
    "CallTimeout",
    "CircuitBreaker",
    "DeadlineExceeded",
    "ExecPolicy",
    "PermanentFailure",
    "Quarantine",
    "call_with_policy",
    "atomic_append_line",
    "atomic_write_json",
    "atomic_write_text",
    "quarantine_file",
    "recover_jsonl",
]
