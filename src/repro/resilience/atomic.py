"""Crash-safe persistence primitives with startup recovery.

Every durable artifact the library writes — cache entries, ``BENCH_*.json``
reports, the JSONL bench ledger — goes through one of three helpers so a
``kill -9`` at *any* instant leaves either the old file or the new file,
never a torn hybrid:

* :func:`atomic_write_text` / :func:`atomic_write_json` — write to a
  temp file in the destination directory, flush, ``fsync``, then
  ``os.replace`` (atomic on POSIX and Windows), then best-effort fsync of
  the directory so the rename itself survives power loss;
* :func:`atomic_append_line` — append one full line with a single
  ``os.write`` on an ``O_APPEND`` descriptor, fsynced: concurrent
  appenders interleave at line granularity and a crash can only tear the
  final line (which recovery then removes);
* :func:`recover_jsonl` — startup recovery for append-only files: a
  torn trailing line (no newline, or unparseable JSON) is moved into the
  ``.quarantine/`` sibling directory and truncated away, so readers see
  only complete records and the evidence survives for debugging;
* :func:`quarantine_file` — move any corrupt file into ``.quarantine/``
  next to it instead of deleting or raising.

Fault-injection sites (:mod:`repro.resilience.faults`) cover the two
crash windows that matter: ``<site>.tmp`` fires after the temp write but
before the rename (simulating a crash that strands a temp file) and
``<site>`` fires before any bytes move (simulating a crash before the
operation).  ``corrupt`` rules on the site corrupt the payload bytes —
which the atomic rename then publishes, exercising *reader-side*
corruption recovery.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any

from ..obs import log as obs_log
from ..obs import metrics as obs_metrics
from . import faults

#: sibling directory corrupt/torn artifacts are moved into
QUARANTINE_DIR = ".quarantine"


def _fsync_dir(path: pathlib.Path) -> None:
    """Best-effort directory fsync (not all platforms/filesystems allow)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: "str | os.PathLike",
    text: str,
    *,
    site: str = "atomic.write",
    key: str = "",
    fsync: bool = True,
) -> pathlib.Path:
    """Atomically publish ``text`` at ``path`` (write/fsync/rename).

    Raises ``OSError`` on real I/O failure and :class:`.InjectedFault`
    under a fault plan; on either, the destination is untouched and any
    temp file is cleaned up.
    """
    path = pathlib.Path(path)
    faults.inject(site, key=key or path.name)
    data = faults.maybe_corrupt(
        site, text.encode("utf-8"), key=key or path.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name[:24]}-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        # the crash window: temp is durable, rename has not happened yet
        faults.inject(f"{site}.tmp", key=key or path.name)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    if fsync:
        _fsync_dir(path.parent)
    return path


def atomic_write_json(
    path: "str | os.PathLike",
    value: Any,
    *,
    site: str = "atomic.write",
    key: str = "",
    fsync: bool = True,
    **dump_kwargs: Any,
) -> pathlib.Path:
    """:func:`atomic_write_text` for a JSON payload."""
    return atomic_write_text(
        path, json.dumps(value, **dump_kwargs) + "\n",
        site=site, key=key, fsync=fsync,
    )


def atomic_append_line(
    path: "str | os.PathLike",
    line: str,
    *,
    site: str = "atomic.append",
    key: str = "",
    fsync: bool = True,
) -> pathlib.Path:
    """Append ``line`` (newline added) as one fsynced ``O_APPEND`` write."""
    path = pathlib.Path(path)
    faults.inject(site, key=key or path.name)
    data = faults.maybe_corrupt(
        site, (line.rstrip("\n") + "\n").encode("utf-8"),
        key=key or path.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
    return path


def quarantine_dir_for(path: "str | os.PathLike") -> pathlib.Path:
    return pathlib.Path(path).parent / QUARANTINE_DIR


def quarantine_file(
    path: "str | os.PathLike", *, reason: str = "corrupt"
) -> pathlib.Path | None:
    """Move ``path`` into its ``.quarantine/`` sibling; None on failure.

    Never raises: quarantining is itself a degradation path.  A name
    collision appends a numeric suffix so repeated corruption of the
    same filename keeps every specimen.
    """
    path = pathlib.Path(path)
    qdir = quarantine_dir_for(path)
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        serial = 0
        while target.exists():
            serial += 1
            target = qdir / f"{path.name}.{serial}"
        os.replace(path, target)
    except OSError as exc:
        obs_log.warning(
            "quarantine_failed", logger="repro.resilience.atomic",
            path=str(path), reason=reason, error=type(exc).__name__,
        )
        return None
    obs_metrics.counter("files_quarantined", reason=reason).inc()
    obs_log.warning(
        "file_quarantined", logger="repro.resilience.atomic",
        path=str(path), target=str(target), reason=reason,
    )
    return target


def recover_jsonl(path: "str | os.PathLike") -> int:
    """Startup recovery for an append-only JSONL file.

    Detects a torn tail — bytes after the last newline, or a final line
    that is not valid JSON — saves the tail into ``.quarantine/`` and
    truncates the file back to its last complete record.  Returns the
    number of bytes removed (0 when the file is clean or absent).
    Unreadable files are quarantined whole rather than raising.
    """
    path = pathlib.Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return 0
    except OSError as exc:
        obs_log.warning(
            "jsonl_unreadable", logger="repro.resilience.atomic",
            path=str(path), error=type(exc).__name__,
        )
        quarantine_file(path, reason="unreadable")
        return 0
    if not raw:
        return 0
    keep = len(raw)
    if not raw.endswith(b"\n"):
        keep = raw.rfind(b"\n") + 1  # 0 when no newline at all
    else:
        # the final complete line must parse; earlier corrupt lines are
        # the reader's per-line problem (counted + skipped there), but a
        # corrupt *tail* is the crash signature this recovery owns
        tail_start = raw.rfind(b"\n", 0, len(raw) - 1) + 1
        tail = raw[tail_start:len(raw) - 1]
        if tail.strip():
            try:
                json.loads(tail.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                keep = tail_start
    torn = len(raw) - keep
    if torn == 0:
        return 0
    # how many records (complete-but-corrupt lines plus at most one
    # newline-less tail fragment) the truncation removes — recovery must
    # never be silent, so both counts land in metrics alongside the log
    removed = raw[keep:]
    torn_records = sum(1 for seg in removed.split(b"\n") if seg.strip())
    qdir = quarantine_dir_for(path)
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        tail_file = qdir / f"{path.name}.torn"
        serial = 0
        while tail_file.exists():
            serial += 1
            tail_file = qdir / f"{path.name}.torn.{serial}"
        tail_file.write_bytes(raw[keep:])
        with open(path, "r+b") as fh:
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())
    except OSError as exc:
        obs_log.warning(
            "jsonl_recovery_failed", logger="repro.resilience.atomic",
            path=str(path), error=type(exc).__name__,
        )
        return 0
    obs_metrics.counter("files_recovered", kind="jsonl").inc()
    obs_metrics.counter("ledger_recovered_records").inc(max(1, torn_records))
    obs_metrics.counter("ledger_recovered_bytes").inc(torn)
    obs_log.warning(
        "jsonl_recovered", logger="repro.resilience.atomic",
        path=str(path), torn_bytes=torn, torn_records=torn_records,
        quarantine=str(tail_file),
    )
    return torn
