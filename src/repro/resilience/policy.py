"""Hardened execution policy: bounded retry, timeout, quarantine.

TVM-style operator autotuners survive thousands of failing candidates by
isolating each profile run and skipping the ones that keep dying (Cowan
et al.).  :func:`call_with_policy` is that isolation boundary for our
simulated profile runs and other retryable unit work:

* **fast path** — with no timeout configured, the call is a plain
  ``fn()`` inside ``try``; zero threads, zero overhead on success;
* **bounded retry** — library errors (:class:`~repro.errors.ReproError`,
  which includes injected faults) and timeouts are retried up to
  ``retries`` times with exponential backoff (``backoff_s * 2**attempt``,
  deterministic, no jitter — reproducibility beats thundering-herd
  avoidance inside one process);
* **timeout** — with ``timeout_s`` set, the call runs on a daemon worker
  thread and is abandoned when the clock expires (the only portable
  option for pure-python work; the stuck thread finishes in the
  background while the search moves on);
* **permanent failure** — when every attempt fails the last error is
  re-raised wrapped in :class:`PermanentFailure`, and the caller decides:
  the autotuner quarantines the candidate and continues over survivors,
  the executor falls back to the ``ref`` backend.

Environment defaults (read per call, so tests can flip them):

* ``REPRO_RETRY``     — retry count after the first attempt (default 2)
* ``REPRO_TIMEOUT_S`` — per-attempt wall-clock timeout (default: none)
* ``REPRO_BACKOFF_S`` — backoff base seconds (default 0.05)

Everything lands in metrics: ``resilience_retries{site=}``,
``resilience_timeouts{site=}``, ``resilience_permanent_failures{site=}``,
``resilience_quarantined{site=}``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from ..errors import ReproError
from ..obs import log as obs_log
from ..obs import metrics as obs_metrics

T = TypeVar("T")

RETRY_ENV = "REPRO_RETRY"
TIMEOUT_ENV = "REPRO_TIMEOUT_S"
BACKOFF_ENV = "REPRO_BACKOFF_S"

_DEFAULT_RETRIES = 2
_DEFAULT_BACKOFF_S = 0.05


class PermanentFailure(ReproError):
    """Every attempt of a policy-guarded call failed."""

    def __init__(self, site: str, key: str, attempts: int,
                 last: BaseException) -> None:
        super().__init__(
            f"{site!r} failed permanently after {attempts} attempt(s) "
            f"(key={key!r}): {type(last).__name__}: {last}"
        )
        self.site = site
        self.key = key
        self.attempts = attempts
        self.last = last


class CallTimeout(ReproError):
    """One attempt exceeded the policy's wall-clock budget."""

    def __init__(self, site: str, timeout_s: float) -> None:
        super().__init__(f"{site!r} timed out after {timeout_s:g}s")
        self.site = site
        self.timeout_s = timeout_s


def _env_float(name: str, default: float | None) -> float | None:
    text = os.environ.get(name, "").strip()
    if not text:
        return default
    try:
        return float(text)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    text = os.environ.get(name, "").strip()
    if not text:
        return default
    try:
        return max(0, int(text))
    except ValueError:
        return default


@dataclass(frozen=True)
class ExecPolicy:
    """Retry/timeout knobs for one class of guarded calls."""

    retries: int = _DEFAULT_RETRIES
    timeout_s: float | None = None
    backoff_s: float = _DEFAULT_BACKOFF_S

    @classmethod
    def resolve(
        cls,
        *,
        retries: int | None = None,
        timeout_s: float | None = None,
        backoff_s: float | None = None,
    ) -> "ExecPolicy":
        """Explicit args > environment > defaults."""
        return cls(
            retries=retries if retries is not None
            else _env_int(RETRY_ENV, _DEFAULT_RETRIES),
            timeout_s=timeout_s if timeout_s is not None
            else _env_float(TIMEOUT_ENV, None),
            backoff_s=backoff_s if backoff_s is not None
            else _env_float(BACKOFF_ENV, _DEFAULT_BACKOFF_S) or 0.0,
        )


def _run_with_timeout(fn: Callable[[], T], timeout_s: float, site: str) -> T:
    """Run ``fn`` on a daemon thread; abandon it past ``timeout_s``."""
    result: list[Any] = []
    error: list[BaseException] = []

    def worker() -> None:
        try:
            result.append(fn())
        except BaseException as exc:  # noqa: BLE001 - re-raised on the caller
            error.append(exc)

    thread = threading.Thread(
        target=worker, name=f"policy-{site}", daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise CallTimeout(site, timeout_s)
    if error:
        raise error[0]
    return result[0]


def call_with_policy(
    fn: Callable[[], T],
    *,
    site: str,
    key: str = "",
    policy: ExecPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (ReproError,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """``fn()`` under retry/timeout; raises :class:`PermanentFailure`.

    ``retry_on`` classifies retryable errors — anything else (e.g. a
    programming error like ``TypeError``) propagates immediately on the
    first attempt, exactly as an unguarded call would.
    """
    policy = policy if policy is not None else ExecPolicy.resolve()
    attempts = policy.retries + 1
    last: BaseException | None = None
    for attempt in range(attempts):
        try:
            if policy.timeout_s is not None and policy.timeout_s > 0:
                return _run_with_timeout(fn, policy.timeout_s, site)
            return fn()
        except CallTimeout as exc:
            last = exc
            obs_metrics.counter("resilience_timeouts", site=site).inc()
            obs_log.warning(
                "call_timeout", logger="repro.resilience.policy",
                site=site, key=key, attempt=attempt + 1,
                timeout_s=policy.timeout_s,
            )
        except retry_on as exc:
            last = exc
        if attempt + 1 < attempts:
            obs_metrics.counter("resilience_retries", site=site).inc()
            obs_log.info(
                "call_retry", logger="repro.resilience.policy",
                site=site, key=key, attempt=attempt + 1,
                error=type(last).__name__,
            )
            if policy.backoff_s > 0:
                sleep(policy.backoff_s * (2 ** attempt))
    assert last is not None
    obs_metrics.counter("resilience_permanent_failures", site=site).inc()
    obs_log.warning(
        "call_permanent_failure", logger="repro.resilience.policy",
        site=site, key=key, attempts=attempts, error=type(last).__name__,
    )
    raise PermanentFailure(site, key, attempts, last)


class Quarantine:
    """Inputs that failed permanently and should be skipped, per site.

    A thin thread-safe set with failure provenance; sweeps consult
    :meth:`contains` up front (skipping costs nothing) and :meth:`add`
    on :class:`PermanentFailure`.  In-process only by design: a
    quarantined *simulated* candidate is a code bug or an injected
    fault, and pinning it across processes would mask the fix.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        self._entries: dict[str, str] = {}
        self._lock = threading.Lock()

    def add(self, key: str, reason: str = "") -> None:
        with self._lock:
            fresh = key not in self._entries
            self._entries[key] = reason
        if fresh:
            obs_metrics.counter("resilience_quarantined", site=self.site).inc()
            obs_log.warning(
                "quarantined", logger="repro.resilience.policy",
                site=self.site, key=key, reason=reason,
            )

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def entries(self) -> dict[str, str]:
        with self._lock:
            return dict(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
